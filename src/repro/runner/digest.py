"""Stable run digests: what identifies an experiment's output.

A cached result may be reused only while nothing that could change the
experiment's output has changed.  The digest therefore covers:

* the experiment id and its runner keyword overrides,
* the duration scale (``REPRO_SCALE`` / ``--scale``), and
* the *content* of every source file the run can execute.

Source relevance is computed statically: starting from the experiment's
runner module, the AST import graph is walked and every reachable module
inside the ``repro`` package is hashed.  The walk is conservative — it
follows ``import``/``from ... import`` statements anywhere in a file
(including function bodies, so lazy imports count) — which makes the key
safe: an edit to any reachable file invalidates the entry, and files
outside the closure (other experiments, docs, tests) do not.

Hashes are pure functions of file bytes and the payload is serialised
with sorted keys, so digests are stable across processes, platforms and
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Digest payload schema; bump to invalidate every existing cache entry.
#: v2: the fidelity tier (packet vs hybrid, docs/SIMULATION.md) joined
#: the payload so the two modes can never alias in the result cache.
DIGEST_SCHEMA = 2

#: The package whose files participate in digests.
PKG_NAME = "repro"

PKG_ROOT = Path(__file__).resolve().parent.parent  # .../src/repro
SRC_ROOT = PKG_ROOT.parent  # .../src

#: (path, mtime_ns, size) -> sha256 hex; an in-process cache so a 25-way
#: sweep hashes each shared file once, not 25 times.
_file_hash_cache: Dict[Tuple[str, int, int], str] = {}


def module_file(modname: str) -> Optional[Path]:
    """Map a dotted module name to its file inside the repro package."""
    if modname != PKG_NAME and not modname.startswith(PKG_NAME + "."):
        return None
    parts = modname.split(".")[1:]
    base = PKG_ROOT.joinpath(*parts) if parts else PKG_ROOT
    candidate = base.with_suffix(".py")
    if candidate.is_file():
        return candidate
    init = base / "__init__.py"
    if init.is_file():
        return init
    return None


def _imported_names(path: Path, modname: str) -> Set[str]:
    """Every dotted name a file imports (absolute and resolved-relative)."""
    try:
        tree = ast.parse(path.read_bytes(), filename=str(path))
    except SyntaxError:
        return set()
    names: Set[str] = set()
    # The package a relative import resolves against: the module's own
    # package (its parent for plain modules, itself for __init__.py).
    if path.name == "__init__.py":
        pkg_parts = modname.split(".")
    else:
        pkg_parts = modname.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(anchor + ([node.module] if node.module else []))
            if base:
                names.add(base)
            # ``from repro.experiments import ablations`` reaches the
            # submodule through the alias, not through ``base`` itself.
            for alias in node.names:
                if alias.name != "*" and base:
                    names.add(f"{base}.{alias.name}")
    return names


def import_closure(roots: Iterable[str]) -> List[Path]:
    """All repro-package files statically reachable from ``roots``.

    ``roots`` are dotted module names (e.g. ``repro.experiments.fig02_fairness``).
    Returns sorted, de-duplicated paths.  Importing a package pulls in its
    ``__init__.py``; attribute imports of submodules are followed too.
    """
    seen: Dict[str, Path] = {}
    stack = [r for r in roots]
    visited_names: Set[str] = set()
    while stack:
        name = stack.pop()
        if name in visited_names:
            continue
        visited_names.add(name)
        path = module_file(name)
        if path is None:
            continue
        if name not in seen:
            seen[name] = path
            for imported in _imported_names(path, name):
                if imported.startswith(PKG_NAME):
                    stack.append(imported)
    return sorted(set(seen.values()))


def file_sha256(path: Path) -> str:
    """Content hash of one file (memoised per process on (mtime, size))."""
    st = path.stat()
    key = (str(path), st.st_mtime_ns, st.st_size)
    cached = _file_hash_cache.get(key)
    if cached is not None:
        return cached
    h = hashlib.sha256(path.read_bytes()).hexdigest()
    _file_hash_cache[key] = h
    return h


def _canon_overrides(overrides: Optional[dict]) -> List[List[str]]:
    """Overrides as a sorted, repr-serialised list (tuples survive)."""
    if not overrides:
        return []
    return [[str(k), repr(overrides[k])] for k in sorted(overrides)]


def experiment_digest(
    exp_id: str,
    scale: float,
    overrides: Optional[dict] = None,
    extra_roots: Sequence[str] = (),
    fidelity: str = "packet",
) -> Tuple[str, Dict[str, str]]:
    """Digest for one experiment run.

    Returns ``(hex_digest, file_hashes)`` where ``file_hashes`` maps each
    source file (relative to ``src/``) to its content sha256.  Two
    processes on two machines computing this for the same tree, scale,
    fidelity tier and overrides get the same answer.
    """
    from repro.experiments import get_experiment

    exp = get_experiment(exp_id)
    roots = [exp.runner.__module__, *extra_roots]
    files = import_closure(roots)
    file_hashes = {
        str(p.relative_to(SRC_ROOT)): file_sha256(p) for p in files
    }
    payload = {
        "schema": DIGEST_SCHEMA,
        "exp_id": exp_id,
        "scale": format(float(scale), "g"),
        "fidelity": str(fidelity),
        "overrides": _canon_overrides(overrides),
        "files": file_hashes,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest(), file_hashes
