"""Parallel sweep executor with digest-keyed result caching.

The ``repro.runner`` package turns the 25-experiment registry into a
repeatable, cacheable batch workload (see docs/PERFORMANCE.md):

* :mod:`repro.runner.digest` — a stable content hash of everything that
  can change an experiment's output: its registry id, runner keyword
  overrides, the duration scale, and the static import closure of the
  source files the run executes.
* :mod:`repro.runner.cache` — a directory of ``<digest>.json`` entries
  holding the serialised :class:`~repro.experiments.common.ExperimentResult`
  (plus timing metadata); corrupt entries self-heal by deletion.
* :mod:`repro.runner.sweep` — the orchestrator behind
  ``repro-udt sweep --jobs N``: experiments fan out to fresh worker
  interpreters (one subprocess per experiment, so results and traces are
  byte-identical for any ``--jobs`` value), cache hits are skipped, and
  the sweep's timings merge-update ``benchmarks/results/BENCH_runtime.json``.

Worker processes re-enter through ``python -m repro.runner --worker``.
"""

from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.digest import experiment_digest, import_closure
from repro.runner.sweep import SweepReport, run_sweep

__all__ = [
    "ResultCache",
    "default_cache_dir",
    "experiment_digest",
    "import_closure",
    "run_sweep",
    "SweepReport",
]
