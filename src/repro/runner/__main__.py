"""Process entry points for the sweep runner.

Two modes, neither intended for direct human use (drive sweeps through
``repro-udt sweep``):

* ``python -m repro.runner --worker EXP --digest D --out F``
  runs one experiment in this (fresh) interpreter and writes its cache
  entry JSON to ``F``.  ``REPRO_SCALE`` comes from the environment the
  parent sweep set.
* ``python -m repro.runner --gate CURRENT --baseline BASE [--key K]``
  the CI runtime-regression gate: compares per-experiment sweep timings
  between two ``BENCH_runtime.json`` ledgers (median-normalised; see
  docs/PERFORMANCE.md) and exits non-zero on a regression.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional


def _run_worker_mode(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.experiments import get_experiment
    from repro.experiments.common import scale, traced

    exp = get_experiment(args.worker)
    with ExitStack() as stack:
        if args.progress:
            # heartbeat JSON lines on stdout — the parent sweep reads
            # them off the subprocess pipe (repro.runner.progress)
            from repro.runner.progress import ProgressReporter

            stack.enter_context(ProgressReporter(args.worker))
        stack.enter_context(
            traced(
                args.trace,
                packets=args.trace_packets,
                generator="repro-udt sweep",
                experiments=[args.worker],
            )
        )
        t0 = time.perf_counter()
        result = exp.runner()
        seconds = time.perf_counter() - t0
    entry = {
        "exp_id": args.worker,
        "digest": args.digest,
        "scale": scale(),
        "seconds": seconds,
        "result": asdict(result),
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(entry, f, sort_keys=True, separators=(",", ":"))
        f.write("\n")
    return 0


def _run_gate_mode(args: argparse.Namespace) -> int:
    from repro.runner.sweep import check_regressions

    failures, lines = check_regressions(
        Path(args.gate),
        Path(args.baseline),
        key=args.key,
        threshold=args.threshold,
    )
    for line in lines:
        print(line)
    for failure in failures:
        print(f"[gate] FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("[gate] no runtime regressions")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.runner")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--worker", metavar="EXP_ID", help="run one experiment")
    mode.add_argument(
        "--gate", metavar="CURRENT", help="regression-gate a runtime ledger"
    )
    parser.add_argument("--digest", default="", help="digest to echo into the entry")
    parser.add_argument("--out", help="where the worker writes its entry JSON")
    parser.add_argument(
        "--trace", default=None, help="trace path (.jsonl/.jsonl.gz/.rtrc)"
    )
    parser.add_argument("--trace-packets", action="store_true")
    parser.add_argument(
        "--progress",
        action="store_true",
        help="emit sweep.heartbeat JSON lines on stdout for the parent",
    )
    parser.add_argument("--baseline", help="baseline ledger for --gate")
    parser.add_argument("--key", default=None, help="only gate this sweep key")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed normalised slowdown (default 0.25 = +25%%)",
    )
    args = parser.parse_args(argv)
    if args.worker:
        if not args.out:
            parser.error("--worker requires --out")
        return _run_worker_mode(args)
    if not args.baseline:
        parser.error("--gate requires --baseline")
    return _run_gate_mode(args)


if __name__ == "__main__":
    sys.exit(main())
