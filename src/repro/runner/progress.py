"""Live sweep telemetry: worker heartbeats and the parent progress board.

A sweep at paper scale keeps workers busy for minutes; until now the
parent printed nothing between "running" and the final table.  This
module adds a side channel over the pipe the workers already have:

* **Worker side** — :class:`ProgressReporter` runs inside
  ``python -m repro.runner --worker ... --progress``.  It wraps
  ``Simulator.run`` (class-wide, so every simulator an experiment
  creates is covered) to learn the currently-running simulator and its
  ``until`` horizon, and a daemon thread emits one JSON heartbeat per
  interval on stdout — the worker's stdout is otherwise unused, so the
  protocol needs no new file descriptors.  The live event count comes
  from inspecting the engine frame's local ``processed`` counter via
  ``sys._current_frames()``: the hot loop only flushes it to
  ``events_processed`` when ``run()`` returns, and instrumenting the
  loop itself would tax the very hot path the runner exists to measure.
  Sampling from the reporter thread costs the engine nothing.

* **Parent side** — :class:`ProgressBoard` collects heartbeats (and
  start/done/failed lifecycle records) from all workers, renders
  per-worker status lines (vtime frontier, events/s, ETA), and appends
  every record to ``progress.jsonl`` — which the HTML dashboard renders
  as a live-run card.

Heartbeat record::

    {"kind": "sweep.heartbeat", "exp": "fig08", "wall": 12.5,
     "vt": 2.31, "vt_end": 5.0, "events": 1273450, "eps": 405120,
     "eta": 13.2}

``vt``/``vt_end`` are virtual seconds; ``eta`` extrapolates the
remaining virtual time at the recent virtual-time rate.  ``eps`` is
engine events per wall second over the last interval.
"""

from __future__ import annotations

import functools
import json
import sys
import threading
import time
from math import inf
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, TextIO

HEARTBEAT = "sweep.heartbeat"

Emit = Callable[[str], None]

# ---------------------------------------------------------------------------
# Cross-thread contract, machine-checked by the ``thread-shared-state``
# lint rule (repro.analysis.threads).  The ProgressReporter daemon thread
# (_loop -> sample -> _frame_processed) may READ exactly these reporter
# attributes; everything else it touches is a lint finding.  Keep these in
# sync when the sampler grows: the point is that the diff to this list is
# the review surface for new cross-thread traffic.
# ---------------------------------------------------------------------------

#: reporter attributes the daemon thread may read (shared with the main
#: thread; scalar snapshots or intentionally thread-safe objects).
THREAD_SHARED_READS = frozenset(
    {
        "exp_id",
        "interval",
        "_out",
        "_lock",
        "_cur_sim",
        "_cur_until",
        "_events_done",
        "_t0",
        "_stop",
        "_run_code",
    }
)

#: attributes only the daemon thread itself touches (read *and* write).
THREAD_OWNED = frozenset({"_last"})

#: attributes holding live foreign objects (the running Simulator);
#: locals aliasing them are dataflow-tracked by the rule.
THREAD_SHARED_OBJECTS = frozenset({"_cur_sim"})

#: the only attributes the thread may read on such a foreign object —
#: ``Simulator.now`` is a plain float slot, racy-read safe by design.
THREAD_SHARED_OBJECT_READS = frozenset({"now"})


def default_progress_path(cache_dir: Optional[Path] = None) -> Path:
    """Where ``sweep --progress`` writes its feed: ``<cache>/progress.jsonl``."""
    from repro.runner.cache import default_cache_dir

    base = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return base / "progress.jsonl"


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class ProgressReporter:
    """Emits periodic heartbeat JSON lines for the experiment running here."""

    def __init__(
        self,
        exp_id: str,
        interval: float = 0.5,
        out: Optional[TextIO] = None,
    ):
        self.exp_id = exp_id
        self.interval = interval
        self._out = out if out is not None else sys.stdout
        self._lock = threading.Lock()
        self._cur_sim: Optional[Any] = None
        self._cur_until: Optional[float] = None
        self._cur_base = 0
        self._events_done = 0
        self._t0 = time.perf_counter()
        self._last: Optional[tuple] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._orig_run: Optional[Callable] = None
        self._run_code = None

    # -- engine hook -----------------------------------------------------
    def start(self) -> "ProgressReporter":
        from repro.sim import engine

        if self._orig_run is not None:
            raise RuntimeError("reporter already started")
        orig = engine.Simulator.run
        self._orig_run = orig
        self._run_code = orig.__code__
        reporter = self

        @functools.wraps(orig)
        def run(sim, until=None):
            with reporter._lock:
                reporter._cur_sim = sim
                reporter._cur_until = until
                reporter._cur_base = sim.events_processed
            try:
                return orig(sim, until)
            finally:
                with reporter._lock:
                    reporter._events_done += (
                        sim.events_processed - reporter._cur_base
                    )
                    reporter._cur_sim = None
                    reporter._cur_until = None

        engine.Simulator.run = run
        self._thread = threading.Thread(
            target=self._loop, name="progress-reporter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if self._orig_run is not None:
            from repro.sim import engine

            engine.Simulator.run = self._orig_run
            self._orig_run = None

    def __enter__(self) -> "ProgressReporter":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- sampling --------------------------------------------------------
    def _frame_processed(self) -> int:
        """Read the engine loop's local ``processed`` from its live frame.

        Zero cost on the hot path; any failure (no frame yet, exotic
        interpreter) degrades to 0 rather than raising in the sampler.
        """
        try:
            frames = sys._current_frames()
        except Exception:
            return 0
        for frame in frames.values():
            f, depth = frame, 0
            while f is not None and depth < 64:
                if f.f_code is self._run_code:
                    try:
                        return int(f.f_locals.get("processed", 0))
                    except Exception:
                        return 0
                f = f.f_back
                depth += 1
        return 0

    def sample(self) -> Dict[str, Any]:
        """One heartbeat record from the current engine state."""
        wall = time.perf_counter() - self._t0
        with self._lock:
            sim = self._cur_sim
            until = self._cur_until
            events = self._events_done
        vt: Optional[float] = None
        if sim is not None:
            vt = sim.now
            events += self._frame_processed()
        rec: Dict[str, Any] = {
            "kind": HEARTBEAT,
            "exp": self.exp_id,
            "wall": round(wall, 3),
            "events": events,
        }
        if vt is not None:
            rec["vt"] = round(vt, 6)
        if until is not None and until != inf:
            rec["vt_end"] = round(until, 6)
        if self._last is not None:
            last_wall, last_vt, last_events = self._last
            dw = wall - last_wall
            if dw > 0:
                rec["eps"] = int((events - last_events) / dw)
                if vt is not None and last_vt is not None and vt >= last_vt:
                    vrate = (vt - last_vt) / dw
                    if until is not None and until != inf and vrate > 1e-12:
                        rec["eta"] = round((until - vt) / vrate, 1)
        self._last = (wall, vt, events)
        return rec

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            rec = self.sample()
            try:
                self._out.write(json.dumps(rec, separators=(",", ":")) + "\n")
                self._out.flush()
            except (ValueError, OSError):
                return  # pipe gone: parent died, stop quietly


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


def _fmt_count(n: float) -> str:
    if n >= 1e6:
        return f"{n/1e6:.1f}M"
    if n >= 1e3:
        return f"{n/1e3:.0f}k"
    return f"{n:.0f}"


class ProgressBoard:
    """Thread-safe sink for worker lifecycle + heartbeat records.

    Appends every record (stamped with a wall-clock ``ts``) to
    ``progress.jsonl`` and, when ``emit`` is given, renders per-worker
    status lines, rate-limited per experiment so a many-worker sweep
    stays readable.  The file is truncated at ``sweep_begin`` — it
    describes the *current* (or most recent) sweep, which is exactly
    what the dashboard's live-run card wants.
    """

    def __init__(
        self,
        path: Optional[Path] = None,
        emit: Optional[Emit] = None,
        line_interval: float = 2.0,
    ):
        self.path = Path(path) if path is not None else None
        self._emit = emit
        self.line_interval = line_interval
        self._lock = threading.Lock()
        self._last_line: Dict[str, float] = {}
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")

    def _record(self, rec: Dict[str, Any]) -> None:
        rec = dict(rec)
        rec["ts"] = round(time.time(), 3)
        with self._lock:
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as f:
                    f.write(json.dumps(rec, separators=(",", ":")) + "\n")

    def _say(self, line: str) -> None:
        if self._emit is not None:
            self._emit(line)

    # -- lifecycle -------------------------------------------------------
    def sweep_begin(
        self,
        selector: str,
        scale: float,
        jobs: int,
        pending: List[str],
        cached: List[str],
    ) -> None:
        self._record(
            {
                "kind": "sweep.begin",
                "selector": selector,
                "scale": scale,
                "jobs": jobs,
                "pending": list(pending),
                "cached": list(cached),
            }
        )

    def worker_start(self, exp_id: str) -> None:
        self._record({"kind": "sweep.worker_start", "exp": exp_id})

    def heartbeat(self, exp_id: str, rec: Dict[str, Any]) -> None:
        self._record(rec)
        now = time.monotonic()
        with self._lock:
            last = self._last_line.get(exp_id, 0.0)
            if now - last < self.line_interval:
                return
            self._last_line[exp_id] = now
        self._say(self.format_line(exp_id, rec))

    def worker_done(self, exp_id: str, seconds: float) -> None:
        self._record(
            {"kind": "sweep.worker_done", "exp": exp_id, "seconds": round(seconds, 3)}
        )

    def worker_failed(self, exp_id: str, error: str) -> None:
        self._record({"kind": "sweep.worker_failed", "exp": exp_id, "error": error})

    def sweep_end(self, seconds: float, executed: int, failed: int) -> None:
        self._record(
            {
                "kind": "sweep.end",
                "seconds": round(seconds, 3),
                "executed": executed,
                "failed": failed,
            }
        )

    # -- rendering -------------------------------------------------------
    @staticmethod
    def format_line(exp_id: str, rec: Dict[str, Any]) -> str:
        """One human status line from a heartbeat record."""
        parts = [f"[progress] {exp_id:<26}"]
        vt, vt_end = rec.get("vt"), rec.get("vt_end")
        if vt is not None and vt_end:
            pct = min(100.0, 100.0 * vt / vt_end) if vt_end > 0 else 0.0
            parts.append(f"vt {vt:7.3f}/{vt_end:.3f}s ({pct:3.0f}%)")
        elif vt is not None:
            parts.append(f"vt {vt:7.3f}s")
        if rec.get("eps") is not None:
            parts.append(f"{_fmt_count(rec['eps'])} ev/s")
        if rec.get("events") is not None:
            parts.append(f"{_fmt_count(rec['events'])} events")
        if rec.get("eta") is not None:
            parts.append(f"eta {rec['eta']:.0f}s")
        parts.append(f"wall {rec.get('wall', 0.0):.1f}s")
        return "  ".join(parts)


def read_progress(path: Path) -> Optional[Dict[str, Any]]:
    """Fold a ``progress.jsonl`` feed into the dashboard's live-run view.

    Returns ``None`` when the file is missing/empty, else::

        {"begin": {...}, "end": {...} | None, "workers":
            {exp: {"status": "running|done|failed",
                   "last": <latest heartbeat or lifecycle rec>,
                   "seconds": ..., "error": ...}},
         "ts": <latest record ts>}
    """
    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except (FileNotFoundError, OSError):
        return None
    begin: Optional[Dict[str, Any]] = None
    end: Optional[Dict[str, Any]] = None
    workers: Dict[str, Dict[str, Any]] = {}
    latest_ts: Optional[float] = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            continue  # mid-write truncation: the feed is live by design
        if not isinstance(rec, dict):
            continue
        ts = rec.get("ts")
        if isinstance(ts, (int, float)):
            latest_ts = ts if latest_ts is None else max(latest_ts, ts)
        kind = rec.get("kind")
        exp = rec.get("exp")
        if kind == "sweep.begin":
            begin = rec
        elif kind == "sweep.end":
            end = rec
        elif exp:
            w = workers.setdefault(exp, {"status": "running"})
            if kind == "sweep.worker_done":
                w["status"] = "done"
                w["seconds"] = rec.get("seconds")
            elif kind == "sweep.worker_failed":
                w["status"] = "failed"
                w["error"] = rec.get("error")
            elif kind == HEARTBEAT:
                w["last"] = rec
    if begin is None and not workers:
        return None
    return {"begin": begin, "end": end, "workers": workers, "ts": latest_ts}
