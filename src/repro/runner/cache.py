"""Digest-keyed result cache for experiment runs.

Layout: one ``<digest>.json`` file per entry under the cache root
(default ``.repro-cache/``, override with ``REPRO_CACHE_DIR``).  Entries
hold the serialised :class:`~repro.experiments.common.ExperimentResult`
plus timing metadata; the digest in the filename is the only key, so a
change to the experiment's config, scale or source closure simply misses
(see :mod:`repro.runner.digest`) and stale entries age out harmlessly.

Writes are atomic (tmp file + ``os.replace``) so a killed sweep never
leaves a half-written entry; unreadable or schema-mismatched entries are
deleted on load and counted in :attr:`ResultCache.corrupt_dropped`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Entry layout version; bump when the stored shape changes.
CACHE_SCHEMA = 1

_HEX = set("0123456789abcdef")


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``.repro-cache`` in the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


class ResultCache:
    """A directory of digest-named JSON entries."""

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.corrupt_dropped = 0

    def path(self, digest: str) -> Path:
        if len(digest) != 64 or not set(digest) <= _HEX:
            raise ValueError(f"not a sha256 hex digest: {digest!r}")
        return self.root / f"{digest}.json"

    def load(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached entry for ``digest``, or None.

        A file that cannot be parsed, or whose schema/digest fields do not
        match, is treated as corruption: it is removed so the experiment
        re-runs and the next store rewrites it cleanly.
        """
        path = self.path(digest)
        try:
            with open(path, "r", encoding="utf-8") as f:
                entry = json.load(f)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self._drop(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA
            or entry.get("digest") != digest
            or "result" not in entry
        ):
            self._drop(path)
            return None
        return entry

    def store(self, digest: str, entry: Dict[str, Any]) -> Path:
        """Atomically write ``entry`` under ``digest``; returns the path."""
        entry = dict(entry)
        entry["schema"] = CACHE_SCHEMA
        entry["digest"] = digest
        path = self.path(digest)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(entry, f, sort_keys=True, separators=(",", ":"))
            f.write("\n")
        os.replace(tmp, path)
        return path

    def entries(self) -> List[Dict[str, Any]]:
        """Every readable entry in the cache (dashboard/report scans).

        Corrupt files are dropped exactly as :meth:`load` would; order is
        deterministic (by filename, i.e. by digest).
        """
        if not self.root.is_dir():
            return []
        out: List[Dict[str, Any]] = []
        for path in sorted(self.root.glob("*.json")):
            try:
                entry = self.load(path.stem)
            except ValueError:  # not a digest-named file; leave it alone
                continue
            if entry is not None:
                out.append(entry)
        return out

    def _drop(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.corrupt_dropped += 1

    def __contains__(self, digest: str) -> bool:
        return self.load(digest) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache {self.root}>"
