"""The sweep orchestrator behind ``repro-udt sweep``.

The parent process computes each experiment's digest, answers what it can
from the :class:`~repro.runner.cache.ResultCache`, and fans the misses
out to worker subprocesses (``python -m repro.runner --worker``), at most
``--jobs`` in flight at once.  One fresh interpreter per experiment means
workers share no RNG, event-bus or module state — results and traces are
byte-identical whatever ``--jobs`` is, and a crash in one experiment
cannot poison another.

After the run the sweep merge-updates ``benchmarks/results/
BENCH_runtime.json``: per-experiment wall times go under ``runtimes``
(keyed by registry id) and the sweep itself under ``sweeps`` with its
digest map, cache-hit count and per-experiment seconds — preserving every
key the file already holds.  :func:`check_regressions` compares two such
files and is the CI runtime-regression gate (docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.cache import ResultCache
from repro.runner.digest import experiment_digest

#: Default location of the merged runtime ledger, relative to the cwd.
DEFAULT_BENCH = Path("benchmarks/results/BENCH_runtime.json")

Emit = Callable[[str], None]


@dataclass
class SweepReport:
    """What one sweep did: who ran, who hit cache, how long it all took."""

    selector: str
    scale: float
    jobs: int
    experiments: List[str]
    fidelity: str = "packet"
    seconds: float = 0.0
    cached: List[str] = field(default_factory=list)
    executed: List[str] = field(default_factory=list)
    digests: Dict[str, str] = field(default_factory=dict)
    exp_seconds: Dict[str, float] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)
    corrupt_dropped: int = 0

    @property
    def key(self) -> str:
        """The entry name this sweep writes under ``sweeps``.

        Packet-mode keys keep the historical ``selector|scale|jobs``
        shape (CI gate baselines reference them); hybrid sweeps get an
        explicit ``|fidelity=hybrid`` suffix so the two can never be
        compared against each other by accident.
        """
        base = f"{self.selector}|scale={self.scale:g}|jobs={self.jobs}"
        if self.fidelity != "packet":
            base += f"|fidelity={self.fidelity}"
        return base

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_text(self) -> str:
        lines = [
            f"== sweep {self.key}: {len(self.experiments)} experiments, "
            f"{len(self.cached)} cached, {len(self.executed)} executed, "
            f"{len(self.failures)} failed in {self.seconds:.1f}s =="
        ]
        for exp_id in self.experiments:
            if exp_id in self.failures:
                status = "FAILED"
            elif exp_id in self.cached:
                status = "cached"
            else:
                status = "ran"
            sec = self.exp_seconds.get(exp_id)
            timing = f"{sec:8.1f}s" if sec is not None else "        -"
            lines.append(f"  {exp_id:<26} {timing}  {status}")
        if self.corrupt_dropped:
            lines.append(f"  [dropped {self.corrupt_dropped} corrupt cache entries]")
        return "\n".join(lines)


def select_experiments(only: Optional[Sequence[str]]) -> Tuple[str, List[str]]:
    """Resolve an ``--only`` list to (selector label, registry ids)."""
    from repro.experiments import get_experiment, list_experiments

    if not only:
        return "all", [e.exp_id for e in list_experiments()]
    ids = []
    for exp_id in only:
        get_experiment(exp_id)  # raises KeyError with the known ids
        if exp_id not in ids:
            ids.append(exp_id)
    return ",".join(ids), ids


#: Trace formats ``--trace-dir`` sweeps can record (file suffix = format).
TRACE_FORMATS = ("jsonl", "jsonl.gz", "rtrc")


def _worker_cmd(
    exp_id: str,
    digest: str,
    out_path: Path,
    trace_path: Optional[Path],
    trace_packets: bool,
    progress: bool = False,
) -> List[str]:
    cmd = [
        sys.executable,
        "-m",
        "repro.runner",
        "--worker",
        exp_id,
        "--digest",
        digest,
        "--out",
        str(out_path),
    ]
    if trace_path is not None:
        cmd += ["--trace", str(trace_path)]
        if trace_packets:
            cmd.append("--trace-packets")
    if progress:
        cmd.append("--progress")
    return cmd


def _worker_env(scale: float, fidelity: str = "packet") -> Dict[str, str]:
    import repro
    from repro.sim.fluid import FIDELITY_ENV

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    env["REPRO_SCALE"] = format(scale, "g")
    env[FIDELITY_ENV] = fidelity
    return env


def _run_worker(
    exp_id: str,
    digest: str,
    scale: float,
    tmp_dir: Path,
    trace_dir: Optional[Path],
    trace_packets: bool,
    trace_format: str = "jsonl",
    board: Optional[Any] = None,
    fidelity: str = "packet",
) -> Dict[str, Any]:
    """Execute one experiment in a fresh interpreter; returns its entry.

    With a :class:`~repro.runner.progress.ProgressBoard` the worker runs
    with ``--progress`` and its stdout heartbeat lines stream into the
    board as they arrive.  Worker stderr spools to a file (not a pipe)
    so a chatty crash can never deadlock against the stdout reader.
    """
    out_path = tmp_dir / f"{exp_id}.json"
    trace_path = (
        trace_dir / f"{exp_id}.{trace_format}" if trace_dir is not None else None
    )
    cmd = _worker_cmd(
        exp_id, digest, out_path, trace_path, trace_packets,
        progress=board is not None,
    )
    if board is not None:
        board.worker_start(exp_id)
    stderr_path = tmp_dir / f"{exp_id}.stderr"
    with open(stderr_path, "w", encoding="utf-8") as err:
        proc = subprocess.Popen(
            cmd,
            env=_worker_env(scale, fidelity),
            stdout=subprocess.PIPE,
            stderr=err,
            text=True,
        )
        assert proc.stdout is not None
        for line in proc.stdout:
            line = line.strip()
            if not line or board is None:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if isinstance(rec, dict) and rec.get("kind") == "sweep.heartbeat":
                board.heartbeat(exp_id, rec)
        proc.wait()
    if proc.returncode != 0:
        try:
            stderr_text = stderr_path.read_text(encoding="utf-8")
        except OSError:
            stderr_text = ""
        tail = "\n".join(stderr_text.strip().splitlines()[-8:])
        raise RuntimeError(
            f"worker for {exp_id} exited {proc.returncode}:\n{tail}"
        )
    with open(out_path, "r", encoding="utf-8") as f:
        return json.load(f)


def run_sweep(
    only: Optional[Sequence[str]] = None,
    jobs: int = 1,
    scale: Optional[float] = None,
    cache_dir: Optional[Path] = None,
    force: bool = False,
    trace_dir: Optional[Path] = None,
    trace_packets: bool = False,
    trace_format: str = "jsonl",
    progress: bool = False,
    progress_path: Optional[Path] = None,
    fidelity: Optional[str] = None,
    emit: Optional[Emit] = None,
) -> SweepReport:
    """Run (or cache-skip) every selected experiment; returns the report.

    ``trace_dir`` asks each worker to write ``<exp_id>.<trace_format>``
    there (``trace_format`` one of ``jsonl``/``jsonl.gz``/``rtrc``); a
    trace run always executes (a cache hit has no trace to hand back),
    which is what makes ``--jobs 1`` vs ``--jobs N`` trace comparisons
    meaningful.  ``force`` ignores cache hits but still stores results.

    ``progress`` streams worker heartbeats into per-experiment status
    lines and appends every record to ``progress_path`` (default
    ``<cache>/progress.jsonl``), which the dashboard renders as a
    live-run card (docs/OBSERVABILITY.md).

    ``fidelity`` selects the simulation tier every worker runs at
    (``"packet"`` or ``"hybrid"``; docs/SIMULATION.md).  It defaults to
    the ambient ``REPRO_FIDELITY``, is part of every experiment digest
    (so hybrid and packet runs can never alias in the result cache) and,
    when not packet, suffixes the sweep's ledger key.
    """
    from repro.experiments.common import scale as env_scale
    from repro.sim.fluid import FIDELITIES, ambient_fidelity

    say: Emit = emit if emit is not None else (lambda s: None)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if trace_format not in TRACE_FORMATS:
        raise ValueError(
            f"trace_format must be one of {TRACE_FORMATS}, got {trace_format!r}"
        )
    if scale is None:
        scale = env_scale()
    if fidelity is None:
        fidelity = ambient_fidelity()
    if fidelity not in FIDELITIES:
        raise ValueError(
            f"fidelity must be one of {FIDELITIES}, got {fidelity!r}"
        )
    selector, ids = select_experiments(only)
    cache = ResultCache(cache_dir)
    report = SweepReport(
        selector=selector,
        scale=scale,
        jobs=jobs,
        experiments=ids,
        fidelity=fidelity,
    )

    board = None
    if progress or progress_path is not None:
        from repro.runner.progress import ProgressBoard, default_progress_path

        board = ProgressBoard(
            path=(
                Path(progress_path)
                if progress_path is not None
                else default_progress_path(cache_dir)
            ),
            emit=say if progress else None,
        )

    t0 = time.perf_counter()
    pending: List[str] = []
    for exp_id in ids:
        digest, _files = experiment_digest(exp_id, scale, fidelity=fidelity)
        report.digests[exp_id] = digest
        entry = None if (force or trace_dir is not None) else cache.load(digest)
        if entry is not None:
            report.cached.append(exp_id)
            sec = entry.get("seconds")
            if isinstance(sec, (int, float)):
                report.exp_seconds[exp_id] = float(sec)
            say(f"[sweep] {exp_id}: cache hit ({digest[:12]})")
        else:
            pending.append(exp_id)

    if board is not None:
        board.sweep_begin(
            selector, scale, jobs, pending=pending, cached=report.cached
        )
    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
        tmp_dir = Path(tmp)
        if pending:
            say(
                f"[sweep] running {len(pending)} experiment(s) at "
                f"scale={scale:g} with jobs={jobs}"
            )
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(
                    _run_worker,
                    exp_id,
                    report.digests[exp_id],
                    scale,
                    tmp_dir,
                    trace_dir,
                    trace_packets,
                    trace_format,
                    board,
                    fidelity,
                ): exp_id
                for exp_id in pending
            }
            for fut in as_completed(futures):
                exp_id = futures[fut]
                try:
                    entry = fut.result()
                except Exception as exc:  # worker crash: report, keep going
                    report.failures[exp_id] = str(exc)
                    if board is not None:
                        board.worker_failed(exp_id, str(exc))
                    say(f"[sweep] {exp_id}: FAILED ({exc})")
                    continue
                report.executed.append(exp_id)
                sec = float(entry.get("seconds", 0.0))
                report.exp_seconds[exp_id] = sec
                cache.store(report.digests[exp_id], entry)
                if board is not None:
                    board.worker_done(exp_id, sec)
                say(f"[sweep] {exp_id}: ran in {sec:.1f}s")
    # registry order, not completion order
    report.executed.sort(key=ids.index)
    report.seconds = time.perf_counter() - t0
    report.corrupt_dropped = cache.corrupt_dropped
    if board is not None:
        board.sweep_end(
            report.seconds, len(report.executed), len(report.failures)
        )
    return report


# -- BENCH_runtime.json merge + regression gate -------------------------

#: How many history entries each experiment keeps (oldest dropped first).
HISTORY_LIMIT = 40


def git_sha() -> str:
    """Short SHA of HEAD, or "unknown" outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def append_history(
    data: Dict[str, Any],
    exp_id: str,
    seconds: float,
    scale: Optional[float] = None,
    source: str = "sweep",
    sha: Optional[str] = None,
    limit: int = HISTORY_LIMIT,
) -> None:
    """Append one measured run to ``data["history"][exp_id]``, bounded.

    The history list is what the dashboard plots as a runtime trend; the
    top-level ``runtimes`` latest values stay authoritative for the
    regression gate.  Entries are append-only up to ``limit``, then the
    oldest fall off.
    """
    entry: Dict[str, Any] = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "sha": sha if sha is not None else git_sha(),
        "seconds": round(seconds, 3),
        "source": source,
    }
    if scale is not None:
        entry["scale"] = scale
    history = data.setdefault("history", {})
    runs = history.setdefault(exp_id, [])
    runs.append(entry)
    del runs[:-limit]


def _read_bench(path: Path) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
        if not isinstance(data, dict):
            data = {}
    except (FileNotFoundError, json.JSONDecodeError):
        data = {}
    data.setdefault("schema", 1)
    data.setdefault("kind", "bench.runtime")
    return data


def update_bench(report: SweepReport, bench_path: Optional[Path] = None) -> Path:
    """Merge this sweep's timings into the runtime ledger.

    Only the keys this sweep owns are replaced; everything else in the
    file (other sweeps, pytest-benchmark runtimes, foreign top-level
    keys) is preserved verbatim.
    """
    path = Path(bench_path) if bench_path is not None else DEFAULT_BENCH
    data = _read_bench(path)
    runtimes = data.setdefault("runtimes", {})
    sha = git_sha()
    # Hybrid timings live under "<exp>@hybrid" so the packet baseline
    # the regression gate compares against is never overwritten.
    suffix = "" if report.fidelity == "packet" else f"@{report.fidelity}"
    for exp_id in report.executed:
        runtimes[exp_id + suffix] = {
            "seconds": round(report.exp_seconds[exp_id], 3),
            "test": "repro-udt sweep",
        }
        # cache hits are skipped: they carry no fresh measurement
        append_history(
            data,
            exp_id + suffix,
            report.exp_seconds[exp_id],
            scale=report.scale,
            source="sweep",
            sha=sha,
        )
    sweeps = data.setdefault("sweeps", {})
    sweeps[report.key] = {
        "experiments": len(report.experiments),
        "jobs": report.jobs,
        "fidelity": report.fidelity,
        "seconds": round(report.seconds, 3),
        "cached": len(report.cached),
        "digests": dict(report.digests),
        "per_experiment": {
            k: round(v, 3) for k, v in sorted(report.exp_seconds.items())
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    return path


def check_regressions(
    current_path: Path,
    baseline_path: Path,
    key: Optional[str] = None,
    threshold: float = 0.25,
) -> Tuple[List[str], List[str]]:
    """Compare per-experiment sweep timings between two runtime ledgers.

    Returns ``(failures, lines)``: human-readable failure strings and a
    full comparison log.  Ratios are normalised by their median before
    the threshold is applied, so a uniformly slower machine (every figure
    2x) does not trip the gate while a single experiment regressing does.
    """
    cur = _read_bench(Path(current_path)).get("sweeps", {})
    base = _read_bench(Path(baseline_path)).get("sweeps", {})
    keys = [key] if key else sorted(set(cur) & set(base))
    failures: List[str] = []
    lines: List[str] = []
    compared = 0
    for k in keys:
        cur_pe = cur.get(k, {}).get("per_experiment") or {}
        base_pe = base.get(k, {}).get("per_experiment") or {}
        shared = sorted(set(cur_pe) & set(base_pe))
        ratios = {
            e: cur_pe[e] / base_pe[e] for e in shared if base_pe[e] > 0
        }
        if not ratios:
            continue
        compared += len(ratios)
        ordered = sorted(ratios.values())
        median = ordered[len(ordered) // 2]
        lines.append(f"[gate] {k}: {len(ratios)} experiments, median ratio {median:.2f}")
        for e, r in sorted(ratios.items()):
            norm = r / median if median > 0 else r
            mark = "REGRESSED" if norm > 1.0 + threshold else "ok"
            lines.append(
                f"[gate]   {e:<26} {base_pe[e]:8.1f}s -> {cur_pe[e]:8.1f}s "
                f"(x{r:.2f}, normalised x{norm:.2f}) {mark}"
            )
            if norm > 1.0 + threshold:
                failures.append(
                    f"{k}: {e} regressed x{norm:.2f} normalised "
                    f"({base_pe[e]:.1f}s -> {cur_pe[e]:.1f}s, threshold x{1 + threshold:.2f})"
                )
    if compared == 0:
        failures.append(
            f"no comparable sweep timings between {current_path} and "
            f"{baseline_path}" + (f" for key {key!r}" if key else "")
        )
    return failures, lines
