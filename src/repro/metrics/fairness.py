"""Fairness, stability and friendliness indices (§3.4, §3.6, §3.7).

All three published definitions, implemented verbatim:

* Jain's fairness index over per-flow average throughputs
  (``(sum x)^2 / (n * sum x^2)``; 1.0 is ideal).
* The stability index of §3.6: mean over flows of the per-flow
  sample standard deviation normalised by the flow's mean throughput
  (0 is ideal).
* The TCP friendliness index of §3.7: aggregate TCP throughput with m UDT
  flows present, relative to the ``n/(m+n)`` fair share measured from an
  all-TCP run (1 is ideal, <1 means UDT overruns TCP).
"""

from __future__ import annotations

import math
from typing import Sequence


def jain_index(throughputs: Sequence[float]) -> float:
    """Jain's fairness index; 1/n (worst) .. 1.0 (equal share)."""
    xs = list(throughputs)
    if not xs:
        raise ValueError("need at least one throughput")
    if any(x < 0 for x in xs):
        raise ValueError("throughputs must be non-negative")
    total = sum(xs)
    if total == 0:
        return 1.0  # all-zero: degenerately equal
    return total * total / (len(xs) * sum(x * x for x in xs))


def stability_index(samples: Sequence[Sequence[float]]) -> float:
    """§3.6:  S = (1/n) * sum_i [ sqrt( (1/(m-1)) sum_k (x_i(k)-xbar_i)^2 ) / xbar_i ]

    ``samples[i]`` is flow i's throughput time series.  Smaller is more
    stable; 0 is ideal.
    """
    if not samples:
        raise ValueError("need at least one flow")
    acc = 0.0
    for series in samples:
        m = len(series)
        if m < 2:
            raise ValueError("need at least two samples per flow")
        mean = sum(series) / m
        if mean == 0:
            continue  # a starved flow contributes no stability penalty
        var = sum((x - mean) ** 2 for x in series) / (m - 1)
        acc += math.sqrt(var) / mean
    return acc / len(samples)


def friendliness_index(
    tcp_with_udt: Sequence[float],
    tcp_alone: Sequence[float],
    n_udt: int,
) -> float:
    """§3.7:  T = (sum_i x_i) / ( (n/(m+n)) * sum_i y_i )

    ``tcp_with_udt`` are the n TCP throughputs while m UDT flows run;
    ``tcp_alone`` are the m+n throughputs of the all-TCP control run.
    T = 1 ideal; T > 1 UDT too friendly; T < 1 UDT overruns TCP.
    """
    n = len(tcp_with_udt)
    if n == 0 or n_udt < 0:
        raise ValueError("need TCP flows and a non-negative UDT count")
    if len(tcp_alone) != n + n_udt:
        raise ValueError(
            "control run must have m+n flows "
            f"(got {len(tcp_alone)}, expected {n + n_udt})"
        )
    fair_share = sum(tcp_alone) * (n / (n + n_udt))
    if fair_share == 0:
        raise ValueError("control run carried no traffic")
    return sum(tcp_with_udt) / fair_share


def rtt_fairness_ratio(flow_long: float, flow_ref: float) -> float:
    """Figure 6's measure: throughput of the variable-RTT flow over the
    100 ms reference flow.  1.0 is perfect RTT independence."""
    if flow_ref <= 0:
        raise ValueError("reference flow carried no traffic")
    return flow_long / flow_ref
