"""Evaluation metrics used throughout the paper's experiment section."""

from repro.metrics.fairness import (
    friendliness_index,
    jain_index,
    rtt_fairness_ratio,
    stability_index,
)

__all__ = [
    "jain_index",
    "stability_index",
    "friendliness_index",
    "rtt_fairness_ratio",
]
