"""SABUL: Simple Available Bandwidth Utilization Library (§2.3).

The predecessor protocol UDT replaced.  Differences the paper calls out:

* **MIMD rate control** — the packet-sending period is tuned
  multiplicatively from the current sending rate (no bandwidth
  estimation), with the constant SYN control interval SABUL introduced to
  avoid RTT bias.  MIMD converges to efficiency as fast as UDT but "also
  converges slowly" to fairness (§5.2) — the property the fairness
  ablation benchmarks demonstrate.
* **Static flow window** — no dynamic ``AS * (SYN + RTT)`` window, so
  loss comes in bigger bursts and per-flow throughput oscillates more.

SABUL originally ran its control channel over TCP; UDT removed that
(§6 "Using TCP in another transport protocol should be avoided").  The
congestion-relevant behaviour — what the benchmarks compare — is the
control law, which is reproduced exactly; control messages here travel
over the same UDP substrate UDT uses.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.node import Host
from repro.sim.topology import Network
from repro.udt.cc import CongestionControl, LossEvent
from repro.udt.params import UdtConfig
from repro.udt.seqno import seq_cmp
from repro.udt.sim_adapter import UdtFlow

#: MIMD parameters: rate x(1+1/10) per loss-free SYN, x8/9 on loss.
INCREASE_FACTOR = 1.10
DECREASE_FACTOR = 1.125


class SabulCC(CongestionControl):
    """SABUL's MIMD rate controller with a static window."""

    def __init__(self, config: UdtConfig, static_window: int = 25600):
        super().__init__(config)
        self.static_window = static_window
        self.window = float(static_window)
        self.last_rc_time = 0.0
        # None until the first decrease (avoids raw sentinel comparison
        # on a wrap-around sequence value; see the seqno-taint lint rule).
        self.last_dec_seq: Optional[int] = None
        self.period = 1e-6
        self.slow_start = True  # ramp like UDT until the first loss
        self.increases = 0
        self.decreases = 0

    def init(self, ctx) -> None:
        super().init(ctx)
        self.last_rc_time = ctx.now()

    def on_ack(self, ack_seq: int) -> None:
        ctx = self.ctx
        assert ctx is not None
        now = ctx.now()
        if now - self.last_rc_time < self.config.syn - 1e-9:
            return
        self.last_rc_time = now
        self.window = float(self.static_window)  # never dynamic
        if self.slow_start:
            return  # window-limited ramp until first loss
        # MIMD increase: the faster we send, the bigger the step.
        self.period /= INCREASE_FACTOR
        self.period = max(self.period, 1e-7)
        self.increases += 1

    def on_loss(self, loss: LossEvent) -> None:
        ctx = self.ctx
        assert ctx is not None
        if self.slow_start:
            self.slow_start = False
            rate = ctx.recv_rate
            self.period = 1.0 / rate if rate > 0 else self.config.syn
        if (
            self.last_dec_seq is None
            or seq_cmp(loss.biggest_seq, self.last_dec_seq) > 0
        ):
            self.period *= DECREASE_FACTOR
            self.last_dec_seq = ctx.max_seq_sent
            self.decreases += 1

    def on_timeout(self) -> None:
        if self.slow_start:
            self.slow_start = False
            self.period = self.config.syn
        self.period *= DECREASE_FACTOR
        self.decreases += 1


def start_sabul_flow(
    net: Network,
    src: Host,
    dst: Host,
    start: float = 0.0,
    nbytes: Optional[int] = None,
    flow_id: Optional[object] = None,
    static_window: int = 25600,
) -> UdtFlow:
    """A SABUL transfer: UDT machinery + MIMD control, no flow window."""
    config = UdtConfig(flow_control=False, rcv_buffer_pkts=max(static_window, 2))
    return UdtFlow(
        net,
        src,
        dst,
        config=config,
        cc_factory=lambda cfg: SabulCC(cfg, static_window),
        nbytes=nbytes,
        start=start,
        flow_id=flow_id,
    )
