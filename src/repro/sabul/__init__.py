"""SABUL — UDT's predecessor (§2.3), kept as an evaluation baseline."""

from repro.sabul.protocol import SabulCC, start_sabul_flow

__all__ = ["SabulCC", "start_sabul_flow"]
