"""SABUL's TCP control channel, and why UDT removed it (§2.3, §6).

SABUL carried ACK/NAK over a TCP connection.  §6: "TCP's own reliability
and congestion control mechanism can cause delay of control information
... The in-order delivery of control packets is unnecessary ... During
congestion, this delay can even be longer due to TCP's congestion
control."

:class:`ReliableInOrderChannel` models that behaviour precisely: control
messages traverse the same (congested) network path, and the channel adds
TCP semantics on top — any dropped control message must be retransmitted
after an RTO-like delay, and every *later* message is head-of-line
blocked behind it.  During data-plane congestion (exactly when NAKs are
most urgent) control loss probability rises and feedback stalls.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.sim.engine import Simulator

#: TCP-like minimum retransmission timeout for the control connection.
CONTROL_RTO = 0.2


class ReliableInOrderChannel:
    """In-order, reliable delivery with loss-triggered HOL blocking.

    ``send(msg)`` enqueues; messages are released to ``deliver`` in order
    after the underlying one-way ``delay``; each message is independently
    "lost" with ``loss_probability()`` and then re-sent after an RTO,
    blocking everything behind it — the §6 failure mode.
    """

    def __init__(
        self,
        sim: Simulator,
        deliver: Callable[[Any], None],
        delay: float,
        loss_probability: Callable[[], float],
        rto: float = CONTROL_RTO,
    ):
        self.sim = sim
        self.deliver = deliver
        self.delay = delay
        self.loss_probability = loss_probability
        self.rto = rto
        self._queue: deque[Any] = deque()
        self._busy = False
        #: (arrival time, msg) pairs in flight, drained by a single pump
        #: event.  In-order delivery is structural — one pump delivers
        #: due messages in send order — rather than an artifact of N
        #: same-instant deliver events and the engine's tie-break (which
        #: the determinism sanitizer would flag).
        self._in_flight: deque = deque()
        self._pump_pending = False
        self.messages_sent = 0
        self.retransmissions = 0
        self.hol_blocked_time = 0.0

    def send(self, msg: Any) -> None:
        self.messages_sent += 1
        self._queue.append(msg)
        if not self._busy:
            self._service()

    def _service(self) -> None:
        self._busy = True
        while self._queue:
            msg = self._queue[0]
            if self.sim.rng.random() < self.loss_probability():
                # Lost on the wire: TCP retries after an RTO; everything
                # queued behind this message waits (head-of-line blocking).
                self.retransmissions += 1
                self.hol_blocked_time += self.rto
                self.sim.schedule(self.rto, self._service)
                return
            self._queue.popleft()
            self._in_flight.append((self.sim.now + self.delay, msg))
            if not self._pump_pending:
                self._pump_pending = True
                self.sim.schedule(self.delay, self._pump)
        self._busy = False

    def _pump(self) -> None:
        self._pump_pending = False
        now = self.sim.now
        while self._in_flight and self._in_flight[0][0] <= now:
            _due, msg = self._in_flight.popleft()
            self.deliver(msg)
        if self._in_flight and not self._pump_pending:
            self._pump_pending = True
            self.sim.schedule(self._in_flight[0][0] - now, self._pump)


def attach_tcp_control_channel(flow, rto: float = CONTROL_RTO) -> dict:
    """Route a simulated UdtFlow's control traffic through TCP semantics.

    Returns the two channels (receiver->sender carries ACK/NAK — the
    critical direction; sender->receiver carries ACK2) for inspection.
    The loss probability tracks the bottleneck queue occupancy, so
    control suffers exactly when the data path is congested.
    """
    net = flow.net
    sim = net.sim
    # Find the most-occupied egress the flow's data crosses: use the
    # busiest link queue as the congestion signal.
    links = list(net.links.values())

    def congestion_loss() -> float:
        worst = 0.0
        for link in links:
            cap = link.queue.capacity_pkts
            if cap:
                worst = max(worst, len(link.queue) / cap)
        # near-full queues drop control packets too
        return max(0.0, (worst - 0.5) * 1.6)

    delay = flow.sender.rtt / 2 if flow.sender.rtt else 0.05

    channels = {}
    for side, core, peer in (
        ("rcv->snd", flow.receiver, flow.sender),
        ("snd->rcv", flow.sender, flow.receiver),
    ):
        original = core._transmit
        chan = ReliableInOrderChannel(
            sim,
            deliver=lambda m, p=peer: p.on_datagram(m, m.wire_size),
            delay=delay,
            loss_probability=congestion_loss,
            rto=rto,
        )
        channels[side] = chan

        def transmit(msg, size, _orig=original, _chan=chan):
            if msg.type_name == "data":
                _orig(msg, size)  # data still rides UDP
            else:
                _chan.send(msg)  # control rides "TCP"

        core._transmit = transmit
    return channels
