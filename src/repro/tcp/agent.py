"""TCP sender/receiver agents on the simulated network.

Packet-sequence TCP in the NS-2 style: segments are numbered by packet,
every segment is MSS bytes on the wire except a final partial one.  The
sender implements slow start, congestion avoidance via a pluggable
response function, RFC 6675-flavoured SACK loss recovery and an RFC 6298
RTO with exponential backoff and Karn's rule.

Sequence numbers here are plain unbounded Python integers compared with
raw ``<``/``>``/``-`` — by design.  Unlike UDT's 31-bit wrapping space
(``repro.udt.seqno``), NS-2-style TCP never wraps, so ordinary integer
arithmetic is exact and the ``seqno-taint`` lint rule deliberately
excludes ``repro/tcp/`` from its scope (see docs/ANALYSIS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.sim.node import Host
from repro.sim.packet import Packet
from repro.sim.topology import Network
from repro.tcp.options import TCP_IP_HEADER, TcpConfig
from repro.tcp.responses import Response
from repro.tcp.scoreboard import Scoreboard

#: ACK segment bytes: TCP/IP headers + 8 per SACK block.
ACK_BASE_SIZE = TCP_IP_HEADER


class TcpData:
    __slots__ = ("seq", "size", "fin")
    type_name = "tcp-data"

    def __init__(self, seq: int, size: int, fin: bool = False):
        self.seq = seq
        self.size = size
        self.fin = fin

    @property
    def wire_size(self) -> int:
        return TCP_IP_HEADER + self.size


class TcpAck:
    __slots__ = ("cum", "sack", "rwnd")
    type_name = "tcp-ack"

    def __init__(self, cum: int, sack: Tuple[Tuple[int, int], ...], rwnd: int):
        self.cum = cum
        self.sack = sack
        self.rwnd = rwnd

    @property
    def wire_size(self) -> int:
        return ACK_BASE_SIZE + 8 * len(self.sack)


class _Port:
    """Minimal host port binding for TCP messages (sizes are explicit)."""

    def __init__(self, host: Host, port: Optional[int] = None):
        self.host = host
        self.sim = host.sim
        self.port = port if port is not None else host.next_free_port()
        host.bind(self.port, self._on_packet)
        self.handler: Optional[Callable] = None

    @property
    def address(self):
        return (self.host.id, self.port)

    def send(self, msg, dst) -> None:
        pkt = Packet(size=msg.wire_size, src=self.address, dst=dst, payload=msg)
        self.host.send(pkt)

    def _on_packet(self, pkt: Packet) -> None:
        if self.handler is not None:
            self.handler(pkt.payload)

    def close(self) -> None:
        self.host.unbind(self.port)


@dataclass
class TcpStats:
    segs_sent: int = 0
    retransmits: int = 0
    timeouts: int = 0
    fast_recoveries: int = 0
    acks_received: int = 0


class TcpSender:
    def __init__(
        self,
        host: Host,
        dst_addr,
        config: Optional[TcpConfig] = None,
        response: Optional[Response] = None,
        total_bytes: Optional[int] = None,
        meter=None,
    ):
        self.config = config if config is not None else TcpConfig()
        self.response = response if response is not None else Response()
        self.port = _Port(host)
        self.port.handler = self._on_ack
        self.sim = host.sim
        self.dst = dst_addr
        self.meter = meter
        self.stats = TcpStats()

        payload = self.config.payload_size
        if total_bytes is None:
            self.total_pkts: Optional[int] = None
            self.last_size = payload
        else:
            self.total_pkts = max(1, -(-total_bytes // payload))
            self.last_size = total_bytes - (self.total_pkts - 1) * payload
        self.done = False
        self.finish_time: Optional[float] = None
        # App-limited mode: push_app_data() gates how much may be sent.
        self.app_limited = False
        self._offered_bytes = 0

        # sequence state (monotone ints, packets)
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = float(self.config.init_cwnd)
        self.ssthresh = float(self.config.init_ssthresh)
        self.rwnd = float(self.config.rwnd_pkts)
        self.dupacks = 0
        self.in_recovery = False
        # NewReno "recover" guard: no new cwnd reduction until the
        # cumulative ACK passes the point where the last one happened.
        self.recover_point = -1
        self.board = Scoreboard(self.config.dupthresh)

        # RTT / RTO (RFC 6298)
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = 1.0
        self._send_times: dict[int, float] = {}
        self._retx_fack: dict[int, int] = {}  # seq -> snd_nxt at retransmit
        self._rto_event = None

        # Vegas-style per-RTT bookkeeping
        self._rtt_mark = 0

        self._started = False

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._try_send()

    def close(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        self.port.close()

    # -- sending ------------------------------------------------------------
    def _window(self) -> float:
        return min(self.cwnd, self.rwnd)

    def push_app_data(self, nbytes: int) -> None:
        """App-limited mode: make ``nbytes`` more available for sending."""
        self.app_limited = True
        self._offered_bytes += nbytes
        self._try_send()

    def _has_new_data(self) -> bool:
        if self.app_limited:
            return self.snd_nxt < self._offered_bytes // self.config.payload_size
        if self.total_pkts is None:
            return True
        return self.snd_nxt < self.total_pkts

    def _size_of(self, seq: int) -> int:
        if self.total_pkts is not None and seq == self.total_pkts - 1:
            return self.last_size
        return self.config.payload_size

    def _try_send(self) -> None:
        if self.done:
            return
        window = self._window()
        board = self.board
        while True:
            pipe = board.pipe(self.snd_una, self.snd_nxt)
            if pipe >= window:
                break
            seq = board.next_lost_to_retransmit(self.snd_una)
            if seq is not None:
                board.on_retransmit(seq)
                self._retx_fack[seq] = self.snd_nxt
                self._send_times.pop(seq, None)  # Karn: no sample from retx
                self.stats.retransmits += 1
                self._emit(seq)
                continue
            if not self._has_new_data():
                break
            # New data additionally honours the classic flight bound so a
            # wedged cumulative ACK can never balloon the outstanding data.
            if self.snd_nxt - self.snd_una >= self.rwnd:
                break
            seq = self.snd_nxt
            self.snd_nxt += 1
            self._send_times[seq] = self.sim.now
            self._emit(seq)
        if self.snd_nxt > self.snd_una:
            self._arm_rto()

    def _emit(self, seq: int) -> None:
        self.stats.segs_sent += 1
        if self.meter is not None:
            self.meter.on_data_sent(self._size_of(seq))
        fin = self.total_pkts is not None and seq == self.total_pkts - 1
        self.port.send(TcpData(seq, self._size_of(seq), fin), self.dst)

    # -- receiving ACKs ---------------------------------------------------
    def _on_ack(self, ack: TcpAck) -> None:
        if self.done:
            return
        self.stats.acks_received += 1
        if self.meter is not None:
            self.meter.on_ctrl("ack")
        now = self.sim.now
        self.rwnd = float(ack.rwnd)
        board = self.board
        newly_acked = ack.cum - self.snd_una
        self.response.on_ack_arrival(max(newly_acked, 0), now)

        if newly_acked > 0:
            # RTT sample from the newest cumulatively-acked segment that
            # was never retransmitted.
            sample_t = None
            for s in range(ack.cum - 1, self.snd_una - 1, -1):
                t = self._send_times.pop(s, None)
                if t is not None and sample_t is None:
                    sample_t = t
            if sample_t is not None:
                self._rtt_update(now - sample_t)
            self.snd_una = ack.cum
            board.ack_upto(ack.cum)
            self.dupacks = 0
            self._arm_rto(restart=True)
        else:
            self.dupacks += 1

        for a, b in ack.sack:
            board.add_sack(a, b)
        board.update_lost(self.snd_una)

        # Detect lost retransmissions (FACK on retransmit order): if the
        # highest SACK has moved dupthresh past where a retransmission was
        # sent and it is still unacked, the retransmission died too.
        hs = board.highest_sacked()
        if hs is not None and self._retx_fack:
            thresh = self.config.dupthresh
            for s, mark in list(self._retx_fack.items()):
                if s < self.snd_una or s not in board.retransmitted:
                    del self._retx_fack[s]
                elif hs >= mark + thresh:
                    board.re_mark_lost(s)
                    del self._retx_fack[s]

        if self.in_recovery:
            if self.snd_una >= self.recover_point:
                self.in_recovery = False
                self.cwnd = max(self.ssthresh, 2.0)
        elif (
            board._lost_not_retx > 0 or self.dupacks >= self.config.dupthresh
        ) and self.snd_una > self.recover_point:
            self._enter_recovery()

        if newly_acked > 0 and not self.in_recovery:
            if self.cwnd < self.ssthresh:
                self.cwnd = min(self.cwnd + newly_acked, self.ssthresh)
            else:
                for _ in range(newly_acked):
                    self.cwnd += self.response.ack_increment(self.cwnd)
            if self.snd_una >= self._rtt_mark:
                self.response.per_rtt_adjust(self)
                self._rtt_mark = self.snd_nxt

        if (
            self.total_pkts is not None
            and self.snd_una >= self.total_pkts
            and not self.done
        ):
            self.done = True
            self.finish_time = now
            if self._rto_event is not None:
                self._rto_event.cancel()
                self._rto_event = None
            return
        self._try_send()

    def _enter_recovery(self) -> None:
        self.stats.fast_recoveries += 1
        self.in_recovery = True
        self.recover_point = self.snd_nxt
        override = self.response.ssthresh_after_loss(self)
        if override is not None:
            self.ssthresh = max(override, 2.0)
        else:
            self.ssthresh = max(self.cwnd * self.response.backoff(self.cwnd), 2.0)
        self.cwnd = self.ssthresh
        # Without SACK information (pure dupacks) presume the first
        # unacked segment is the loss.
        if not self.board.lost:
            self.board._mark_lost(self.snd_una)

    # -- RTT / RTO -------------------------------------------------------
    def _rtt_update(self, sample: float) -> None:
        self.response.on_rtt_sample(sample)
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = self.srtt + max(4.0 * self.rttvar, 0.01)
        self.rto = min(max(self.rto, self.config.min_rto), self.config.max_rto)

    def _arm_rto(self, restart: bool = False) -> None:
        if self._rto_event is not None:
            if not restart:
                return
            self._rto_event.cancel()
        self._rto_event = self.sim.schedule(self.rto, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.done or self.snd_nxt == self.snd_una:
            return
        self.stats.timeouts += 1
        self.response.on_timeout()
        flight = self.snd_nxt - self.snd_una
        self.ssthresh = max(flight / 2.0, 2.0)
        self.cwnd = 1.0
        self.in_recovery = False
        self.recover_point = self.snd_nxt  # no fast recovery for this window
        self.dupacks = 0
        # Conservative (NS-2-like): drop SACK state, presume all lost.
        self.board.clear()
        self.board.mark_lost_range(self.snd_una, self.snd_nxt - 1)
        self._send_times.clear()
        self._retx_fack.clear()
        self.rto = min(self.rto * 2.0, self.config.max_rto)
        self._try_send()
        self._arm_rto(restart=True)


class TcpSink:
    def __init__(
        self,
        host: Host,
        config: Optional[TcpConfig] = None,
        deliver: Optional[Callable[[int], None]] = None,
        meter=None,
    ):
        self.config = config if config is not None else TcpConfig()
        self.port = _Port(host)
        self.port.handler = self._on_data
        self.sim = host.sim
        self.meter = meter
        self._deliver = deliver
        self.next_expected = 0
        # Out-of-order segments as sorted disjoint ranges + per-seq sizes.
        from repro.udt.losslist import _RangeList

        self._ranges = _RangeList()
        self._sizes: dict[int, int] = {}
        self._last_arrival: Optional[int] = None
        self.delivered_bytes = 0
        self.delivered_packets = 0
        self.src_addr = None
        self.fin_seen = False
        #: optional tap fired for every accepted (non-duplicate) segment —
        #: NS-2-style sink arrival sampling, symmetric with UdtCore's.
        self.arrival_cb = None

    @property
    def address(self):
        return self.port.address

    def _sack_blocks(self) -> Tuple[Tuple[int, int], ...]:
        """Most-recent block first (RFC 2018), then the highest others —
        so the sender learns the top of the SACK space fast."""
        blocks = list(self._ranges.ranges())
        if not blocks:
            return ()
        out: List[Tuple[int, int]] = []
        last = self._last_arrival
        if last is not None:
            for blk in blocks:
                if blk[0] <= last <= blk[1]:
                    out.append(blk)
                    break
        for blk in reversed(blocks):
            if len(out) >= self.config.max_sack_blocks:
                break
            if blk not in out:
                out.append(blk)
        return tuple(out)

    def _on_data(self, seg: TcpData) -> None:
        if self.meter is not None:
            self.meter.on_data_received(seg.size)
        if seg.fin:
            self.fin_seen = True
        seq = seg.seq
        if seq == self.next_expected:
            if self.arrival_cb is not None:
                self.arrival_cb(seg.size)
            self._deliver_one(seg.size)
            self.next_expected = seq + 1
            self._drain()
            self._last_arrival = None
        elif seq > self.next_expected and not self._ranges.contains(seq):
            if self.arrival_cb is not None:
                self.arrival_cb(seg.size)
            self._ranges.insert(seq, seq)
            self._sizes[seq] = seg.size
            self._last_arrival = seq
        rwnd = max(self.config.rwnd_pkts - len(self._ranges), 1)
        ack = TcpAck(self.next_expected, self._sack_blocks(), rwnd)
        # Reply to the sender's data port.
        if self.src_addr is not None:
            self.port.send(ack, self.src_addr)

    def _drain(self) -> None:
        first = self._ranges.first()
        while first is not None and first == self.next_expected:
            a, b = next(iter(self._ranges.ranges()))
            self._ranges.remove_upto(b)
            for s in range(a, b + 1):
                self._deliver_one(self._sizes.pop(s))
            self.next_expected = b + 1
            first = self._ranges.first()

    def _deliver_one(self, size: int) -> None:
        self.delivered_bytes += size
        self.delivered_packets += 1
        if self._deliver is not None:
            self._deliver(size)

    def close(self) -> None:
        self.port.close()


class TcpFlow:
    """A unidirectional TCP transfer, mirroring :class:`UdtFlow`."""

    _counter = 0

    def __init__(
        self,
        net: Network,
        src: Host,
        dst: Host,
        config: Optional[TcpConfig] = None,
        response: Optional[Response] = None,
        nbytes: Optional[int] = None,
        start: float = 0.0,
        flow_id: Optional[object] = None,
        meter_snd=None,
        meter_rcv=None,
    ):
        self.net = net
        self.config = config if config is not None else TcpConfig()
        if flow_id is None:
            flow_id = f"tcp{TcpFlow._counter}"
            TcpFlow._counter += 1
        self.flow_id = flow_id
        self.sink = TcpSink(dst, self.config, deliver=self._on_deliver, meter=meter_rcv)
        self.sender = TcpSender(
            src, self.sink.address, self.config, response, total_bytes=nbytes,
            meter=meter_snd,
        )
        self.sink.src_addr = self.sender.port.address
        self.sink.arrival_cb = lambda size: net.monitor.on_deliver(
            (self.flow_id, "arr"), size
        )
        net.sim.schedule_at(max(start, net.sim.now), self.sender.start)
        # TCP has no fluid model: an active TCP flow vetoes the hybrid
        # tier's analytic spans on this network.
        fluid = getattr(net, "fluid", None)
        if fluid is not None:
            fluid.register_blocker(lambda: not self.done)

    def _on_deliver(self, size: int) -> None:
        self.net.monitor.on_deliver(self.flow_id, size)

    # -- experiment helpers -------------------------------------------------
    @property
    def done(self) -> bool:
        return self.sender.done

    @property
    def finish_time(self) -> Optional[float]:
        return self.sender.finish_time

    @property
    def delivered_bytes(self) -> int:
        return self.sink.delivered_bytes

    def throughput_bps(self, t0: float = 0.0, t1: Optional[float] = None) -> float:
        return self.net.monitor.throughput_bps(self.flow_id, t0, t1)

    def series(self, interval: float, t0: float = 0.0, t1: Optional[float] = None):
        return self.net.monitor.series(self.flow_id, interval, t0, t1)

    @property
    def arrival_flow_id(self):
        """Monitor key of the sink-arrival (vs in-order goodput) series."""
        return (self.flow_id, "arr")

    def close(self) -> None:
        self.sender.close()
        self.sink.close()


def start_tcp_flow(
    net: Network,
    src: Host,
    dst: Host,
    start: float = 0.0,
    nbytes: Optional[int] = None,
    config: Optional[TcpConfig] = None,
    response: Optional[Response] = None,
    flow_id: Optional[object] = None,
) -> TcpFlow:
    return TcpFlow(
        net,
        src,
        dst,
        config=config,
        response=response,
        nbytes=nbytes,
        start=start,
        flow_id=flow_id,
    )
