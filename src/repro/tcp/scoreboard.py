"""SACK scoreboard (sender side), RFC 6675 flavoured.

Packet sequence numbers are plain monotone integers here (TCP in this
simulator never wraps: Python ints), so raw ``<``/``>``/``-`` comparisons
are exact by design and the scoreboard is a set of sorted disjoint ranges
plus loss/retransmission marks.  This is why the ``seqno-taint`` lint
rule scopes itself to ``repro/udt/`` and ``repro/sabul/`` (the 31-bit
wrapping spaces) and excludes ``repro/tcp/`` — see docs/ANALYSIS.md.
``pipe`` — consulted for every transmission decision — is kept O(1) by
maintaining the count of lost-but-not-retransmitted packets
incrementally.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from typing import List, Optional


class Scoreboard:
    def __init__(self, dupthresh: int = 3):
        self.dupthresh = dupthresh
        self._starts: List[int] = []
        self._ends: List[int] = []  # inclusive
        self.lost: set[int] = set()
        self.retransmitted: set[int] = set()
        self._lost_not_retx = 0
        self._sacked = 0
        self._retx_heap: List[int] = []  # lazy min-heap of retransmit candidates
        self._loss_frontier = 0  # all holes below are already classified

    # -- sack bookkeeping -------------------------------------------------
    def add_sack(self, a: int, b: int) -> None:
        """Record that [a, b] was received out of order."""
        if b < a:
            raise ValueError("inverted SACK block")
        # A packet marked lost that turns out to have arrived is un-lost.
        revived = [s for s in self.lost if a <= s <= b]
        for s in revived:
            self.lost.discard(s)
            if s not in self.retransmitted:
                self._lost_not_retx -= 1
        starts, ends = self._starts, self._ends
        lo = bisect_left(ends, a - 1)
        hi = bisect_right(starts, b + 1)
        if lo >= hi:
            starts.insert(lo, a)
            ends.insert(lo, b)
            self._sacked += b - a + 1
            return
        na, nb = min(a, starts[lo]), max(b, ends[hi - 1])
        absorbed = sum(ends[i] - starts[i] + 1 for i in range(lo, hi))
        del starts[lo:hi]
        del ends[lo:hi]
        starts.insert(lo, na)
        ends.insert(lo, nb)
        self._sacked += (nb - na + 1) - absorbed

    def is_sacked(self, seq: int) -> bool:
        i = bisect_right(self._starts, seq) - 1
        return i >= 0 and self._ends[i] >= seq

    def sacked_above(self, seq: int) -> int:
        """How many sacked packets lie strictly above ``seq``."""
        total = 0
        for a, b in zip(self._starts, self._ends):
            if b <= seq:
                continue
            total += b - max(a, seq + 1) + 1
        return total

    def highest_sacked(self) -> Optional[int]:
        return self._ends[-1] if self._ends else None

    def sacked_count(self) -> int:
        return self._sacked

    # -- loss inference ------------------------------------------------------
    def _mark_lost(self, seq: int) -> bool:
        if seq in self.lost:
            return False
        self.lost.add(seq)
        if seq not in self.retransmitted:
            self._lost_not_retx += 1
            heapq.heappush(self._retx_heap, seq)
        return True

    def update_lost(self, snd_una: int) -> int:
        """FACK-style loss inference: every unsacked packet more than
        ``dupthresh`` below the highest SACKed packet is lost.  (With no
        in-network reordering — true of this simulator — this matches the
        RFC 6675 IsLost rule.)  A monotone scan frontier makes the total
        work linear in the sequence space, not per-ACK.
        """
        high = self.highest_sacked()
        if high is None:
            return 0
        limit = high - self.dupthresh  # inclusive upper bound for "lost"
        new = 0
        seq = max(self._loss_frontier, snd_una)
        starts, ends = self._starts, self._ends
        while seq <= limit:
            i = bisect_right(starts, seq) - 1
            if i >= 0 and ends[i] >= seq:
                seq = ends[i] + 1  # jump over a sacked run
                continue
            if self._mark_lost(seq):
                new += 1
            seq += 1
        self._loss_frontier = max(self._loss_frontier, seq)
        return new

    def mark_lost_range(self, a: int, b: int) -> int:
        """Timeout path: everything unsacked in [a, b] is presumed lost."""
        new = 0
        for s in range(a, b + 1):
            if not self.is_sacked(s) and self._mark_lost(s):
                new += 1
        return new

    def next_lost_to_retransmit(self, snd_una: int) -> Optional[int]:
        heap = self._retx_heap
        while heap:
            s = heap[0]
            if s < snd_una or s not in self.lost or s in self.retransmitted:
                heapq.heappop(heap)
                continue
            return s
        return None

    def on_retransmit(self, seq: int) -> None:
        if seq in self.lost and seq not in self.retransmitted:
            self._lost_not_retx -= 1
        self.retransmitted.add(seq)

    def re_mark_lost(self, seq: int) -> bool:
        """A retransmission was itself judged lost: make the sequence
        eligible for retransmission again (without this, a dropped
        retransmission wedges the cumulative ACK until an RTO)."""
        if seq in self.lost and seq in self.retransmitted and not self.is_sacked(seq):
            self.retransmitted.discard(seq)
            self._lost_not_retx += 1
            heapq.heappush(self._retx_heap, seq)
            return True
        return False

    # -- advancing ------------------------------------------------------------
    def ack_upto(self, snd_una: int) -> None:
        """Cumulative ACK advanced: forget everything below ``snd_una``."""
        starts, ends = self._starts, self._ends
        i = bisect_right(ends, snd_una - 1)
        if i:
            self._sacked -= sum(ends[j] - starts[j] + 1 for j in range(i))
            del starts[:i]
            del ends[:i]
        if starts and starts[0] < snd_una:
            self._sacked -= snd_una - starts[0]
            starts[0] = snd_una
        if self.lost:
            gone = [s for s in self.lost if s < snd_una]
            for s in gone:
                self.lost.discard(s)
                if s not in self.retransmitted:
                    self._lost_not_retx -= 1
        if self.retransmitted:
            self.retransmitted = {s for s in self.retransmitted if s >= snd_una}
        self._loss_frontier = max(self._loss_frontier, snd_una)

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()
        self.lost.clear()
        self.retransmitted.clear()
        self._lost_not_retx = 0
        self._sacked = 0
        self._retx_heap.clear()
        self._loss_frontier = 0

    def pipe(self, snd_una: int, snd_nxt: int) -> int:
        """Packets judged in flight (RFC 6675 pipe), O(1)."""
        flight = snd_nxt - snd_una
        return max(flight - self._sacked - self._lost_not_retx, 0)
