"""Congestion-response functions for the TCP variants (§5.2).

Each response answers two questions the sender machinery asks:

* ``ack_increment(cwnd)`` — how much to open cwnd per newly ACKed segment
  during congestion avoidance;
* ``backoff(cwnd)`` — the multiplicative decrease factor applied on a
  fast-retransmit loss event (the new ssthresh is ``cwnd * backoff``).

Delay-based variants additionally observe RTT samples; Westwood observes
ACK arrivals to estimate bandwidth.
"""

from __future__ import annotations

import math
from typing import Optional


class Response:
    """Standard Reno/SACK AIMD: +1 segment per RTT, halve on loss."""

    name = "reno"

    def ack_increment(self, cwnd: float) -> float:
        return 1.0 / cwnd

    def backoff(self, cwnd: float) -> float:
        return 0.5

    # optional hooks -----------------------------------------------------
    def on_rtt_sample(self, rtt: float) -> None:
        pass

    def on_ack_arrival(self, acked_pkts: int, now: float) -> None:
        pass

    def on_timeout(self) -> None:
        pass

    def per_rtt_adjust(self, sender) -> None:
        """Called once per RTT with the sender (Vegas uses this)."""

    def ssthresh_after_loss(self, sender) -> Optional[float]:
        """Override the ssthresh computed from backoff (Westwood)."""
        return None


RenoResponse = Response


class HighSpeedResponse(Response):
    """HighSpeed TCP (RFC 3649).

    Below ``low_window`` it is exactly Reno; above, a(w) grows and b(w)
    shrinks along the RFC's log-linear interpolation between
    (38, 0.5) and (83000, 0.1).
    """

    name = "highspeed"

    LOW_WINDOW = 38.0
    HIGH_WINDOW = 83000.0
    HIGH_P = 1e-7
    HIGH_DECREASE = 0.1

    def _b(self, w: float) -> float:
        if w <= self.LOW_WINDOW:
            return 0.5
        frac = (math.log(w) - math.log(self.LOW_WINDOW)) / (
            math.log(self.HIGH_WINDOW) - math.log(self.LOW_WINDOW)
        )
        return 0.5 + frac * (self.HIGH_DECREASE - 0.5)

    def _a(self, w: float) -> float:
        if w <= self.LOW_WINDOW:
            return 1.0
        b = self._b(w)
        # RFC 3649: a(w) = w^2 * p(w) * 2 * b(w) / (2 - b(w)),
        # with p(w) from the response function  w = 0.12 / p^0.835:
        p = 0.078 / (w**1.2)
        return (w * w * p * 2.0 * b) / (2.0 - b)

    def ack_increment(self, cwnd: float) -> float:
        return self._a(cwnd) / cwnd

    def backoff(self, cwnd: float) -> float:
        return 1.0 - self._b(cwnd)


class ScalableResponse(Response):
    """Scalable TCP (Kelly): MIMD — +0.01 per ACK, x0.875 on loss."""

    name = "scalable"

    LOW_WINDOW = 16.0

    def ack_increment(self, cwnd: float) -> float:
        if cwnd <= self.LOW_WINDOW:
            return 1.0 / cwnd
        return 0.01

    def backoff(self, cwnd: float) -> float:
        if cwnd <= self.LOW_WINDOW:
            return 0.5
        return 0.875


class BicResponse(Response):
    """BIC TCP binary-increase search (Xu, Harfoush & Rhee)."""

    name = "bic"

    S_MAX = 32.0
    S_MIN = 0.01
    BETA = 0.875
    LOW_WINDOW = 14.0

    def __init__(self) -> None:
        self.max_win = float(1 << 20)
        self.min_win: Optional[float] = None

    def ack_increment(self, cwnd: float) -> float:
        if cwnd <= self.LOW_WINDOW:
            return 1.0 / cwnd
        if self.min_win is None:
            self.min_win = cwnd
        if cwnd < self.max_win:
            target = (self.max_win + cwnd) / 2.0
            inc = target - cwnd
        else:
            # max probing: grow past the previous maximum slowly
            inc = cwnd - self.max_win + 1.0
        inc = min(max(inc, self.S_MIN), self.S_MAX)
        return inc / cwnd

    def backoff(self, cwnd: float) -> float:
        if cwnd <= self.LOW_WINDOW:
            return 0.5
        # fast convergence: remember a slightly deflated maximum
        self.max_win = cwnd * (1.0 + self.BETA) / 2.0
        self.min_win = None
        return self.BETA

    def on_timeout(self) -> None:
        self.max_win = float(1 << 20)
        self.min_win = None


class VegasResponse(Response):
    """TCP Vegas: keep between alpha and beta packets queued in the path."""

    name = "vegas"

    def __init__(self, alpha: float = 1.0, beta: float = 3.0) -> None:
        self.alpha = alpha
        self.beta = beta
        self.base_rtt = float("inf")
        self.last_rtt: Optional[float] = None

    def on_rtt_sample(self, rtt: float) -> None:
        self.base_rtt = min(self.base_rtt, rtt)
        self.last_rtt = rtt

    def ack_increment(self, cwnd: float) -> float:
        return 0.0  # all adjustment happens per-RTT

    def per_rtt_adjust(self, sender) -> None:
        if self.last_rtt is None or not math.isfinite(self.base_rtt):
            return
        expected = sender.cwnd / self.base_rtt
        actual = sender.cwnd / self.last_rtt
        diff = (expected - actual) * self.base_rtt
        if diff < self.alpha:
            sender.cwnd += 1.0
        elif diff > self.beta:
            sender.cwnd = max(sender.cwnd - 1.0, 2.0)

    def backoff(self, cwnd: float) -> float:
        return 0.75


class WestwoodResponse(Response):
    """TCP Westwood: on loss, set ssthresh from the ACK-rate bandwidth
    estimate times the minimum RTT (faster recovery on lossy paths)."""

    name = "westwood"

    def __init__(self) -> None:
        self.bwe_pps = 0.0  # packets per second
        self._last_ack_time: Optional[float] = None
        self.min_rtt = float("inf")

    def on_rtt_sample(self, rtt: float) -> None:
        self.min_rtt = min(self.min_rtt, rtt)

    def on_ack_arrival(self, acked_pkts: int, now: float) -> None:
        if self._last_ack_time is not None:
            dt = now - self._last_ack_time
            if dt > 0:
                sample = acked_pkts / dt
                # double low-pass filter approximated by one EWMA
                self.bwe_pps = 0.9 * self.bwe_pps + 0.1 * sample
        self._last_ack_time = now

    def ssthresh_after_loss(self, sender) -> Optional[float]:
        if self.bwe_pps <= 0 or not math.isfinite(self.min_rtt):
            return None
        return max(self.bwe_pps * self.min_rtt, 2.0)

    def backoff(self, cwnd: float) -> float:
        return 0.5  # used only if no bandwidth estimate yet
