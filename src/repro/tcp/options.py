"""TCP configuration."""

from __future__ import annotations

from dataclasses import dataclass

#: TCP + IPv4 header bytes per segment.
TCP_IP_HEADER = 40


@dataclass
class TcpConfig:
    """Knobs of one TCP connection.

    The paper stipulates "the TCP buffer size is set to at least the BDP"
    in every comparison, so ``rwnd_pkts`` defaults high; experiments that
    want buffer-limited TCP set it explicitly.
    """

    #: Total on-wire segment size in bytes (headers included), like the
    #: UDT MSS convention.
    mss: int = 1500

    #: Receiver window in packets (>= BDP for all paper scenarios).
    rwnd_pkts: int = 1 << 20

    #: Initial congestion window (RFC 5681 allows up to 4).
    init_cwnd: float = 2.0

    #: Initial slow-start threshold (effectively unbounded, like NS-2).
    init_ssthresh: float = float(1 << 20)

    #: Duplicate-ACK / SACK threshold for fast retransmit.
    dupthresh: int = 3

    #: Minimum retransmission timeout, seconds (RFC 6298 lower bound;
    #: Linux of the paper's era used 200 ms).
    min_rto: float = 0.2

    max_rto: float = 60.0

    #: Delayed ACKs (one ACK per two segments).  NS-2's comparison agents
    #: default to immediate ACKs; keep that for the paper experiments.
    delayed_ack: bool = False

    #: Maximum SACK blocks carried per ACK.
    max_sack_blocks: int = 3

    def __post_init__(self) -> None:
        if self.mss <= TCP_IP_HEADER:
            raise ValueError("mss must exceed TCP/IP headers")
        if self.dupthresh < 1:
            raise ValueError("dupthresh must be >= 1")
        if self.min_rto <= 0:
            raise ValueError("min_rto must be positive")

    @property
    def payload_size(self) -> int:
        return self.mss - TCP_IP_HEADER
