"""TCP family — the baseline protocols the paper compares against.

A packet-sequence TCP in the NS-2 tradition (every segment is MSS-sized
and numbered by packet, exactly like the simulator the paper used for its
own TCP comparisons): slow start, congestion avoidance, fast
retransmit/recovery with a SACK scoreboard, RFC 6298 RTO with exponential
backoff.  The congestion response is pluggable, providing the §5.2
comparison set: Reno/SACK ("standard TCP"), HighSpeed, Scalable, BIC,
Vegas and Westwood.
"""

from repro.tcp.agent import TcpFlow, TcpSink, TcpSender, start_tcp_flow
from repro.tcp.options import TcpConfig
from repro.tcp.responses import (
    BicResponse,
    HighSpeedResponse,
    RenoResponse,
    Response,
    ScalableResponse,
    VegasResponse,
    WestwoodResponse,
)

__all__ = [
    "TcpConfig",
    "TcpFlow",
    "TcpSender",
    "TcpSink",
    "start_tcp_flow",
    "Response",
    "RenoResponse",
    "HighSpeedResponse",
    "ScalableResponse",
    "BicResponse",
    "VegasResponse",
    "WestwoodResponse",
]
