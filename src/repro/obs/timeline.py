"""Per-connection congestion-control timelines.

The protocol core emits a :data:`~repro.obs.bus.CC_SAMPLE` event after
every congestion-control update (ACK or NAK processing).  A
:class:`TimelineRecorder` subscribes to those samples plus the discrete
loss/timeout events and keeps one time series per connection, which is
exactly the data behind the paper's Figure 4/6/7-style plots: sending
rate, congestion window, flow window, RTT and bandwidth estimates over
time, annotated with loss and EXP events.

Timelines can be captured live (subscribe to a bus during a run) or
rebuilt offline from a JSONL trace file via :meth:`TimelineRecorder.from_jsonl`
— the two forms are equivalent, which is what makes traced runs
re-plottable "from the trace alone".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.obs.bus import (
    CC_SAMPLE,
    EXP_TIMEOUT,
    EventBus,
    RCV_LOSS,
    SND_NAK,
    Event,
    Subscription,
    default_bus,
)


class CcSample(NamedTuple):
    """One congestion-control state snapshot."""

    t: float
    rate_bps: float
    cwnd: float
    flow_window: float
    rtt: float
    bw_est: float  # link-capacity estimate, packets/s
    loss_len: int  # sender loss-list length
    exp_count: int


#: Event kinds the recorder consumes.
TIMELINE_KINDS = (CC_SAMPLE, SND_NAK, RCV_LOSS, EXP_TIMEOUT)


class TimelineRecorder:
    """Collects per-connection CC samples and loss/timeout annotations."""

    def __init__(self, max_samples_per_conn: int = 1_000_000):
        self.max_samples_per_conn = max_samples_per_conn
        self.samples: Dict[str, List[CcSample]] = defaultdict(list)
        #: (t, kind, fields) marks per source: NAKs, detected holes, EXPs.
        self.marks: Dict[str, List[Tuple[float, str, dict]]] = defaultdict(list)
        self._bus: Optional[EventBus] = None
        self._sub: Optional[Subscription] = None

    # -- wiring ----------------------------------------------------------
    def attach(self, bus: Optional[EventBus] = None) -> "TimelineRecorder":
        """Subscribe to ``bus`` (the default bus when omitted)."""
        if self._sub is not None:
            raise RuntimeError("recorder already attached")
        self._bus = bus if bus is not None else default_bus()
        self._sub = self._bus.subscribe(self.on_event, kinds=TIMELINE_KINDS)
        return self

    def detach(self) -> None:
        if self._bus is not None and self._sub is not None:
            self._bus.unsubscribe(self._sub)
        self._bus = self._sub = None

    def __enter__(self) -> "TimelineRecorder":
        if self._sub is None:
            self.attach()
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- ingestion -------------------------------------------------------
    def on_event(self, ev: Event) -> None:
        if ev.kind == CC_SAMPLE:
            series = self.samples[ev.src]
            if len(series) < self.max_samples_per_conn:
                f = ev.fields
                series.append(
                    CcSample(
                        t=ev.t,
                        rate_bps=f.get("rate_bps", 0.0),
                        cwnd=f.get("cwnd", 0.0),
                        flow_window=f.get("flow_window", 0.0),
                        rtt=f.get("rtt", 0.0),
                        bw_est=f.get("bw_est", 0.0),
                        loss_len=int(f.get("loss_len", 0)),
                        exp_count=int(f.get("exp_count", 0)),
                    )
                )
        else:
            self.marks[ev.src].append((ev.t, ev.kind, dict(ev.fields)))

    @classmethod
    def from_jsonl(cls, path: str) -> "TimelineRecorder":
        """Rebuild timelines from a trace file written by JsonlWriter."""
        from repro.obs.export import read_events

        rec = cls()
        for d in read_events(path, kinds=TIMELINE_KINDS):
            fields = {
                k: v for k, v in d.items() if k not in ("t", "kind", "src")
            }
            rec.on_event(Event(d["t"], d["kind"], d.get("src", ""), fields))
        return rec

    # -- queries ---------------------------------------------------------
    def connections(self) -> List[str]:
        return sorted(self.samples)

    def series(self, conn: str) -> List[CcSample]:
        return self.samples.get(conn, [])

    def rates(self, conn: str) -> List[Tuple[float, float]]:
        """(t, sending rate bits/s) — the Figure 4/6 trajectory."""
        return [(s.t, s.rate_bps) for s in self.samples.get(conn, [])]

    def windows(self, conn: str) -> List[Tuple[float, float, float]]:
        """(t, cwnd, flow_window) — the Figure 7 window trajectories."""
        return [(s.t, s.cwnd, s.flow_window) for s in self.samples.get(conn, [])]

    def loss_times(self, conn: str) -> List[float]:
        return [t for t, kind, _ in self.marks.get(conn, []) if kind != EXP_TIMEOUT]

    def exp_times(self, conn: str) -> List[float]:
        return [t for t, kind, _ in self.marks.get(conn, []) if kind == EXP_TIMEOUT]

    def mean_rate_bps(self, conn: str, t0: float = 0.0) -> float:
        vals = [s.rate_bps for s in self.samples.get(conn, []) if s.t >= t0]
        return sum(vals) / len(vals) if vals else 0.0
