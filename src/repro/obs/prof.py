"""Simulator hot-path profiler.

Attributes wall-clock time and event counts to *handler categories* —
link transmit, CC/pacing timers, ACK/NAK processing, host-model ticks —
by timing every event the discrete-event engine dispatches.  The paper's
figures take tens of seconds of wall time each to reproduce; this module
answers "where do those seconds go" and snapshots the answer to
``BENCH_profile_<fig>.json`` so perf work has a measured baseline.

Design:

* **Zero cost when off.**  The profiler works by swapping
  :meth:`Simulator.run` for :meth:`Simulator.run_profiled` (an engine
  method that shares the same loop but times each handler).  Nothing is
  patched until :meth:`SimProfiler.install` runs, so an unprofiled run
  executes the original, untouched inner loop.
* **Category attribution is lazy.**  The engine accumulates per-function
  ``[count, seconds]`` pairs keyed by the raw function object (one
  ``getattr`` per event); mapping functions to human categories happens
  once, at report time.
* **Experiments construct their own simulators**, so the usual entry
  point is the class-level patch (:meth:`install` with no argument, or
  the :func:`profile_simulators` context manager): every ``Simulator``
  created while installed feeds the same accumulator.

Usage::

    from repro.obs.prof import SimProfiler

    prof = SimProfiler()
    with prof.activate():
        get_experiment("fig02").runner()
    print(prof.to_text())
    prof.write_json("BENCH_profile_fig02.json", exp_id="fig02")
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.sim.engine import Simulator

#: Snapshot schema version for ``BENCH_profile_*.json``.
PROFILE_SCHEMA = 1

#: (module, qualname) -> stable category id.  Anything unlisted falls
#: back to ``"<module tail>.<qualname>"`` so new handlers are never
#: silently lumped together.
CATEGORY_MAP: Dict[tuple, str] = {
    ("repro.sim.link", "Link._drain"): "link.transmit",
    ("repro.sim.node", "Node.receive"): "net.receive",
    ("repro.sim.node", "Host.receive"): "net.receive",
    ("repro.sim.node", "Router.receive"): "net.receive",
    ("repro.udt.core", "UdtCore._on_send_timer"): "cc.send_timer",
    ("repro.udt.core", "UdtCore._on_syn_timer"): "cc.syn_timer",
    ("repro.udt.core", "UdtCore._on_exp_timer"): "cc.exp_timer",
    ("repro.udt.core", "UdtCore._handshake_retry"): "udt.handshake",
    ("repro.udt.sim_adapter", "UdtFlow._push_app_data"): "app.source",
    ("repro.udt.sim_adapter", "UdtFlow._begin"): "app.source",
    ("repro.apps.fileio", "DiskTransfer._pump"): "hostmodel.disk",
    ("repro.apps.fileio", "DiskTransfer._drain"): "hostmodel.disk",
    ("repro.apps.bulk", "UdpBlast._start_burst"): "app.udp_blast",
    ("repro.apps.bulk", "UdpBlast._tick"): "app.udp_blast",
    ("repro.apps.streaming_join", "StreamingSource._tick"): "app.streaming",
    ("repro.sim.monitor", "QueueSampler._tick"): "obs.sampler",
    ("repro.sim.trace", "QueueSampler._tick"): "obs.sampler",
}

#: What each category covers — rendered in the text report and docs.
CATEGORY_NOTES: Dict[str, str] = {
    "link.transmit": "queue drain: next packet's serialisation start + loss draw",
    "net.receive": "packet arrival: forwarding + UDP dispatch + ACK/NAK/data processing",
    "cc.send_timer": "rate-controlled pacing tick: loss-list service + new data",
    "cc.syn_timer": "10ms SYN tick: ACK generation + NAK retransmission",
    "cc.exp_timer": "EXP (no-feedback) timeout checks",
    "udt.handshake": "handshake (re)transmission",
    "hostmodel.disk": "disk-bound app pump/drain ticks",
    "app.source": "application data feed",
}


def categorize(fn: Callable) -> str:
    """Stable category id for a scheduled handler function."""
    mod = getattr(fn, "__module__", "") or ""
    qual = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", "?")
    cat = CATEGORY_MAP.get((mod, qual))
    if cat is not None:
        return cat
    tail = mod.rsplit(".", 1)[-1] if mod else "?"
    return f"{tail}.{qual}"


class SimProfiler:
    """Accumulates per-category event counts and handler seconds.

    One profiler may span many simulators and many ``run`` segments;
    everything lands in the same accumulator.  ``install()`` with a
    simulator patches that instance only; with no argument it patches
    the ``Simulator`` class so simulators constructed later (inside
    experiment runners) are captured too.
    """

    def __init__(self) -> None:
        self._acc: Dict[Any, List] = {}  # fn -> [count, seconds]
        self.wall_seconds = 0.0  # total wall time inside run()
        self.runs = 0
        self._patched_class = False
        self._patched_sims: List[Simulator] = []
        self._saved_run: Optional[Callable] = None

    # -- installation ----------------------------------------------------
    def install(self, sim: Optional[Simulator] = None) -> "SimProfiler":
        """Start profiling ``sim`` (or every future simulator)."""
        profiler = self

        if sim is not None:
            orig_runp = sim.run_profiled

            def run(until: Optional[float] = None) -> None:
                profiler.runs += 1
                t0 = perf_counter()
                try:
                    orig_runp(until, profiler._acc)
                finally:
                    profiler.wall_seconds += perf_counter() - t0

            sim.run = run  # type: ignore[method-assign]
            self._patched_sims.append(sim)
            return self

        if self._patched_class:
            return self
        if getattr(Simulator.run, "_sim_profiler_patch", False):
            raise RuntimeError("another SimProfiler is already installed")
        self._saved_run = Simulator.run

        def class_run(self_sim: Simulator, until: Optional[float] = None) -> None:
            profiler.runs += 1
            t0 = perf_counter()
            try:
                self_sim.run_profiled(until, profiler._acc)
            finally:
                profiler.wall_seconds += perf_counter() - t0

        class_run._sim_profiler_patch = True  # type: ignore[attr-defined]
        Simulator.run = class_run  # type: ignore[method-assign]
        self._patched_class = True
        return self

    def uninstall(self) -> None:
        """Undo every patch this profiler applied (results are kept)."""
        if self._patched_class and self._saved_run is not None:
            Simulator.run = self._saved_run  # type: ignore[method-assign]
            self._patched_class = False
            self._saved_run = None
        for sim in self._patched_sims:
            try:
                del sim.run
            except AttributeError:
                pass
        self._patched_sims = []

    @contextmanager
    def activate(self, sim: Optional[Simulator] = None) -> Iterator["SimProfiler"]:
        """``install`` on entry, ``uninstall`` on exit."""
        self.install(sim)
        try:
            yield self
        finally:
            self.uninstall()

    # -- results ---------------------------------------------------------
    @property
    def events_total(self) -> int:
        return sum(ent[0] for ent in self._acc.values())

    @property
    def handler_seconds(self) -> float:
        return sum(ent[1] for ent in self._acc.values())

    def categories(self) -> List[Dict[str, Any]]:
        """Merged per-category rows, hottest first.

        Row keys are schema-stable: ``category``, ``events``, ``seconds``,
        ``share`` (of total handler seconds).
        """
        merged: Dict[str, List] = {}
        for fn, (count, seconds) in self._acc.items():
            cat = categorize(fn)
            ent = merged.get(cat)
            if ent is None:
                merged[cat] = [count, seconds]
            else:
                ent[0] += count
                ent[1] += seconds
        total = sum(e[1] for e in merged.values()) or 1.0
        rows = [
            {
                "category": cat,
                "events": count,
                "seconds": seconds,
                "share": seconds / total,
            }
            for cat, (count, seconds) in merged.items()
        ]
        rows.sort(key=lambda r: (-r["seconds"], r["category"]))
        return rows

    def top(self, n: int = 10) -> List[Dict[str, Any]]:
        """The ``n`` hottest handler categories."""
        return self.categories()[:n]

    def to_dict(self, **meta: Any) -> Dict[str, Any]:
        """The full machine-readable snapshot (the BENCH_profile schema)."""
        d: Dict[str, Any] = {
            "schema": PROFILE_SCHEMA,
            "kind": "bench.profile",
            "wall_seconds": self.wall_seconds,
            "handler_seconds": self.handler_seconds,
            "events_total": self.events_total,
            "runs": self.runs,
            "categories": self.categories(),
        }
        d.update(meta)
        return d

    def write_json(self, path: str, **meta: Any) -> Dict[str, Any]:
        """Write the snapshot to ``path``; returns the dict written."""
        d = self.to_dict(**meta)
        with open(path, "w") as f:
            json.dump(d, f, indent=2, default=str)
            f.write("\n")
        return d

    def to_text(self, top_n: int = 10) -> str:
        rows = self.top(top_n)
        lines = [
            "== simulator profile ==",
            f"{self.events_total} events, {self.handler_seconds:.3f}s in handlers "
            f"({self.wall_seconds:.3f}s wall, {self.runs} run segment(s))",
            f"{'category':<24s} {'events':>10s} {'seconds':>9s} {'share':>7s}",
        ]
        for r in rows:
            lines.append(
                f"{r['category']:<24s} {r['events']:>10d} "
                f"{r['seconds']:>9.3f} {r['share']:>6.1%}"
            )
            note = CATEGORY_NOTES.get(r["category"])
            if note:
                lines.append(f"    {note}")
        omitted = len(self.categories()) - len(rows)
        if omitted > 0:
            lines.append(f"... {omitted} cooler categories omitted (top {top_n})")
        return "\n".join(lines)


@contextmanager
def profile_simulators() -> Iterator[SimProfiler]:
    """Profile every :class:`Simulator` created or run inside the block."""
    prof = SimProfiler()
    with prof.activate():
        yield prof
