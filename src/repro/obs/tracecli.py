"""``repro-udt trace`` — query, inspect and convert telemetry traces.

Three sub-commands over any trace format (``.jsonl``, ``.jsonl.gz``,
``.rtrc``):

* ``query`` — filter by kind / src / time range and print matching
  events as JSONL.  On ``.rtrc`` traces the footer index is used to
  *skip* blocks that cannot match; the block read/skip tally is printed
  to stderr so you can see the index working.
* ``info`` — trace summary (event counts per kind, srcs, time range,
  sampling policy).  For ``.rtrc`` this comes from the index alone —
  no event block is decompressed.
* ``convert`` — re-encode between formats (``jsonl ↔ rtrc``, gzip
  transparent), optionally applying a sampling policy on the way.

Typical forensics session::

    repro-udt run fig08 --trace t.rtrc --trace-packets
    repro-udt trace info t.rtrc
    repro-udt trace query t.rtrc --kind link.drop --stats
    repro-udt trace query t.rtrc --kind cc.sample --src udt0-snd \
        --t0 2.0 --t1 2.5
    repro-udt trace query t.rtrc --kind pkt.snd --tail 20
    repro-udt trace convert t.rtrc t.jsonl.gz   # for jq and friends
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter, deque
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.export import is_rtrc_path, open_trace_text, read_events


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="trace_cmd", required=True)

    q = sub.add_parser(
        "query",
        help="filter a trace by kind/src/time and print matching events "
        "as JSONL (uses the .rtrc block index to skip non-matching blocks)",
    )
    q.add_argument("trace", help="trace file (.jsonl, .jsonl.gz or .rtrc)")
    q.add_argument(
        "--kind",
        action="append",
        default=None,
        metavar="KIND",
        help="event kind to match, e.g. --kind link.drop (repeatable)",
    )
    q.add_argument(
        "--src",
        action="append",
        default=None,
        metavar="SRC",
        help="event source to match, e.g. --src udt0-snd (repeatable)",
    )
    q.add_argument(
        "--t0", type=float, default=None, metavar="T",
        help="only events with t >= T (virtual seconds)",
    )
    q.add_argument(
        "--t1", type=float, default=None, metavar="T",
        help="only events with t <= T (virtual seconds)",
    )
    q.add_argument(
        "--head", type=int, default=None, metavar="N",
        help="stop after the first N matching events",
    )
    q.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="print only the last N matching events",
    )
    q.add_argument(
        "--stats",
        action="store_true",
        help="print per-kind counts of the matching events instead of rows",
    )
    q.add_argument(
        "--to-jsonl",
        metavar="PATH",
        default=None,
        help="write matching events to PATH (gzip on .gz suffix) instead "
        "of stdout; the trace.meta header is carried over",
    )

    i = sub.add_parser(
        "info",
        help="trace summary: events per kind, srcs, time range, sampling "
        "policy (answered from the .rtrc index without reading blocks)",
    )
    i.add_argument("trace", help="trace file (.jsonl, .jsonl.gz or .rtrc)")
    i.add_argument("--json", action="store_true", help="machine-readable output")

    c = sub.add_parser(
        "convert",
        help="re-encode a trace between formats (suffix decides: "
        ".jsonl/.jsonl.gz/.rtrc), optionally sampling on the way",
    )
    c.add_argument("src", help="input trace")
    c.add_argument("dst", help="output trace; suffix selects the format")
    c.add_argument(
        "--sample",
        action="append",
        default=[],
        metavar="KIND=POLICY",
        help="per-kind sampling policy applied during conversion, e.g. "
        "--sample pkt.snd=stride:100 --sample link.deq=head:1000 "
        "(repeatable)",
    )
    c.add_argument(
        "--block-events",
        type=int,
        default=None,
        metavar="N",
        help="events per .rtrc block (default 4096); smaller blocks make "
        "time-range queries finer-grained, larger compress better",
    )


def _matching_events(
    path: str,
    kinds: Optional[List[str]],
    srcs: Optional[List[str]],
    t0: Optional[float],
    t1: Optional[float],
) -> Tuple[Iterator[Dict[str, Any]], Optional[Any]]:
    """Iterator over matching events plus the RtrcReader (for counters)."""
    if is_rtrc_path(path):
        from repro.obs.store import RtrcReader

        reader = RtrcReader(path)
        return (
            reader.iter_events(kinds=kinds, srcs=srcs, t0=t0, t1=t1),
            reader,
        )

    def scan() -> Iterator[Dict[str, Any]]:
        srcset = frozenset(srcs) if srcs else None
        for rec in read_events(path, kinds=kinds):
            if srcset is not None and rec.get("src") not in srcset:
                continue
            t = rec.get("t", 0.0)
            if t0 is not None and t < t0:
                continue
            if t1 is not None and t > t1:
                continue
            yield rec

    return scan(), None


def _dump(rec: Dict[str, Any]) -> str:
    return json.dumps(rec, separators=(",", ":"), default=str)


def _read_meta(path: str) -> Optional[Dict[str, Any]]:
    for rec in read_events(path, include_meta=True):
        return rec if rec.get("kind") == "trace.meta" else None
    return None


def _cmd_query(args: argparse.Namespace) -> int:
    events, reader = _matching_events(
        args.trace, args.kind, args.src, args.t0, args.t1
    )
    matched = 0
    counts: Counter = Counter()
    out = None
    sink_writer = None
    try:
        if args.to_jsonl is not None and not args.stats:
            if is_rtrc_path(args.to_jsonl):
                from repro.obs.store import RtrcWriter

                sink_writer = RtrcWriter(args.to_jsonl)
            else:
                out = open_trace_text(args.to_jsonl, "w")
            meta = _read_meta(args.trace)
            if meta is not None:
                if sink_writer is not None:
                    sink_writer.feed(meta)
                else:
                    out.write(_dump(meta) + "\n")

        tail: Optional[deque] = (
            deque(maxlen=args.tail) if args.tail is not None else None
        )
        for rec in events:
            matched += 1
            counts[rec.get("kind", "?")] += 1
            if args.stats:
                pass
            elif tail is not None:
                tail.append(rec)
            elif sink_writer is not None:
                sink_writer.feed(rec)
            elif out is not None:
                out.write(_dump(rec) + "\n")
            else:
                print(_dump(rec))
            if args.head is not None and matched >= args.head:
                break
        if tail is not None:
            for rec in tail:
                if sink_writer is not None:
                    sink_writer.feed(rec)
                elif out is not None:
                    out.write(_dump(rec) + "\n")
                else:
                    print(_dump(rec))
    finally:
        if out is not None:
            out.close()
        if sink_writer is not None:
            sink_writer.close()

    if args.stats:
        for kind in sorted(counts):
            print(f"{kind:<20s} {counts[kind]}")

    status = f"[query] {matched} matching event(s)"
    if reader is not None:
        status += (
            f"; index: read {reader.blocks_read}/{reader.blocks_total} "
            f"block(s), skipped {reader.blocks_skipped}"
        )
        reader.close()
    if args.to_jsonl is not None and not args.stats:
        status += f" -> {args.to_jsonl}"
    print(status, file=sys.stderr)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    if is_rtrc_path(args.trace):
        from repro.obs.store import RtrcReader

        with RtrcReader(args.trace) as reader:
            stats = reader.stats()
            stats["meta"] = reader.meta
            stats["format"] = "rtrc"
    else:
        counts: Counter = Counter()
        srcs: set = set()
        t_lo = t_hi = None
        meta: Optional[Dict[str, Any]] = None
        for rec in read_events(args.trace, include_meta=True):
            if rec.get("kind") == "trace.meta":
                meta = rec
                continue
            counts[rec.get("kind", "?")] += 1
            srcs.add(rec.get("src", ""))
            t = rec.get("t", 0.0)
            t_lo = t if t_lo is None else min(t_lo, t)
            t_hi = t if t_hi is None else max(t_hi, t)
        stats = {
            "path": args.trace,
            "format": "jsonl",
            "events": sum(counts.values()),
            "t0": t_lo,
            "t1": t_hi,
            "kinds": dict(sorted(counts.items())),
            "srcs": sorted(srcs),
            "sampling": (meta or {}).get("sampling", {}),
            "meta": meta,
        }
    if args.json:
        print(json.dumps(stats, indent=2, default=str))
        return 0
    print(f"== trace: {stats['path']} ({stats['format']}) ==")
    if stats["format"] == "rtrc":
        extra = " (truncated container)" if stats.get("truncated") else ""
        print(f"{stats['events']} events in {stats['blocks']} block(s){extra}")
    else:
        print(f"{stats['events']} events")
    if stats.get("t0") is not None:
        print(f"t = [{stats['t0']:.6f}, {stats['t1']:.6f}]s virtual")
    for kind, n in stats["kinds"].items():
        print(f"  {kind:<20s} {n}")
    if stats.get("sampling"):
        print("sampling policy:")
        for kind, pol in sorted(stats["sampling"].items()):
            dropped = (stats.get("dropped") or {}).get(kind)
            note = f"  ({dropped} dropped)" if dropped is not None else ""
            print(f"  {kind:<20s} {pol}{note}")
    srcs_list = stats.get("srcs") or []
    preview = ", ".join(srcs_list[:8]) + (" ..." if len(srcs_list) > 8 else "")
    print(f"{len(srcs_list)} src(s): {preview}")
    return 0


def _cmd_convert(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.obs.store import (
        DEFAULT_BLOCK_EVENTS,
        jsonl_to_rtrc,
        parse_sample_specs,
        rtrc_to_jsonl,
    )

    try:
        sample = parse_sample_specs(args.sample) or None
    except ValueError as exc:
        parser.error(str(exc))
    block_events = args.block_events or DEFAULT_BLOCK_EVENTS
    src_rtrc, dst_rtrc = is_rtrc_path(args.src), is_rtrc_path(args.dst)
    if dst_rtrc:
        # jsonl→rtrc and rtrc→rtrc (re-block / re-sample) both go through
        # the writer's feed() path via read_events dispatch.
        n = jsonl_to_rtrc(
            args.src, args.dst, block_events=block_events, sample=sample
        )
    elif src_rtrc:
        if sample:
            parser.error("--sample is only applied when writing .rtrc")
        n = rtrc_to_jsonl(args.src, args.dst)
    else:
        if sample:
            parser.error("--sample is only applied when writing .rtrc")
        n = 0
        with open_trace_text(args.src, "r") as fin, open_trace_text(
            args.dst, "w"
        ) as fout:
            for line in fin:
                fout.write(line)
                n += 1
        n = max(0, n - 1)  # meta line is not an event
    print(f"[convert] {n} event(s) -> {args.dst}", file=sys.stderr)
    return 0


def run_trace(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    try:
        if args.trace_cmd == "query":
            return _cmd_query(args)
        if args.trace_cmd == "info":
            return _cmd_info(args)
        return _cmd_convert(args, parser)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
