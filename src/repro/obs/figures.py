"""Figure rendering and the fidelity ledger (``python -m repro.obs.figures``).

Two jobs, one module:

* **Rendering** — turn a :class:`~repro.obs.figspec.FigureSpec` plus an
  experiment's result table (and, for time series, a
  :class:`~repro.obs.timeline.TimelineRecorder`) into a self-contained
  inline-SVG figure.  Zero dependencies: the renderer is hand-rolled SVG
  string generation, styled after the repo's qlog-inspired tooling.
  Every series group carries machine-readable ``data-x``/``data-y``
  attributes holding the *raw* values, so tests (and curious readers)
  can round-trip the plotted data out of the picture.

* **Fidelity ledger** — ``benchmarks/results/BENCH_fidelity.json`` is a
  committed snapshot of each figure's headline metrics with tolerance
  bands.  ``python -m repro.obs.figures --gate`` recomputes the metrics
  (from a results dir, the sweep result cache, or by running the
  experiment in-process at the ledger's scale) and fails on drift beyond
  tolerance — behavioural regressions gate the same way runtime
  regressions do (``python -m repro.runner --gate``).

Current results are resolved in order: ``--results DIR`` entry files,
then the digest-keyed sweep cache, then (unless ``--no-run``) an
in-process run at the entry's recorded scale.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from html import escape
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.figspec import (
    FigureSpec,
    MetricSpec,
    ResultTable,
    SPECS,
    compute_metrics,
    get_spec,
    tolerances,
)

FIDELITY_SCHEMA = 1
DEFAULT_LEDGER = Path("benchmarks/results/BENCH_fidelity.json")

# -- chart chrome (dataviz reference palette, light mode) -------------------
#: Categorical series slots, assigned in fixed order, never cycled.  The
#: first three validate all-pairs for colour-vision deficiency; figures
#: here never exceed three series.
SERIES_COLORS = ("#2a78d6", "#eb6834", "#1baf7a")
SURFACE = "#fcfcfb"
GRID = "#e1e0d9"
AXIS = "#c3c2b7"
MUTED = "#898781"
INK = "#0b0b0b"
INK2 = "#52514e"
#: Status colours for annotations (reserved; never used as series hues).
LOSS_MARK = "#ec835a"  # serious: receiver loss / NAK marks
EXP_MARK = "#d03b3b"  # critical: EXP timeout marks
FONT = "system-ui, -apple-system, 'Segoe UI', sans-serif"


# -- scales and ticks -------------------------------------------------------


def _nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """~n round tick values covering [lo, hi] (1/2/5 ladder)."""
    if hi <= lo:
        hi = lo + (abs(lo) or 1.0)
    span = hi - lo
    raw = span / max(1, n)
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 5.0, 10.0):
        step = mult * mag
        if span / step <= n:
            break
    first = math.floor(lo / step) * step
    ticks = []
    v = first
    while v <= hi + step * 1e-9:
        if v >= lo - step * 1e-9:
            ticks.append(0.0 if abs(v) < step * 1e-9 else v)
        v += step
    return ticks or [lo, hi]


def _log_ticks(lo: float, hi: float) -> List[float]:
    """Powers of 10 spanning [lo, hi] (log-scale tick values)."""
    lo = max(lo, 1e-12)
    hi = max(hi, lo * 10)
    ticks = [
        10.0 ** e
        for e in range(math.floor(math.log10(lo)), math.ceil(math.log10(hi)) + 1)
    ]
    return ticks


def _fmt_num(v: float) -> str:
    """Compact tick/tooltip number formatting."""
    if v == 0:
        return "0"
    a = abs(v)
    if a >= 1e6 or a < 1e-3:
        return f"{v:.0e}".replace("e+0", "e").replace("e-0", "e-")
    if a >= 100:
        return f"{v:.0f}"
    if a >= 1:
        s = f"{v:.2f}"
    else:
        s = f"{v:.4f}"
    return s.rstrip("0").rstrip(".")


class _Scale:
    """Maps data values to pixel positions, linear or log10."""

    def __init__(self, lo: float, hi: float, p0: float, p1: float, log: bool = False):
        self.log = log
        if log:
            lo = max(lo, 1e-12)
            hi = max(hi, lo * 1.0000001)
            self.lo, self.hi = math.log10(lo), math.log10(hi)
        else:
            if hi <= lo:
                hi = lo + (abs(lo) or 1.0)
            self.lo, self.hi = lo, hi
        self.p0, self.p1 = p0, p1

    def __call__(self, v: float) -> float:
        x = math.log10(max(v, 1e-12)) if self.log else v
        frac = (x - self.lo) / (self.hi - self.lo)
        return self.p0 + frac * (self.p1 - self.p0)


# -- SVG assembly -----------------------------------------------------------


def _attr(v: Any) -> str:
    return escape(str(v), quote=True)


def _data_attr(values: Sequence[Any]) -> str:
    """JSON-encode a value list for a ``data-*`` attribute."""
    return _attr(json.dumps(list(values)))


class _Svg:
    """Tiny append-only SVG builder."""

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self.parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" '
            f'width="{width}" height="{height}" role="img" '
            f'font-family="{_attr(FONT)}">'
        ]

    def add(self, fragment: str) -> None:
        self.parts.append(fragment)

    def text(
        self,
        x: float,
        y: float,
        s: str,
        size: int = 12,
        fill: str = MUTED,
        anchor: str = "start",
        weight: str = "normal",
    ) -> None:
        self.add(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" fill="{fill}" '
            f'text-anchor="{anchor}" font-weight="{weight}">{escape(s)}</text>'
        )

    def line(self, x1, y1, x2, y2, stroke, width=1.0) -> None:
        self.add(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"/>'
        )

    def finish(self) -> str:
        return "".join(self.parts) + "</svg>"


class _Frame:
    """Shared plot frame: margins, scales, grid, axes, title, legend."""

    def __init__(
        self,
        svg: _Svg,
        title: str,
        x_ticks: List[float],
        y_ticks: List[float],
        x_scale: _Scale,
        y_scale: _Scale,
        x_label: str = "",
        y_label: str = "",
    ):
        self.svg = svg
        self.xs = x_scale
        self.ys = y_scale
        svg.add(
            f'<rect x="0" y="0" width="{svg.width}" height="{svg.height}" '
            f'fill="{SURFACE}"/>'
        )
        if title:
            svg.text(16, 22, title, size=14, fill=INK, weight="600")
        # horizontal hairlines + y tick labels
        for t in y_ticks:
            y = y_scale(t)
            svg.line(x_scale.p0, y, x_scale.p1, y, GRID, 1)
            svg.text(x_scale.p0 - 8, y + 4, _fmt_num(t), size=11, anchor="end")
        # x ticks
        base_y = y_scale.p0  # pixel y of the value axis floor
        for t in x_ticks:
            x = x_scale(t)
            svg.line(x, base_y, x, base_y + 4, AXIS, 1)
            svg.text(x, base_y + 17, _fmt_num(t), size=11, anchor="middle")
        # baseline
        svg.line(x_scale.p0, base_y, x_scale.p1, base_y, AXIS, 1)
        if x_label:
            svg.text(
                (x_scale.p0 + x_scale.p1) / 2, svg.height - 8, x_label,
                size=11, fill=INK2, anchor="middle",
            )
        if y_label:
            cx, cy = 14, (y_scale.p0 + y_scale.p1) / 2
            self.svg.add(
                f'<text x="{cx}" y="{cy:.1f}" font-size="11" fill="{INK2}" '
                f'text-anchor="middle" transform="rotate(-90 {cx} {cy:.1f})">'
                f"{escape(y_label)}</text>"
            )

    def legend(self, entries: List[Tuple[str, str]], extra: str = "") -> None:
        """One row of chip+label pairs under the title (≥2 series only)."""
        x = 16.0
        y = 38.0
        for color, label in entries:
            self.svg.add(
                f'<rect x="{x:.1f}" y="{y - 9:.1f}" width="10" height="10" '
                f'rx="2" fill="{color}"/>'
            )
            self.svg.text(x + 15, y, label, size=12, fill=INK2)
            x += 15 + 7 * len(label) + 22
        if extra:
            self.svg.text(x, y, extra, size=11, fill=MUTED)


_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 20, 50, 46


def _frame_box(width: int, height: int) -> Tuple[float, float, float, float]:
    """(x0, x1, y_floor, y_ceiling) pixel bounds of the plot area."""
    return (
        float(_MARGIN_L),
        float(width - _MARGIN_R),
        float(height - _MARGIN_B),
        float(_MARGIN_T),
    )


def _pad_domain(vals: Sequence[float], zero_floor: bool) -> Tuple[float, float]:
    lo, hi = min(vals), max(vals)
    if zero_floor and lo > 0:
        lo = 0.0
    span = (hi - lo) or (abs(hi) or 1.0)
    pad = span * 0.06
    return (lo if (zero_floor and lo == 0.0) else lo - pad), hi + pad


def render_figure(
    spec: FigureSpec,
    table: ResultTable,
    width: int = 720,
    height: int = 400,
) -> str:
    """Render one experiment result as a self-contained SVG figure."""
    if spec.kind == "bar":
        return _render_bar(spec, table, width, height)
    return _render_line(spec, table, width, height)


def _render_line(
    spec: FigureSpec, table: ResultTable, width: int, height: int
) -> str:
    xs = table.numeric_column(spec.x)
    series = [(name, table.numeric_column(name)) for name in spec.series]
    svg = _Svg(width, height)
    x0, x1, yf, yc = _frame_box(width, height)
    if spec.x_log:
        x_ticks = _log_ticks(min(xs), max(xs))
        x_scale = _Scale(min(min(xs), x_ticks[0]), max(max(xs), x_ticks[-1]), x0, x1, log=True)
    else:
        x_ticks = _nice_ticks(min(xs), max(xs))
        x_scale = _Scale(min(min(xs), x_ticks[0]), max(max(xs), x_ticks[-1]), x0, x1)
    all_y = [v for _, ys in series for v in ys]
    lo, hi = _pad_domain(all_y, zero_floor=min(all_y) > 0 and min(all_y) < 0.4 * max(all_y))
    y_ticks = _nice_ticks(lo, hi)
    y_scale = _Scale(min(lo, y_ticks[0]), max(hi, y_ticks[-1]), yf, yc)
    frame = _Frame(
        svg, table.title, x_ticks, y_ticks, x_scale, y_scale,
        x_label=spec.x, y_label=spec.y_label,
    )
    if len(series) >= 2:
        frame.legend(
            [(SERIES_COLORS[i], name) for i, (name, _) in enumerate(series)]
        )
    for i, (name, ys) in enumerate(series):
        color = SERIES_COLORS[i]
        pts = " ".join(
            f"{x_scale(x):.1f},{y_scale(y):.1f}" for x, y in zip(xs, ys)
        )
        svg.add(
            f'<g class="series" data-label="{_attr(name)}" '
            f'data-x="{_data_attr(xs)}" data-y="{_data_attr(ys)}">'
        )
        svg.add(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        )
        for x, y in zip(xs, ys):
            svg.add(
                f'<circle cx="{x_scale(x):.1f}" cy="{y_scale(y):.1f}" r="3.5" '
                f'fill="{color}" stroke="{SURFACE}" stroke-width="1.5">'
                f"<title>{escape(name)}: {_fmt_num(y)} at {spec.x} {_fmt_num(x)}"
                f"</title></circle>"
            )
        # direct label at the line's end, in ink (colour never carries text)
        svg.text(
            min(x_scale(xs[-1]) + 8, width - 4),
            y_scale(ys[-1]) + 4,
            name,
            size=11,
            fill=INK2,
        )
        svg.add("</g>")
    return svg.finish()


def _bar_path(x: float, y_top: float, w: float, y_base: float, r: float = 3.0) -> str:
    """A bar with rounded top corners, square on the baseline."""
    r = min(r, w / 2, abs(y_base - y_top))
    return (
        f"M{x:.1f},{y_base:.1f} L{x:.1f},{y_top + r:.1f} "
        f"Q{x:.1f},{y_top:.1f} {x + r:.1f},{y_top:.1f} "
        f"L{x + w - r:.1f},{y_top:.1f} "
        f"Q{x + w:.1f},{y_top:.1f} {x + w:.1f},{y_top + r:.1f} "
        f"L{x + w:.1f},{y_base:.1f} Z"
    )


def _render_bar(
    spec: FigureSpec, table: ResultTable, width: int, height: int
) -> str:
    labels = [str(v) for v in table.column(spec.x)]
    series = [(name, table.numeric_column(name)) for name in spec.series]
    svg = _Svg(width, height)
    x0, x1, yf, yc = _frame_box(width, height)
    all_y = [v for _, ys in series for v in ys]
    hi = max(all_y + [0.0]) * 1.08 or 1.0
    y_ticks = _nice_ticks(0.0, hi)
    y_scale = _Scale(0.0, max(hi, y_ticks[-1]), yf, yc)
    frame = _Frame(svg, table.title, [], y_ticks, _Scale(0, 1, x0, x1), y_scale,
                   x_label=spec.x, y_label=spec.y_label)
    if len(series) >= 2:
        frame.legend(
            [(SERIES_COLORS[i], name) for i, (name, _) in enumerate(series)]
        )
    n_groups = max(1, len(labels))
    group_w = (x1 - x0) / n_groups
    bar_gap = 2.0  # surface gap between adjacent bars
    bar_w = max(
        2.0, min(48.0, (group_w * 0.72 - bar_gap * (len(series) - 1)) / len(series))
    )
    show_values = n_groups * len(series) <= 10
    for i, (name, ys) in enumerate(series):
        color = SERIES_COLORS[i]
        svg.add(
            f'<g class="series" data-label="{_attr(name)}" '
            f'data-x="{_data_attr(labels)}" data-y="{_data_attr(ys)}">'
        )
        for g, y in enumerate(ys):
            cx = x0 + (g + 0.5) * group_w
            total_w = len(series) * bar_w + (len(series) - 1) * bar_gap
            bx = cx - total_w / 2 + i * (bar_w + bar_gap)
            y_top = y_scale(y)
            svg.add(
                f'<path d="{_bar_path(bx, y_top, bar_w, yf)}" fill="{color}">'
                f"<title>{escape(name)} — {escape(labels[g])}: {_fmt_num(y)}"
                f"</title></path>"
            )
            if show_values:
                svg.text(
                    bx + bar_w / 2, y_top - 5, _fmt_num(y),
                    size=11, fill=INK2, anchor="middle",
                )
        svg.add("</g>")
    for g, label in enumerate(labels):
        # truncate long categorical labels rather than colliding
        shown = label if len(label) <= 14 else label[:13] + "…"
        svg.text(
            x0 + (g + 0.5) * group_w, yf + 17, shown, size=11, anchor="middle"
        )
    return svg.finish()


def render_timeline(
    recorder: Any,
    conns: Optional[Sequence[str]] = None,
    title: str = "sending rate over time",
    width: int = 720,
    height: int = 400,
    max_conns: int = 3,
    max_points: int = 400,
) -> Optional[str]:
    """Render per-connection CC rate trajectories with loss/EXP marks.

    ``recorder`` is a :class:`~repro.obs.timeline.TimelineRecorder` (live
    or rebuilt via ``from_jsonl``).  Returns None when it holds no
    samples.  At most ``max_conns`` series are drawn (the busiest
    first); each series is uniformly downsampled to ``max_points``.
    Loss marks (NAK/hole events) and EXP-timeout marks are drawn as
    status-coloured ticks along the baseline.
    """
    all_conns = conns if conns is not None else recorder.connections()
    ranked = sorted(all_conns, key=lambda c: -len(recorder.series(c)))
    picked = [c for c in ranked if recorder.series(c)][:max_conns]
    if not picked:
        return None
    picked.sort()
    svg = _Svg(width, height)
    x0, x1, yf, yc = _frame_box(width, height)
    t_hi = max(s.t for c in picked for s in recorder.series(c))
    t_lo = min(s.t for c in picked for s in recorder.series(c))
    x_ticks = _nice_ticks(t_lo, t_hi)
    x_scale = _Scale(min(t_lo, x_ticks[0]), max(t_hi, x_ticks[-1]), x0, x1)
    rate_hi = max(s.rate_bps for c in picked for s in recorder.series(c)) / 1e6
    y_ticks = _nice_ticks(0.0, rate_hi * 1.08 or 1.0)
    y_scale = _Scale(0.0, max(y_ticks[-1], rate_hi * 1.08 or 1.0), yf, yc)
    frame = _Frame(
        svg, title, x_ticks, y_ticks, x_scale, y_scale,
        x_label="virtual time (s)", y_label="sending rate (Mb/s)",
    )
    entries = [(SERIES_COLORS[i], c) for i, c in enumerate(picked)]
    extra = ""
    omitted = len([c for c in all_conns if recorder.series(c)]) - len(picked)
    if omitted > 0:
        extra = f"(+{omitted} more connection(s) not drawn)"
    loss_any = any(recorder.loss_times(c) for c in picked)
    exp_any = any(recorder.exp_times(c) for c in picked)
    if len(entries) >= 2 or extra or loss_any or exp_any:
        marks = []
        if loss_any:
            marks.append((LOSS_MARK, "loss/NAK"))
        if exp_any:
            marks.append((EXP_MARK, "EXP timeout"))
        frame.legend(entries + marks, extra=extra)
    for i, conn in enumerate(picked):
        color = SERIES_COLORS[i]
        samples = recorder.series(conn)
        stride = max(1, len(samples) // max_points)
        kept = samples[::stride]
        if samples[-1].t != kept[-1].t:
            kept.append(samples[-1])
        ts = [s.t for s in kept]
        ys = [s.rate_bps / 1e6 for s in kept]
        pts = " ".join(
            f"{x_scale(t):.1f},{y_scale(y):.1f}" for t, y in zip(ts, ys)
        )
        svg.add(
            f'<g class="series" data-label="{_attr(conn)}" data-stride="{stride}" '
            f'data-x="{_data_attr(ts)}" data-y="{_data_attr(ys)}">'
        )
        svg.add(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round">'
            f"<title>{escape(conn)}: {len(samples)} CC samples</title></polyline>"
        )
        svg.text(
            min(x_scale(ts[-1]) + 8, width - 4), y_scale(ys[-1]) + 4,
            conn, size=11, fill=INK2,
        )
        svg.add("</g>")
        # annotation ticks along the baseline (loss below, EXP above)
        losses = recorder.loss_times(conn)
        exps = recorder.exp_times(conn)
        if losses:
            svg.add(
                f'<g class="marks" data-kind="loss" data-conn="{_attr(conn)}" '
                f'data-x="{_data_attr(losses)}">'
            )
            for t in losses:
                x = x_scale(t)
                svg.line(x, yf + 1, x, yf + 7, LOSS_MARK, 1.5)
            svg.add("</g>")
        if exps:
            svg.add(
                f'<g class="marks" data-kind="exp" data-conn="{_attr(conn)}" '
                f'data-x="{_data_attr(exps)}">'
            )
            for t in exps:
                x = x_scale(t)
                svg.line(x, yf - 8, x, yf, EXP_MARK, 1.5)
            svg.add("</g>")
    return svg.finish()


# -- fidelity ledger --------------------------------------------------------


def read_ledger(path: Path) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
        if not isinstance(data, dict):
            data = {}
    except (FileNotFoundError, json.JSONDecodeError):
        data = {}
    data.setdefault("schema", FIDELITY_SCHEMA)
    data.setdefault("kind", "bench.fidelity")
    data.setdefault("figures", {})
    return data


def write_ledger(data: Dict[str, Any], path: Path) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    return path


def ledger_entry(spec: FigureSpec, table: ResultTable, scale: float) -> Dict[str, Any]:
    """One committed snapshot: metrics + the spec's tolerance bands."""
    return {
        "scale": scale,
        "metrics": {k: round(v, 6) for k, v in compute_metrics(spec, table).items()},
        "tolerances": tolerances(spec),
    }


def hybrid_ledger_section(
    spec: FigureSpec, table: ResultTable, scale: float
) -> Dict[str, Any]:
    """A figure entry's ``hybrid`` section: the hybrid-tier snapshot.

    Holds the hybrid run's metrics and the (wider) hybrid tolerance
    bands from the fidelity contract; only hybrid-defined metrics get a
    band.  The caller adds ``packet_metrics`` when a same-scale packet
    reference is available (docs/SIMULATION.md).
    """
    from repro.obs.figspec import hybrid_tolerances

    return {
        "scale": scale,
        "metrics": {k: round(v, 6) for k, v in compute_metrics(spec, table).items()},
        "tolerances": hybrid_tolerances(spec),
    }


def hybrid_reference_ledger(
    ledger: Dict[str, Any], fig_ids: Sequence[str]
) -> Tuple[Dict[str, Any], List[str]]:
    """Build the reference :func:`check_fidelity` gates hybrid runs with.

    Per figure the reference metrics are the stored same-scale
    ``packet_metrics`` when present (the hybrid-vs-packet comparison the
    fidelity contract documents) and the hybrid snapshot itself
    otherwise (a plain drift check).  Only metrics with a hybrid band
    are compared; contract-undefined metrics are dropped here.
    """
    figures: Dict[str, Any] = {}
    problems: List[str] = []
    for fig_id in fig_ids:
        entry = ledger.get("figures", {}).get(fig_id, {})
        section = entry.get("hybrid")
        if section is None:
            problems.append(
                f"{fig_id}: no hybrid ledger section "
                "(run --update --fidelity hybrid to add one)"
            )
            continue
        tols = section.get("tolerances", {})
        ref = section.get("packet_metrics") or section.get("metrics", {})
        figures[fig_id] = {
            "scale": section.get("scale"),
            "metrics": {k: ref[k] for k in tols if k in ref},
            "tolerances": tols,
        }
    return {"figures": figures}, problems


def _allowed_delta(tol: Dict[str, Any], reference: float) -> float:
    if tol.get("relative"):
        return float(tol.get("tolerance", 0.0)) * abs(reference)
    return float(tol.get("tolerance", 0.0))


def check_fidelity(
    current: Dict[str, Dict[str, float]],
    ledger: Dict[str, Any],
    only: Optional[Sequence[str]] = None,
) -> Tuple[List[str], List[str]]:
    """Compare current figure metrics against the ledger.

    ``current`` maps fig_id -> {metric: value}.  Returns ``(failures,
    lines)`` in the same shape as the runtime gate: human-readable
    failure strings plus a full comparison log.
    """
    figures = ledger.get("figures", {})
    fig_ids = sorted(set(only) if only else set(figures))
    failures: List[str] = []
    lines: List[str] = []
    for fig_id in fig_ids:
        entry = figures.get(fig_id)
        if entry is None:
            failures.append(f"{fig_id}: no ledger entry (run --update to add one)")
            continue
        cur = current.get(fig_id)
        if cur is None:
            failures.append(f"{fig_id}: no current metrics to compare")
            continue
        ref_metrics = entry.get("metrics", {})
        tols = entry.get("tolerances", {})
        lines.append(
            f"[fidelity] {fig_id} (scale={entry.get('scale', '?')}): "
            f"{len(ref_metrics)} metric(s)"
        )
        for name, ref in sorted(ref_metrics.items()):
            if name not in cur:
                failures.append(f"{fig_id}: metric {name} missing from current run")
                continue
            val = cur[name]
            allowed = _allowed_delta(tols.get(name, {}), ref)
            delta = val - ref
            ok = abs(delta) <= allowed
            mark = "ok" if ok else "DRIFTED"
            lines.append(
                f"[fidelity]   {name:<24} {ref:>12.6g} -> {val:>12.6g} "
                f"(Δ {delta:+.6g}, band ±{allowed:.6g}) {mark}"
            )
            if not ok:
                failures.append(
                    f"{fig_id}: {name} drifted {delta:+.6g} beyond ±{allowed:.6g} "
                    f"({ref:.6g} -> {val:.6g})"
                )
    if not fig_ids:
        failures.append("fidelity ledger is empty — nothing to gate")
    return failures, lines


# -- result sourcing --------------------------------------------------------


def _table_from_entry(entry: Dict[str, Any]) -> ResultTable:
    """Accept a worker/cache entry ({... 'result': {...}}) or a bare result."""
    if "result" in entry and isinstance(entry["result"], dict):
        return ResultTable(entry["result"])
    return ResultTable(entry)


def resolve_result(
    exp_id: str,
    scale: float,
    cache: Optional[Any] = None,
    results_dir: Optional[Path] = None,
    allow_run: bool = True,
    emit: Optional[Any] = None,
    fidelity: str = "packet",
) -> Tuple[Optional[ResultTable], str]:
    """Find (or produce) the experiment's result table at ``scale``.

    Tries, in order: a ``<exp_id>.json`` entry under ``results_dir``, the
    digest-keyed sweep cache, then an in-process run (stored back into
    the cache so the dashboard and later gates reuse it).  Returns
    ``(table, source)`` with source in {"results-dir", "cache", "run"},
    or ``(None, reason)``.

    ``fidelity`` selects the simulation tier (docs/SIMULATION.md); it is
    part of the cache digest, and an in-process run sets
    ``REPRO_FIDELITY`` for its duration.
    """
    say = emit if emit is not None else (lambda s: None)
    if results_dir is not None:
        p = Path(results_dir) / f"{exp_id}.json"
        if p.exists():
            with open(p, "r", encoding="utf-8") as f:
                return _table_from_entry(json.load(f)), "results-dir"
    digest = None
    if cache is not None:
        from repro.runner.digest import experiment_digest

        digest, _ = experiment_digest(exp_id, scale, fidelity=fidelity)
        entry = cache.load(digest)
        if entry is not None:
            return _table_from_entry(entry), "cache"
    if not allow_run:
        return None, "not cached and --no-run given"
    from dataclasses import asdict

    from repro.experiments import get_experiment
    from repro.sim.fluid import FIDELITY_ENV

    say(f"[figures] running {exp_id} at scale={scale:g} ({fidelity}) ...")
    old = os.environ.get("REPRO_SCALE")
    old_fid = os.environ.get(FIDELITY_ENV)
    os.environ["REPRO_SCALE"] = format(scale, "g")
    os.environ[FIDELITY_ENV] = fidelity
    try:
        t0 = time.perf_counter()
        result = get_experiment(exp_id).runner()
        seconds = time.perf_counter() - t0
    finally:
        if old is None:
            os.environ.pop("REPRO_SCALE", None)
        else:
            os.environ["REPRO_SCALE"] = old
        if old_fid is None:
            os.environ.pop(FIDELITY_ENV, None)
        else:
            os.environ[FIDELITY_ENV] = old_fid
    say(f"[figures] {exp_id} finished in {seconds:.1f}s")
    if cache is not None and digest is not None:
        cache.store(
            digest,
            {
                "exp_id": exp_id,
                "scale": scale,
                "fidelity": fidelity,
                "seconds": seconds,
                "result": asdict(result),
            },
        )
    return ResultTable(result), "run"


# -- CLI --------------------------------------------------------------------


def _parse_only(raw: Optional[str]) -> Optional[List[str]]:
    if not raw:
        return None
    return [s for s in raw.replace(" ", "").split(",") if s]


def _cli_cache(args: argparse.Namespace) -> Any:
    from repro.runner.cache import ResultCache

    return ResultCache(Path(args.cache_dir) if args.cache_dir else None)


def _gather(
    fig_ids: Iterable[str],
    scales: Dict[str, float],
    args: argparse.Namespace,
    fidelity: str = "packet",
) -> Tuple[Dict[str, ResultTable], List[str]]:
    """Resolve result tables for ``fig_ids``; returns (tables, problems)."""
    cache = _cli_cache(args)
    results_dir = Path(args.results) if args.results else None
    tables: Dict[str, ResultTable] = {}
    problems: List[str] = []
    for fig_id in fig_ids:
        if get_spec(fig_id) is None:
            problems.append(f"{fig_id}: no figure spec registered")
            continue
        table, source = resolve_result(
            fig_id,
            scales[fig_id],
            cache=cache,
            results_dir=results_dir,
            allow_run=not args.no_run,
            emit=print,
            fidelity=fidelity,
        )
        if table is None:
            problems.append(f"{fig_id}: {source}")
        else:
            print(f"[figures] {fig_id}: result from {source} ({fidelity})")
            tables[fig_id] = table
    return tables, problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.figures",
        description="Render paper figures as SVG and drift-gate their "
        "headline metrics against the committed fidelity ledger "
        "(benchmarks/results/BENCH_fidelity.json).",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--gate",
        action="store_true",
        help="recompute headline metrics and fail on drift beyond the "
        "ledger's tolerance bands",
    )
    mode.add_argument(
        "--update",
        action="store_true",
        help="re-snapshot the ledger's metrics from current results "
        "(intentional behaviour changes; reviewed like a perf baseline)",
    )
    mode.add_argument(
        "--render",
        metavar="DIR",
        default=None,
        help="write <fig>.svg files to DIR instead of gating",
    )
    parser.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help=f"fidelity ledger path (default {DEFAULT_LEDGER})",
    )
    parser.add_argument(
        "--only",
        metavar="FIG,...",
        default=None,
        help="restrict to these figure ids (default: every ledger entry; "
        "--update/--render with no ledger require --only)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        metavar="S",
        help="REPRO_SCALE for resolving results (default: each ledger "
        "entry's recorded scale; falls back to the environment)",
    )
    parser.add_argument(
        "--results",
        metavar="DIR",
        default=None,
        help="directory of <exp>.json result entries to prefer over the "
        "cache (e.g. a sweep worker output dir)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="sweep result cache to resolve results from (default "
        "$REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--fidelity",
        choices=["packet", "hybrid"],
        default="packet",
        help="simulation tier to gate/update (docs/SIMULATION.md): "
        "hybrid compares against each entry's 'hybrid' section using "
        "the wider hybrid tolerance bands; metrics the fidelity "
        "contract leaves undefined in hybrid are skipped",
    )
    parser.add_argument(
        "--no-run",
        action="store_true",
        help="never run experiments in-process; a figure whose result "
        "cannot be found fails instead",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="with --gate, also write the comparison as JSON to PATH",
    )
    args = parser.parse_args(argv)

    ledger_path = Path(args.ledger) if args.ledger else DEFAULT_LEDGER
    ledger = read_ledger(ledger_path)
    only = _parse_only(args.only)

    def env_scale() -> float:
        from repro.experiments.common import scale as _s

        return _s()

    hybrid = args.fidelity == "hybrid"
    if args.gate or args.update:
        fig_ids = only if only else sorted(ledger["figures"])
        if not fig_ids:
            print(
                f"[figures] {ledger_path} has no entries; use "
                "--update --only FIG,... to create them",
                file=sys.stderr,
            )
            return 1
        scales = {}
        for fig_id in fig_ids:
            entry = ledger["figures"].get(fig_id, {})
            if args.scale is not None:
                scales[fig_id] = args.scale
            elif hybrid and "scale" in entry.get("hybrid", {}):
                scales[fig_id] = float(entry["hybrid"]["scale"])
            else:
                scales[fig_id] = float(entry.get("scale", env_scale()))
        tables, problems = _gather(fig_ids, scales, args, fidelity=args.fidelity)
        if args.update and hybrid:
            # Hybrid sections are additive: the packet entry (metrics,
            # tolerances, scale) stays authoritative for the packet gate.
            cache = _cli_cache(args)
            results_dir = None  # --results entries are hybrid results here
            for fig_id, table in tables.items():
                spec = get_spec(fig_id)
                section = hybrid_ledger_section(spec, table, scales[fig_id])
                # packet reference at the same scale, cache-only: a run
                # at paper scale can take hours, so "where feasible"
                # means "already swept" (docs/SIMULATION.md)
                p_table, p_source = resolve_result(
                    fig_id,
                    scales[fig_id],
                    cache=cache,
                    results_dir=results_dir,
                    allow_run=False,
                    emit=print,
                    fidelity="packet",
                )
                if p_table is not None:
                    section["packet_metrics"] = {
                        k: round(v, 6)
                        for k, v in compute_metrics(spec, p_table).items()
                    }
                    print(
                        f"[figures] {fig_id}: packet reference from {p_source}"
                    )
                else:
                    print(
                        f"[figures] {fig_id}: no same-scale packet reference "
                        "cached; hybrid gate will drift-check against the "
                        "hybrid snapshot itself"
                    )
                entry = ledger["figures"].setdefault(fig_id, {})
                entry["hybrid"] = section
                print(f"[figures] {fig_id}: hybrid ledger section updated")
            for p in problems:
                print(f"[figures] WARNING: {p}", file=sys.stderr)
            write_ledger(ledger, ledger_path)
            print(f"[figures] ledger -> {ledger_path}")
            return 0 if not problems else 1
        if args.update:
            for fig_id, table in tables.items():
                spec = get_spec(fig_id)
                hybrid_section = ledger["figures"].get(fig_id, {}).get("hybrid")
                ledger["figures"][fig_id] = ledger_entry(spec, table, scales[fig_id])
                if hybrid_section is not None:
                    ledger["figures"][fig_id]["hybrid"] = hybrid_section
                print(f"[figures] {fig_id}: ledger entry updated")
            for p in problems:
                print(f"[figures] WARNING: {p}", file=sys.stderr)
            write_ledger(ledger, ledger_path)
            print(f"[figures] ledger -> {ledger_path}")
            return 0 if not problems else 1
        current = {
            fig_id: compute_metrics(get_spec(fig_id), table)
            for fig_id, table in tables.items()
        }
        if hybrid:
            reference, ref_problems = hybrid_reference_ledger(ledger, fig_ids)
            failures, lines = check_fidelity(
                current, reference, only=sorted(reference["figures"])
            )
            failures.extend(ref_problems)
        else:
            failures, lines = check_fidelity(current, ledger, only=fig_ids)
        failures.extend(problems)
        for line in lines:
            print(line)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as f:
                json.dump(
                    {
                        "schema": FIDELITY_SCHEMA,
                        "kind": "fidelity.gate",
                        "ledger": str(ledger_path),
                        "current": current,
                        "failures": failures,
                        "passed": not failures,
                    },
                    f,
                    indent=2,
                    sort_keys=True,
                )
                f.write("\n")
        for failure in failures:
            print(f"[fidelity] FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"[fidelity] no drift beyond tolerance ({len(current)} figure(s))")
        return 0

    # --render
    out_dir = Path(args.render)
    fig_ids = only if only else (sorted(ledger["figures"]) or sorted(SPECS))
    scales = {
        fig_id: (
            args.scale
            if args.scale is not None
            else float(ledger["figures"].get(fig_id, {}).get("scale", env_scale()))
        )
        for fig_id in fig_ids
    }
    tables, problems = _gather(fig_ids, scales, args, fidelity=args.fidelity)
    out_dir.mkdir(parents=True, exist_ok=True)
    for fig_id, table in tables.items():
        svg = render_figure(get_spec(fig_id), table)
        path = out_dir / f"{fig_id}.svg"
        path.write_text(svg, encoding="utf-8")
        print(f"[figures] {fig_id} -> {path}")
    for p in problems:
        print(f"[figures] WARNING: {p}", file=sys.stderr)
    return 0 if not problems else 1


if __name__ == "__main__":
    sys.exit(main())
