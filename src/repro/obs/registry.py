"""Metrics registry: named counters, gauges and histograms with labels.

Complements the event bus: events answer *what happened when*, the
registry answers *how much in total*.  It absorbs the protocol core's
``UdtStats`` counters (per-flow labelled) plus any ad-hoc gauges and
histograms an experiment wants to publish, and renders to a flat dict
(for JSON export) or an aligned text table (for ``--summary``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _labelkey(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def set(self, v: int) -> None:
        """Absorb an externally-maintained monotonic count."""
        self.value = max(self.value, v)


class Gauge:
    """Last-value-wins instantaneous measurement."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, v: float) -> None:
        self.value = v


class Histogram:
    """Streaming distribution: count/sum/min/max plus a bounded sample.

    Keeps the first ``reservoir`` observations for percentile queries —
    enough for experiment-scale runs without unbounded memory.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max", "_sample", "_cap")

    def __init__(self, name: str, labels: LabelKey, reservoir: int = 4096):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._sample: List[float] = []
        self._cap = reservoir

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        if len(self._sample) < self._cap:
            self._sample.append(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 100]) from the sample."""
        if not self._sample:
            return 0.0
        s = sorted(self._sample)
        idx = min(len(s) - 1, max(0, int(round(q / 100.0 * (len(s) - 1)))))
        return s[idx]


class MetricsRegistry:
    """Get-or-create registry keyed by (name, labels)."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- get-or-create ---------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _labelkey(labels))
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, key[1])
        return c

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _labelkey(labels))
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, key[1])
        return g

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _labelkey(labels))
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, key[1])
        return h

    # -- absorption ------------------------------------------------------
    def absorb_udt_stats(self, core: Any, **labels: Any) -> None:
        """Snapshot a ``UdtCore``'s ``UdtStats`` counters.

        Each dataclass field becomes a counter ``udt.<field>`` labelled
        with (at least) the endpoint name.
        """
        labels.setdefault("endpoint", getattr(core, "name", "udt"))
        stats = core.stats
        for field, value in vars(stats).items():
            self.counter(f"udt.{field}", **labels).set(int(value))

    def absorb_link(self, link: Any, **labels: Any) -> None:
        """Snapshot a simulated link's packet/byte/drop/peak counters."""
        labels.setdefault("link", getattr(link, "name", "link"))
        self.counter("link.pkts_sent", **labels).set(link.pkts_sent)
        self.counter("link.bytes_sent", **labels).set(link.bytes_sent)
        self.counter("link.pkts_lost", **labels).set(link.pkts_lost)
        q = link.queue
        self.counter("queue.drops", **labels).set(q.drops)
        self.counter("queue.enqueued", **labels).set(q.enqueued)
        self.gauge("queue.peak_pkts", **labels).set(q.peak_pkts)
        self.gauge("queue.peak_bytes", **labels).set(q.peak_bytes)

    # -- export ----------------------------------------------------------
    def collect(self) -> List[Dict[str, Any]]:
        """Flat rows: {type, name, labels, value...} sorted by name."""
        rows: List[Dict[str, Any]] = []
        for (name, labels), c in self._counters.items():
            rows.append(
                {"type": "counter", "name": name, "labels": dict(labels), "value": c.value}
            )
        for (name, labels), g in self._gauges.items():
            rows.append(
                {"type": "gauge", "name": name, "labels": dict(labels), "value": g.value}
            )
        for (name, labels), h in self._histograms.items():
            rows.append(
                {
                    "type": "histogram",
                    "name": name,
                    "labels": dict(labels),
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean,
                    "p50": h.percentile(50),
                    "p99": h.percentile(99),
                }
            )
        rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return rows

    def to_text(self) -> str:
        lines = []
        for row in self.collect():
            labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
            if row["type"] == "histogram":
                val = (
                    f"count={row['count']} mean={row['mean']:.4g} "
                    f"min={row['min']} max={row['max']} p99={row['p99']:.4g}"
                )
            else:
                val = f"{row['value']:g}" if isinstance(row["value"], float) else str(row["value"])
            lines.append(f"{row['name']}{{{labels}}} {val}")
        return "\n".join(lines)
