"""Figure specs: how each experiment's result becomes a rendered figure.

The experiments emit :class:`~repro.experiments.common.ExperimentResult`
tables — the *data* behind the paper's figures.  A :class:`FigureSpec`
declares, per experiment id, how that table is drawn (which column is
the x axis, which columns are series, line vs bar, log scales) and which
**headline metrics** summarise the figure's behaviour (mean Jain index,
loss-event counts, throughput means).  The metrics are what the fidelity
ledger (``benchmarks/results/BENCH_fidelity.json``) snapshots and what
``python -m repro.obs.figures --gate`` drift-checks, so a behavioural
regression shows up the same way a runtime regression already does.

Specs are declarative and renderer-agnostic: :mod:`repro.obs.figures`
turns (spec, table) into inline SVG, :mod:`repro.obs.html` embeds the
SVG in the static dashboard, and the gate only ever consumes
:func:`compute_metrics` output.  Experiments without a spec still appear
in the dashboard as plain tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class ResultTable:
    """Uniform wrapper over an ``ExperimentResult`` or its ``asdict`` form.

    Sweep cache entries and worker output files store results as plain
    dicts (``{"exp_id", "title", "columns", "rows", "notes", ...}``);
    in-process runs hand over the dataclass itself.  Specs and renderers
    only ever see this wrapper.
    """

    def __init__(self, data: Any):
        if isinstance(data, dict):
            self.exp_id = data.get("exp_id", "")
            self.title = data.get("title", "")
            self.columns: List[str] = list(data.get("columns", []))
            self.rows: List[Sequence[Any]] = [list(r) for r in data.get("rows", [])]
            self.notes = data.get("notes", "")
            self.paper_reference = data.get("paper_reference", "")
        else:  # ExperimentResult (anything with the same attributes)
            self.exp_id = data.exp_id
            self.title = data.title
            self.columns = list(data.columns)
            self.rows = [list(r) for r in data.rows]
            self.notes = data.notes
            self.paper_reference = data.paper_reference

    def column(self, name: str) -> List[Any]:
        idx = self.columns.index(name)
        return [r[idx] for r in self.rows]

    def numeric_column(self, name: str) -> List[float]:
        """The column as floats; raises if any cell is non-numeric."""
        out = []
        for v in self.column(name):
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise ValueError(
                    f"{self.exp_id}: column {name!r} holds non-numeric {v!r}"
                )
            out.append(float(v))
        return out

    def __len__(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class MetricSpec:
    """One headline metric: a name, an extractor, and a tolerance band.

    ``tolerance`` is the half-width of the acceptance band around the
    ledger value.  It is interpreted as an *absolute* delta when
    ``relative`` is False (right for indices near 1.0) and as a fraction
    of the ledger value when True (right for throughputs and counts).

    ``hybrid`` / ``hybrid_tolerance`` define the metric's fidelity
    contract under the hybrid simulation tier (docs/SIMULATION.md):
    ``hybrid=False`` marks the metric *undefined* in hybrid mode (it
    measures packet-level texture the analytic spans smooth away, e.g.
    oscillation indices) and it is skipped by the hybrid gate;
    ``hybrid_tolerance`` widens the band used when comparing a hybrid
    run against a packet reference (``None`` reuses ``tolerance``).
    """

    name: str
    fn: Callable[[ResultTable], float]
    tolerance: float
    relative: bool = False
    description: str = ""
    hybrid: bool = True
    hybrid_tolerance: Optional[float] = None

    def allowed_delta(self, reference: float) -> float:
        if self.relative:
            return self.tolerance * abs(reference)
        return self.tolerance


@dataclass(frozen=True)
class FigureSpec:
    """Declarative description of one paper figure's rendering + metrics."""

    fig_id: str
    x: str  #: column holding the x values
    series: Tuple[str, ...]  #: columns plotted as y series
    kind: str = "line"  #: "line" (numeric x) or "bar" (categorical x)
    x_log: bool = False
    y_label: str = ""
    caption: str = ""  #: the paper's expected shape, one line
    metrics: Tuple[MetricSpec, ...] = ()


# -- metric extractor helpers -----------------------------------------------


def _mean(col: str) -> Callable[[ResultTable], float]:
    return lambda t: (
        sum(t.numeric_column(col)) / len(t) if len(t) else 0.0
    )


def _min(col: str) -> Callable[[ResultTable], float]:
    return lambda t: min(t.numeric_column(col)) if len(t) else 0.0


def _max(col: str) -> Callable[[ResultTable], float]:
    return lambda t: max(t.numeric_column(col)) if len(t) else 0.0


def _count(t: ResultTable) -> float:
    return float(len(t))


def _max_abs_err_from_1(col: str) -> Callable[[ResultTable], float]:
    return lambda t: (
        max(abs(v - 1.0) for v in t.numeric_column(col)) if len(t) else 0.0
    )


# -- the registry -----------------------------------------------------------

#: exp_id -> FigureSpec.  Experiments not listed here render as plain
#: tables in the dashboard and cannot carry fidelity-ledger entries.
SPECS: Dict[str, FigureSpec] = {}


def _spec(spec: FigureSpec) -> None:
    SPECS[spec.fig_id] = spec


_spec(
    FigureSpec(
        "fig02",
        x="RTT (ms)",
        series=("UDT", "TCP"),
        x_log=True,
        y_label="Jain fairness index",
        caption="UDT ~1.0 across RTTs; TCP decays as RTT grows.",
        metrics=(
            MetricSpec(
                "udt_jain_mean",
                _mean("UDT"),
                0.02,
                description="mean Jain index of the UDT sweep",
                # analytic spans share exactly (Jain -> 1.0); packet runs
                # oscillate a few percent below
                hybrid_tolerance=0.08,
            ),
            MetricSpec(
                "udt_jain_min",
                _min("UDT"),
                0.04,
                description="worst-case UDT Jain index",
                hybrid_tolerance=0.12,
            ),
            MetricSpec(
                "tcp_jain_mean",
                _mean("TCP"),
                0.05,
                description="mean Jain index of the TCP sweep",
                # TCP flows veto fluid spans: packet-level either way
            ),
        ),
    )
)

_spec(
    FigureSpec(
        "fig03",
        x="flows",
        series=("stddev (Mb/s)",),
        y_label="per-flow stddev (Mb/s)",
        caption="Oscillation grows with concurrency; utilisation stays high.",
        metrics=(
            MetricSpec(
                "stddev_max_mbps",
                _max("stddev (Mb/s)"),
                0.25,
                relative=True,
                description="largest per-flow throughput stddev in the sweep",
            ),
            MetricSpec(
                "aggregate_min_mbps",
                _min("aggregate (Mb/s)"),
                0.10,
                relative=True,
                description="worst aggregate utilisation in the sweep",
            ),
        ),
    )
)

_spec(
    FigureSpec(
        "fig04",
        x="RTT (ms)",
        series=("UDT", "TCP"),
        x_log=True,
        y_label="stability index (lower is better)",
        caption="UDT more stable than TCP except in the ~1-10 ms band.",
        metrics=(
            MetricSpec(
                "udt_stability_mean",
                _mean("UDT"),
                0.15,
                relative=True,
                description="mean UDT stability index (lower is more stable)",
                # oscillation texture is exactly what fluid spans smooth
                # away: undefined under the hybrid tier
                hybrid=False,
            ),
            MetricSpec(
                "tcp_stability_mean",
                _mean("TCP"),
                0.15,
                relative=True,
                description="mean TCP stability index",
            ),
        ),
    )
)

_spec(
    FigureSpec(
        "fig05",
        x="RTT (ms)",
        series=("T index",),
        x_log=True,
        y_label="TCP friendliness index",
        caption="TCP keeps a sizeable share of its fair rate alongside UDT.",
        metrics=(
            MetricSpec(
                "t_index_mean",
                _mean("T index"),
                0.10,
                description="mean friendliness index across the RTT sweep",
            ),
            MetricSpec(
                "t_index_min",
                _min("T index"),
                0.10,
                description="worst-case friendliness index",
            ),
        ),
    )
)

_spec(
    FigureSpec(
        "fig06",
        x="flow2 RTT (ms)",
        series=("ratio",),
        x_log=True,
        y_label="throughput ratio (var-RTT / 100 ms flow)",
        caption="Constant SYN makes throughput RTT-independent: ratio ~1.0.",
        metrics=(
            MetricSpec(
                "ratio_max_abs_err",
                _max_abs_err_from_1("ratio"),
                0.10,
                description="largest |ratio - 1| across the RTT sweep",
                # the packet engine's long-RTT (>=500 ms) unfairness is a
                # discrete-feedback effect; analytic spans share max-min
                # fairly, so the hybrid ratio error collapses towards 0
                # (0.45 -> 0.01 at scale=1.0): undefined under hybrid
                hybrid=False,
            ),
            MetricSpec(
                "ref_flow_mean_mbps",
                _mean("flow1 Mb/s"),
                0.10,
                relative=True,
                description="mean throughput of the fixed-RTT reference flow",
                # the reference flow's surplus at long RTT comes from the
                # same discrete-feedback unfairness the spans idealise
                # away, so its mean sits up to ~20% below packet runs
                hybrid_tolerance=0.20,
            ),
            MetricSpec(
                "var_flow_mean_mbps",
                _mean("flow2 Mb/s"),
                0.10,
                relative=True,
                description="mean throughput of the variable-RTT flow",
                hybrid_tolerance=0.20,
            ),
        ),
    )
)

_spec(
    FigureSpec(
        "fig07",
        x="time (s)",
        series=("with FC", "without FC"),
        y_label="throughput (Mb/s)",
        caption="Flow control holds the rate smooth near capacity.",
        metrics=(
            MetricSpec(
                "with_fc_mean_mbps",
                _mean("with FC"),
                0.10,
                relative=True,
                description="mean throughput with flow control",
            ),
            MetricSpec(
                "without_fc_mean_mbps",
                _mean("without FC"),
                0.20,
                relative=True,
                description="mean throughput without flow control",
            ),
        ),
    )
)

_spec(
    FigureSpec(
        "fig08",
        x="loss event #",
        series=("lost packets",),
        kind="bar",
        y_label="lost packets per event",
        caption="Loss events of thousands of packets under a bursting blast.",
        metrics=(
            MetricSpec(
                "loss_events",
                _count,
                0.25,
                relative=True,
                description="number of receiver loss events",
                # blast ON windows run packet-level in hybrid mode, but
                # the analytic spans between bursts skip the background
                # self-congestion losses of a saturated sender, so event
                # *counts* (and the extreme tail fed by count) sit up to
                # ~half below packet runs at paper scale; the per-event
                # shape (loss_mean_pkts) stays tight
                hybrid_tolerance=0.60,
            ),
            MetricSpec(
                "loss_max_pkts",
                _max("lost packets"),
                0.25,
                relative=True,
                description="largest single loss event (packets)",
                hybrid_tolerance=0.60,
            ),
            MetricSpec(
                "loss_mean_pkts",
                _mean("lost packets"),
                0.25,
                relative=True,
                description="mean lost packets per event",
                hybrid_tolerance=0.40,
            ),
        ),
    )
)

_spec(
    FigureSpec(
        "fig09",
        x="structure",
        series=("insert mean", "query mean", "delete mean"),
        kind="bar",
        y_label="access time (µs)",
        caption="~1 µs per access, independent of loss-list size.",
        metrics=(
            MetricSpec(
                "insert_mean_us",
                _mean("insert mean"),
                0.50,
                relative=True,
                description="mean insert time across structures",
            ),
        ),
    )
)

_spec(
    FigureSpec(
        "fig11",
        x="path",
        series=("UDT", "TCP (tuned)"),
        kind="bar",
        y_label="throughput (Mb/s)",
        caption="UDT saturates every path; tuned TCP falls behind.",
        metrics=(
            MetricSpec(
                "udt_mean_mbps",
                _mean("UDT"),
                0.10,
                relative=True,
                description="mean UDT throughput across paths",
            ),
        ),
    )
)

_spec(
    FigureSpec(
        "fig12",
        x="destination",
        series=("UDT", "TCP"),
        kind="bar",
        y_label="throughput (Mb/s)",
        caption="UDT splits the shared egress evenly; TCP is RTT-biased.",
        metrics=(
            MetricSpec(
                "udt_min_mbps",
                _min("UDT"),
                0.15,
                relative=True,
                description="slowest UDT destination share",
            ),
        ),
    )
)

_spec(
    FigureSpec(
        "fig13",
        x="UDT flows",
        series=("TCP aggregate (Mb/s)",),
        y_label="short-TCP aggregate (Mb/s)",
        caption="Short-TCP aggregate decays gently as UDT flows pile up.",
        metrics=(
            MetricSpec(
                "tcp_aggregate_min_mbps",
                _min("TCP aggregate (Mb/s)"),
                0.20,
                relative=True,
                description="short-TCP aggregate under the most UDT flows",
            ),
        ),
    )
)

_spec(
    FigureSpec(
        "fig14",
        x="protocol",
        series=("sending CPU %", "receiving CPU %"),
        kind="bar",
        y_label="CPU utilisation (%)",
        caption="UDT's CPU cost is close to TCP's at the same rate.",
        metrics=(
            MetricSpec(
                "send_cpu_mean_pct",
                _mean("sending CPU %"),
                0.15,
                relative=True,
                description="mean sending-side CPU across protocols",
            ),
        ),
    )
)

_spec(
    FigureSpec(
        "fig15",
        x="MSS (bytes)",
        series=("throughput (Mb/s)",),
        y_label="throughput (Mb/s)",
        caption="Throughput peaks at MSS = path MTU (1500).",
        metrics=(
            MetricSpec(
                "best_throughput_mbps",
                _max("throughput (Mb/s)"),
                0.10,
                relative=True,
                description="throughput at the best packet size",
            ),
        ),
    )
)

_spec(
    FigureSpec(
        "ablation-syn",
        x="SYN (ms)",
        series=("UDT alone Mb/s", "TCP share vs 1 UDT (Mb/s)"),
        x_log=True,
        y_label="throughput (Mb/s)",
        caption="Shorter SYN: more efficiency, less TCP friendliness.",
        metrics=(
            MetricSpec(
                "udt_alone_max_mbps",
                _max("UDT alone Mb/s"),
                0.10,
                relative=True,
                description="best standalone UDT throughput in the sweep",
            ),
        ),
    )
)


def get_spec(fig_id: str) -> Optional[FigureSpec]:
    return SPECS.get(fig_id)


def compute_metrics(spec: FigureSpec, table: ResultTable) -> Dict[str, float]:
    """Evaluate every headline metric of ``spec`` against ``table``."""
    return {m.name: float(m.fn(table)) for m in spec.metrics}


def tolerances(spec: FigureSpec) -> Dict[str, Dict[str, Any]]:
    """The spec's tolerance bands in ledger form (JSON-stable)."""
    return {
        m.name: {"tolerance": m.tolerance, "relative": m.relative}
        for m in spec.metrics
    }


def hybrid_tolerances(spec: FigureSpec) -> Dict[str, Dict[str, Any]]:
    """Hybrid-tier bands (docs/SIMULATION.md): only hybrid-defined
    metrics appear, each with its (usually wider) hybrid band."""
    return {
        m.name: {
            "tolerance": (
                m.hybrid_tolerance
                if m.hybrid_tolerance is not None
                else m.tolerance
            ),
            "relative": m.relative,
        }
        for m in spec.metrics
        if m.hybrid
    }
