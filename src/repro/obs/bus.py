"""The telemetry event bus.

A bus is a list of subscribers plus one ``enabled`` boolean maintained as
``bool(subscribers)``.  Instrumented code guards every emit site with::

    bus = self.bus
    if bus.enabled:
        bus.emit(KIND, t, src, field=value, ...)

so the disabled path costs one attribute load and a branch — no event
object, no keyword dict, no call.  That is what makes it safe to leave
the instrumentation compiled into the protocol hot paths (the Narses
lesson: telemetry nobody can afford to turn on never gets used).

Events are typed by dotted-string kind (constants below), timestamped in
the emitting component's virtual time, and carry a ``src`` naming the
emitting component (a connection endpoint, a link, a meter).  Subscribers
may filter by kind at subscription time; filtering happens inside
:meth:`EventBus.emit` so uninterested subscribers never run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

# ---------------------------------------------------------------------------
# Event taxonomy.  The authoritative field lists live in
# docs/OBSERVABILITY.md; constants here keep emit sites typo-proof.
# ---------------------------------------------------------------------------
#: Handshake completed (src = endpoint): peer_seq, flow_window.
CONN_CONNECTED = "conn.connected"
#: Endpoint closed (src = endpoint).
CONN_CLOSED = "conn.closed"
#: Sender processed an ACK: seq, light.
SND_ACK = "snd.ack"
#: Sender processed a NAK: lost, ranges, froze.
SND_NAK = "snd.nak"
#: Congestion-control state snapshot after a CC update (the timeline
#: sample): trigger, rate_bps, period, cwnd, flow_window, rtt, bw_est,
#: recv_rate, loss_len, exp_count, slow_start.
CC_SAMPLE = "cc.sample"
#: Controller left slow start: period, window.
CC_SLOWSTART_EXIT = "cc.slowstart_exit"
#: Controller applied a multiplicative decrease: trigger, period/window.
CC_DECREASE = "cc.decrease"
#: Obsolete delay-trend design fired an early decrease: period.
CC_DELAY_WARNING = "cc.delay_warning"
#: EXP (no-feedback) timer fired with data in flight: exp_count, unacked.
EXP_TIMEOUT = "exp.timeout"
#: Receiver detected a sequence hole: first, last, length.
RCV_LOSS = "rcv.loss"
#: Receive buffer refused a DATA packet (drop invisible to the network —
#: the peer sees it as loss): seq, size.
RCV_BUFFER_DROP = "rcv.buffer_drop"
#: A link dropped a packet: reason ("queue" | "loss"), size, flow.
LINK_DROP = "link.drop"
#: A link's egress queue reached a new occupancy high-water mark:
#: pkts, bytes.
QUEUE_HIGHWATER = "queue.highwater"
#: Aggregated CPU cycle charges from a host meter: total_cycles, util.
CPU_CHARGE = "cpu.charge"
#: A finite simulated flow delivered its last byte: bytes, elapsed.
FLOW_DONE = "flow.done"
#: Hybrid tier left the packet engine for an analytic fluid span
#: (src = "fluid"): flows.
FLUID_ENTER = "fluid.enter"
#: Hybrid tier re-entered the packet engine (src = "fluid"):
#: reason, span, ticks.
FLUID_EXIT = "fluid.exit"

# -- packet-level detail tier ----------------------------------------------
# One event per data packet / per link hop: orders of magnitude more
# volume than the control-path kinds above, so emit sites guard on
# ``bus.detail`` (set only when a subscriber passes ``detail=True``) and
# a plain ``--trace`` stays cheap.  These are what the span reconstructor
# (repro.obs.spans) rebuilds packet lifecycles from.
#: Sender emitted a DATA packet (src = endpoint): seq, size, retx.
PKT_SND = "pkt.snd"
#: Receiver accepted a DATA packet (src = endpoint): seq, retx.
PKT_RCV = "pkt.rcv"
#: A link accepted a packet for transmission (src = link name):
#: uid, flow, seq (data packets only), qlen (0 = straight to the wire).
LINK_ENQ = "link.enq"
#: A link finished serialising a packet (src = link name): uid, flow, seq.
LINK_DEQ = "link.deq"


class Event:
    """One telemetry event: ``(t, kind, src)`` plus free-form fields."""

    __slots__ = ("t", "kind", "src", "fields")

    def __init__(self, t: float, kind: str, src: str, fields: Dict[str, Any]):
        self.t = t
        self.kind = kind
        self.src = src
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        """Flat dict form — the JSONL record layout."""
        d = {"t": self.t, "kind": self.kind, "src": self.src}
        d.update(self.fields)
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Event {self.kind} t={self.t:.6f} src={self.src} {self.fields}>"


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; pass to unsubscribe."""

    __slots__ = ("fn", "kinds", "detail")

    def __init__(
        self,
        fn: Callable[[Event], None],
        kinds: Optional[frozenset],
        detail: bool = False,
    ):
        self.fn = fn
        self.kinds = kinds
        self.detail = detail


class EventBus:
    """Synchronous publish/subscribe fan-out with an O(1) disabled path."""

    __slots__ = ("enabled", "detail", "_subs")

    def __init__(self) -> None:
        #: True iff at least one subscriber is attached.  Emit sites MUST
        #: check this before building event fields.
        self.enabled = False
        #: True iff at least one subscriber asked for the packet-level
        #: detail tier (``pkt.*`` / ``link.enq`` / ``link.deq``).  Those
        #: emit sites guard on this instead of ``enabled`` so ordinary
        #: traces never pay per-data-packet event construction.
        self.detail = False
        self._subs: List[Subscription] = []

    # -- subscription ----------------------------------------------------
    def subscribe(
        self,
        fn: Callable[[Event], None],
        kinds: Optional[Iterable[str]] = None,
        detail: bool = False,
    ) -> Subscription:
        """Attach ``fn``; it receives every event (or only ``kinds``).

        ``detail=True`` additionally wakes the packet-level emit sites;
        without it they stay dormant even while the bus is enabled.
        """
        sub = Subscription(fn, frozenset(kinds) if kinds is not None else None, detail)
        self._subs.append(sub)
        self.enabled = True
        if detail:
            self.detail = True
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach a subscription (no-op if already detached)."""
        self._subs = [s for s in self._subs if s is not sub]
        self.enabled = bool(self._subs)
        self.detail = any(s.detail for s in self._subs)

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)

    # -- emission --------------------------------------------------------
    def emit(self, kind: str, t: float, src: str, **fields: Any) -> Optional[Event]:
        """Deliver one event to every matching subscriber.

        Callers should only reach this when :attr:`enabled` is True, but
        emitting on a disabled bus is harmless (returns None).
        """
        if not self._subs:
            return None
        ev = Event(t, kind, src, fields)
        for sub in self._subs:
            if sub.kinds is None or kind in sub.kinds:
                sub.fn(ev)
        return ev


#: The process-wide bus components fall back to when none is passed in.
_DEFAULT_BUS = EventBus()


def default_bus() -> EventBus:
    """The shared default bus (disabled until someone subscribes)."""
    return _DEFAULT_BUS
