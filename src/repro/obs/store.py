"""Compact, indexed, streaming binary trace store (``.rtrc``).

Flat JSONL (``repro.obs.export``) is the right interchange format, but a
``--trace-packets`` run of fig08 already emits a 7.1M-line file and
paper-scale scenarios (400 flows x 100 s) would make plain text
unwritable, undiffable and unqueryable.  ``.rtrc`` is the same event
stream in a framed, compressed, *indexed* container:

* events are buffered into **blocks** (default 4096 events); inside a
  block the kind/src/field-key strings are interned into per-block
  tables and each event becomes a small JSON row, so the block
  compresses to a few percent of its JSONL equivalent;
* every block is **framed** (tag byte + length + zlib payload), so a
  crash-truncated file is recoverable up to the last complete block —
  the same contract ``read_events`` gives truncated JSONL;
* a **footer index** records, per block, the byte offset, event count,
  time range, per-kind counts and src set.  Readers answer
  ``kind``/``src``/time-range queries by *skipping* blocks whose index
  entry cannot match — ``repro-udt trace query`` never inflates what it
  does not need — and ``stats()`` comes from the index alone;
* an optional **sampling tier** (per-kind stride / head policies)
  bounds trace volume with an explicit budget; the policy is recorded
  in ``trace.meta`` and the per-kind dropped counts in the footer, so
  downstream consumers know exactly what is missing.

Everything is deterministic — block boundaries depend only on the event
stream, compression is single-threaded zlib at a fixed level — so the
byte-identity guarantees the sweep runner and determinism sanitizer make
for JSONL traces carry over to ``.rtrc`` unchanged.

File layout::

    magic   b"RTRC\\x01\\n"
    frame   b"M" | u32 len | zlib(trace.meta JSON)      (exactly one)
    frame   b"B" | u32 len | zlib(block JSON)           (zero or more)
    frame   b"F" | u32 len | zlib(footer-index JSON)    (exactly one)
    trailer u64 footer-frame offset | b"RTRCIDX\\x01"

Block JSON: ``{"k": [kinds], "s": [srcs], "f": [field keys],
"e": [[t, kind_i, src_i, key_i, value, ...], ...]}``.  Decoding a row
rebuilds the flat event dict in its original key order, so
``rtrc_to_jsonl(jsonl_to_rtrc(x)) == x`` byte for byte on traces written
by :class:`~repro.obs.export.JsonlWriter`.
"""

from __future__ import annotations

import json
import struct
import warnings
import zlib
from collections import Counter
from pathlib import Path
from typing import (
    Any,
    BinaryIO,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

MAGIC = b"RTRC\x01\n"
TRAILER_MAGIC = b"RTRCIDX\x01"
#: Container layout version (independent of the event schema version).
STORE_VERSION = 1
#: Frame tags.
_TAG_META, _TAG_BLOCK, _TAG_FOOTER = b"M", b"B", b"F"
_LEN = struct.Struct("<I")
_OFF = struct.Struct("<Q")
#: Events buffered per block before compression.
DEFAULT_BLOCK_EVENTS = 4096
#: zlib level; fixed so identical event streams give identical bytes.
COMPRESSION_LEVEL = 6

_dumps = json.dumps


class RtrcFormatError(ValueError):
    """The file is not a well-formed ``.rtrc`` container."""


# ---------------------------------------------------------------------------
# Sampling tier
# ---------------------------------------------------------------------------


class Sampler:
    """Per-kind deterministic event sampling with an explicit budget.

    Policies (per event kind; unlisted kinds are never dropped):

    * ``"stride:N"`` (or a bare int ``N``) — keep the 1st of every N
      events of that kind;
    * ``"head:N"`` — keep only the first N events of that kind.

    Sampling is counter-based, never randomised, so sampled traces stay
    byte-deterministic across runs and ``--jobs``.  Dropped events are
    counted per kind in :attr:`dropped` so the trace can record what it
    does not contain.
    """

    def __init__(self, spec: Optional[Dict[str, Union[str, int]]] = None):
        self._rules: Dict[str, Tuple[str, int]] = {}
        for kind, raw in (spec or {}).items():
            self._rules[kind] = _parse_policy(raw)
        self._seen: Counter = Counter()
        self.dropped: Counter = Counter()

    def __bool__(self) -> bool:
        return bool(self._rules)

    def admit(self, kind: str) -> bool:
        rule = self._rules.get(kind)
        if rule is None:
            return True
        mode, n = rule
        seen = self._seen[kind]
        self._seen[kind] = seen + 1
        keep = (seen % n == 0) if mode == "stride" else (seen < n)
        if not keep:
            self.dropped[kind] += 1
        return keep

    def policy(self) -> Dict[str, str]:
        """Canonical ``{kind: "mode:N"}`` form (what trace.meta records)."""
        return {k: f"{m}:{n}" for k, (m, n) in sorted(self._rules.items())}


def _parse_policy(raw: Union[str, int]) -> Tuple[str, int]:
    if isinstance(raw, int):
        mode, n = "stride", raw
    else:
        mode, _, num = str(raw).partition(":")
        if not num:
            mode, num = "stride", mode
        n = int(num)
    if mode not in ("stride", "head") or n < 1:
        raise ValueError(f"bad sampling policy {raw!r} (want stride:N or head:N)")
    return mode, n


def parse_sample_specs(items: Iterable[str]) -> Dict[str, str]:
    """Parse CLI ``--trace-sample KIND=POLICY`` items into a spec dict."""
    spec: Dict[str, str] = {}
    for item in items:
        if "=" not in item:
            raise ValueError(f"--trace-sample expects KIND=POLICY, got {item!r}")
        kind, _, raw = item.partition("=")
        mode, n = _parse_policy(raw)  # validate early, error at the CLI
        spec[kind] = f"{mode}:{n}"
    return spec


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


class RtrcWriter:
    """Streams bus events into an ``.rtrc`` container.

    Same subscriber surface as :class:`~repro.obs.export.JsonlWriter`
    (``write_meta`` / ``on_event`` / ``attach`` / ``detach`` / ``close``
    / ``events_written``), so ``trace_session`` and ``trace_to_file``
    drive either writer interchangeably — the trace path's suffix picks
    the format.
    """

    def __init__(
        self,
        path: Union[str, Path],
        block_events: int = DEFAULT_BLOCK_EVENTS,
        level: int = COMPRESSION_LEVEL,
        sample: Optional[Dict[str, Union[str, int]]] = None,
    ):
        if block_events < 1:
            raise ValueError("block_events must be >= 1")
        self.path = Path(path)
        self._out: BinaryIO = open(self.path, "wb")
        self._out.write(MAGIC)
        self.block_events = block_events
        self.level = level
        self.sampler = Sampler(sample)
        self._sampling = bool(self.sampler)
        self.events_written = 0
        self._meta_written = False
        self._rows: List[list] = []
        # per-pending-block interning state
        self._kinds: List[str] = []
        self._kind_ids: Dict[str, int] = {}
        self._srcs: List[str] = []
        self._src_ids: Dict[str, int] = {}
        self._fields: List[str] = []
        self._field_ids: Dict[str, int] = {}
        self._index: List[Dict[str, Any]] = []
        self._bus = None
        self._sub = None
        self._closed = False

    # -- meta ------------------------------------------------------------
    def write_meta(self, **meta: Any) -> None:
        """Write the ``trace.meta`` record (before any event)."""
        if self._meta_written:
            raise RuntimeError("trace.meta already written")
        from repro.obs.export import SCHEMA_VERSION

        rec = {"kind": "trace.meta", "schema": SCHEMA_VERSION}
        rec.update(meta)
        if self.sampler:
            rec.setdefault("sampling", self.sampler.policy())
        self._write_meta_record(rec)

    def _write_meta_record(self, rec: Dict[str, Any]) -> None:
        """Store an already-shaped meta record verbatim (conversion path)."""
        if self._meta_written:
            raise RuntimeError("trace.meta already written")
        self._write_frame(_TAG_META, _dumps(rec, separators=(",", ":"), default=str))
        self._meta_written = True

    # -- event intake ----------------------------------------------------
    def on_event(self, ev: Any) -> None:
        """Bus subscriber entry point (takes a :class:`repro.obs.bus.Event`)."""
        if self._sampling and not self.sampler.admit(ev.kind):
            return
        self._append(ev.t, ev.kind, ev.src, ev.fields.items())

    def feed(self, rec: Dict[str, Any]) -> None:
        """Ingest a flat JSONL-shaped record (the conversion path).

        ``trace.meta`` records route to the meta frame; everything else
        is stored as an event with its field order preserved.
        """
        if rec.get("kind") == "trace.meta":
            self._write_meta_record(rec)
            return
        kind = rec.get("kind", "")
        if self._sampling and not self.sampler.admit(kind):
            return
        self._append(
            rec.get("t", 0.0),
            kind,
            rec.get("src", ""),
            ((k, v) for k, v in rec.items() if k not in ("t", "kind", "src")),
        )

    def _append(
        self, t: float, kind: str, src: str, fields: Iterable[Tuple[str, Any]]
    ) -> None:
        if not self._meta_written:
            self.write_meta()
        ki = self._kind_ids.get(kind)
        if ki is None:
            ki = self._kind_ids[kind] = len(self._kinds)
            self._kinds.append(kind)
        si = self._src_ids.get(src)
        if si is None:
            si = self._src_ids[src] = len(self._srcs)
            self._srcs.append(src)
        row: list = [t, ki, si]
        field_ids = self._field_ids
        for key, value in fields:
            fi = field_ids.get(key)
            if fi is None:
                fi = field_ids[key] = len(self._fields)
                self._fields.append(key)
            row.append(fi)
            row.append(value)
        self._rows.append(row)
        self.events_written += 1
        if len(self._rows) >= self.block_events:
            self._flush_block()

    # -- framing ---------------------------------------------------------
    def _write_frame(self, tag: bytes, payload: str) -> int:
        """Compress + frame one payload; returns the frame's offset."""
        offset = self._out.tell()
        data = zlib.compress(payload.encode("utf-8"), self.level)
        self._out.write(tag)
        self._out.write(_LEN.pack(len(data)))
        self._out.write(data)
        return offset

    def _flush_block(self) -> None:
        if not self._rows:
            return
        rows, kinds = self._rows, self._kinds
        payload = _dumps(
            {"k": kinds, "s": self._srcs, "f": self._fields, "e": rows},
            separators=(",", ":"),
            default=str,
        )
        offset = self._write_frame(_TAG_BLOCK, payload)
        # Block stats are derived here, once per block, rather than
        # maintained per event — the append path stays lean.
        counts = Counter(kinds[r[1]] for r in rows)
        self._index.append(
            {
                "o": offset,
                "n": len(rows),
                "t0": min(r[0] for r in rows),
                "t1": max(r[0] for r in rows),
                "k": dict(sorted(counts.items())),
                "s": sorted(self._srcs),
            }
        )
        self._rows = []
        self._kinds, self._kind_ids = [], {}
        self._srcs, self._src_ids = [], {}
        self._fields, self._field_ids = [], {}

    # -- wiring (JsonlWriter-compatible) ---------------------------------
    def attach(self, bus=None, kinds=None, detail: bool = False) -> "RtrcWriter":
        if self._sub is not None:
            raise RuntimeError("writer already attached")
        from repro.obs.bus import default_bus

        self._bus = bus if bus is not None else default_bus()
        self._sub = self._bus.subscribe(self.on_event, kinds=kinds, detail=detail)
        return self

    def detach(self) -> None:
        if self._bus is not None and self._sub is not None:
            self._bus.unsubscribe(self._sub)
        self._bus = self._sub = None

    def close(self) -> None:
        if self._closed:
            return
        self.detach()
        if not self._meta_written:
            self.write_meta()
        self._flush_block()
        footer = {
            "store": STORE_VERSION,
            "events": self.events_written,
            "blocks": self._index,
        }
        if self.sampler:
            footer["sampling"] = self.sampler.policy()
            footer["dropped"] = dict(sorted(self.sampler.dropped.items()))
        offset = self._write_frame(
            _TAG_FOOTER, _dumps(footer, separators=(",", ":"))
        )
        self._out.write(_OFF.pack(offset))
        self._out.write(TRAILER_MAGIC)
        self._out.close()
        self._closed = True


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


def _decode_block(payload: bytes) -> Iterator[Dict[str, Any]]:
    """Yield flat event dicts from one decompressed block payload."""
    block = json.loads(payload)
    kinds, srcs, fields, rows = block["k"], block["s"], block["f"], block["e"]
    for row in rows:
        rec = {"t": row[0], "kind": kinds[row[1]], "src": srcs[row[2]]}
        for i in range(3, len(row), 2):
            rec[fields[row[i]]] = row[i + 1]
        yield rec


class RtrcReader:
    """Indexed reader over an ``.rtrc`` container.

    ``iter_events`` uses the footer index to *skip* whole blocks that
    cannot match the requested kinds/srcs/time range — the counters
    :attr:`blocks_read` / :attr:`blocks_skipped` record exactly how much
    of the file was inflated, which is what the query CLI reports and
    the tests assert on.  A file with a missing or corrupt footer
    (crash-truncated run) degrades to a sequential frame scan over the
    complete blocks, mirroring ``read_events``'s tolerance for truncated
    JSONL; :attr:`truncated` reports that this happened.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._f: BinaryIO = open(self.path, "rb")
        self.truncated = False
        self.blocks_read = 0
        self.blocks_skipped = 0
        head = self._f.read(len(MAGIC))
        if head != MAGIC:
            self._f.close()
            raise RtrcFormatError(f"{self.path}: not an .rtrc file (bad magic)")
        self.meta, self.index = self._load_index()

    # -- layout ----------------------------------------------------------
    def _read_frame_at(self, offset: int, want_tag: bytes) -> bytes:
        self._f.seek(offset)
        tag = self._f.read(1)
        if tag != want_tag:
            raise RtrcFormatError(
                f"{self.path}: expected {want_tag!r} frame at {offset}, got {tag!r}"
            )
        (clen,) = _LEN.unpack(self._f.read(4))
        data = self._f.read(clen)
        if len(data) != clen:
            raise RtrcFormatError(f"{self.path}: truncated frame at {offset}")
        return zlib.decompress(data)

    def _load_index(self) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        try:
            return self._load_index_from_trailer()
        except (RtrcFormatError, OSError, struct.error, zlib.error, ValueError):
            return self._recover_by_scan()

    def _load_index_from_trailer(self) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        self._f.seek(0, 2)
        end = self._f.tell()
        trailer_len = _OFF.size + len(TRAILER_MAGIC)
        if end < len(MAGIC) + trailer_len:
            raise RtrcFormatError(f"{self.path}: too short for a trailer")
        self._f.seek(end - trailer_len)
        trailer = self._f.read(trailer_len)
        if trailer[_OFF.size:] != TRAILER_MAGIC:
            raise RtrcFormatError(f"{self.path}: missing trailer magic")
        (footer_off,) = _OFF.unpack(trailer[: _OFF.size])
        footer = json.loads(self._read_frame_at(footer_off, _TAG_FOOTER))
        meta = json.loads(self._read_frame_at(len(MAGIC), _TAG_META))
        return meta, footer

    def _recover_by_scan(self) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Rebuild what we can from complete frames (truncated file)."""
        self.truncated = True
        meta: Dict[str, Any] = {}
        blocks: List[Dict[str, Any]] = []
        events = 0
        offset = len(MAGIC)
        self._f.seek(offset)
        while True:
            tag = self._f.read(1)
            if not tag:
                break
            raw_len = self._f.read(4)
            if len(raw_len) != 4:
                break
            (clen,) = _LEN.unpack(raw_len)
            data = self._f.read(clen)
            if len(data) != clen:
                break
            try:
                payload = zlib.decompress(data)
            except zlib.error:
                break
            if tag == _TAG_META:
                try:
                    meta = json.loads(payload)
                except ValueError:
                    break
            elif tag == _TAG_BLOCK:
                try:
                    recs = list(_decode_block(payload))
                except (ValueError, KeyError, IndexError, TypeError):
                    break
                ts = [r["t"] for r in recs]
                kc: Counter = Counter(r["kind"] for r in recs)
                blocks.append(
                    {
                        "o": offset,
                        "n": len(recs),
                        "t0": min(ts) if ts else None,
                        "t1": max(ts) if ts else None,
                        "k": dict(sorted(kc.items())),
                        "s": sorted({r["src"] for r in recs}),
                    }
                )
                events += len(recs)
            elif tag == _TAG_FOOTER:
                # complete footer found mid-scan: the trailer alone was
                # damaged; trust the footer.
                try:
                    footer = json.loads(payload)
                    self.truncated = False
                    return meta, footer
                except ValueError:
                    break
            else:
                break
            offset = self._f.tell()
        return meta, {"store": STORE_VERSION, "events": events, "blocks": blocks}

    # -- queries ---------------------------------------------------------
    @property
    def blocks_total(self) -> int:
        return len(self.index.get("blocks", []))

    @property
    def events_total(self) -> int:
        return int(self.index.get("events", 0))

    @property
    def dropped(self) -> Dict[str, int]:
        """Per-kind counts the sampling tier dropped (empty if unsampled)."""
        return dict(self.index.get("dropped", {}))

    def kind_counts(self) -> Dict[str, int]:
        """Aggregate per-kind event counts, from the index alone."""
        total: Counter = Counter()
        for blk in self.index.get("blocks", []):
            total.update(blk.get("k", {}))
        return dict(sorted(total.items()))

    def srcs(self) -> List[str]:
        out: set = set()
        for blk in self.index.get("blocks", []):
            out.update(blk.get("s", []))
        return sorted(out)

    def time_range(self) -> Tuple[Optional[float], Optional[float]]:
        t0s = [b["t0"] for b in self.index.get("blocks", []) if b.get("t0") is not None]
        t1s = [b["t1"] for b in self.index.get("blocks", []) if b.get("t1") is not None]
        return (min(t0s) if t0s else None, max(t1s) if t1s else None)

    def stats(self) -> Dict[str, Any]:
        """Index-only summary (no block is decompressed)."""
        t0, t1 = self.time_range()
        return {
            "path": str(self.path),
            "events": self.events_total,
            "blocks": self.blocks_total,
            "t0": t0,
            "t1": t1,
            "kinds": self.kind_counts(),
            "srcs": self.srcs(),
            "sampling": self.index.get("sampling", {}),
            "dropped": self.dropped,
            "truncated": self.truncated,
        }

    def _block_matches(
        self,
        blk: Dict[str, Any],
        kinds: Optional[frozenset],
        srcs: Optional[frozenset],
        t0: Optional[float],
        t1: Optional[float],
    ) -> bool:
        if kinds is not None and not kinds.intersection(blk.get("k", {})):
            return False
        if srcs is not None and not srcs.intersection(blk.get("s", [])):
            return False
        b0, b1 = blk.get("t0"), blk.get("t1")
        if t0 is not None and b1 is not None and b1 < t0:
            return False
        if t1 is not None and b0 is not None and b0 > t1:
            return False
        return True

    def iter_events(
        self,
        kinds: Optional[Iterable[str]] = None,
        srcs: Optional[Iterable[str]] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        include_meta: bool = False,
    ) -> Iterator[Dict[str, Any]]:
        """Yield flat event dicts, skipping non-matching blocks via index."""
        kindset = frozenset(kinds) if kinds is not None else None
        srcset = frozenset(srcs) if srcs is not None else None
        if include_meta and self.meta:
            yield self.meta
        for blk in self.index.get("blocks", []):
            if not self._block_matches(blk, kindset, srcset, t0, t1):
                self.blocks_skipped += 1
                continue
            payload = self._read_frame_at(blk["o"], _TAG_BLOCK)
            self.blocks_read += 1
            for rec in _decode_block(payload):
                if kindset is not None and rec["kind"] not in kindset:
                    continue
                if srcset is not None and rec["src"] not in srcset:
                    continue
                t = rec["t"]
                if t0 is not None and t < t0:
                    continue
                if t1 is not None and t > t1:
                    continue
                yield rec

    def iter_jsonl(self, **query: Any) -> Iterator[str]:
        """Matching events as canonical JSONL lines (no trailing newline)."""
        for rec in self.iter_events(**query):
            yield _dumps(rec, separators=(",", ":"), default=str)

    def close(self) -> None:
        self._f.close()

    def __enter__(self) -> "RtrcReader":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_rtrc_events(
    path: Union[str, Path],
    kinds: Optional[Iterable[str]] = None,
    include_meta: bool = False,
    strict: bool = False,
    stats: Optional[Dict[str, Any]] = None,
) -> Iterator[Dict[str, Any]]:
    """``read_events``-contract generator over an ``.rtrc`` file.

    The meta record is filtered out unless ``include_meta`` (matching
    the JSONL reader); truncated containers yield every complete block
    and warn with :class:`~repro.obs.export.TruncatedTraceWarning`
    (``strict=True`` raises instead).
    """
    from repro.obs.export import TruncatedTraceWarning

    with RtrcReader(path) as reader:
        if reader.truncated:
            if strict:
                raise RtrcFormatError(
                    f"{path}: truncated .rtrc container (missing footer)"
                )
            warnings.warn(
                f"{path}: truncated .rtrc container — recovered "
                f"{reader.events_total} events from complete blocks "
                "(crash-truncated trace?)",
                TruncatedTraceWarning,
                stacklevel=2,
            )
        for rec in reader.iter_events(kinds=kinds, include_meta=include_meta):
            yield rec
        if stats is not None:
            stats["skipped_lines"] = stats.get("skipped_lines", 0)
            stats["blocks_read"] = reader.blocks_read
            stats["blocks_skipped"] = reader.blocks_skipped
            stats["truncated"] = reader.truncated


def event_region_offset(path: Union[str, Path]) -> int:
    """Byte offset of the first block frame (just past the meta frame).

    Everything from this offset on is a pure function of the event
    stream (framing and zlib are deterministic), so two containers with
    identical events are byte-identical from here to EOF — which is what
    the determinism sanitizer's streaming diff exploits.
    """
    with open(path, "rb") as f:
        head = f.read(len(MAGIC))
        if head != MAGIC:
            raise RtrcFormatError(f"{path}: not an .rtrc file (bad magic)")
        tag = f.read(1)
        if tag != _TAG_META:
            raise RtrcFormatError(f"{path}: expected meta frame, got {tag!r}")
        raw_len = f.read(4)
        if len(raw_len) != 4:
            raise RtrcFormatError(f"{path}: truncated meta frame")
        (clen,) = _LEN.unpack(raw_len)
        return len(MAGIC) + 1 + 4 + clen


# ---------------------------------------------------------------------------
# Conversion
# ---------------------------------------------------------------------------


def jsonl_to_rtrc(
    src: Union[str, Path],
    dst: Union[str, Path],
    block_events: int = DEFAULT_BLOCK_EVENTS,
    sample: Optional[Dict[str, Union[str, int]]] = None,
) -> int:
    """Re-encode a JSONL trace as ``.rtrc``; returns events written.

    The meta record and every event field are stored verbatim (in their
    original key order), so converting back with :func:`rtrc_to_jsonl`
    reproduces the input byte for byte (absent sampling).
    """
    from repro.obs.export import read_events

    writer = RtrcWriter(dst, block_events=block_events, sample=sample)
    try:
        for rec in read_events(str(src), include_meta=True):
            writer.feed(rec)
    finally:
        writer.close()
    return writer.events_written


def rtrc_to_jsonl(src: Union[str, Path], dst: Union[str, Path]) -> int:
    """Expand an ``.rtrc`` container to flat JSONL; returns events written."""
    from repro.obs.export import open_trace_text

    n = 0
    with RtrcReader(src) as reader, open_trace_text(str(dst), "w") as out:
        if reader.meta:
            out.write(_dumps(reader.meta, separators=(",", ":"), default=str) + "\n")
        for line in reader.iter_jsonl():
            out.write(line + "\n")
            n += 1
    return n
