"""Static HTML dashboard over figures, traces and bench history.

``repro-udt report --html OUT_DIR`` (and ``repro-udt sweep --html``)
render a self-contained multi-page site: an index with sweep status,
per-figure runtime trends from the ``BENCH_runtime.json`` history and
cache-hit stats, plus one page per experiment carrying its inline-SVG
figure, fidelity deltas against the committed ledger, a CC timeline (if
a trace is at hand), the loss-forensics summary and the profiler
category table.  Everything is hand-written HTML/SVG strings — no
template engine, no JavaScript, no external assets — so a page works
from ``file://``, a CI artifact zip, or an air-gapped review laptop.

Nothing here *runs* experiments: results come from a sweep's digest
cache, a ``--results`` directory, or the ledger; a figure with no
resolvable result simply renders as "no result available" with the
command that would produce one.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from html import escape
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import figures as figmod
from repro.obs.figspec import ResultTable, compute_metrics, get_spec

Emit = Callable[[str], None]

_CSS = """
:root {
  color-scheme: light;
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --accent: #2a78d6; --good: #006300; --bad: #d03b3b; --warn: #ec835a;
}
* { box-sizing: border-box; }
body { margin: 0; background: var(--page); color: var(--ink);
  font-family: system-ui, -apple-system, 'Segoe UI', sans-serif;
  font-size: 15px; line-height: 1.45; }
main { max-width: 980px; margin: 0 auto; padding: 20px 24px 48px; }
h1 { font-size: 22px; margin: 12px 0 2px; }
h2 { font-size: 16px; margin: 0 0 10px; }
.sub { color: var(--ink2); margin: 0 0 8px; }
.crumb { font-size: 13px; color: var(--muted); margin-top: 16px; }
.crumb a { color: var(--accent); text-decoration: none; }
.card { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 16px 0; }
.card > svg { max-width: 100%; height: auto; }
table { border-collapse: collapse; font-size: 14px; width: 100%; }
th { color: var(--ink2); text-align: left; font-weight: 600;
  border-bottom: 1px solid var(--axis); padding: 5px 14px 5px 0; }
td { padding: 5px 14px 5px 0; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; vertical-align: middle; }
tr:last-child td { border-bottom: none; }
td.num, th.num { text-align: right; }
.ok { color: var(--good); font-weight: 600; }
.bad { color: var(--bad); font-weight: 600; }
.dim { color: var(--muted); }
code { background: var(--page); border: 1px solid var(--grid);
  border-radius: 4px; padding: 1px 5px; font-size: 13px; }
.note { color: var(--ink2); font-size: 14px; }
"""


def _esc(v: Any) -> str:
    return escape(str(v))


def _fmt(v: Any) -> str:
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        return _esc(v)
    if isinstance(v, int):
        return f"{v}"
    return figmod._fmt_num(float(v))


def _html_table(
    columns: Sequence[str], rows: Sequence[Sequence[Any]], numeric_from: int = 1
) -> str:
    num = ' class="num"'
    head = "".join(
        f"<th{num if i >= numeric_from else ''}>{_esc(c)}</th>"
        for i, c in enumerate(columns)
    )
    body = []
    for row in rows:
        cells = "".join(
            f"<td{num if i >= numeric_from else ''}>"
            f"{cell if isinstance(cell, _Raw) else _fmt(cell)}</td>"
            for i, cell in enumerate(row)
        )
        body.append(f"<tr>{cells}</tr>")
    return f"<table><thead><tr>{head}</tr></thead><tbody>{''.join(body)}</tbody></table>"


class _Raw(str):
    """A cell whose content is already HTML (badges, sparklines, links)."""


def _page(title: str, body: str, crumb: str = "") -> str:
    return (
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body><main>{crumb}{body}</main></body></html>\n"
    )


def _badge(ok: Optional[bool], ok_text: str = "✓ ok", bad_text: str = "✗ drifted") -> _Raw:
    if ok is None:
        return _Raw('<span class="dim">—</span>')
    if ok:
        return _Raw(f'<span class="ok">{_esc(ok_text)}</span>')
    return _Raw(f'<span class="bad">{_esc(bad_text)}</span>')


def _sparkline(values: Sequence[float], width: int = 150, height: int = 30) -> str:
    """Inline runtime-trend sparkline (seconds history, oldest→newest)."""
    vals = [float(v) for v in values]
    if len(vals) < 2:
        return '<span class="dim">—</span>'
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or (abs(hi) or 1.0)
    pad = 3.0
    xs = [pad + i * (width - 2 * pad) / (len(vals) - 1) for i in range(len(vals))]
    ys = [height - pad - (v - lo) / span * (height - 2 * pad) for v in vals]
    pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img" aria-label="runtime trend, {len(vals)} runs">'
        f'<title>{figmod._fmt_num(vals[0])}s → {figmod._fmt_num(vals[-1])}s '
        f"over {len(vals)} runs</title>"
        f'<polyline points="{pts}" fill="none" stroke="#2a78d6" stroke-width="2" '
        f'stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{xs[-1]:.1f}" cy="{ys[-1]:.1f}" r="2.5" fill="#2a78d6"/>'
        "</svg>"
    )


# -- input collection -------------------------------------------------------


@dataclass
class DashboardInputs:
    """Everything :func:`build_dashboard` renders, pre-resolved."""

    tables: Dict[str, ResultTable] = field(default_factory=dict)
    sources: Dict[str, str] = field(default_factory=dict)
    ledger: Dict[str, Any] = field(default_factory=dict)
    bench: Dict[str, Any] = field(default_factory=dict)
    traces: Dict[str, Path] = field(default_factory=dict)
    profiles: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    sweep_summary: Optional[str] = None
    progress: Optional[Dict[str, Any]] = None
    lint_status: Optional[Dict[str, Any]] = None

    def exp_ids(self) -> List[str]:
        ids = set(self.tables) | set(self.ledger.get("figures", {})) | set(self.traces)
        return sorted(ids)


def collect_inputs(
    cache_dir: Optional[Path] = None,
    results_dir: Optional[Path] = None,
    bench_path: Optional[Path] = None,
    ledger_path: Optional[Path] = None,
    traces: Optional[Dict[str, Path]] = None,
    only: Optional[Sequence[str]] = None,
    sweep_summary: Optional[str] = None,
    progress_path: Optional[Path] = None,
) -> DashboardInputs:
    """Scan the cache / results dir / ledgers into dashboard inputs.

    ``traces`` maps experiment id -> trace path (e.g. a sweep's
    ``--trace-dir`` output, or the single trace handed to ``repro-udt
    report``).  ``progress_path`` points at a ``sweep --progress`` feed
    (``progress.jsonl``); when it holds records, the index page gets a
    live-run card.  Nothing is executed; missing results stay missing.
    """
    from repro.runner.cache import ResultCache
    from repro.runner.sweep import DEFAULT_BENCH, _read_bench

    inputs = DashboardInputs(sweep_summary=sweep_summary)
    if progress_path is not None:
        from repro.runner.progress import read_progress

        inputs.progress = read_progress(Path(progress_path))
    inputs.ledger = figmod.read_ledger(
        Path(ledger_path) if ledger_path else figmod.DEFAULT_LEDGER
    )
    inputs.bench = _read_bench(Path(bench_path) if bench_path else DEFAULT_BENCH)

    # code-health feed left behind by `repro-udt lint` / `conform`
    from repro.analysis.cli import STATUS_RELPATH
    from repro.analysis.core import repo_root

    repo = repo_root()
    if repo is not None:
        try:
            status = json.loads((repo / STATUS_RELPATH).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            status = None
        if isinstance(status, dict) and status.get("schema") == 1:
            inputs.lint_status = status

    # newest cache entry per experiment; a results dir (explicit) wins
    cache = ResultCache(Path(cache_dir) if cache_dir else None)
    for entry in cache.entries():
        exp_id = entry.get("exp_id")
        result = entry.get("result")
        if not exp_id or not isinstance(result, dict):
            continue
        inputs.tables[exp_id] = ResultTable(result)
        inputs.sources[exp_id] = (
            f"cache (scale={entry.get('scale', '?')}, digest "
            f"{str(entry.get('digest', ''))[:12]})"
        )
    if results_dir is not None:
        for path in sorted(Path(results_dir).glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as f:
                    entry = json.load(f)
            except (json.JSONDecodeError, OSError):
                continue
            table = figmod._table_from_entry(entry)
            if table.exp_id:
                inputs.tables[table.exp_id] = table
                inputs.sources[table.exp_id] = f"results dir ({path.name})"

    for exp_id, path in (traces or {}).items():
        inputs.traces[exp_id] = Path(path)

    # profiler snapshots: cwd and benchmarks/results
    for pattern_root in (Path("."), Path("benchmarks/results")):
        for path in sorted(pattern_root.glob("BENCH_profile_*.json")):
            exp_id = path.stem[len("BENCH_profile_"):]
            try:
                with open(path, "r", encoding="utf-8") as f:
                    inputs.profiles[exp_id] = json.load(f)
            except (json.JSONDecodeError, OSError):
                continue

    if only:
        keep = set(only)
        inputs.tables = {k: v for k, v in inputs.tables.items() if k in keep}
        inputs.traces = {k: v for k, v in inputs.traces.items() if k in keep}
        inputs.ledger = dict(inputs.ledger)
        inputs.ledger["figures"] = {
            k: v for k, v in inputs.ledger.get("figures", {}).items() if k in keep
        }
    return inputs


# -- fidelity + forensics fragments -----------------------------------------


def _fidelity_rows(
    exp_id: str, inputs: DashboardInputs
) -> Tuple[Optional[List[List[Any]]], Optional[bool]]:
    """(rows for the delta table, all-ok flag); (None, None) if n/a."""
    entry = inputs.ledger.get("figures", {}).get(exp_id)
    spec = get_spec(exp_id)
    table = inputs.tables.get(exp_id)
    if not entry or spec is None or table is None:
        return None, None
    try:
        current = compute_metrics(spec, table)
    except (KeyError, ValueError):
        return None, None
    rows: List[List[Any]] = []
    all_ok = True
    for name, ref in sorted(entry.get("metrics", {}).items()):
        tol = entry.get("tolerances", {}).get(name, {})
        allowed = figmod._allowed_delta(tol, ref)
        if name in current:
            delta = current[name] - ref
            ok = abs(delta) <= allowed
        else:
            delta, ok = None, False
        all_ok = all_ok and ok
        rows.append(
            [
                name,
                ref,
                current.get(name, "missing"),
                "—" if delta is None else f"{delta:+.4g}",
                f"±{figmod._fmt_num(allowed)}",
                _badge(ok),
            ]
        )
    return rows, all_ok


def _forensics_fragment(exp_id: str, trace_path: Path) -> str:
    """Loss-forensics + timeline sections for one experiment's trace."""
    from repro.obs.report import render_report, summary_only_hint
    from repro.obs.spans import build_spans
    from repro.obs.timeline import TimelineRecorder

    parts: List[str] = []
    try:
        recorder = TimelineRecorder.from_jsonl(str(trace_path))
    except (OSError, ValueError):
        recorder = None
    if recorder is not None:
        svg = figmod.render_timeline(recorder, title="CC sending rate over time")
        if svg:
            parts.append(f'<div class="card"><h2>CC timeline</h2>{svg}</div>')
    try:
        spanset = build_spans(str(trace_path))
    except (OSError, ValueError):
        return "".join(parts)
    hint = summary_only_hint(spanset)
    if hint:
        parts.append(
            f'<div class="card"><h2>Loss forensics</h2>'
            f'<p class="note">{_esc(hint)}</p></div>'
        )
    else:
        parts.append(
            f'<div class="card"><h2>Loss forensics</h2>'
            f"<pre>{_esc(render_report(spanset))}</pre></div>"
        )
    return "".join(parts)


# -- page rendering ---------------------------------------------------------


def _progress_card(progress: Dict[str, Any]) -> str:
    """Live-run card from a ``sweep --progress`` feed (progress.jsonl)."""
    begin = progress.get("begin") or {}
    end = progress.get("end")
    workers: Dict[str, Dict[str, Any]] = progress.get("workers") or {}
    live = end is None
    title = "Live run" if live else "Last run"
    sub_bits = []
    if begin.get("selector"):
        sub_bits.append(f"sweep {begin['selector']}")
    if begin.get("scale") is not None:
        sub_bits.append(f"scale={begin['scale']:g}")
    if begin.get("jobs") is not None:
        sub_bits.append(f"jobs={begin['jobs']}")
    if begin.get("cached"):
        sub_bits.append(f"{len(begin['cached'])} cached")
    if end is not None:
        sub_bits.append(
            f"finished in {end.get('seconds', 0.0):.1f}s "
            f"({end.get('executed', 0)} executed, {end.get('failed', 0)} failed)"
        )
    ts = progress.get("ts")
    if live and isinstance(ts, (int, float)):
        age = max(0.0, time.time() - ts)
        sub_bits.append(f"last heartbeat {age:.0f}s ago")
    rows: List[List[Any]] = []
    order = [e for e in (begin.get("pending") or []) if e in workers]
    order += [e for e in sorted(workers) if e not in order]
    for exp_id in order:
        w = workers[exp_id]
        hb = w.get("last") or {}
        status = w.get("status", "running")
        if status == "done":
            badge = _badge(True, ok_text=f"✓ done {w.get('seconds', 0.0):.1f}s")
        elif status == "failed":
            badge = _badge(False, bad_text="✗ failed")
        else:
            badge = _Raw('<span class="dim">● running</span>')
        vt, vt_end = hb.get("vt"), hb.get("vt_end")
        if vt is not None and vt_end:
            frontier = f"{vt:.2f}/{vt_end:.2f}s ({min(100.0, 100.0*vt/vt_end):.0f}%)"
        elif vt is not None:
            frontier = f"{vt:.2f}s"
        else:
            frontier = "—"
        eps = hb.get("eps")
        eta = hb.get("eta")
        rows.append(
            [
                exp_id,
                badge,
                frontier,
                "—" if eps is None else f"{eps/1e3:.0f}k/s",
                "—" if hb.get("events") is None else f"{hb['events']:,}",
                "—" if eta is None or status != "running" else f"{eta:.0f}s",
                "—" if hb.get("wall") is None else f"{hb['wall']:.1f}s",
            ]
        )
    card = [f"<h2>{title}</h2>"]
    if sub_bits:
        card.append(f'<p class="note">{_esc(" · ".join(sub_bits))}</p>')
    if rows:
        card.append(
            _html_table(
                ["experiment", "status", "vtime frontier", "events/s",
                 "events", "eta", "wall"],
                rows,
                numeric_from=2,
            )
        )
    else:
        card.append('<p class="note">no worker activity recorded.</p>')
    return f'<div class="card">{"".join(card)}</div>'


def _code_health_card(status: Dict[str, Any]) -> str:
    """Lint + conformance card from ``analysis/.lintstatus.json``.

    The status file is a side effect of the last ``repro-udt lint`` /
    ``conform`` invocation in this checkout, so the card shows *last
    recorded* health, not a fresh run — each section carries its own
    timestamp to make the staleness visible.
    """

    def _when(section: Dict[str, Any]) -> str:
        ts = section.get("updated")
        if not isinstance(ts, (int, float)):
            return ""
        return time.strftime("%Y-%m-%d %H:%M UTC", time.gmtime(ts))

    parts: List[str] = ["<h2>Code health</h2>"]
    lint = status.get("lint")
    if isinstance(lint, dict):
        badge = _badge(bool(lint.get("gate_passed")), bad_text="✗ new findings")
        bits = [
            f"{lint.get('findings', 0)} finding(s)",
            f"{lint.get('new', 0)} new",
            f"{lint.get('baselined', 0)} baselined",
        ]
        cache = lint.get("cache")
        if isinstance(cache, dict):
            bits.append(
                f"cache {cache.get('hits', 0)} hit/"
                f"{cache.get('misses', 0)} analysed"
            )
        elapsed = lint.get("elapsed_s")
        if isinstance(elapsed, (int, float)):
            bits.append(f"{elapsed:.2f}s")
        parts.append(
            f"<p>lint: {badge} · {_esc(' · '.join(bits))} "
            f'<span class="dim">{_esc(_when(lint))}</span></p>'
        )
    conf = status.get("conformance")
    if isinstance(conf, dict) and conf.get("traces"):
        rows: List[List[Any]] = []
        for rep in conf["traces"]:
            if not isinstance(rep, dict):
                continue
            rows.append(
                [
                    Path(str(rep.get("trace", "?"))).name,
                    rep.get("events_checked", 0),
                    len(rep.get("srcs", [])),
                    _Raw(_badge(bool(rep.get("ok")), bad_text="✗ violations")),
                    len(rep.get("violations", [])),
                ]
            )
        parts.append(
            _html_table(
                ["trace", "model events", "srcs", "conformance", "violations"],
                rows,
                numeric_from=4,
            )
            + f'<p class="note">checked against '
            f"<code>analysis/protocol_model.json</code> "
            f"{_esc(_when(conf))}</p>"
        )
    if len(parts) == 1:
        parts.append('<p class="note">no lint / conformance run recorded.</p>')
    return f'<div class="card">{"".join(parts)}</div>'


def _experiment_page(exp_id: str, inputs: DashboardInputs) -> str:
    from repro.experiments import REGISTRY

    exp = REGISTRY.get(exp_id)
    title = exp_id if exp is None else f"{exp_id} — {exp.description}"
    artefact = "" if exp is None else exp.paper_artefact
    crumb = '<p class="crumb"><a href="index.html">← dashboard index</a></p>'
    body: List[str] = [f"<h1>{_esc(title)}</h1>"]
    if artefact:
        body.append(f'<p class="sub">paper artefact: {_esc(artefact)}</p>')

    table = inputs.tables.get(exp_id)
    spec = get_spec(exp_id)
    if table is not None and spec is not None:
        try:
            svg = figmod.render_figure(spec, table)
            body.append(f'<div class="card">{svg}</div>')
        except (KeyError, ValueError) as exc:
            body.append(
                f'<div class="card"><p class="note">figure not rendered: '
                f"{_esc(exc)}</p></div>"
            )
    elif table is None:
        body.append(
            f'<div class="card"><p class="note">no result available — run '
            f"<code>repro-udt sweep --only {_esc(exp_id)}</code> to populate "
            f"the cache.</p></div>"
        )

    fid_rows, _fid_ok = _fidelity_rows(exp_id, inputs)
    if fid_rows is not None:
        body.append(
            '<div class="card"><h2>Fidelity vs committed ledger</h2>'
            + _html_table(
                ["metric", "ledger", "current", "Δ", "band", "status"], fid_rows
            )
            + "</div>"
        )
    elif inputs.ledger.get("figures", {}).get(exp_id):
        body.append(
            '<div class="card"><h2>Fidelity vs committed ledger</h2>'
            '<p class="note">ledger entry exists but no current result to '
            "compare.</p></div>"
        )

    if exp_id in inputs.traces:
        body.append(_forensics_fragment(exp_id, inputs.traces[exp_id]))

    prof = inputs.profiles.get(exp_id)
    cats = (prof or {}).get("categories")
    if cats:
        rows = [
            [
                c.get("category", "?"),
                c.get("events", 0),
                f"{c.get('seconds', 0.0):.3f}",
                f"{100.0 * c.get('share', 0.0):.1f}%",
            ]
            for c in cats
        ]
        body.append(
            '<div class="card"><h2>Hot-path profile</h2>'
            + _html_table(["category", "events", "seconds", "share"], rows)
            + "</div>"
        )

    if table is not None:
        src = inputs.sources.get(exp_id, "")
        body.append(
            f'<div class="card"><h2>Result table</h2>'
            + _html_table(table.columns, table.rows)
            + (f'<p class="note">source: {_esc(src)}</p>' if src else "")
            + (f'<p class="note">{_esc(table.notes)}</p>' if table.notes else "")
            + "</div>"
        )
    return _page(title, "".join(body), crumb=crumb)


def _index_page(inputs: DashboardInputs, generated: str) -> str:
    from repro.experiments import REGISTRY

    body: List[str] = [
        "<h1>UDT repro dashboard</h1>",
        f'<p class="sub">figures, fidelity and runtime history · generated '
        f"{_esc(generated)}</p>",
    ]
    if inputs.progress:
        body.append(_progress_card(inputs.progress))
    if inputs.sweep_summary:
        body.append(
            f'<div class="card"><h2>This sweep</h2>'
            f"<pre>{_esc(inputs.sweep_summary)}</pre></div>"
        )

    # experiments table with fidelity badge + runtime trend
    runtimes = inputs.bench.get("runtimes", {})
    history = inputs.bench.get("history", {})
    rows: List[List[Any]] = []
    for exp_id in inputs.exp_ids():
        exp = REGISTRY.get(exp_id)
        _fid_rows, fid_ok = _fidelity_rows(exp_id, inputs)
        latest = runtimes.get(exp_id, {}).get("seconds")
        trend = [h.get("seconds") for h in history.get(exp_id, []) if "seconds" in h]
        rows.append(
            [
                _Raw(f'<a href="{_esc(exp_id)}.html">{_esc(exp_id)}</a>'),
                "" if exp is None else exp.paper_artefact,
                _Raw(_badge(fid_ok, bad_text="✗ drifted")),
                "—" if latest is None else f"{latest:.1f}s",
                _Raw(_sparkline(trend)),
            ]
        )
    body.append(
        '<div class="card"><h2>Experiments</h2>'
        + _html_table(
            ["experiment", "paper artefact", "fidelity", "latest runtime", "trend"],
            rows,
            numeric_from=3,
        )
        + '<p class="note">trend: per-run seconds from the '
        "<code>BENCH_runtime.json</code> history (oldest → newest).</p></div>"
    )

    # sweep status + cache-hit stats from the runtime ledger
    sweeps = inputs.bench.get("sweeps", {})
    if sweeps:
        srows = []
        for key, s in sorted(sweeps.items()):
            n = s.get("experiments", 0)
            cached = s.get("cached", 0)
            hit = f"{cached}/{n}" if n else "—"
            srows.append(
                [key, n, hit, f"{s.get('seconds', 0.0):.1f}s"]
            )
        body.append(
            '<div class="card"><h2>Sweep status</h2>'
            + _html_table(
                ["sweep", "experiments", "cache hits", "wall time"], srows
            )
            + "</div>"
        )
    if inputs.lint_status:
        body.append(_code_health_card(inputs.lint_status))
    return _page("UDT repro dashboard", "".join(body))


def build_dashboard(
    out_dir: Path,
    inputs: DashboardInputs,
    emit: Optional[Emit] = None,
) -> Path:
    """Write the whole site under ``out_dir``; returns the index path."""
    say: Emit = emit if emit is not None else (lambda s: None)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    generated = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime())
    for exp_id in inputs.exp_ids():
        page = _experiment_page(exp_id, inputs)
        (out / f"{exp_id}.html").write_text(page, encoding="utf-8")
    index = out / "index.html"
    index.write_text(_index_page(inputs, generated), encoding="utf-8")
    say(f"[html] dashboard ({len(inputs.exp_ids())} experiment pages) -> {index}")
    return index
