"""The authoritative telemetry event catalog.

Every event kind the bus can carry is declared here with its payload
schema: the keys a producer *must* emit (``required``) and the keys it
*may* emit (``optional``).  This file — not the emit sites, not the
consumers — is the contract trace consumers program against; the
``event-schema`` checker in :mod:`repro.analysis` cross-checks every
``bus.emit`` site and every consumer key access against it, so adding,
renaming or dropping a payload key without updating the catalog fails
``repro-udt lint`` (and CI).

Workflow for changing an event payload:

1. Edit the spec here (move a key between ``required``/``optional``,
   add a new one, delete a dead one).
2. Update the emit site(s) and any consumer in ``repro/obs``.
3. ``repro-udt lint --rule event-schema`` must come back clean.

``virtual=True`` marks records that appear in traces but are not
produced through :meth:`repro.obs.bus.EventBus.emit` (the ``trace.meta``
header written by :class:`repro.obs.export.JsonlWriter`); the checker
skips the produced-site checks for those.  ``detail=True`` marks the
per-packet detail tier (see :mod:`repro.obs.bus`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from repro.obs import bus as OB


@dataclass(frozen=True)
class EventSpec:
    """Payload contract for one event kind.

    Beyond the keys listed here every event record also carries the
    base envelope ``t`` / ``kind`` / ``src`` added by the bus and the
    JSONL writer; those are implicit and never declared per-kind.

    ``units`` annotates the physical dimension of payload keys
    (``s``/``us``/``bytes``/``bits``/``pkts``/``pps``/``bps``); the
    ``units`` lint rule (repro.analysis.units) cross-checks every emit
    site's keyword expressions against it.  Unannotated keys are
    dimensionless or free-form and are never checked.
    """

    kind: str
    doc: str
    required: FrozenSet[str] = frozenset()
    optional: FrozenSet[str] = frozenset()
    detail: bool = False
    virtual: bool = False
    units: Dict[str, str] = field(default_factory=dict)

    @property
    def keys(self) -> FrozenSet[str]:
        return self.required | self.optional


def _spec(
    kind: str,
    doc: str,
    required: str = "",
    optional: str = "",
    detail: bool = False,
    virtual: bool = False,
    units: str = "",
) -> EventSpec:
    return EventSpec(
        kind=kind,
        doc=doc,
        required=frozenset(required.split()) if required else frozenset(),
        optional=frozenset(optional.split()) if optional else frozenset(),
        detail=detail,
        virtual=virtual,
        units=dict(
            pair.split(":", 1) for pair in units.split()  # "key:unit" pairs
        )
        if units
        else {},
    )


#: kind -> spec.  Keep ordering grouped as in repro/obs/bus.py.
CATALOG: Dict[str, EventSpec] = {
    s.kind: s
    for s in (
        _spec(
            "trace.meta",
            "JSONL trace header written by JsonlWriter.write_meta",
            required="schema",
            optional="generator experiments packet_detail",
            virtual=True,
        ),
        _spec(
            OB.CONN_CONNECTED,
            "handshake completed (src = endpoint)",
            required="peer_seq flow_window initiator",
            units="flow_window:pkts",
        ),
        _spec(
            OB.CONN_CLOSED,
            "endpoint closed (src = endpoint)",
            required="data_pkts_sent data_pkts_received",
            units="data_pkts_sent:pkts data_pkts_received:pkts",
        ),
        _spec(OB.SND_ACK, "sender processed an ACK", required="seq light"),
        _spec(
            OB.SND_NAK,
            "sender processed a NAK",
            required="lost ranges froze",
            units="lost:pkts",
        ),
        _spec(
            OB.CC_SAMPLE,
            "congestion-control state snapshot after a CC update",
            required=(
                "trigger rate_bps period cwnd flow_window rtt bw_est "
                "recv_rate loss_len exp_count slow_start"
            ),
            units=(
                "rate_bps:bps period:s cwnd:pkts flow_window:pkts rtt:s "
                "bw_est:pps recv_rate:pps loss_len:pkts"
            ),
        ),
        _spec(
            OB.CC_SLOWSTART_EXIT,
            "controller left slow start",
            required="period window",
            units="period:s window:pkts",
        ),
        _spec(
            OB.CC_DECREASE,
            "controller applied a multiplicative decrease",
            required="trigger",
            optional="period window",
            units="period:s window:pkts",
        ),
        _spec(
            OB.CC_DELAY_WARNING,
            "obsolete delay-trend design fired an early decrease",
            required="period",
            units="period:s",
        ),
        _spec(
            OB.EXP_TIMEOUT,
            "EXP (no-feedback) timer fired with data in flight",
            required="exp_count unacked",
            units="unacked:pkts",
        ),
        _spec(
            OB.RCV_LOSS,
            "receiver detected a sequence hole",
            required="first last length",
            units="length:pkts",
        ),
        _spec(
            OB.RCV_BUFFER_DROP,
            "receive buffer refused a DATA packet",
            required="seq size",
            units="size:bytes",
        ),
        _spec(
            OB.LINK_DROP,
            "a link dropped a packet ('queue' at enqueue, 'loss' on the wire)",
            required="reason size flow uid seq",
            optional="qlen",
            units="size:bytes qlen:pkts",
        ),
        _spec(
            OB.QUEUE_HIGHWATER,
            "egress queue reached a new occupancy high-water mark",
            required="pkts bytes",
            units="pkts:pkts bytes:bytes",
        ),
        _spec(
            OB.CPU_CHARGE,
            "aggregated CPU cycle charges from a host meter",
            required="total_cycles util",
        ),
        _spec(
            OB.FLOW_DONE,
            "a finite simulated flow delivered its last byte",
            required="bytes elapsed",
            units="bytes:bytes elapsed:s",
        ),
        _spec(
            OB.FLUID_ENTER,
            "hybrid tier left the packet engine for an analytic fluid span",
            required="flows",
        ),
        _spec(
            OB.FLUID_EXIT,
            "hybrid tier re-entered the packet engine at a CC boundary",
            required="reason span ticks",
            units="span:s",
        ),
        _spec(
            OB.PKT_SND,
            "sender emitted a DATA packet",
            required="seq size retx",
            detail=True,
            units="size:bytes",
        ),
        _spec(
            OB.PKT_RCV,
            "receiver accepted a DATA packet",
            required="seq retx",
            detail=True,
        ),
        _spec(
            OB.LINK_ENQ,
            "a link accepted a packet for transmission (src = link name)",
            required="uid flow seq qlen",
            detail=True,
        ),
        _spec(
            OB.LINK_DEQ,
            "a link finished serialising a packet (src = link name)",
            required="uid flow seq",
            detail=True,
        ),
    )
}

#: Envelope keys present on every JSONL event record (bus + writer).
BASE_KEYS = frozenset({"t", "kind", "src"})


def spec_for(kind: str) -> EventSpec:
    """Look up one kind; raises KeyError for undeclared kinds."""
    return CATALOG[kind]
