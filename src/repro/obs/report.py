"""Loss-forensics report rendering (`repro-udt report <trace.jsonl>`).

Takes a :class:`~repro.obs.spans.SpanSet` reconstructed from a JSONL
trace and renders per-connection forensics — drops by link and cause,
retransmission chains, queue-wait percentiles, receiver loss events —
as an aligned text report or a machine-readable dict.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.spans import SpanSet
from repro.sim.engine import format_vtime

REPORT_SCHEMA = 1


def report_dict(spanset: SpanSet, **meta: Any) -> Dict[str, Any]:
    """Machine-readable form of the whole report (JSON-stable keys)."""
    d: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "kind": "trace.report",
        "trace_meta": spanset.meta,
        "events_consumed": spanset.events_consumed,
        "t_max": spanset.t_max,
        "connections": [spanset.forensics(c) for c in spanset.connections()],
        "drops_total": spanset.total_drops(),
    }
    d.update(meta)
    return d


def summary_only_hint(spanset: SpanSet) -> Optional[str]:
    """A re-run hint when the trace carries no packet-lifecycle detail.

    Returns None when the trace has spans to report on, or when it was
    recorded with packet detail enabled (an empty-but-detailed trace is
    a real finding, not a recording mistake).
    """
    # loss/drop summary events attribute connections even without the
    # detail tier; only per-seq spans prove packet detail was recorded
    if any(spanset.spans.values()):
        return None
    if (spanset.meta or {}).get("packet_detail"):
        return None
    return (
        "this trace has no packet-detail spans — re-record it with "
        "--trace-packets (e.g. repro-udt run <exp> --trace t.jsonl "
        "--trace-packets) to enable loss forensics"
    )


def _fmt_wait(seconds: float) -> str:
    if seconds < 1.0:
        return f"{seconds*1e3:.3f}ms"
    return f"{seconds:.3f}s"


def render_report(spanset: SpanSet, top_chains: int = 6) -> str:
    """Human-facing per-connection loss-forensics report."""
    lines: List[str] = ["== packet-lifecycle report =="]
    meta = spanset.meta or {}
    gen = meta.get("generator")
    exps = meta.get("experiments")
    header = f"{spanset.events_consumed} events over {format_vtime(spanset.t_max)} virtual"
    if gen:
        header += f", generator={gen}"
    if exps:
        header += f", experiments={exps}"
    lines.append(header)
    conns = spanset.connections()
    if not conns:
        lines.append(
            "no packet-lifecycle events found — was the trace recorded "
            "with --trace-packets (bus detail tier)?"
        )
    for conn in conns:
        f = spanset.forensics(conn)
        lines.append(f"-- connection {conn} --")
        if f["pkts_sent"]:
            retx_pct = 100.0 * f["retransmissions"] / max(1, f["transmissions"])
            lines.append(
                f"  sent {f['pkts_sent']} unique seqs in {f['transmissions']} "
                f"transmissions ({f['retransmissions']} retx, {retx_pct:.1f}%)"
            )
            lines.append(
                f"  delivered {f['delivered']}  acked {f['acked']}  "
                f"never-delivered {f['dropped']}  in-flight-at-end "
                f"{f['in_flight_at_end']}"
            )
            chain_items = sorted(
                ((int(k), v) for k, v in f["chains"].items()), key=lambda kv: kv[0]
            )
            if chain_items:
                shown = chain_items[:top_chains]
                chain_s = "  ".join(f"{k}x:{v}" for k, v in shown)
                if len(chain_items) > len(shown):
                    chain_s += "  ..."
                lines.append(
                    f"  retransmission chains (sends per seq): {chain_s}  "
                    f"(longest {f['max_chain']})"
                )
        if f["drops_by_link"]:
            lines.append("  drops by link and cause:")
            for link, by_cause in sorted(f["drops_by_link"].items()):
                for reason, n in sorted(by_cause.items()):
                    lines.append(f"    {link:<16s} {reason:<7s} {n}")
        if f["buffer_drops"]:
            lines.append(f"  receive-buffer drops: {f['buffer_drops']}")
        for link, qw in sorted(f["queue_wait"].items()):
            lines.append(
                f"  queue wait on {link}: p50={_fmt_wait(qw['p50'])} "
                f"p90={_fmt_wait(qw['p90'])} p99={_fmt_wait(qw['p99'])} "
                f"max={_fmt_wait(qw['max'])} (n={qw['count']})"
            )
        le = f["loss_events"]
        if le["count"]:
            lines.append(
                f"  receiver loss events: {le['count']} "
                f"(min {le['min']}, mean {le['mean']:.1f}, max {le['max']} pkts)"
            )
        naks = f["naks"]
        if naks["received"] or f["exp_timeouts"]:
            lines.append(
                f"  NAKs received: {naks['received']} covering "
                f"{naks['pkts_reported']} pkts; EXP timeouts: {f['exp_timeouts']}"
            )
        done = spanset.flow_done.get(conn)
        if done:
            lines.append(
                f"  flow completed at {format_vtime(done['t'])} "
                f"({done['bytes']} bytes in {format_vtime(done['elapsed'] or 0.0)})"
            )
    totals = spanset.total_drops()
    if totals:
        total_n = sum(n for by_cause in totals.values() for n in by_cause.values())
        lines.append(f"-- all wire drops ({total_n}) --")
        for link, by_cause in totals.items():
            for reason, n in sorted(by_cause.items()):
                lines.append(f"  {link:<16s} {reason:<7s} {n}")
    return "\n".join(lines)


def render_report_from_file(path: str, kinds: Optional[List[str]] = None) -> str:
    """Convenience: read a trace file and render its report."""
    from repro.obs.spans import build_spans

    return render_report(build_spans(path))
