"""JSONL trace export and run summaries (qlog-inspired).

One event per line, flat JSON objects::

    {"kind": "trace.meta", "schema": 1, "generator": "repro-udt", ...}
    {"t": 0.1103, "kind": "cc.sample", "src": "udt0-snd", "rate_bps": ...}
    {"t": 0.2150, "kind": "link.drop", "src": "1->2", "reason": "queue", ...}

The first line is a metadata header (``kind == "trace.meta"``); every
other line is an event with at least ``t``/``kind``/``src``.  Flat JSONL
(rather than nested qlog) keeps the files greppable and streamable —
``jq 'select(.kind=="cc.sample")'`` is the expected workflow — while the
schema field leaves room to evolve.

Trace paths dispatch on suffix, everywhere a trace is read or written:

* ``*.jsonl`` — plain text JSONL (the interchange format above);
* ``*.jsonl.gz`` / ``*.gz`` — the same stream gzip-compressed (written
  with a zeroed mtime so identical event streams stay byte-identical);
* ``*.rtrc`` — the indexed binary store (``repro.obs.store``), the
  format for packet-tier and paper-scale traces.

``read_events`` yields the same flat dicts for all three, so every
consumer (timelines, spans, reports, the sanitizer) is format-agnostic.
"""

from __future__ import annotations

import gzip
import io
import json
import warnings
from contextlib import contextmanager
from collections import Counter as _Counter, defaultdict
from typing import Any, Dict, Iterable, Iterator, List, Optional, TextIO, Union

from repro.obs.bus import CC_SAMPLE, Event, EventBus, Subscription, default_bus

SCHEMA_VERSION = 1


def is_rtrc_path(path: Any) -> bool:
    """True when ``path`` names an ``.rtrc`` binary trace container."""
    return str(path).endswith(".rtrc")


class _DeterministicGzipFile(gzip.GzipFile):
    """Writable GzipFile with zeroed mtime/name that owns its file.

    The gzip header embeds a timestamp by default, which would break the
    byte-identity guarantees the sweep runner and sanitizer rely on; a
    fixed ``mtime=0`` keeps identical event streams byte-identical.
    Closing also closes the underlying file (GzipFile alone does not
    close a caller-provided fileobj).
    """

    def __init__(self, path: str):
        self._raw = open(path, "wb")
        super().__init__(filename="", mode="wb", fileobj=self._raw, mtime=0)

    def close(self) -> None:
        try:
            super().close()
        finally:
            self._raw.close()


def open_trace_text(path: str, mode: str = "r") -> TextIO:
    """Open a JSONL trace path for text I/O, gzip-transparent on suffix."""
    p = str(path)
    if p.endswith(".gz"):
        if "r" in mode:
            return io.TextIOWrapper(gzip.open(p, "rb"), encoding="utf-8")
        return io.TextIOWrapper(
            _DeterministicGzipFile(p), encoding="utf-8", newline="\n"
        )
    return open(p, mode)


class JsonlWriter:
    """Streams bus events to a text file as JSON lines.

    ``sample`` takes the per-kind sampling spec of
    :class:`repro.obs.store.Sampler` (``{kind: "stride:N" | "head:N"}``);
    the policy is recorded in ``trace.meta`` so downstream consumers
    know what was dropped.
    """

    def __init__(
        self,
        out: TextIO,
        close_out: bool = False,
        sample: Optional[Dict[str, Union[str, int]]] = None,
    ):
        self._out = out
        self._close_out = close_out
        self.events_written = 0
        self._bus: Optional[EventBus] = None
        self._sub: Optional[Subscription] = None
        if sample:
            from repro.obs.store import Sampler

            self.sampler: Optional[Any] = Sampler(sample)
        else:
            self.sampler = None

    def write_meta(self, **meta: Any) -> None:
        rec = {"kind": "trace.meta", "schema": SCHEMA_VERSION}
        rec.update(meta)
        if self.sampler:
            rec.setdefault("sampling", self.sampler.policy())
        self._out.write(json.dumps(rec, separators=(",", ":"), default=str) + "\n")

    def on_event(self, ev: Event) -> None:
        if self.sampler is not None and not self.sampler.admit(ev.kind):
            return
        self._out.write(
            json.dumps(ev.to_dict(), separators=(",", ":"), default=str) + "\n"
        )
        self.events_written += 1

    # -- wiring ----------------------------------------------------------
    def attach(
        self,
        bus: Optional[EventBus] = None,
        kinds: Optional[Iterable[str]] = None,
        detail: bool = False,
    ) -> "JsonlWriter":
        if self._sub is not None:
            raise RuntimeError("writer already attached")
        self._bus = bus if bus is not None else default_bus()
        self._sub = self._bus.subscribe(self.on_event, kinds=kinds, detail=detail)
        return self

    def detach(self) -> None:
        if self._bus is not None and self._sub is not None:
            self._bus.unsubscribe(self._sub)
        self._bus = self._sub = None

    def close(self) -> None:
        self.detach()
        self._out.flush()
        if self._close_out:
            self._out.close()


def make_trace_writer(
    path: str, sample: Optional[Dict[str, Union[str, int]]] = None
) -> Any:
    """Create the writer matching ``path``'s trace format.

    ``*.rtrc`` gets the indexed binary store writer; everything else
    (``*.jsonl``, ``*.jsonl.gz``) a :class:`JsonlWriter`.  Both expose
    the same ``write_meta``/``on_event``/``attach``/``detach``/``close``
    surface, so callers never branch on format.
    """
    if is_rtrc_path(path):
        from repro.obs.store import RtrcWriter

        return RtrcWriter(path, sample=sample)
    return JsonlWriter(open_trace_text(path, "w"), close_out=True, sample=sample)


class TruncatedTraceWarning(UserWarning):
    """A JSONL trace contained malformed (usually crash-truncated) lines."""


def read_events(
    path: str,
    kinds: Optional[Iterable[str]] = None,
    include_meta: bool = False,
    strict: bool = False,
    stats: Optional[Dict[str, int]] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield event dicts from a trace (optionally filtered by kind).

    Dispatches on suffix: ``*.rtrc`` routes to the indexed binary
    reader, ``*.gz`` decompresses transparently, anything else is plain
    JSONL — the yielded dicts are identical in all cases.

    A trace from a crashed or killed run usually ends mid-line; by
    default such malformed lines are skipped (and counted) instead of
    raising, so forensics tooling still works on truncated traces.  One
    :class:`TruncatedTraceWarning` summarises the skips when the reader
    finishes.  Pass ``strict=True`` to re-raise instead, or a ``stats``
    dict to receive the count under ``stats["skipped_lines"]``.
    """
    if is_rtrc_path(path):
        from repro.obs.store import read_rtrc_events

        yield from read_rtrc_events(
            path, kinds=kinds, include_meta=include_meta, strict=strict, stats=stats
        )
        return
    kindset = frozenset(kinds) if kinds is not None else None
    skipped = 0
    with open_trace_text(path, "r") as f:
        try:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    if strict:
                        raise
                    skipped += 1
                    continue
                if not isinstance(rec, dict):
                    if strict:
                        raise ValueError(
                            f"trace line is not an object: {line[:80]!r}"
                        )
                    skipped += 1
                    continue
                if rec.get("kind") == "trace.meta":
                    if include_meta:
                        yield rec
                    continue
                if kindset is None or rec.get("kind") in kindset:
                    yield rec
        except EOFError:
            # gzip raises EOFError on a crash-truncated member; treat it
            # like a malformed trailing JSONL line.
            if strict:
                raise
            skipped += 1
    if stats is not None:
        stats["skipped_lines"] = stats.get("skipped_lines", 0) + skipped
    if skipped:
        warnings.warn(
            f"{path}: skipped {skipped} malformed JSONL line(s) "
            "(crash-truncated trace?)",
            TruncatedTraceWarning,
            stacklevel=2,
        )


@contextmanager
def trace_to_file(
    path: str,
    bus: Optional[EventBus] = None,
    kinds: Optional[Iterable[str]] = None,
    packets: bool = False,
    sample: Optional[Dict[str, Union[str, int]]] = None,
    **meta: Any,
) -> Iterator[Any]:
    """Write every event emitted inside the block to ``path``.

    ``packets=True`` wakes the per-packet detail tier too.  The format
    follows the suffix (see :func:`make_trace_writer`).
    """
    writer = make_trace_writer(path, sample=sample)
    writer.write_meta(packet_detail=packets, **meta)
    writer.attach(bus, kinds=kinds, detail=packets)
    try:
        yield writer
    finally:
        writer.close()


class TraceSummary:
    """Cheap aggregate view of a run: event counts and last CC state."""

    def __init__(self) -> None:
        self.counts: _Counter = _Counter()
        self.by_src: Dict[str, _Counter] = defaultdict(_Counter)
        self.last_cc: Dict[str, Dict[str, Any]] = {}
        self.t_min: Optional[float] = None
        self.t_max: Optional[float] = None

    def on_event(self, ev: Event) -> None:
        self.counts[ev.kind] += 1
        self.by_src[ev.src][ev.kind] += 1
        if self.t_min is None or ev.t < self.t_min:
            self.t_min = ev.t
        if self.t_max is None or ev.t > self.t_max:
            self.t_max = ev.t
        if ev.kind == CC_SAMPLE:
            self.last_cc[ev.src] = dict(ev.fields, t=ev.t)

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    def to_text(self) -> str:
        lines = ["== telemetry summary =="]
        if self.t_min is not None:
            lines.append(
                f"{self.total_events} events over t=[{self.t_min:.3f}, {self.t_max:.3f}]s virtual"
            )
        for kind in sorted(self.counts):
            lines.append(f"  {kind:<20s} {self.counts[kind]}")
        for src in sorted(self.last_cc):
            s = self.last_cc[src]
            lines.append(
                f"  {src}: last rate={s.get('rate_bps', 0.0)/1e6:.2f} Mb/s "
                f"cwnd={s.get('cwnd', 0.0):.1f} rtt={s.get('rtt', 0.0)*1e3:.2f} ms "
                f"bw_est={s.get('bw_est', 0.0):.0f} pkt/s loss_len={s.get('loss_len', 0)}"
            )
        return "\n".join(lines)


class TraceSession:
    """One observability session: optional JSONL writer + summary.

    Created by :func:`trace_session`; the CLI and experiment helpers use
    it so a single object carries whatever telemetry the run asked for.
    """

    def __init__(
        self,
        writer: Optional[Any] = None,
        summary: Optional[TraceSummary] = None,
    ):
        self.writer = writer
        self.summary = summary

    @property
    def events_written(self) -> int:
        return self.writer.events_written if self.writer is not None else 0

    def summary_text(self) -> Optional[str]:
        return self.summary.to_text() if self.summary is not None else None


@contextmanager
def trace_session(
    trace_path: Optional[str] = None,
    summary: bool = False,
    bus: Optional[EventBus] = None,
    kinds: Optional[Iterable[str]] = None,
    packets: bool = False,
    sample: Optional[Dict[str, Union[str, int]]] = None,
    **meta: Any,
) -> Iterator[TraceSession]:
    """Subscribe a writer and/or summary to ``bus`` for the block's duration.

    With neither ``trace_path`` nor ``summary`` requested this is a
    no-op context (the bus stays disabled and emit sites stay dormant).
    ``packets=True`` additionally wakes the per-packet detail tier
    (``pkt.snd``/``pkt.rcv``/``link.enq``/``link.deq``) so the trace can
    be span-reconstructed by ``repro-udt report``.  ``trace_path``'s
    suffix selects the format (JSONL, ``.jsonl.gz``, or ``.rtrc``).
    """
    bus = bus if bus is not None else default_bus()
    subs: List[Subscription] = []
    writer: Optional[Any] = None
    summ: Optional[TraceSummary] = None
    try:
        if trace_path:
            writer = make_trace_writer(trace_path, sample=sample)
            writer.write_meta(packet_detail=packets, **meta)
            subs.append(bus.subscribe(writer.on_event, kinds=kinds, detail=packets))
        if summary:
            summ = TraceSummary()
            subs.append(bus.subscribe(summ.on_event, kinds=kinds))
        yield TraceSession(writer, summ)
    finally:
        for sub in subs:
            bus.unsubscribe(sub)
        if writer is not None:
            writer._bus = writer._sub = None
            writer.close()
