"""Unified telemetry: event bus, CC timelines, metrics, JSONL export.

``repro.obs`` is the observability substrate shared by the simulator,
the UDT protocol core, and the host cost models.  Design rules:

* **Zero-dependency, near-zero cost off.**  Every instrumentation point
  in hot code is guarded by ``bus.enabled`` (a plain attribute) so that
  with no subscriber attached the only cost is one attribute load and a
  branch — cheap enough to leave compiled in everywhere (Narses-style).
* **One process-wide default bus.**  Components constructed without an
  explicit bus fall back to :func:`default_bus`, so a CLI flag (or a
  test) can subscribe once and observe every connection, link and meter
  in the process without plumbing a bus through each constructor.
* **Typed, timestamped events.**  Event kinds are dotted strings
  (``cc.sample``, ``link.drop``, ...; see :mod:`repro.obs.bus`), each
  with a documented field set (docs/OBSERVABILITY.md).
* **Replayable.**  The qlog-inspired JSONL export round-trips: a
  :class:`TimelineRecorder` rebuilt from a trace file reproduces the
  in-memory per-connection timelines exactly.
"""

from repro.obs.bus import (
    CC_DECREASE,
    CC_DELAY_WARNING,
    CC_SAMPLE,
    CC_SLOWSTART_EXIT,
    CONN_CLOSED,
    CONN_CONNECTED,
    CPU_CHARGE,
    EXP_TIMEOUT,
    FLOW_DONE,
    LINK_DEQ,
    LINK_DROP,
    LINK_ENQ,
    PKT_RCV,
    PKT_SND,
    QUEUE_HIGHWATER,
    RCV_BUFFER_DROP,
    RCV_LOSS,
    SND_ACK,
    SND_NAK,
    Event,
    EventBus,
    Subscription,
    default_bus,
)
from repro.obs.export import (
    JsonlWriter,
    TraceSession,
    TraceSummary,
    TruncatedTraceWarning,
    read_events,
    trace_session,
    trace_to_file,
)
from repro.obs.figspec import FigureSpec, MetricSpec, ResultTable, get_spec
from repro.obs.prof import SimProfiler, profile_simulators
from repro.obs.registry import MetricsRegistry
from repro.obs.report import render_report, report_dict, summary_only_hint
from repro.obs.spans import PacketSpan, SpanBuilder, SpanSet, build_spans
from repro.obs.timeline import CcSample, TimelineRecorder

__all__ = [
    "Event",
    "EventBus",
    "Subscription",
    "default_bus",
    "CONN_CONNECTED",
    "CONN_CLOSED",
    "SND_ACK",
    "SND_NAK",
    "CC_SAMPLE",
    "CC_SLOWSTART_EXIT",
    "CC_DECREASE",
    "CC_DELAY_WARNING",
    "EXP_TIMEOUT",
    "RCV_LOSS",
    "RCV_BUFFER_DROP",
    "LINK_DROP",
    "LINK_ENQ",
    "LINK_DEQ",
    "PKT_SND",
    "PKT_RCV",
    "QUEUE_HIGHWATER",
    "CPU_CHARGE",
    "FLOW_DONE",
    "JsonlWriter",
    "TraceSession",
    "TraceSummary",
    "TruncatedTraceWarning",
    "read_events",
    "trace_session",
    "trace_to_file",
    "MetricsRegistry",
    "TimelineRecorder",
    "CcSample",
    "SimProfiler",
    "profile_simulators",
    "PacketSpan",
    "SpanBuilder",
    "SpanSet",
    "build_spans",
    "render_report",
    "report_dict",
    "summary_only_hint",
    "FigureSpec",
    "MetricSpec",
    "ResultTable",
    "get_spec",
]
