"""Packet-lifecycle span reconstruction from JSONL traces.

Rebuilds, from a trace written with the packet-level detail tier
(``--trace ... --trace-packets``), the full lifecycle of every data
packet: sent → queued → delivered / dropped → ACKed / reported lost →
retransmitted.  The result answers the loss-forensics questions the UDT
paper's appendix machinery (loss lists, NAK compression) exists to
handle: *why* was a packet retransmitted, *where* was it dropped, *how
long* did it sit in a queue.

The reconstruction keys on three correlators already present in the
trace:

* ``seq`` — the transport sequence number (``pkt.snd`` / ``pkt.rcv`` /
  ``link.*`` events carry it for data packets);
* ``uid`` — the wire-packet id, unique per datagram, used to pair each
  link's enqueue with its dequeue for time-in-queue;
* ``flow`` — the connection's flow id stamped on wire packets, matching
  the ``<flow>-snd`` / ``<flow>-rcv`` endpoint ``src`` names.

ACKs are cumulative (``snd.ack`` seq acknowledges everything earlier),
so span completion uses the same circular-sequence comparison as the
protocol itself.  A trace without the detail tier still yields drop
forensics (``link.drop`` events carry uid/seq), just no spans or
queue-wait distributions.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

# repro.udt.seqno is imported lazily (SpanBuilder.__init__): repro.obs
# must stay importable from inside repro.udt/repro.sim module bodies.
_seq_cmp: Optional[Callable[[int, int], int]] = None
_seq_inc: Optional[Callable[[int], int]] = None


def _seq_fns() -> Tuple[Callable[[int, int], int], Callable[[int], int]]:
    global _seq_cmp, _seq_inc
    if _seq_cmp is None:
        from repro.udt.seqno import seq_cmp, seq_inc

        _seq_cmp, _seq_inc = seq_cmp, seq_inc
    return _seq_cmp, _seq_inc

#: Trace kinds the builder consumes; everything else is ignored.
_CONSUMED = frozenset(
    [
        "trace.meta",
        "pkt.snd",
        "pkt.rcv",
        "snd.ack",
        "snd.nak",
        "rcv.loss",
        "rcv.buffer_drop",
        "exp.timeout",
        "link.enq",
        "link.deq",
        "link.drop",
        "flow.done",
    ]
)


def _percentile(sorted_vals: List[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, int(round(q / 100.0 * (len(sorted_vals) - 1)))))
    return sorted_vals[idx]


class PacketSpan:
    """Lifecycle of one transport sequence number on one connection."""

    __slots__ = ("seq", "sends", "recv_t", "acked_t", "nak_count", "drops", "buffer_drop_t")

    def __init__(self, seq: int):
        self.seq = seq
        #: every transmission: (t, retransmission?)
        self.sends: List[Tuple[float, bool]] = []
        self.recv_t: Optional[float] = None  # first receiver acceptance
        self.acked_t: Optional[float] = None  # cumulatively ACKed at sender
        self.nak_count = 0  # times inside a receiver-detected hole
        #: wire drops attributed to this seq: (t, link, reason)
        self.drops: List[Tuple[float, str, str]] = []
        self.buffer_drop_t: Optional[float] = None

    @property
    def first_sent(self) -> Optional[float]:
        return self.sends[0][0] if self.sends else None

    @property
    def transmissions(self) -> int:
        return len(self.sends)

    @property
    def retransmissions(self) -> int:
        return sum(1 for _, retx in self.sends if retx)

    @property
    def delivered(self) -> bool:
        return self.recv_t is not None

    @property
    def state(self) -> str:
        """Final disposition: acked > delivered > dropped > in_flight."""
        if self.acked_t is not None:
            return "acked"
        if self.recv_t is not None:
            return "delivered"
        if self.drops or self.buffer_drop_t is not None:
            return "dropped"
        return "in_flight"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PacketSpan seq={self.seq} sends={self.transmissions} "
            f"naks={self.nak_count} drops={len(self.drops)} {self.state}>"
        )


class SpanSet:
    """All reconstructed spans plus link-level forensics aggregates."""

    def __init__(self) -> None:
        self.meta: Optional[Dict[str, Any]] = None
        #: conn id -> seq -> span
        self.spans: Dict[str, Dict[int, PacketSpan]] = defaultdict(dict)
        #: (link, flow-str) -> queue waits in seconds (enq->deq pairing)
        self.queue_waits: Dict[Tuple[str, str], List[float]] = defaultdict(list)
        #: (flow-str, link, reason) -> dropped wire packets
        self.drop_counts: Counter = Counter()
        #: same, for packets with no seq (control traffic)
        self.ctrl_drop_counts: Counter = Counter()
        #: conn -> sizes of receiver-detected loss events (rcv.loss)
        self.loss_events: Dict[str, List[int]] = defaultdict(list)
        #: conn -> receiver-buffer drops
        self.buffer_drops: Counter = Counter()
        #: conn -> (naks received at sender, packets reported lost)
        self.nak_counts: Dict[str, List[int]] = defaultdict(lambda: [0, 0])
        #: conn -> EXP timeouts at the sender
        self.exp_timeouts: Counter = Counter()
        #: flow-str -> completion record from flow.done
        self.flow_done: Dict[str, Dict[str, Any]] = {}
        self.events_consumed = 0
        self.t_max = 0.0

    def connections(self) -> List[str]:
        """Connections seen, including drop-only attributions."""
        conns = set(self.spans)
        conns.update(flow for flow, _, _ in self.drop_counts)
        conns.update(self.loss_events)
        return sorted(conns)

    # -- aggregates ------------------------------------------------------
    def forensics(self, conn: str) -> Dict[str, Any]:
        """Loss-forensics summary for one connection."""
        spans = self.spans.get(conn, {})
        chains: Counter = Counter()
        delivered = acked = dropped_wire = in_flight = naked = 0
        transmissions = retransmissions = 0
        for span in spans.values():
            chains[span.transmissions] += 1
            transmissions += span.transmissions
            retransmissions += span.retransmissions
            if span.nak_count:
                naked += 1
            st = span.state
            if st == "acked":
                acked += 1
                delivered += span.delivered
            elif st == "delivered":
                delivered += 1
            elif st == "dropped":
                dropped_wire += 1
            else:
                in_flight += 1
        drops_by_link: Dict[str, Dict[str, int]] = defaultdict(dict)
        for (flow, link, reason), n in sorted(self.drop_counts.items()):
            if flow == conn:
                drops_by_link[link][reason] = drops_by_link[link].get(reason, 0) + n
        queue_wait: Dict[str, Dict[str, float]] = {}
        for (link, flow), waits in sorted(self.queue_waits.items()):
            if flow != conn or not waits:
                continue
            s = sorted(waits)
            queue_wait[link] = {
                "count": len(s),
                "p50": _percentile(s, 50),
                "p90": _percentile(s, 90),
                "p99": _percentile(s, 99),
                "max": s[-1],
            }
        losses = self.loss_events.get(conn, [])
        naks = self.nak_counts.get(conn, [0, 0])
        return {
            "conn": conn,
            "pkts_sent": len(spans),
            "transmissions": transmissions,
            "retransmissions": retransmissions,
            "delivered": delivered,
            "acked": acked,
            "dropped": dropped_wire,
            "in_flight_at_end": in_flight,
            "naked_pkts": naked,
            "chains": {str(k): v for k, v in sorted(chains.items())},
            "max_chain": max(chains) if chains else 0,
            "drops_by_link": {k: dict(v) for k, v in drops_by_link.items()},
            "buffer_drops": int(self.buffer_drops.get(conn, 0)),
            "queue_wait": queue_wait,
            "loss_events": {
                "count": len(losses),
                "min": min(losses) if losses else 0,
                "mean": sum(losses) / len(losses) if losses else 0.0,
                "max": max(losses) if losses else 0,
            },
            "naks": {"received": naks[0], "pkts_reported": naks[1]},
            "exp_timeouts": int(self.exp_timeouts.get(conn, 0)),
        }

    def total_drops(self) -> Dict[str, Dict[str, int]]:
        """All wire drops (data + control) by link then cause."""
        out: Dict[str, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for counter in (self.drop_counts, self.ctrl_drop_counts):
            for (_flow, link, reason), n in counter.items():
                out[link][reason] += n
        return {k: dict(v) for k, v in sorted(out.items())}


class SpanBuilder:
    """Streaming reconstructor: feed trace events in time order."""

    def __init__(self) -> None:
        self.result = SpanSet()
        self._seq_cmp, self._seq_inc = _seq_fns()
        # per-conn first-send order + cumulative-ACK pointer
        self._order: Dict[str, List[int]] = defaultdict(list)
        self._ack_ptr: Dict[str, int] = defaultdict(int)
        # (link, uid) -> enqueue time, for queue-wait pairing
        self._pending_enq: Dict[Tuple[str, int], Tuple[float, str]] = {}

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _conn_of(src: str) -> str:
        for suffix in ("-snd", "-rcv"):
            if src.endswith(suffix):
                return src[: -len(suffix)]
        return src

    def _span(self, conn: str, seq: int) -> PacketSpan:
        spans = self.result.spans[conn]
        span = spans.get(seq)
        if span is None:
            span = spans[seq] = PacketSpan(seq)
            self._order[conn].append(seq)
        return span

    # -- event intake ----------------------------------------------------
    def feed(self, rec: Dict[str, Any]) -> None:
        kind = rec.get("kind")
        if kind not in _CONSUMED:
            return
        if kind == "trace.meta":
            self.result.meta = rec
            return
        res = self.result
        res.events_consumed += 1
        t = float(rec.get("t", 0.0))
        if t > res.t_max:
            res.t_max = t
        src = rec.get("src", "")
        if kind == "pkt.snd":
            conn = self._conn_of(src)
            self._span(conn, rec["seq"]).sends.append((t, bool(rec.get("retx"))))
        elif kind == "pkt.rcv":
            conn = self._conn_of(src)
            span = res.spans.get(conn, {}).get(rec["seq"])
            if span is not None and span.recv_t is None:
                span.recv_t = t
        elif kind == "snd.ack":
            conn = self._conn_of(src)
            ack_seq = rec.get("seq")
            if ack_seq is None:
                return
            order = self._order[conn]
            spans = res.spans[conn]
            i = self._ack_ptr[conn]
            seq_cmp = self._seq_cmp
            while i < len(order) and seq_cmp(order[i], ack_seq) < 0:
                span = spans[order[i]]
                if span.acked_t is None:
                    span.acked_t = t
                i += 1
            self._ack_ptr[conn] = i
        elif kind == "snd.nak":
            conn = self._conn_of(src)
            counts = res.nak_counts[conn]
            counts[0] += 1
            counts[1] += int(rec.get("lost", 0))
        elif kind == "rcv.loss":
            conn = self._conn_of(src)
            res.loss_events[conn].append(int(rec.get("length", 0)))
            first, last = rec.get("first"), rec.get("last")
            if first is None or last is None:
                return
            spans = res.spans.get(conn, {})
            seq_cmp, seq_inc = self._seq_cmp, self._seq_inc
            seq = first
            while True:
                span = spans.get(seq)
                if span is not None:
                    span.nak_count += 1
                if seq_cmp(seq, last) >= 0:
                    break
                seq = seq_inc(seq)
        elif kind == "rcv.buffer_drop":
            conn = self._conn_of(src)
            res.buffer_drops[conn] += 1
            span = res.spans.get(conn, {}).get(rec.get("seq"))
            if span is not None and span.buffer_drop_t is None:
                span.buffer_drop_t = t
        elif kind == "exp.timeout":
            res.exp_timeouts[self._conn_of(src)] += 1
        elif kind == "link.enq":
            uid = rec.get("uid")
            if uid is not None:
                self._pending_enq[(src, uid)] = (t, str(rec.get("flow")))
        elif kind == "link.deq":
            uid = rec.get("uid")
            entry = self._pending_enq.pop((src, uid), None)
            if entry is not None:
                enq_t, flow = entry
                res.queue_waits[(src, flow)].append(t - enq_t)
        elif kind == "link.drop":
            flow = str(rec.get("flow"))
            reason = rec.get("reason", "?")
            seq = rec.get("seq")
            uid = rec.get("uid")
            if uid is not None:
                self._pending_enq.pop((src, uid), None)
            if seq is None:
                res.ctrl_drop_counts[(flow, src, reason)] += 1
                return
            res.drop_counts[(flow, src, reason)] += 1
            span = res.spans.get(flow, {}).get(seq)
            if span is not None:
                span.drops.append((t, src, reason))
        elif kind == "flow.done":
            res.flow_done[src] = {
                "t": t,
                "bytes": rec.get("bytes"),
                "elapsed": rec.get("elapsed"),
            }

    def feed_many(self, events: Iterable[Dict[str, Any]]) -> "SpanBuilder":
        for rec in events:
            self.feed(rec)
        return self

    def build(self) -> SpanSet:
        return self.result


def build_spans(path: str, **read_kw: Any) -> SpanSet:
    """Reconstruct spans straight from a JSONL trace file."""
    from repro.obs.export import read_events

    read_kw.setdefault("include_meta", True)
    return SpanBuilder().feed_many(read_events(path, **read_kw)).build()
