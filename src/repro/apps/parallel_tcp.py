"""Parallel TCP striping — §2.2's application-level baseline (PSockets).

"One of the common solutions is to use parallel TCP connections and tune
the TCP parameters, such as window size and number of flows.  However,
parallel TCP is inflexible because it needs to be tuned on each
particular network scenario.  Moreover, parallel TCP does not address
fairness issues."

:class:`ParallelTcpTransfer` stripes one logical bulk transfer across N
concurrent TCP connections between the same host pair — the PSockets /
GridFTP-style workaround UDT was built to replace.  The ablation bench
shows both published criticisms: the best N is scenario-dependent, and
an N-striped transfer takes ~N shares from a competing single TCP.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import flow_start
from repro.sim.node import Host
from repro.sim.topology import Network
from repro.tcp import TcpConfig, TcpFlow
from repro.tcp.responses import Response


class ParallelTcpTransfer:
    """One logical transfer striped over ``n_streams`` TCP connections."""

    def __init__(
        self,
        net: Network,
        src: Host,
        dst: Host,
        n_streams: int,
        nbytes: Optional[int] = None,
        config: Optional[TcpConfig] = None,
        start: float = 0.0,
        flow_id_prefix: str = "ptcp",
        response_factory=Response,
    ):
        if n_streams < 1:
            raise ValueError("need at least one stream")
        self.net = net
        self.n_streams = n_streams
        per_stream = None if nbytes is None else -(-nbytes // n_streams)
        self.streams: List[TcpFlow] = [
            TcpFlow(
                net,
                src,
                dst,
                config=config,
                response=response_factory(),
                nbytes=per_stream,
                # Staggered like any set of "concurrent" flows so the N
                # handshakes never tie in virtual time (docs/ANALYSIS.md).
                start=start + flow_start(i),
                flow_id=f"{flow_id_prefix}-{i}",
            )
            for i in range(n_streams)
        ]

    @property
    def done(self) -> bool:
        return all(s.done for s in self.streams)

    @property
    def finish_time(self) -> Optional[float]:
        if not self.done:
            return None
        return max(s.finish_time for s in self.streams)

    @property
    def delivered_bytes(self) -> int:
        return sum(s.delivered_bytes for s in self.streams)

    def throughput_bps(self, t0: float = 0.0, t1: Optional[float] = None) -> float:
        return sum(s.throughput_bps(t0, t1) for s in self.streams)

    def close(self) -> None:
        for s in self.streams:
            s.close()
