"""Window-based streaming join (§2.1 Figure 1, §5.3).

Two record streams (from a remote machine A and a near machine B) are
joined at machine C: records carry sequential keys and a record joins
when its key partner from the other stream is present within a sliding
window of the most recent ``window`` records.  If the streams run at
different speeds the slower stream's records fall out of the faster
stream's window — the join throughput degrades to twice the slower
stream's rate, which is the paper's point: TCP's RTT bias on the long
path caps the whole application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.sim.node import Host
from repro.sim.topology import JoinTopology, Network


@dataclass
class JoinStats:
    records_a: int = 0
    records_b: int = 0
    joined: int = 0
    expired: int = 0

    def joined_bytes(self, record_size: int) -> int:
        return self.joined * 2 * record_size


class StreamingJoin:
    """The join operator running at machine C.

    Byte streams arrive from the two transports; they are reframed into
    ``record_size``-byte records with implicit sequential keys (records
    are generated in key order at both sources, like the paper's
    same-size-record setup).
    """

    def __init__(self, record_size: int = 1456, window: int = 4096):
        if record_size <= 0 or window <= 0:
            raise ValueError("record size and window must be positive")
        self.record_size = record_size
        self.window = window
        self.stats = JoinStats()
        self._residual = {"a": 0, "b": 0}
        self._next_key = {"a": 0, "b": 0}
        self._pending: Dict[str, Dict[int, bool]] = {"a": {}, "b": {}}

    def on_bytes(self, stream: str, nbytes: int) -> None:
        """Feed ``nbytes`` of arrived payload from stream 'a' or 'b'."""
        if stream not in ("a", "b"):
            raise ValueError("stream must be 'a' or 'b'")
        if nbytes < 0:
            raise ValueError("negative byte count")
        self._residual[stream] += nbytes
        while self._residual[stream] >= self.record_size:
            self._residual[stream] -= self.record_size
            self._on_record(stream)

    def _on_record(self, stream: str) -> None:
        key = self._next_key[stream]
        self._next_key[stream] += 1
        if stream == "a":
            self.stats.records_a += 1
        else:
            self.stats.records_b += 1
        other = "b" if stream == "a" else "a"
        if key in self._pending[other]:
            del self._pending[other][key]
            self.stats.joined += 1
            return
        mine = self._pending[stream]
        mine[key] = True
        # Sliding window: evict the oldest keys beyond the window.
        while len(mine) > self.window:
            oldest = next(iter(mine))
            del mine[oldest]
            self.stats.expired += 1


class PacedSource:
    """Generates a real-time record stream at a fixed rate into a flow.

    §2.1's streams are *generated* in real time; a transport that cannot
    sustain the generation rate falls behind and its records miss the
    join window.  Works with an ``app_driven`` UdtFlow (feeds
    ``sender.send``) or a TcpFlow (feeds ``sender.push_app_data``).
    """

    TICK = 0.01

    def __init__(self, net: Network, flow: object, rate_bps: float, start: float = 0.0):
        if rate_bps <= 0:
            raise ValueError("source rate must be positive")
        self.net = net
        self.flow = flow
        self.chunk = int(rate_bps * self.TICK / 8.0)
        self._backlog = 0
        net.sim.schedule_at(max(start, net.sim.now), self._tick)

    def _tick(self) -> None:
        self._backlog += self.chunk
        if hasattr(self.flow, "receiver"):  # UdtFlow
            accepted = self.flow.sender.send(self._backlog)
            self._backlog -= accepted
        else:  # TcpFlow
            self.flow.sender.push_app_data(self._backlog)
            self._backlog = 0
        self.net.sim.schedule(self.TICK, self._tick)


def run_streaming_join(
    topology: JoinTopology,
    flow_factory: Callable[[Network, Host, Host, object], object],
    duration: float,
    record_size: int = 1456,
    window: int = 65536,
    source_rate_bps: Optional[float] = None,
) -> tuple[StreamingJoin, object, object]:
    """Drive the Figure 1 experiment with any transport.

    ``flow_factory(net, src, dst, flow_id)`` must return a flow object
    whose receiver delivers through ``net.monitor`` (both UdtFlow and
    TcpFlow qualify); this function additionally taps deliveries into the
    join operator.  With ``source_rate_bps`` set, both sources generate
    records in real time at that rate (each), the paper's workload;
    otherwise both transports run as bulk sources.
    """
    join = StreamingJoin(record_size=record_size, window=window)
    net = topology.net
    flow_a = flow_factory(net, topology.src_a, topology.sink, "join-a")
    flow_b = flow_factory(net, topology.src_b, topology.sink, "join-b")
    if source_rate_bps is not None:
        PacedSource(net, flow_a, source_rate_bps)
        PacedSource(net, flow_b, source_rate_bps)
    _tap(flow_a, lambda n: join.on_bytes("a", n))
    _tap(flow_b, lambda n: join.on_bytes("b", n))
    net.run(until=duration)
    return join, flow_a, flow_b


def _tap(flow: object, cb: Callable[[int], None]) -> None:
    """Attach a delivery callback to a UdtFlow or TcpFlow."""
    if hasattr(flow, "receiver"):  # UdtFlow
        inner = flow.receiver.rcv_buffer._deliver

        def wrapped(size: int, data: Optional[bytes]) -> None:
            if inner is not None:
                inner(size, data)
            cb(size)

        flow.receiver.rcv_buffer._deliver = wrapped
    elif hasattr(flow, "sink"):  # TcpFlow
        inner_t = flow.sink._deliver

        def wrapped_t(size: int) -> None:
            if inner_t is not None:
                inner_t(size)
            cb(size)

        flow.sink._deliver = wrapped_t
    else:
        raise TypeError(f"unsupported flow type {type(flow)!r}")
