"""Bulk / cross-traffic generators.

:class:`UdpBlast` is the uncontrolled bursting UDP source the paper uses
to create heavy congestion for Figure 8 ("the data is obtained by
injecting a bursting UDP flow into the network"): it alternates ON bursts
at a configurable rate with OFF silences, with no congestion control at
all.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.node import Host
from repro.sim.packet import Address
from repro.sim.topology import Network
from repro.sim.udp import UdpEndpoint


class UdpBlast:
    """ON/OFF constant-rate UDP blaster (no reliability, no control)."""

    def __init__(
        self,
        net: Network,
        src: Host,
        dst_addr: Address,
        rate_bps: float,
        pkt_size: int = 1500,
        on_time: float = 0.1,
        off_time: float = 0.0,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        if rate_bps <= 0 or pkt_size <= 28:
            raise ValueError("need a positive rate and a >28B packet")
        self.net = net
        self.ep = UdpEndpoint(src)
        self.dst = dst_addr
        self.pkt_size = pkt_size
        self.payload = pkt_size - 28
        self.interval = pkt_size * 8.0 / rate_bps
        self.on_time = on_time
        self.off_time = off_time
        self.stop_at = stop
        self.pkts_sent = 0
        self._burst_end = 0.0
        net.sim.schedule_at(max(start, net.sim.now), self._start_burst)

    def _start_burst(self) -> None:
        if self.stop_at is not None and self.net.sim.now >= self.stop_at:
            return
        self._burst_end = self.net.sim.now + self.on_time
        self._tick()

    def _tick(self) -> None:
        now = self.net.sim.now
        if self.stop_at is not None and now >= self.stop_at:
            return
        if now >= self._burst_end:
            if self.off_time > 0:
                self.net.sim.post(self.off_time, self._start_burst)
            else:
                self._start_burst()
            return
        self.ep.sendto(("blast", self.pkts_sent), self.payload, self.dst)
        self.pkts_sent += 1
        # Fire-and-forget: a tick per packet, never cancelled.
        self.net.sim.post(self.interval, self._tick)
