"""Bulk / cross-traffic generators.

:class:`UdpBlast` is the uncontrolled bursting UDP source the paper uses
to create heavy congestion for Figure 8 ("the data is obtained by
injecting a bursting UDP flow into the network"): it alternates ON bursts
at a configurable rate with OFF silences, with no congestion control at
all.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.node import Host
from repro.sim.packet import Address
from repro.sim.topology import Network
from repro.sim.udp import UdpEndpoint


class UdpBlast:
    """ON/OFF constant-rate UDP blaster (no reliability, no control)."""

    def __init__(
        self,
        net: Network,
        src: Host,
        dst_addr: Address,
        rate_bps: float,
        pkt_size: int = 1500,
        on_time: float = 0.1,
        off_time: float = 0.0,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        if rate_bps <= 0 or pkt_size <= 28:
            raise ValueError("need a positive rate and a >28B packet")
        self.net = net
        self.ep = UdpEndpoint(src)
        self.dst = dst_addr
        self.pkt_size = pkt_size
        self.payload = pkt_size - 28
        self.interval = pkt_size * 8.0 / rate_bps
        self.on_time = on_time
        self.off_time = off_time
        self.stop_at = stop
        self.pkts_sent = 0
        self._burst_end = 0.0
        #: Absolute time of the next burst start; None while a burst is ON.
        #: The fluid tier bounds its analytic spans by this (a burst is a
        #: CC-relevant boundary the packet engine must be awake for).
        self._next_on: Optional[float] = max(start, net.sim.now)
        #: Exact count of this blaster's outstanding engine events — the
        #: fluid tier's quiet check needs to distinguish "heap holds only
        #: known source wake-ups" from "a packet is still in flight".
        self._posts = 1
        net.sim.schedule_at(self._next_on, self._fire_start)
        fluid = getattr(net, "fluid", None)
        if fluid is not None:
            fluid.register_source(self)

    # Engine events enter through the _fire_* wrappers so the pending
    # count stays exact; internal transitions call the bare methods.
    def _fire_start(self) -> None:
        self._posts -= 1
        self._start_burst()

    def _fire_tick(self) -> None:
        self._posts -= 1
        self._tick()

    def _start_burst(self) -> None:
        if self.stop_at is not None and self.net.sim.now >= self.stop_at:
            self._next_on = None
            return
        self._burst_end = self.net.sim.now + self.on_time
        self._next_on = None  # ON: the blaster is occupying the network
        self._tick()

    def _tick(self) -> None:
        now = self.net.sim.now
        if self.stop_at is not None and now >= self.stop_at:
            self._next_on = None
            return
        if now >= self._burst_end:
            if self.off_time > 0:
                self._next_on = now + self.off_time
                self._posts += 1
                self.net.sim.post(self.off_time, self._fire_start)
            else:
                self._start_burst()
            return
        self.ep.sendto(("blast", self.pkts_sent), self.payload, self.dst)
        self.pkts_sent += 1
        # Fire-and-forget: a tick per packet, never cancelled.
        self._posts += 1
        self.net.sim.post(self.interval, self._fire_tick)

    # -- fluid-tier source protocol (repro.sim.fluid) -------------------
    def blocking(self) -> bool:
        """True while a burst is ON (packets entering the network)."""
        return self._next_on is None and not (
            self.stop_at is not None and self.net.sim.now >= self.stop_at
        )

    def next_boundary(self) -> Optional[float]:
        """Next ON/OFF transition the packet engine must be awake for."""
        return self._next_on

    def pending_events(self) -> int:
        return self._posts
