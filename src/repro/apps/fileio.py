"""Disk-to-disk transfer via sendfile/recvfile semantics (§4.7, Table 2).

``DiskTransfer`` drives a UDT flow the way ``sendfile``/``recvfile`` do:
the sender's buffer is fed at the source disk's *read* rate; the receiver
holds delivered packets in the protocol buffer until the destination disk
*writes* them out, so when the disk is the bottleneck, UDT's flow control
(§3.2) throttles the network to the disk rate — the mechanism behind the
paper's "limited by the disk IO bottleneck" observation.
"""

from __future__ import annotations

from typing import Optional

from repro.hostmodel.disk import DiskModel
from repro.sim.node import Host
from repro.sim.topology import Network
from repro.udt.params import UdtConfig
from repro.udt.sim_adapter import UdtFlow

#: Pump/drain scheduling quantum, seconds.
_TICK = 0.01


class DiskTransfer:
    """Transfer ``nbytes`` from ``src_disk`` on one host to ``dst_disk``
    on another over a UDT connection."""

    def __init__(
        self,
        net: Network,
        src: Host,
        dst: Host,
        src_disk: DiskModel,
        dst_disk: DiskModel,
        nbytes: int,
        config: Optional[UdtConfig] = None,
        start: float = 0.0,
        flow_id: Optional[object] = None,
    ):
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self.net = net
        self.src_disk = src_disk
        self.dst_disk = dst_disk
        self.nbytes = nbytes
        cfg = config if config is not None else UdtConfig()
        self.flow = UdtFlow(
            net, src, dst, config=cfg, flow_id=flow_id, start=start,
            nbytes=nbytes, app_driven=True,
        )
        # recvfile: the application drains at disk-write speed.
        self.flow.receiver.rcv_buffer.hold_for_app = True
        self._read_offset = 0  # bytes read off the source disk
        self._written = 0  # bytes written to the destination disk
        self._write_credit = 0.0
        self.done = False
        self.finish_time: Optional[float] = None
        t0 = max(start, net.sim.now) + src_disk.startup_latency
        net.sim.schedule_at(t0, self._pump)
        net.sim.schedule_at(t0 + dst_disk.startup_latency, self._drain)

    # -- sendfile: feed the socket at disk read speed -------------------
    def _pump(self) -> None:
        if self.done:
            return
        chunk = int(self.src_disk.read_bps * _TICK / 8.0)
        remaining = self.nbytes - self._read_offset
        if remaining > 0:
            self._read_offset += self.flow.sender.send(min(chunk, remaining))
        if self._read_offset < self.nbytes:
            self.net.sim.schedule(_TICK, self._pump)

    # -- recvfile: drain the protocol buffer at disk write speed ---------
    def _drain(self) -> None:
        if self.done:
            return
        rb = self.flow.receiver.rcv_buffer
        payload = self.flow.config.payload_size
        self._write_credit += self.dst_disk.write_bps * _TICK / 8.0
        pkts = int(self._write_credit // payload)
        if pkts > 0:
            read = rb.app_read(pkts)
            self._write_credit -= read * payload
            self._written += read * payload
        if rb.delivered_bytes >= self.nbytes and rb.unread_packets == 0:
            self.done = True
            self.finish_time = self.net.sim.now
            return
        self.net.sim.schedule(_TICK, self._drain)

    # -- reporting --------------------------------------------------------
    @property
    def delivered_bytes(self) -> int:
        return self.flow.receiver.delivered_bytes

    def effective_throughput_bps(self) -> float:
        """End-to-end disk-to-disk rate over the whole transfer."""
        if self.finish_time is None or self.finish_time <= self.flow.start_time:
            return 0.0
        return self.nbytes * 8.0 / (self.finish_time - self.flow.start_time)
