"""Applications on top of the transport APIs.

* :mod:`repro.apps.bulk` — bulk sources and UDP blast cross-traffic.
* :mod:`repro.apps.fileio` — sendfile/recvfile disk-to-disk transfers.
* :mod:`repro.apps.streaming_join` — the §2.1/§5.3 window-based
  streaming-join workload.
"""

from repro.apps.bulk import UdpBlast
from repro.apps.fileio import DiskTransfer
from repro.apps.streaming_join import StreamingJoin, run_streaming_join

__all__ = ["UdpBlast", "DiskTransfer", "StreamingJoin", "run_streaming_join"]
