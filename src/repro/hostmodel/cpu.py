"""CPU cycle accounting (Figure 14, Table 3).

Every protocol operation charges cycles against a :class:`CostModel`.
Cost constants are *calibrated*, not measured: they are chosen so that the
paper's reference workload — a single memory-memory flow at ~970 Mb/s on a
dual 2.4 GHz Xeon — reproduces the published utilisation (UDT 43 % send /
52 % receive, TCP 33 % / 35 %) and the Table 3 per-function ratios.  The
*accounting structure* is the real content: utilisation is re-derived
from packet/byte counts, so a different workload (slower link, bigger
packets, heavy loss) moves the numbers the way real hosts would.

Memory copy is folded into the per-byte components of UDP write/read —
§6's Table 3 discussion identifies copying as the dominant cost, which is
why the per-byte coefficients dwarf everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.obs import bus as OB

#: Dual 2.4 GHz Xeon (the paper's end hosts), cycles per second.
DEFAULT_CPU_HZ = 4.8e9

#: Reference workload used for calibration (§5.1: 970 Mb/s, MSS 1500).
_REF_PPS = 970e6 / (1500 * 8)  # ~80.8k data packets/s
_REF_PAYLOAD = 1456


def _split(total_pct: float, share_pct: float) -> float:
    """Cycles/packet for a category given its share of total utilisation."""
    return DEFAULT_CPU_HZ * (total_pct / 100.0) * (share_pct / 100.0) / _REF_PPS


@dataclass(frozen=True)
class CostModel:
    """Cycles charged per operation.  ``*_pkt`` per call, ``*_byte`` per byte."""

    name: str
    udp_io_pkt: float = 0.0  # UDP send/recv syscall fixed cost
    udp_io_byte: float = 0.0  # memory copy / bus traffic per byte
    timing: float = 0.0  # high-precision timer work per data packet
    codec_pkt: float = 0.0  # packing/unpacking headers per packet
    measurement: float = 0.0  # bandwidth/RTT/arrival-speed per packet
    ctrl: float = 0.0  # processing one received control packet
    ctrl_send: float = 0.0  # generating one control packet
    loss_event: float = 0.0  # loss-list access per loss event
    app: float = 0.0  # application interaction per packet
    other: float = 0.0  # locks, context switches, bookkeeping


# ---------------------------------------------------------------------------
# Calibrated models.  Table 3 shares (sending / receiving columns); the OCR
# of the paper drops leading digits on some rows — EXPERIMENTS.md records
# the reconstruction (each column sums to 100).
# ---------------------------------------------------------------------------
UDT_SENDER_SHARES = {
    "udp_io": 66.7,
    "timing": 14.9,
    "codec": 5.9,
    "ctrl": 5.1,
    "app": 3.5,
    "other": 3.9,
}

UDT_RECEIVER_SHARES = {
    "udp_io": 79.1,
    "measurement": 2.7,
    "codec": 10.9,
    "loss": 1.6,
    "timing": 0.4,
    "other": 5.3,
}

#: Figure 14 utilisation at the reference workload, percent.
UDT_SEND_UTIL = 43.0
UDT_RECV_UTIL = 52.0
TCP_SEND_UTIL = 33.0
TCP_RECV_UTIL = 35.0


def _udt_sender_costs() -> CostModel:
    u = UDT_SEND_UTIL
    io = _split(u, UDT_SENDER_SHARES["udp_io"])
    return CostModel(
        name="udt-sender",
        # ~12% of the IO cost is fixed syscall overhead, the rest copies.
        udp_io_pkt=io * 0.12,
        udp_io_byte=io * 0.88 / _REF_PAYLOAD,
        timing=_split(u, UDT_SENDER_SHARES["timing"]),
        codec_pkt=_split(u, UDT_SENDER_SHARES["codec"]),
        # control packets arrive once per SYN (~100/s), not per data
        # packet: scale the per-event cost up by the data/control ratio.
        ctrl=_split(u, UDT_SENDER_SHARES["ctrl"]) * (_REF_PPS / 100.0),
        app=_split(u, UDT_SENDER_SHARES["app"]),
        other=_split(u, UDT_SENDER_SHARES["other"]),
    )


def _udt_receiver_costs() -> CostModel:
    u = UDT_RECV_UTIL
    io = _split(u, UDT_RECEIVER_SHARES["udp_io"])
    return CostModel(
        name="udt-receiver",
        udp_io_pkt=io * 0.12,
        udp_io_byte=io * 0.88 / _REF_PAYLOAD,
        timing=_split(u, UDT_RECEIVER_SHARES["timing"]),
        codec_pkt=_split(u, UDT_RECEIVER_SHARES["codec"]),
        measurement=_split(u, UDT_RECEIVER_SHARES["measurement"]),
        # at the reference workload loss is rare; spread the published
        # share over per-packet loss-list checks plus per-event accesses.
        loss_event=_split(u, UDT_RECEIVER_SHARES["loss"]),
        ctrl_send=_split(u, UDT_RECEIVER_SHARES["other"]) * 0.2 * (_REF_PPS / 100.0),
        other=_split(u, UDT_RECEIVER_SHARES["other"]) * 0.8,
    )


def _tcp_costs(util: float, name: str) -> CostModel:
    # Kernel TCP: virtually everything is the copy + checksum path.
    io = DEFAULT_CPU_HZ * (util / 100.0) / _REF_PPS
    return CostModel(
        name=name,
        udp_io_pkt=io * 0.10,
        udp_io_byte=io * 0.85 / _REF_PAYLOAD,
        ctrl=io * 0.05,  # per-ACK processing (ACK per packet in TCP)
    )


UDT_SENDER_COSTS = _udt_sender_costs()
UDT_RECEIVER_COSTS = _udt_receiver_costs()
TCP_SENDER_COSTS = _tcp_costs(TCP_SEND_UTIL, "tcp-sender")
TCP_RECEIVER_COSTS = _tcp_costs(TCP_RECV_UTIL, "tcp-receiver")


class CpuMeter:
    """Accumulates cycles by category for one protocol endpoint.

    The protocol cores call the ``on_*`` hooks; experiments read
    :meth:`utilization` and :meth:`breakdown`.
    """

    def __init__(
        self,
        costs: CostModel,
        clock: Callable[[], float],
        cpu_hz: float = DEFAULT_CPU_HZ,
        bus: Optional[OB.EventBus] = None,
        name: Optional[str] = None,
        emit_every: int = 256,
    ):
        self.costs = costs
        self.clock = clock
        self.cpu_hz = cpu_hz
        #: telemetry: one aggregated ``cpu.charge`` event per
        #: ``emit_every`` data packets (per-packet events would dominate
        #: any trace); dormant while the bus has no subscriber.
        self.bus = bus if bus is not None else OB.default_bus()
        self.name = name if name is not None else costs.name
        self.emit_every = emit_every
        self._since_emit = 0
        self.cycles: Dict[str, float] = {
            "udp_io": 0.0,
            "timing": 0.0,
            "codec": 0.0,
            "measurement": 0.0,
            "ctrl": 0.0,
            "ctrl_send": 0.0,
            "loss": 0.0,
            "app": 0.0,
            "other": 0.0,
        }
        self.start_time = clock()

    # -- hooks called by protocol cores ---------------------------------
    def on_data_sent(self, size: int) -> None:
        c = self.costs
        cy = self.cycles
        cy["udp_io"] += c.udp_io_pkt + c.udp_io_byte * size
        cy["timing"] += c.timing
        cy["codec"] += c.codec_pkt
        cy["app"] += c.app
        cy["other"] += c.other
        if self.bus.enabled:
            self._maybe_emit()

    def on_data_received(self, size: int) -> None:
        c = self.costs
        cy = self.cycles
        cy["udp_io"] += c.udp_io_pkt + c.udp_io_byte * size
        cy["timing"] += c.timing
        cy["codec"] += c.codec_pkt
        cy["measurement"] += c.measurement
        cy["app"] += c.app
        cy["other"] += c.other
        if self.bus.enabled:
            self._maybe_emit()

    def _maybe_emit(self) -> None:
        self._since_emit += 1
        if self._since_emit < self.emit_every:
            return
        self._since_emit = 0
        self.bus.emit(
            OB.CPU_CHARGE,
            self.clock(),
            self.name,
            total_cycles=self.total_cycles,
            util=self.utilization(),
        )

    def on_ctrl(self, kind: str) -> None:
        self.cycles["ctrl"] += self.costs.ctrl

    def on_ctrl_sent(self, size: int) -> None:
        self.cycles["ctrl_send"] += self.costs.ctrl_send

    def on_loss_processing(self, events: int = 1) -> None:
        self.cycles["loss"] += self.costs.loss_event * events

    # -- queries ------------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        return sum(self.cycles.values())

    def utilization(self, t0: float | None = None, t1: float | None = None) -> float:
        """Fraction of CPU capacity consumed over [t0, t1] (whole run by
        default).  Values above 1.0 mean the modelled host would saturate
        — the §4.1 packet-loss-avalanche regime."""
        if t0 is None:
            t0 = self.start_time
        if t1 is None:
            t1 = self.clock()
        dt = t1 - t0
        if dt <= 0:
            return 0.0
        return self.total_cycles / (self.cpu_hz * dt)

    def breakdown(self) -> Dict[str, float]:
        """Fraction of consumed cycles per category (Table 3's columns)."""
        total = self.total_cycles
        if total == 0:
            return {k: 0.0 for k in self.cycles}
        return {k: v / total for k, v in self.cycles.items()}
