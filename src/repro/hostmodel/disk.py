"""Disk throughput model (Table 2).

The paper's §5.3 finding is that UDT moves disk-to-disk data "at nearly
the highest speed, which is limited by the disk IO bottleneck": effective
throughput is the minimum of the network path and the two disks.  Disks
are modelled as rate-limited pipes with a small seek/startup latency.

Per-site rates: the archived paper text is OCR-damaged in Table 2, so the
values below are era-plausible reconstructions (2004 SCSI arrays, reads
slightly faster than writes) chosen under the constraint the paper states
— every disk is slower than its Gb/s network path.  EXPERIMENTS.md
records the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class DiskModel:
    """Sequential-access disk with distinct read/write rates (bits/s)."""

    name: str
    read_bps: float
    write_bps: float
    startup_latency: float = 0.005

    def __post_init__(self) -> None:
        if self.read_bps <= 0 or self.write_bps <= 0:
            raise ValueError("disk rates must be positive")

    def read_time(self, nbytes: int) -> float:
        return self.startup_latency + nbytes * 8.0 / self.read_bps

    def write_time(self, nbytes: int) -> float:
        return self.startup_latency + nbytes * 8.0 / self.write_bps


#: Testbed hosts (§5): dual-Xeon Linux boxes at each site.
SITE_DISKS: Dict[str, DiskModel] = {
    "Chicago": DiskModel("Chicago", read_bps=560e6, write_bps=450e6),
    "Ottawa": DiskModel("Ottawa", read_bps=600e6, write_bps=550e6),
    "Amsterdam": DiskModel("Amsterdam", read_bps=540e6, write_bps=480e6),
}


def disk_disk_limit(src: DiskModel, dst: DiskModel, network_bps: float) -> float:
    """Upper bound for a disk-to-disk transfer (§5.3's pipeline min)."""
    if network_bps <= 0:
        raise ValueError("network rate must be positive")
    return min(src.read_bps, dst.write_bps, network_bps)
