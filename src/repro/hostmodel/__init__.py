"""End-host cost models: CPU cycle accounting and disk throughput.

The paper's Figure 14 and Table 3 were measured with Intel VTune on dual
2.4 GHz Xeons; Table 2 on the testbeds' local disks.  We replace the
hardware with explicit models: every protocol operation charges cycles
from a per-operation cost table (calibrated so the reference workload
reproduces the published ratios), and disks are rate-limited pipes.
"""

from repro.hostmodel.cpu import (
    CostModel,
    CpuMeter,
    TCP_RECEIVER_COSTS,
    TCP_SENDER_COSTS,
    UDT_RECEIVER_COSTS,
    UDT_SENDER_COSTS,
)
from repro.hostmodel.disk import DiskModel, SITE_DISKS

__all__ = [
    "CostModel",
    "CpuMeter",
    "UDT_SENDER_COSTS",
    "UDT_RECEIVER_COSTS",
    "TCP_SENDER_COSTS",
    "TCP_RECEIVER_COSTS",
    "DiskModel",
    "SITE_DISKS",
]
