"""seqno-taint: dataflow-tracked arithmetic safety for wrap-around seqnos.

UDT sequence numbers live in a 31-bit circular space (paper §4 and the
loss-list appendix): ``a < b`` and ``b - a`` are meaningless near the
wrap, which is exactly where they pass every test and then corrupt a
multi-terabyte transfer in hour nine.  All ordering, distance and
successor logic must go through :mod:`repro.udt.seqno`
(``seq_cmp``/``seq_off``/``seq_len``/``seq_inc``/``seq_dec``/``valid_seq``).

This rule supersedes the purely syntactic ``seqno-arith`` of PR 3.  That
checker only recognised operands whose *name* looked sequence-like; it
lost the value the moment it was copied::

    hole = seq_inc(self.lrsn)   # plainly a sequence number...
    if hole < pkt.seq:          # ...invisible to a name heuristic

Built on :mod:`repro.analysis.flow`, this rule *tracks* seqno-ness:

* **seeds** — names/attributes containing ``seq`` (minus the helper and
  constant exclusions) or known aliases (``lrsn``), plus the return
  values of ``seq_inc``/``seq_dec`` (which *are* sequence numbers);
* **sanitizers** — ``seq_cmp``/``seq_off``/``seq_len`` return plain
  signed distances and ``valid_seq`` a bool, so their results are clean;
* **propagation** — through local assignments, tuple unpacking,
  ``self.attr`` stores (a module-level fixpoint taints attributes and
  same-module helper returns, so taint survives method boundaries) and
  collection membership.

Flagged: comparison (``<`` ``>`` ``<=`` ``>=`` ``==`` ``!=``) and
additive arithmetic (``+`` ``-``) where either operand carries taint.
Equality of two in-range seqnos is wrap-safe but still flagged — a
reader cannot tell a safe identity check from an ordering bug at a
glance, so the deliberate ones carry ``# lint: disable=seqno-taint``
with a justification.

Scope: ``repro/udt/`` and ``repro/sabul/`` only.  ``repro/udt/seqno.py``
implements the helpers and is excluded; ``repro/tcp/`` numbers packets
with unbounded Python ints that never wrap (see its module docstrings).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Checker, Finding, ModuleContext
from repro.analysis.flow import (
    State,
    TaintTracker,
    assign_pairs,
    iter_functions,
    var_key,
)

RULE = "seqno-taint"

TAINT: FrozenSet[str] = frozenset({"seq"})

#: variable/attribute names that are sequence numbers without "seq" in them.
_SEQ_ALIASES = frozenset({"lrsn"})

#: names that merely *contain* "seq" but are not circular sequence values.
_NOT_SEQ = frozenset(
    {
        "seq_cmp",
        "seq_off",
        "seq_len",
        "seq_inc",
        "seq_dec",
        "valid_seq",
        "sequence",  # prose-ish identifiers
        # Space-size constants: `w & (MAX_SEQ_NO - 1)` is a bitmask, not
        # sequence arithmetic.  A real seq value on the other side of an
        # operator still triggers the rule on its own.
        "MAX_SEQ_NO",
        "SEQ_THRESHOLD",
    }
)

#: helpers whose *result* is a sequence number (successor/predecessor).
_SEQ_RETURNING = frozenset({"seq_inc", "seq_dec"})

#: helpers whose result is a plain int/bool — they sanitize their inputs.
_SANITIZERS = frozenset({"seq_cmp", "seq_off", "seq_len", "valid_seq"})

_FLAGGED_CMPOPS = (ast.Lt, ast.Gt, ast.LtE, ast.GtE, ast.Eq, ast.NotEq)
_FLAGGED_BINOPS = (ast.Add, ast.Sub)


def _name_is_seqlike(name: str) -> bool:
    if name in _NOT_SEQ:
        return False
    low = name.lower()
    return "seq" in low or low in _SEQ_ALIASES


def _callee_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _describe(node: ast.AST) -> str:
    try:
        return ast.unparse(node)  # py3.9+
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "<expr>"


class _SeqTaint(TaintTracker):
    """Taint semantics shared by the module fixpoint and per-function pass."""

    def __init__(self, tainted_attrs: Set[str], tainted_funcs: Set[str]):
        self._attrs = tainted_attrs
        self._funcs = tainted_funcs

    def atom_labels(self, node: ast.AST, state: State) -> FrozenSet[str]:
        if isinstance(node, ast.Name):
            return TAINT if _name_is_seqlike(node.id) else frozenset()
        if isinstance(node, ast.Attribute):
            if _name_is_seqlike(node.attr) or node.attr in self._attrs:
                return TAINT
        return frozenset()

    def call_labels(
        self, node: ast.Call, arg_labels: List[FrozenSet[str]], state: State
    ) -> FrozenSet[str]:
        name = _callee_name(node)
        if name in _SANITIZERS:
            return frozenset()
        if name in _SEQ_RETURNING or name in self._funcs:
            return TAINT
        # Unknown calls come back clean: cross-module helpers returning
        # seqnos should land in tainted *targets* (seq-like names) anyway,
        # and an open-world "tainted" default would drown the rule in noise.
        return frozenset()

    def binop_labels(
        self, node: ast.BinOp, left: FrozenSet[str], right: FrozenSet[str]
    ) -> FrozenSet[str]:
        # Projections out of the circular space sanitize: `seq % k` is a
        # phase in [0, k), `seq & mask` a bit bucket — plain ints whose
        # ordering and arithmetic are meaningful.  Add/Sub keep the taint
        # (seq + 1 is still a seqno, and the raw form is the bug).
        if isinstance(node.op, (ast.Mod, ast.FloorDiv, ast.BitAnd, ast.RShift)):
            return frozenset()
        return left | right


def _module_facts(tree: ast.AST) -> Tuple[Set[str], Set[str]]:
    """Flow-insensitive fixpoint: tainted self-attrs + helper return taint.

    ``self.foo = seq_inc(x)`` taints attribute ``foo`` module-wide; a
    same-module function whose any ``return`` is tainted taints its call
    sites.  Monotone over finite name sets, so the loop terminates.
    """
    attrs: Set[str] = set()
    funcs: Set[str] = set()
    assigns: List[Tuple[str, ast.expr]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target, value in assign_pairs(node.targets, node.value):
                key = var_key(target)
                if key is not None and key.startswith("self.") and value is not None:
                    assigns.append((key[len("self."):], value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            key = var_key(node.target)
            if key is not None and key.startswith("self."):
                assigns.append((key[len("self."):], node.value))
    returns: List[Tuple[str, ast.expr]] = []
    for _cls, fn in iter_functions(tree):
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                returns.append((fn.name, node.value))
    while True:
        tracker = _SeqTaint(attrs, funcs)
        changed = False
        for attr, value in assigns:
            if attr in attrs or _name_is_seqlike(attr):
                continue
            if tracker.eval_expr(value, {}):
                attrs.add(attr)
                changed = True
        for fname, value in returns:
            if fname in funcs or fname in _SANITIZERS:
                continue
            if tracker.eval_expr(value, {}):
                funcs.add(fname)
                changed = True
        if not changed:
            return attrs, funcs


class SeqnoTaintChecker(Checker):
    rule = RULE
    description = (
        "dataflow-tracked </>/+/-/== on values derived from wrap-around "
        "sequence numbers; use repro.udt.seqno helpers (seq_cmp/seq_off/...)"
    )

    def interested(self, ctx: ModuleContext) -> bool:
        rp = ctx.relpath
        if rp == "udt/seqno.py":
            return False
        return rp.startswith("udt/") or rp.startswith("sabul/")

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        attrs, funcs = _module_facts(ctx.tree)
        tracker = _SeqTaint(attrs, funcs)
        findings: List[Finding] = []
        scopes: List[ast.AST] = [ctx.tree]
        scopes.extend(
            n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)
        )
        scopes.extend(fn for _cls, fn in iter_functions(ctx.tree))
        for scope in scopes:
            cfg, in_states = tracker.analyse(scope)
            for node in cfg.stmt_nodes():
                state = in_states.get(node.idx)
                if state is None:
                    continue  # unreachable statement
                findings.extend(
                    self._flag_stmt(ctx, tracker, node.stmt, state)
                )
        return findings

    def _flag_stmt(
        self,
        ctx: ModuleContext,
        tracker: _SeqTaint,
        stmt: ast.stmt,
        state: State,
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in _own_exprs(stmt):
            if isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for op, left, right in zip(node.ops, operands, operands[1:]):
                    if not isinstance(op, _FLAGGED_CMPOPS):
                        continue
                    hit = next(
                        (
                            e
                            for e in (left, right)
                            if tracker.eval_expr(e, state)
                        ),
                        None,
                    )
                    if hit is None:
                        continue
                    findings.append(
                        ctx.finding(
                            RULE,
                            node,
                            f"raw {type(op).__name__} comparison on "
                            f"{_origin(hit)} {_describe(hit)!r}; use "
                            "seq_cmp/valid_seq (wrap-around space)",
                        )
                    )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, _FLAGGED_BINOPS
            ):
                hit = next(
                    (
                        e
                        for e in (node.left, node.right)
                        if tracker.eval_expr(e, state)
                    ),
                    None,
                )
                if hit is not None:
                    findings.append(
                        ctx.finding(
                            RULE,
                            node,
                            f"raw {type(node.op).__name__} arithmetic on "
                            f"{_origin(hit)} {_describe(hit)!r}; use "
                            "seq_off/seq_inc/seq_dec/seq_len "
                            "(wrap-around space)",
                        )
                    )
        return findings


def _origin(node: ast.AST) -> str:
    """Was the operand itself seq-named, or tainted by dataflow?"""
    if isinstance(node, ast.Name) and _name_is_seqlike(node.id):
        return "sequence number"
    if isinstance(node, ast.Attribute) and _name_is_seqlike(node.attr):
        return "sequence number"
    return "sequence-derived value"


def _own_exprs(stmt: ast.stmt) -> Iterable[ast.AST]:
    """Expressions belonging to this statement, not to nested blocks.

    Nested statements get their own CFG node (with the right IN state);
    nested function bodies get their own CFG entirely.
    """
    todo: List[ast.AST] = []
    for fieldname, value in ast.iter_fields(stmt):
        if fieldname in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.AST):
            todo.append(value)
        elif isinstance(value, list):
            todo.extend(v for v in value if isinstance(v, ast.AST))
    seen: List[ast.AST] = []
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        seen.append(node)
        todo.extend(ast.iter_child_nodes(node))
    return seen
