"""Checker driver: file walking, AST parsing, suppressions, findings.

The static-analysis half of :mod:`repro.analysis` is a small pluggable
framework over :mod:`ast`.  A :class:`Checker` sees one parsed module at
a time (:class:`ModuleContext`) and yields :class:`Finding` records;
checkers that need a whole-project view (the event-schema contract
check) collect state per module and report from :meth:`Checker.finalize`.

Findings are suppressible in source with a trailing comment::

    if ack_seq == self._last_ack_seq_sent:  # lint: disable=seqno-taint

or for a whole file with ``# lint: disable-file=<rule>`` on any line.
For a statement that spans several physical lines the comment may sit on
*any* of them — the suppression covers the whole statement, so black-style
wrapped calls don't force the comment onto the (often mid-expression)
anchor line.  Suppressions are deliberate, reviewed exceptions — the
comment should say *why* the rule does not apply (see docs/ANALYSIS.md).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Severity levels, mildest first (ordering is meaningful for sorting).
SEVERITIES = ("warning", "error")

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\- ]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*lint:\s*disable-file=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True)
class Finding:
    """One checker hit, anchored to a source location."""

    rule: str
    path: str  # forward-slash path relative to the analysis root
    line: int
    col: int
    severity: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Finding":
        return cls(
            rule=d["rule"],
            path=d["path"],
            line=int(d.get("line", 0)),
            col=int(d.get("col", 0)),
            severity=d.get("severity", "error"),
            message=d["message"],
        )

    def identity(self) -> Tuple[str, str, str]:
        """Baseline-matching key: stable under small line drift."""
        return (self.rule, self.path, self.message)


class ModuleContext:
    """One parsed source module handed to every checker."""

    def __init__(self, root: Path, path: Path, source: str, tree: ast.AST):
        self.root = root
        self.path = path
        #: forward-slash path relative to the analysis root, e.g. "udt/core.py"
        self.relpath = path.relative_to(root).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        # Suppressions: line -> rules, plus file-wide rules.
        self.line_suppressions: Dict[int, frozenset] = {}
        self.file_suppressions: frozenset = frozenset()
        self._scan_suppressions()
        self._extend_suppression_spans()

    def _scan_suppressions(self) -> None:
        file_rules: set = set()
        for lineno, text in enumerate(self.lines, start=1):
            if "lint:" not in text:
                continue
            m = _SUPPRESS_RE.search(text)
            if m:
                rules = frozenset(r.strip() for r in m.group(1).split(",") if r.strip())
                self.line_suppressions[lineno] = rules
            m = _SUPPRESS_FILE_RE.search(text)
            if m:
                file_rules.update(r.strip() for r in m.group(1).split(",") if r.strip())
        self.file_suppressions = frozenset(file_rules)

    def _extend_suppression_spans(self) -> None:
        """Spread a suppression over its whole multi-line simple statement.

        A comment on any physical line of a wrapped *simple* statement
        (assignment, call, return, ...) suppresses for every line the
        statement occupies, so findings anchored to a sub-expression on a
        different line than the comment are still covered.  Compound
        statements (``if``/``for``/``def``...) keep exact-line semantics —
        blanket-suppressing a whole block from its header comment would
        hide far more than the author reviewed.
        """
        if not self.line_suppressions:
            return
        compound = (
            ast.If, ast.For, ast.AsyncFor, ast.While, ast.With,
            ast.AsyncWith, ast.Try, ast.FunctionDef, ast.AsyncFunctionDef,
            ast.ClassDef,
        )
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt) or isinstance(node, compound):
                continue
            start = getattr(node, "lineno", None)
            end = getattr(node, "end_lineno", None)
            if start is None or end is None or end <= start:
                continue
            span = range(start, end + 1)
            rules = frozenset().union(
                *(self.line_suppressions.get(ln, frozenset()) for ln in span)
            )
            if not rules:
                continue
            for ln in span:
                self.line_suppressions[ln] = rules | self.line_suppressions.get(
                    ln, frozenset()
                )

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions or "all" in self.file_suppressions:
            return True
        rules = self.line_suppressions.get(line)
        return rules is not None and (rule in rules or "all" in rules)

    def finding(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        severity: str = "error",
    ) -> Finding:
        return Finding(
            rule=rule,
            path=self.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            severity=severity,
            message=message,
        )


class Checker:
    """Base class for one lint rule (or one family of related rules)."""

    #: rule id used in findings, ``--rule`` filtering and suppressions.
    rule: str = ""
    #: one-line description for ``repro-udt lint --list-rules`` and docs.
    description: str = ""

    def interested(self, ctx: ModuleContext) -> bool:
        """Cheap scope filter; return False to skip the module entirely."""
        return True

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Per-module findings (suppressions applied by the driver)."""
        return ()

    def module_summary(self, ctx: ModuleContext) -> Any:
        """JSON-serialisable per-module facts for the incremental cache.

        Called right after :meth:`check_module`.  Whatever it returns is
        cached alongside the module's findings; on a later run where the
        file is unchanged, :meth:`consume_summary` is fed the cached value
        *instead of* re-running ``check_module``.  Checkers whose
        :meth:`finalize` depends on cross-module state collected during
        ``check_module`` MUST route that state through this pair, or the
        cache would silently starve ``finalize``.  Purely per-module
        checkers return ``None`` (the default) — nothing to replay.
        """
        return None

    def consume_summary(self, relpath: str, summary: Any) -> None:
        """Replay a cached :meth:`module_summary` value for ``relpath``."""

    def finalize(self) -> Iterable[Finding]:
        """Whole-project findings, after every module has been seen."""
        return ()


def iter_python_files(root: Path) -> Iterator[Path]:
    """All .py files under ``root``, sorted for deterministic output."""
    yield from sorted(p for p in root.rglob("*.py") if p.is_file())


def load_module(root: Path, path: Path) -> Tuple[Optional[ModuleContext], Optional[Finding]]:
    """Parse one file; returns (ctx, None) or (None, parse-error finding)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(
            rule="parse-error",
            path=path.relative_to(root).as_posix(),
            line=exc.lineno or 0,
            col=exc.offset or 0,
            severity="error",
            message=f"cannot parse: {exc.msg}",
        )
    return ModuleContext(root, path, source, tree), None


def run_checkers(
    root: Path,
    checkers: Sequence[Checker],
    rules: Optional[Sequence[str]] = None,
    cache: Optional["ModuleCache"] = None,
) -> List[Finding]:
    """Run ``checkers`` over every module under ``root``.

    ``rules`` filters to a subset of rule ids (suppression comments and
    parse errors always apply).  Findings come back sorted by
    (path, line, rule) with suppressed ones removed.

    ``cache`` (see :mod:`repro.analysis.lintcache`) short-circuits
    unchanged files: their cached post-suppression findings are reused
    and their cached :meth:`Checker.module_summary` values replayed via
    :meth:`Checker.consume_summary`, so cross-module ``finalize`` passes
    still see the whole project.  The caller is responsible for only
    passing a cache when the checker selection matches the one the cache
    was built with (the CLI keys the cache to full-rule runs).
    """
    selected = [c for c in checkers if rules is None or c.rule in rules]
    findings: List[Finding] = []
    contexts_seen = 0
    for path in iter_python_files(root):
        relpath = path.relative_to(root).as_posix()
        if cache is not None:
            entry = cache.lookup(path, relpath)
            if entry is not None:
                findings.extend(Finding.from_dict(d) for d in entry["findings"])
                summaries = entry["summaries"]
                for checker in selected:
                    if checker.rule in summaries:
                        checker.consume_summary(relpath, summaries[checker.rule])
                continue
        ctx, parse_err = load_module(root, path)
        if parse_err is not None:
            findings.append(parse_err)
            continue
        assert ctx is not None
        contexts_seen += 1
        module_findings: List[Finding] = []
        module_summaries: Dict[str, Any] = {}
        for checker in selected:
            if not checker.interested(ctx):
                continue
            for f in checker.check_module(ctx):
                if not ctx.suppressed(f.rule, f.line):
                    module_findings.append(f)
            summary = checker.module_summary(ctx)
            if summary is not None:
                module_summaries[checker.rule] = summary
        findings.extend(module_findings)
        if cache is not None:
            cache.store(path, relpath, module_findings, module_summaries)
    # Whole-project passes (suppressions were applied per-module by the
    # checkers via ctx.suppressed where relevant; finalize findings are
    # synthesized from cross-module state and carry their own locations).
    for checker in selected:
        findings.extend(checker.finalize())
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def default_root() -> Path:
    """The installed ``repro`` package directory (analysis target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def repo_root() -> Optional[Path]:
    """The source checkout root (parent of ``src/``), when recognisable."""
    pkg = default_root()
    if pkg.parent.name == "src":
        return pkg.parent.parent
    return None
