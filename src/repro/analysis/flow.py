"""Intra-procedural CFG + forward dataflow framework over ``ast``.

PR 3's checkers are per-node pattern matchers: they flag ``a < b`` when an
operand *looks like* a sequence number, but lose the value the moment it
is copied into an innocently-named local.  This module is the shared
infrastructure that lets rules follow values *across* statements:

* :func:`build_cfg` turns one ``ast.FunctionDef`` into a per-statement
  control-flow graph (if/while/for/try/with/return/break/continue/raise
  all modelled; ``try`` conservatively edges every body statement into
  every handler).
* :func:`run_forward` is a classic worklist fixpoint over that CFG for
  any monotone transfer function.
* :class:`TaintTracker` is the forward taint instantiation both
  ``seqno-taint`` and ``units`` build on: the abstract state maps
  variable keys (locals and ``self.attr`` pseudo-locals) to frozensets
  of labels, joined by union.  Rules override the two *semantic* hooks —
  :meth:`TaintTracker.atom_labels` (what does a fresh name/attribute
  carry?) and :meth:`TaintTracker.call_labels` (what does a call return?)
  — and the tracker handles assignments, tuple unpacking, augmented
  assignment, loop targets and ``with ... as`` bindings.

The framework is deliberately intra-procedural: cross-function facts
(tainted ``self`` attributes, tainted helper returns) are computed by the
rules themselves with a cheap module-level fixpoint and fed back in
through the hooks.  That keeps the fixpoint small enough that the whole
lint run stays inside the CI time budget.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Abstract state: variable key -> set of labels.  Missing key = bottom.
State = Dict[str, FrozenSet[str]]

#: A function definition of either flavour.
FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Statements that carry nested statement blocks (compound statements).
COMPOUND_STMTS = (
    ast.If,
    ast.While,
    ast.For,
    ast.AsyncFor,
    ast.Try,
    ast.With,
    ast.AsyncWith,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


# ---------------------------------------------------------------------------
# CFG
# ---------------------------------------------------------------------------


@dataclass
class CFGNode:
    """One CFG vertex: a single statement, or a synthetic entry/exit."""

    idx: int
    stmt: Optional[ast.stmt]  # None for entry/exit
    kind: str  # "entry" | "exit" | "stmt"
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    nodes: List[CFGNode]
    entry: int
    exit: int

    def stmt_nodes(self) -> Iterator[CFGNode]:
        for n in self.nodes:
            if n.stmt is not None:
                yield n


class _CfgBuilder:
    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self._breaks: List[List[int]] = []
        self._continues: List[List[int]] = []
        self._exit = -1

    def _new(self, stmt: Optional[ast.stmt], kind: str = "stmt") -> int:
        node = CFGNode(len(self.nodes), stmt, kind)
        self.nodes.append(node)
        return node.idx

    def _edge(self, a: int, b: int) -> None:
        if b not in self.nodes[a].succs:
            self.nodes[a].succs.append(b)

    def _link(self, preds: Sequence[int], target: int) -> None:
        for p in preds:
            self._edge(p, target)

    def build(self, fn: ast.AST) -> CFG:
        entry = self._new(None, "entry")
        self._exit = self._new(None, "exit")
        frontier = self._seq(list(getattr(fn, "body", [])), [entry])
        self._link(frontier, self._exit)
        for node in self.nodes:
            for s in node.succs:
                self.nodes[s].preds.append(node.idx)
        return CFG(self.nodes, entry, self._exit)

    def _seq(self, stmts: List[ast.stmt], preds: List[int]) -> List[int]:
        for stmt in stmts:
            preds = self._stmt(stmt, preds)
        return preds

    def _stmt(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            node = self._new(stmt)
            self._link(preds, node)
            body_out = self._seq(stmt.body, [node])
            else_out = self._seq(stmt.orelse, [node]) if stmt.orelse else [node]
            return body_out + else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self._new(stmt)
            self._link(preds, head)
            self._breaks.append([])
            self._continues.append([])
            body_out = self._seq(stmt.body, [head])
            self._link(body_out, head)
            for c in self._continues.pop():
                self._edge(c, head)
            outs = [head]
            if stmt.orelse:
                outs = self._seq(stmt.orelse, [head])
            outs.extend(self._breaks.pop())
            return outs
        if isinstance(stmt, ast.Try):
            first_body = len(self.nodes)
            body_out = self._seq(stmt.body, preds)
            body_nodes = list(range(first_body, len(self.nodes)))
            outs = list(body_out)
            if stmt.orelse:
                outs = self._seq(stmt.orelse, body_out)
            for handler in stmt.handlers:
                head = self._new(None, "stmt")  # synthetic handler entry
                self.nodes[head].stmt = _handler_marker(handler)
                # Conservative: any statement in the body may raise.
                self._link(preds, head)
                self._link(body_nodes, head)
                outs.extend(self._seq(handler.body, [head]))
            if stmt.finalbody:
                outs = self._seq(stmt.finalbody, outs)
            return outs
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._new(stmt)
            self._link(preds, node)
            return self._seq(stmt.body, [node])
        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = self._new(stmt)
            self._link(preds, node)
            self._edge(node, self._exit)
            return []
        if isinstance(stmt, ast.Break):
            node = self._new(stmt)
            self._link(preds, node)
            if self._breaks:
                self._breaks[-1].append(node)
            else:
                self._edge(node, self._exit)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._new(stmt)
            self._link(preds, node)
            if self._continues:
                self._continues[-1].append(node)
            else:
                self._edge(node, self._exit)
            return []
        # Nested defs/classes are opaque single nodes; their bodies are
        # separate CFGs analysed on their own.
        node = self._new(stmt)
        self._link(preds, node)
        return [node]


def _handler_marker(handler: ast.ExceptHandler) -> ast.stmt:
    """A synthetic Pass carrying the handler's ``as name`` binding info."""
    marker = ast.Pass()
    marker.lineno = handler.lineno
    marker.col_offset = handler.col_offset
    marker._handler_name = handler.name  # type: ignore[attr-defined]
    return marker


def build_cfg(fn: ast.AST) -> CFG:
    """Per-statement CFG for one function (or any body-bearing node)."""
    return _CfgBuilder().build(fn)


# ---------------------------------------------------------------------------
# Generic forward fixpoint
# ---------------------------------------------------------------------------


def join_states(a: State, b: State) -> State:
    """Key-wise union of two abstract states."""
    if not a:
        return dict(b)
    out = dict(a)
    for key, labels in b.items():
        cur = out.get(key)
        out[key] = labels if cur is None else (cur | labels)
    return out


def run_forward(
    cfg: CFG,
    init: State,
    transfer: Callable[[Optional[ast.stmt], State], State],
) -> Dict[int, State]:
    """Worklist forward dataflow; returns the IN state of every node.

    ``transfer`` must be monotone in the label sets; since labels are
    drawn from a finite alphabet and join is union, the fixpoint
    terminates.
    """
    in_states: Dict[int, State] = {cfg.entry: dict(init)}
    out_states: Dict[int, State] = {}
    work = deque([cfg.entry])
    while work:
        idx = work.popleft()
        node = cfg.nodes[idx]
        state_in = in_states.get(idx, {})
        if node.stmt is None:
            state_out = dict(state_in)
        else:
            state_out = transfer(node.stmt, dict(state_in))
        if out_states.get(idx) == state_out and idx in out_states:
            continue
        out_states[idx] = state_out
        for succ in node.succs:
            merged = join_states(in_states.get(succ, {}), state_out)
            if merged != in_states.get(succ):
                in_states[succ] = merged
                if succ not in work:
                    work.append(succ)
    return in_states


# ---------------------------------------------------------------------------
# Variable keys
# ---------------------------------------------------------------------------


def var_key(expr: ast.AST) -> Optional[str]:
    """Abstract-state key for an lvalue-ish expression.

    ``x`` -> ``"x"``; ``self.attr`` -> ``"self.attr"``; anything else
    (subscripts, chained attributes, calls) has no key and is untracked.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return "self." + expr.attr
    return None


def assign_pairs(
    targets: Sequence[ast.expr], value: Optional[ast.expr]
) -> List[Tuple[ast.expr, Optional[ast.expr]]]:
    """(target, rhs) pairs for an assignment, unpacking parallel tuples.

    ``a, b = f(), g()`` pairs element-wise; ``a, b = pair`` pairs both
    targets with the whole RHS (its labels flow into each element).
    """
    pairs: List[Tuple[ast.expr, Optional[ast.expr]]] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
                target.elts
            ):
                for t, v in zip(target.elts, value.elts):
                    pairs.extend(assign_pairs([t], v))
            else:
                for t in target.elts:
                    pairs.extend(assign_pairs([t], value))
        elif isinstance(target, ast.Starred):
            pairs.extend(assign_pairs([target.value], value))
        else:
            pairs.append((target, value))
    return pairs


# ---------------------------------------------------------------------------
# Taint instantiation
# ---------------------------------------------------------------------------


class TaintTracker:
    """Forward taint over one function; rules override the two hooks.

    State keys are locals and ``self.attr`` pseudo-locals.  The default
    expression evaluator unions labels through arithmetic, boolean ops,
    conditionals, collections and subscripts; calls and fresh atoms are
    delegated to the hooks.
    """

    # -- semantic hooks (override in rules) -----------------------------
    def atom_labels(self, node: ast.AST, state: State) -> FrozenSet[str]:
        """Labels of a Name/Attribute not present in the state."""
        return frozenset()

    def call_labels(
        self,
        node: ast.Call,
        arg_labels: List[FrozenSet[str]],
        state: State,
    ) -> FrozenSet[str]:
        """Labels of a call's return value (sanitizers go here)."""
        return frozenset()

    def binop_labels(
        self, node: ast.BinOp, left: FrozenSet[str], right: FrozenSet[str]
    ) -> FrozenSet[str]:
        """Labels of a binary operation result (default: union)."""
        return left | right

    # -- evaluation ------------------------------------------------------
    def eval_expr(self, node: Optional[ast.AST], state: State) -> FrozenSet[str]:
        if node is None:
            return frozenset()
        if isinstance(node, (ast.Name, ast.Attribute)):
            key = var_key(node)
            if key is not None and key in state:
                return state[key]
            return self.atom_labels(node, state)
        if isinstance(node, ast.Constant):
            return frozenset()
        if isinstance(node, ast.Call):
            arg_labels = [self.eval_expr(a, state) for a in node.args]
            arg_labels.extend(
                self.eval_expr(kw.value, state) for kw in node.keywords
            )
            return self.call_labels(node, arg_labels, state)
        if isinstance(node, ast.BinOp):
            return self.binop_labels(
                node,
                self.eval_expr(node.left, state),
                self.eval_expr(node.right, state),
            )
        if isinstance(node, ast.UnaryOp):
            return self.eval_expr(node.operand, state)
        if isinstance(node, ast.IfExp):
            return self.eval_expr(node.body, state) | self.eval_expr(
                node.orelse, state
            )
        if isinstance(node, ast.BoolOp):
            out: FrozenSet[str] = frozenset()
            for v in node.values:
                out |= self.eval_expr(v, state)
            return out
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = frozenset()
            for e in node.elts:
                out |= self.eval_expr(e, state)
            return out
        if isinstance(node, ast.Dict):
            out = frozenset()
            for v in node.values:
                if v is not None:
                    out |= self.eval_expr(v, state)
            return out
        if isinstance(node, ast.Subscript):
            # An element carries (at most) its collection's labels.
            return self.eval_expr(node.value, state)
        if isinstance(node, ast.Starred):
            return self.eval_expr(node.value, state)
        if isinstance(node, ast.Compare):
            return frozenset()  # result is a bool, never a tracked value
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            return frozenset()
        if isinstance(node, ast.NamedExpr):
            return self.eval_expr(node.value, state)
        # Lambdas, comprehensions, yields...: untracked.
        return frozenset()

    # -- statement transfer ---------------------------------------------
    def transfer(self, stmt: Optional[ast.stmt], state: State) -> State:
        if stmt is None:
            return state
        if isinstance(stmt, ast.Assign):
            labels = None
            for target, value in assign_pairs(stmt.targets, stmt.value):
                key = var_key(target)
                if key is None:
                    continue
                labels = self.eval_expr(value, state)
                state[key] = labels
            return state
        if isinstance(stmt, ast.AnnAssign):
            key = var_key(stmt.target)
            if key is not None and stmt.value is not None:
                state[key] = self.eval_expr(stmt.value, state)
            return state
        if isinstance(stmt, ast.AugAssign):
            key = var_key(stmt.target)
            if key is not None:
                current = state.get(key)
                if current is None:
                    current = self.atom_labels(stmt.target, state)
                state[key] = current | self.eval_expr(stmt.value, state)
            return state
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_labels = self.eval_expr(stmt.iter, state)
            for target, _ in assign_pairs([stmt.target], None):
                key = var_key(target)
                if key is not None:
                    state[key] = iter_labels | self.atom_labels(target, state)
            return state
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is None:
                    continue
                labels = self.eval_expr(item.context_expr, state)
                for target, _ in assign_pairs([item.optional_vars], None):
                    key = var_key(target)
                    if key is not None:
                        state[key] = labels
            return state
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                key = var_key(target)
                if key is not None:
                    state.pop(key, None)
            return state
        return state

    # -- driver ----------------------------------------------------------
    def analyse(self, fn: ast.AST, init: Optional[State] = None):
        """CFG + fixpoint for one function; returns (cfg, node -> IN state)."""
        cfg = build_cfg(fn)
        in_states = run_forward(cfg, init or {}, self.transfer)
        return cfg, in_states


def iter_functions(tree: ast.AST) -> Iterator[Tuple[Optional[str], ast.AST]]:
    """Every (enclosing class name, function def) in a module, outer first."""
    stack: List[Tuple[Optional[str], ast.AST]] = [(None, tree)]
    while stack:
        cls, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                stack.append((child.name, child))
            elif isinstance(child, FunctionNode):
                yield cls, child
                stack.append((cls, child))
