"""thread-shared-state: the progress daemon thread's reads are allowlisted.

PR 6's :class:`repro.runner.progress.ProgressReporter` samples a *live*
simulator from a daemon thread — deliberately lock-free on the engine
side, so the hot loop pays nothing for observability.  That bargain is
only safe while the thread confines itself to a reviewed, read-mostly
slice of shared state; one innocent ``self._cur_sim.step()`` added in a
refactor would mutate engine state from the wrong thread.

This rule makes the bargain explicit and machine-checked.  A module
under ``runner/`` that starts a thread (``threading.Thread(target=
self.<method>)``) must declare, as module-level constants:

``THREAD_SHARED_READS``
    ``self`` attributes the thread-entry method (and every method it
    reaches through direct ``self.m()`` calls) may *read*.
``THREAD_OWNED``
    attributes only the thread itself touches — read *and* write allowed
    (sampler-local history like ``_last``).
``THREAD_SHARED_OBJECTS``
    attributes holding foreign objects (the live simulator).  Locals
    aliasing them are tracked with the dataflow framework; on such an
    object only the attribute names in ``THREAD_SHARED_OBJECT_READS``
    may be read, and *no* attribute store or method call is allowed —
    cross-thread mutation must go through the worker pipe/queue.

Violations: an undeclared ``self.X`` read, any ``self.X`` write outside
``THREAD_OWNED``, an undeclared read on a shared object, or any
store/call on one.  A module that starts a thread without the
declarations is itself a finding — the allowlist is the contract, not an
optional nicety.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Checker, Finding, ModuleContext
from repro.analysis.flow import State, TaintTracker, build_cfg

RULE = "thread-shared-state"

_DECLS = (
    "THREAD_SHARED_READS",
    "THREAD_OWNED",
    "THREAD_SHARED_OBJECTS",
    "THREAD_SHARED_OBJECT_READS",
)


def _literal_names(node: ast.AST) -> Optional[Set[str]]:
    """Evaluate a frozenset({...})/set/tuple-of-str literal, else None."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("frozenset", "set") and len(node.args) <= 1:
            if not node.args:
                return set()
            return _literal_names(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out: Set[str] = set()
        for e in node.elts:
            if isinstance(e, ast.Constant) and isinstance(e.value, str):
                out.add(e.value)
            else:
                return None
        return out
    return None


def _module_decls(tree: ast.AST) -> Dict[str, Set[str]]:
    decls: Dict[str, Set[str]] = {}
    for stmt in getattr(tree, "body", []):
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if isinstance(target, ast.Name) and target.id in _DECLS:
            names = _literal_names(stmt.value)
            if names is not None:
                decls[target.id] = names
    return decls


def _thread_entries(cls: ast.ClassDef) -> List[Tuple[str, ast.AST]]:
    """(method name, Thread-call node) for Thread(target=self.m) in cls."""
    entries: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        name = f.id if isinstance(f, ast.Name) else getattr(f, "attr", None)
        if name != "Thread":
            continue
        for kw in node.keywords:
            if kw.arg != "target":
                continue
            t = kw.value
            if (
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
            ):
                entries.append((t.attr, node))
    return entries


class _SharedObjectTaint(TaintTracker):
    """Taints locals aliasing a THREAD_SHARED_OBJECTS attribute."""

    def __init__(self, shared_objects: Set[str]):
        self._shared = shared_objects

    def atom_labels(self, node: ast.AST, state: State) -> FrozenSet[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self._shared
        ):
            return frozenset({"shared:" + node.attr})
        return frozenset()


class ThreadSharedStateChecker(Checker):
    rule = RULE
    description = (
        "daemon-thread methods may only read declared shared attributes "
        "(THREAD_SHARED_READS/...); cross-thread mutation is forbidden"
    )

    def interested(self, ctx: ModuleContext) -> bool:
        return ctx.relpath.startswith("runner/")

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        decls = _module_decls(ctx.tree)
        for cls in (
            n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)
        ):
            entries = _thread_entries(cls)
            if not entries:
                continue
            if "THREAD_SHARED_READS" not in decls:
                findings.append(
                    ctx.finding(
                        RULE,
                        entries[0][1],
                        f"class {cls.name!r} starts a thread but the module "
                        "declares no THREAD_SHARED_READS allowlist "
                        "(see docs/ANALYSIS.md)",
                    )
                )
                continue
            findings.extend(self._check_class(ctx, cls, entries, decls))
        return findings

    def _check_class(
        self,
        ctx: ModuleContext,
        cls: ast.ClassDef,
        entries: List[Tuple[str, ast.AST]],
        decls: Dict[str, Set[str]],
    ) -> Iterable[Finding]:
        methods = {
            n.name: n
            for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        reads = decls.get("THREAD_SHARED_READS", set())
        owned = decls.get("THREAD_OWNED", set())
        shared_objects = decls.get("THREAD_SHARED_OBJECTS", set())
        object_reads = decls.get("THREAD_SHARED_OBJECT_READS", set())

        # Thread-reachable methods: entry + transitive direct self-calls.
        reachable: List[str] = []
        todo = [name for name, _node in entries if name in methods]
        while todo:
            name = todo.pop()
            if name in reachable:
                continue
            reachable.append(name)
            for node in ast.walk(methods[name]):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in methods
                ):
                    todo.append(node.func.attr)

        findings: List[Finding] = []
        tracker = _SharedObjectTaint(shared_objects)
        for name in sorted(reachable):
            findings.extend(
                self._check_method(
                    ctx,
                    tracker,
                    methods[name],
                    set(methods),
                    reads,
                    owned,
                    object_reads,
                )
            )
        return findings

    def _check_method(
        self,
        ctx: ModuleContext,
        tracker: _SharedObjectTaint,
        fn: ast.AST,
        method_names: Set[str],
        reads: Set[str],
        owned: Set[str],
        object_reads: Set[str],
    ) -> Iterable[Finding]:
        from repro.analysis.seqno_taint import _own_exprs

        findings: List[Finding] = []
        cfg, in_states = tracker.analyse(fn)
        allowed_reads = reads | owned
        for node_ in cfg.stmt_nodes():
            state = in_states.get(node_.idx)
            if state is None:
                continue
            stmt = node_.stmt
            # self.X writes, and stores through shared-object aliases.
            for target in _stmt_store_targets(stmt):
                if not isinstance(target, ast.Attribute):
                    continue
                if (
                    isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    if target.attr not in owned:
                        findings.append(
                            ctx.finding(
                                RULE,
                                target,
                                f"thread method {fn.name!r} writes "
                                f"'self.{target.attr}' which is not in "
                                "THREAD_OWNED (route mutations through the "
                                "worker pipe/queue)",
                            )
                        )
                elif any(
                    l.startswith("shared:")
                    for l in tracker.eval_expr(target.value, state)
                ):
                    findings.append(
                        ctx.finding(
                            RULE,
                            target,
                            f"thread method {fn.name!r} writes "
                            f"'.{target.attr}' on a thread-shared object; "
                            "cross-thread mutation must go through the "
                            "worker pipe/queue",
                        )
                    )
            for node in _own_exprs(stmt):
                if not isinstance(node, ast.Attribute):
                    continue
                if not isinstance(node.ctx, ast.Load):
                    continue
                # Undeclared self.X reads (method calls are reachability,
                # handled above, not shared state).
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr not in allowed_reads
                    and node.attr not in method_names
                ):
                    findings.append(
                        ctx.finding(
                            RULE,
                            node,
                            f"thread method {fn.name!r} reads "
                            f"'self.{node.attr}' which is not in "
                            "THREAD_SHARED_READS/THREAD_OWNED",
                        )
                    )
                    continue
                # Reads/calls on aliased shared objects.
                base_labels = tracker.eval_expr(node.value, state)
                shared = [
                    l for l in base_labels if l.startswith("shared:")
                ]
                if shared and node.attr not in object_reads:
                    origin = ", ".join(
                        sorted(l.split(":", 1)[1] for l in shared)
                    )
                    findings.append(
                        ctx.finding(
                            RULE,
                            node,
                            f"thread method {fn.name!r} accesses "
                            f"'.{node.attr}' on the shared object from "
                            f"'self.{origin}'; only "
                            "THREAD_SHARED_OBJECT_READS attributes may be "
                            "touched cross-thread",
                        )
                    )
        return findings


def _stmt_store_targets(stmt: ast.stmt) -> Iterable[ast.expr]:
    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            yield from _flatten_target(t)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        yield from _flatten_target(stmt.target)


def _flatten_target(target: ast.expr) -> Iterable[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for e in target.elts:
            yield from _flatten_target(e)
    elif isinstance(target, ast.Starred):
        yield from _flatten_target(target.value)
    else:
        yield target
