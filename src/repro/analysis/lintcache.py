"""Incremental lint cache: skip re-analysing unchanged files.

``repro-udt lint`` re-parses and re-checks every module on every run,
which is wasteful in the common edit loop where one file changed.  This
module caches, per analysed file, the post-suppression findings and the
per-checker :meth:`repro.analysis.core.Checker.module_summary` facts, so
an unchanged file costs one ``stat`` instead of a parse plus six rules.

Safety model — a hit requires *all* of:

* the cache schema version matches;
* ``analysis_sha`` matches: a digest over the analysis package itself
  plus the seed files rules read contracts from (the event catalog, the
  bus kinds, ``PARAM_UNITS``, ``API_UNITS``).  Editing any rule or any
  contract invalidates everything — stale findings are worse than a
  cold cache;
* the file's ``(size, mtime_ns)`` matches, or — when only the mtime
  moved (checkout, touch) — its content SHA-256 matches.

Cross-module checkers (``event-schema``) still see cached files through
the summary-replay protocol in :func:`repro.analysis.core.run_checkers`.
The cache only serves full-rule runs; ``--rule``-filtered and
``--no-cache`` runs bypass it entirely.  The file lives at
``analysis/.lintcache.json`` in the source checkout and is gitignored —
it is a derived artifact, never reviewed.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.analysis.core import Finding

CACHE_SCHEMA = 1

#: Files (relative to the analysed package root) whose content feeds the
#: rules themselves rather than being merely *checked* — contract seeds.
#: The whole ``analysis/`` package is always included.
_SEED_FILES = (
    "obs/catalog.py",
    "obs/bus.py",
    "udt/params.py",
    "sim/engine.py",
)


def analysis_sha(pkg_root: Path) -> str:
    """Digest of the analysis code + contract seed files under ``pkg_root``."""
    h = hashlib.sha256()
    paths: List[Path] = sorted((pkg_root / "analysis").glob("*.py"))
    paths.extend(
        pkg_root / rel for rel in _SEED_FILES if (pkg_root / rel).is_file()
    )
    for p in paths:
        h.update(p.name.encode())
        h.update(p.read_bytes())
    return h.hexdigest()


def _file_sha(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


class ModuleCache:
    """Per-file findings + summaries keyed by (size, mtime_ns, sha256)."""

    def __init__(self, path: Path, analysis_digest: str):
        self.path = path
        self.analysis_digest = analysis_digest
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._seen: Dict[str, Dict[str, Any]] = {}
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            data.get("schema") == CACHE_SCHEMA
            and data.get("analysis_sha") == analysis_digest
            and isinstance(data.get("files"), dict)
        ):
            self._entries = data["files"]

    def lookup(self, path: Path, relpath: str) -> Optional[Dict[str, Any]]:
        """Cached {"findings": [...], "summaries": {...}} or None (stale)."""
        entry = self._entries.get(relpath)
        if entry is None:
            self.misses += 1
            return None
        try:
            st = path.stat()
        except OSError:
            self.misses += 1
            return None
        if entry.get("size") != st.st_size:
            self.misses += 1
            return None
        if entry.get("mtime_ns") != st.st_mtime_ns:
            # mtime moved but size matched — fall back to content identity
            # (branch switches and `touch` shouldn't evict the whole cache).
            if entry.get("sha") != _file_sha(path):
                self.misses += 1
                return None
            entry = dict(entry, mtime_ns=st.st_mtime_ns)
        self.hits += 1
        self._seen[relpath] = entry
        return entry

    def store(
        self,
        path: Path,
        relpath: str,
        findings: List[Finding],
        summaries: Dict[str, Any],
    ) -> None:
        try:
            st = path.stat()
        except OSError:
            return
        self._seen[relpath] = {
            "size": st.st_size,
            "mtime_ns": st.st_mtime_ns,
            "sha": _file_sha(path),
            "findings": [f.to_dict() for f in findings],
            "summaries": summaries,
        }

    def save(self) -> None:
        """Atomically persist every entry seen this run (stale ones drop)."""
        payload = {
            "schema": CACHE_SCHEMA,
            "kind": "lint.cache",
            "analysis_sha": self.analysis_digest,
            "files": self._seen,
        }
        tmp = self.path.with_suffix(".json.tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps(payload, separators=(",", ":")) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, self.path)
        except OSError:  # pragma: no cover - cache is best-effort
            try:
                tmp.unlink()
            except OSError:
                pass


def open_cache(repo: Optional[Path], pkg_root: Path) -> Optional[ModuleCache]:
    """The checkout's cache, or None when not running from a checkout."""
    if repo is None:
        return None
    return ModuleCache(
        repo / "analysis" / ".lintcache.json", analysis_sha(pkg_root)
    )
