"""Protocol-invariant static analysis + determinism sanitizer.

The invariants this reproduction leans on — 31-bit wrap-around sequence
arithmetic, a sans-IO protocol core, a machine-checked telemetry schema,
reproducible discrete-event runs — were conventions until this package;
now they are enforced properties.  Six checkers run over ``src/repro``
through a small driver (:mod:`repro.analysis.core`); the dataflow tier
(``seqno-taint``/``units``/``thread-shared-state``) is built on the CFG +
taint framework in :mod:`repro.analysis.flow`:

=================== ========================================================
rule                what it enforces
=================== ========================================================
``seqno-taint``     no raw ``<``/``>``/``+``/``-``/``==`` on values
                    *derived from* wrap-around sequence numbers, tracked
                    through locals/attributes/returns (supersedes the
                    syntactic ``seqno-arith`` of PR 3)
``units``           dimensional consistency (s/us/bytes/pkts/pps/bps),
                    seeded from udt/params.py and sim/engine.py
``thread-shared-state`` the progress daemon thread reads only declared
                    allowlisted attributes; no cross-thread mutation
``sansio-purity``   no wall clocks, unseeded RNG, sockets or threads in
                    ``repro/udt/`` and ``repro/sim/``
``event-schema``    every ``bus.emit`` payload and consumer key access
                    matches ``repro/obs/catalog.py``
``vtime-determinism`` no float ``==`` between virtual times; no
                    scheduling out of unordered iteration
=================== ========================================================

The behavioural half: :mod:`repro.analysis.protomodel` statically
extracts a per-flow event-order model from the ``udt/core.py`` handler
structure (committed as ``analysis/protocol_model.json``) and
:mod:`repro.analysis.conformance` checks recorded traces against it
(``repro-udt conform TRACE`` / ``repro-udt lint --conformance TRACE``).

The runtime half, :class:`repro.analysis.sanitizer.DeterminismSanitizer`,
runs an experiment twice with perturbed same-vtime tie-breaking and hash
seeds and diffs the JSONL traces byte-for-byte.

Entry points: ``repro-udt lint`` and ``python -m repro.analysis``; the
CI gate compares against ``analysis/baseline.json``.  See
docs/ANALYSIS.md for the full rule catalog and suppression syntax.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    BaselineComparison,
    compare,
    default_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import (
    Checker,
    Finding,
    ModuleContext,
    default_root,
    repo_root,
    run_checkers,
)
from repro.analysis.event_schema import EventSchemaChecker
from repro.analysis.sansio import SansioPurityChecker
from repro.analysis.seqno_taint import SeqnoTaintChecker
from repro.analysis.threads import ThreadSharedStateChecker
from repro.analysis.units import UnitsChecker
from repro.analysis.vtime import VtimeDeterminismChecker


def all_checkers() -> List[Checker]:
    """Fresh instances of every registered checker, in rule order."""
    return [
        SeqnoTaintChecker(),
        UnitsChecker(),
        ThreadSharedStateChecker(),
        SansioPurityChecker(),
        EventSchemaChecker(),
        VtimeDeterminismChecker(),
    ]


def rule_ids() -> List[str]:
    return [c.rule for c in all_checkers()]


def run_analysis(
    root=None, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run all (or selected) checkers over ``root`` (default: src/repro)."""
    from pathlib import Path

    target = Path(root) if root is not None else default_root()
    return run_checkers(target, all_checkers(), rules=rules)


__all__ = [
    "BaselineComparison",
    "Checker",
    "Finding",
    "ModuleContext",
    "all_checkers",
    "compare",
    "default_baseline_path",
    "default_root",
    "load_baseline",
    "repo_root",
    "rule_ids",
    "run_analysis",
    "run_checkers",
    "write_baseline",
]
