"""Docs lint: ``python -m repro.analysis.docscheck``.

The fast docs CI job.  Three checks over the repo's markdown
(README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md, CHANGES.md and
everything under docs/):

* **links** — every relative markdown link resolves to a file in the
  repo, and every ``#anchor`` fragment matches a heading in the target
  file (GitHub slug rules: lowercase, punctuation dropped, spaces to
  dashes, duplicate slugs suffixed ``-1``, ``-2``, ...).
* **flags** — every quoted ``repro-udt <cmd> ...`` command line only
  uses flags the live argparse tree actually accepts (walked via
  :mod:`repro.analysis.clidoc`), so prose can't advertise an option
  that was renamed or never existed.
* **events** — every dotted event-kind token from a known family
  (``link.drop``, ``fluid.enter``, ...) names an entry in
  :data:`repro.obs.catalog.CATALOG`; docs can't describe events the
  bus never emits.

Checks are purely textual/static — no experiment runs — so the CI job
finishes in seconds.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Markdown files the checks cover, relative to the repo root.
DOC_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
)
DOC_GLOBS = ("docs/*.md",)

#: Event-kind families whose dotted tokens must exist in the catalog.
EVENT_FAMILIES = (
    "conn",
    "snd",
    "cc",
    "exp",
    "rcv",
    "link",
    "queue",
    "cpu",
    "flow",
    "pkt",
    "fluid",
    "trace",
)

#: Dotted tokens that look like event kinds but are not bus events.
EVENT_ALLOWLIST = {
    "trace.meta",  # JSONL header record, intentionally outside the catalog
    # attribute references, not kinds
    "pkt.size",
    "pkt.seq",
    "link.delay",
    "link.dst",
    "flow.flow_id",
    "flow.arrival_flow_id",
    "flow.sender",
    "flow.throughput_bps",
    "cc.fluid_tick",
    "queue.drop_threshold",
    # hot-path profiler categories (repro.obs.prof), not bus events
    "cc.exp_timer",
    "cc.send_timer",
    "cc.syn_timer",
    "link.transmit",
    "link.drain",
}

#: Dotted suffixes that mark file/module mentions, never event kinds.
_NON_EVENT_SUFFIXES = ("py", "md", "json", "jsonl", "rtrc", "gz", "svg", "html")

_LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
_INLINE_CODE_RE = re.compile(r"`([^`]+)`")
_CMD_RE = re.compile(r"\brepro-udt\s+([a-z][\w-]*(?:\s+[a-z][\w-]*)?)")
_FLAG_RE = re.compile(r"(--[A-Za-z][\w-]*)")
_EVENT_RE = re.compile(
    r"\b(" + "|".join(EVENT_FAMILIES) + r")\.([a-z][a-z0-9_]*)\b"
)


def repo_docs(root: Path) -> List[Path]:
    files = [root / name for name in DOC_FILES if (root / name).exists()]
    for pattern in DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    return files


# -- anchors ---------------------------------------------------------------


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """GitHub's anchor slug for one heading, tracking duplicates."""
    # strip inline code/links/formatting before slugging
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    slug = text.replace(" ", "-")
    n = seen.get(slug, 0)
    seen[slug] = n + 1
    return slug if n == 0 else f"{slug}-{n}"


def heading_anchors(text: str) -> Set[str]:
    seen: Dict[str, int] = {}
    return {github_slug(m.group(2), seen) for m in _HEADING_RE.finditer(text)}


def check_links(doc: Path, text: str, root: Path) -> List[str]:
    errors: List[str] = []
    # links inside code fences are examples, not navigation
    stripped = _CODE_FENCE_RE.sub("", text)
    for m in _LINK_RE.finditer(stripped):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if not path_part:
            dest = doc
        else:
            dest = (doc.parent / path_part).resolve()
            if not dest.exists():
                errors.append(f"{doc.relative_to(root)}: broken link -> {target}")
                continue
        if anchor and dest.suffix == ".md":
            anchors = heading_anchors(dest.read_text(encoding="utf-8"))
            if anchor not in anchors:
                errors.append(
                    f"{doc.relative_to(root)}: missing anchor -> {target}"
                )
    return errors


# -- CLI flags --------------------------------------------------------------


def _doc_command_lines(text: str) -> Iterable[str]:
    """Every ``repro-udt ...`` line quoted in fences or inline code."""
    for fence in re.findall(r"```(?:\w*\n)?(.*?)```", text, re.DOTALL):
        for line in fence.splitlines():
            if "repro-udt" in line:
                yield line
    for code in _INLINE_CODE_RE.findall(_CODE_FENCE_RE.sub("", text)):
        if "repro-udt" in code:
            yield code


def check_flags(doc: Path, text: str, root: Path) -> List[str]:
    from repro.analysis.clidoc import known_flags

    flags_by_cmd = known_flags()
    errors: List[str] = []
    for line in _doc_command_lines(text):
        matches = list(_CMD_RE.finditer(line))
        for i, m in enumerate(matches):
            words = m.group(1).split()
            # longest command path that exists wins ("trace query" > "trace")
            cmd = None
            for take in (2, 1):
                candidate = " ".join(words[:take])
                if candidate in flags_by_cmd:
                    cmd = candidate
                    break
            if cmd is None:
                # not a leaf command mention ("repro-udt trace" is prose)
                continue
            # flags belong to this command only up to the next quoted
            # command on the same line
            end = matches[i + 1].start() if i + 1 < len(matches) else len(line)
            tail = line[m.end() : end]
            for flag in _FLAG_RE.findall(tail):
                if flag not in flags_by_cmd[cmd]:
                    errors.append(
                        f"{doc.relative_to(root)}: 'repro-udt {cmd}' has no "
                        f"{flag} (line: {line.strip()[:80]})"
                    )
    return errors


# -- event kinds ------------------------------------------------------------


def check_events(doc: Path, text: str, root: Path) -> List[str]:
    from repro.obs.catalog import CATALOG

    errors: List[str] = []
    for m in _EVENT_RE.finditer(text):
        kind = m.group(0)
        if kind in CATALOG or kind in EVENT_ALLOWLIST:
            continue
        if m.group(2) in _NON_EVENT_SUFFIXES:
            continue  # a file name like link.py, not an event kind
        errors.append(
            f"{doc.relative_to(root)}: event kind {kind!r} is not in "
            "repro/obs/catalog.py (doc drift?)"
        )
    return errors


# -- driver -----------------------------------------------------------------


def run_checks(root: Path, checks: Sequence[str]) -> Tuple[List[str], int]:
    errors: List[str] = []
    docs = repo_docs(root)
    for doc in docs:
        text = doc.read_text(encoding="utf-8")
        if "links" in checks:
            errors.extend(check_links(doc, text, root))
        if "flags" in checks:
            errors.extend(check_flags(doc, text, root))
        if "events" in checks:
            errors.extend(check_events(doc, text, root))
    return errors, len(docs)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.docscheck",
        description="Lint the repo's markdown: relative links/anchors "
        "resolve, quoted repro-udt flags exist, documented event kinds "
        "are in the catalog.",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="repo root holding the docs (default: auto-detected from "
        "this file's location)",
    )
    parser.add_argument(
        "--check",
        action="append",
        choices=["links", "flags", "events"],
        default=None,
        help="run only this check (repeatable; default: all three)",
    )
    args = parser.parse_args(argv)
    root = (
        Path(args.root).resolve()
        if args.root
        else Path(__file__).resolve().parents[3]
    )
    checks = args.check or ["links", "flags", "events"]
    errors, n_docs = run_checks(root, checks)
    for e in sorted(errors):
        print(f"[docscheck] FAIL: {e}", file=sys.stderr)
    if errors:
        print(
            f"[docscheck] {len(errors)} problem(s) across {n_docs} file(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"[docscheck] {n_docs} file(s) clean "
        f"({', '.join(checks)})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
