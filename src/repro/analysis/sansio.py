"""sansio-purity: the protocol core and simulator touch no wall clocks.

The discrete-event reproduction is trustworthy for the same reason NS-2
figures are: a run is a pure function of (code, seed, parameters).  That
only holds if simulated components get *time* exclusively from the
engine (``Simulator.now`` / scheduler callbacks) and *randomness*
exclusively from the simulation-owned, seeded ``Simulator.rng``.  One
``time.time()`` in a protocol path silently couples results to the host;
one module-level ``random.random()`` couples them to interpreter-global
state shared across experiments.

Flagged inside ``repro/udt/`` and ``repro/sim/``:

* imports of ``socket`` or ``threading`` (real I/O and real concurrency
  belong in ``repro/live/``, the explicitly wall-clock half);
* imports of wall-clock time sources (``import time``,
  ``from time import time/perf_counter/monotonic/...``) and calls to
  ``time.time()``, ``time.perf_counter()``, ``time.monotonic()``,
  ``time.sleep()`` and ``datetime.now()``/``datetime.utcnow()``;
* ``os`` time sources (``os.times``);
* *unseeded* randomness: module-level ``random.random()`` etc. (the
  interpreter-global RNG) and ``random.Random()`` constructed with no
  seed argument.  ``random.Random(seed)`` is fine — that is the pattern
  the engine itself uses.

Allowlist: ``sim/engine.py`` may use ``perf_counter`` — its profiling
path (``run_profiled``) deliberately measures wall time and never feeds
it back into virtual time.  ``repro/obs/prof.py`` and ``repro/live/``
are outside this rule's scope entirely.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List

from repro.analysis.core import Checker, Finding, ModuleContext

RULE = "sansio-purity"

_FORBIDDEN_MODULES = {
    "socket": "real sockets belong in repro/live/",
    "threading": "real concurrency belongs in repro/live/",
}

#: attributes of the ``time`` module that read the wall clock (or stall
#: on it); importing any of them into the sans-IO core is a finding.
_TIME_SOURCES = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock",
        "sleep",
    }
)

#: ``random`` module-level functions = the interpreter-global RNG.
_GLOBAL_RNG_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "expovariate",
        "betavariate",
        "normalvariate",
        "seed",
        "getrandbits",
    }
)

_OS_TIME_SOURCES = frozenset({"times"})

#: per-file exemptions: relpath -> names allowed despite the rule.
_ALLOWLIST: Dict[str, frozenset] = {
    # run_profiled() measures handler wall time; it never feeds virtual
    # time, so the profiling path is the one sanctioned wall-clock user.
    "sim/engine.py": frozenset({"perf_counter", "perf_counter_ns"}),
}


class SansioPurityChecker(Checker):
    rule = RULE
    description = (
        "no wall clocks, unseeded randomness, sockets or threads inside "
        "repro/udt/ and repro/sim/ (time comes from the engine, "
        "randomness from Simulator.rng)"
    )

    def interested(self, ctx: ModuleContext) -> bool:
        rp = ctx.relpath
        return rp.startswith("udt/") or rp.startswith("sim/")

    def _allowed(self, ctx: ModuleContext, name: str) -> bool:
        return name in _ALLOWLIST.get(ctx.relpath, frozenset())

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(ctx.finding(RULE, node, message))

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in _FORBIDDEN_MODULES:
                        flag(
                            node,
                            f"import of {alias.name!r} in the sans-IO core: "
                            f"{_FORBIDDEN_MODULES[top]}",
                        )
                    elif top == "time" and not self._allowed(ctx, "time"):
                        flag(
                            node,
                            "import of 'time' in the sans-IO core: simulated "
                            "components must take time from the engine "
                            "(Simulator.now), never the wall clock",
                        )
            elif isinstance(node, ast.ImportFrom):
                mod = (node.module or "").split(".")[0]
                if mod in _FORBIDDEN_MODULES:
                    flag(
                        node,
                        f"import from {node.module!r} in the sans-IO core: "
                        f"{_FORBIDDEN_MODULES[mod]}",
                    )
                elif mod == "time":
                    for alias in node.names:
                        if alias.name in _TIME_SOURCES and not self._allowed(
                            ctx, alias.name
                        ):
                            flag(
                                node,
                                f"import of wall-clock source "
                                f"'time.{alias.name}' in the sans-IO core; "
                                "use engine virtual time",
                            )
                elif mod == "random":
                    for alias in node.names:
                        if alias.name in _GLOBAL_RNG_FNS:
                            flag(
                                node,
                                f"import of global-RNG function "
                                f"'random.{alias.name}'; draw from the "
                                "seeded Simulator.rng instead",
                            )
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                base = func.value
                if not isinstance(base, ast.Name):
                    continue
                if base.id == "time" and func.attr in _TIME_SOURCES:
                    if not self._allowed(ctx, func.attr):
                        flag(
                            node,
                            f"wall-clock call time.{func.attr}() in the "
                            "sans-IO core; use engine virtual time",
                        )
                elif base.id == "random":
                    if func.attr in _GLOBAL_RNG_FNS:
                        flag(
                            node,
                            f"global-RNG call random.{func.attr}(); draw "
                            "from the seeded Simulator.rng instead",
                        )
                    elif func.attr == "Random" and not (
                        node.args or node.keywords
                    ):
                        flag(
                            node,
                            "unseeded random.Random(): pass an explicit "
                            "seed (or share Simulator.rng) so runs are "
                            "reproducible",
                        )
                elif base.id == "os" and func.attr in _OS_TIME_SOURCES:
                    flag(
                        node,
                        f"os time source os.{func.attr}() in the sans-IO "
                        "core; use engine virtual time",
                    )
                elif base.id == "datetime" and func.attr in ("now", "utcnow", "today"):
                    flag(
                        node,
                        f"wall-clock call datetime.{func.attr}() in the "
                        "sans-IO core; use engine virtual time",
                    )
        return findings
