"""Check recorded traces against the statically-extracted protocol model.

Where the lint tier checks *source*, this checks *behaviour*: every
``.rtrc`` / ``.jsonl`` trace the simulator writes must obey the event
ordering the endpoint's own guard structure promises
(:mod:`repro.analysis.protomodel`):

* ``requires_prior`` — a guarded kind (``pkt.snd``, ``snd.ack``, ...)
  must be preceded by ``conn.connected`` from the same ``src``;
* ``unique`` — ``conn.connected`` / ``conn.closed`` at most once per src;
* ``terminal`` — no model-kind event from a src after its ``conn.closed``.

A violation in a real trace means the trace pipeline, the sim adapter or
the endpoint itself broke an invariant the source *appears* to enforce —
exactly the class of bug neither unit tests (which assert on aggregates)
nor the lint tier (which never runs the code) can see.

Reading is routed through :func:`repro.obs.export.read_events` filtered
to the model's kinds, so on ``.rtrc`` traces the indexed store skips
whole blocks containing none of them (conn/cc/control kinds are a tiny
fraction of a packet-detail trace).  Each violation carries the few
preceding same-src model events as context, so the report reads like a
story — "closed at t=9.98, then pkt.snd at t=10.01" — instead of a bare
index.

Caveat: conformance assumes the trace was recorded without a sampling
policy that drops ``conn.*`` events; sampled traces can false-positive
on ``requires_prior`` (the connect record simply wasn't written).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional

from repro.analysis.protomodel import CLOSED_KIND, load_model

#: hard cap on reported violations — a systematically broken trace would
#: otherwise produce one violation per packet.
MAX_VIOLATIONS = 50

#: how many preceding same-src model events each violation carries.
CONTEXT_EVENTS = 4


def _fmt_event(rec: Dict[str, Any]) -> str:
    return f"t={rec.get('t', 0.0):.6f} {rec.get('kind')} src={rec.get('src')}"


@dataclass(frozen=True)
class Violation:
    """One ordering violation, anchored to its position in the stream."""

    index: int  # position within the model-kind event stream
    t: float
    src: str
    kind: str
    constraint: str  # requires_prior | unique | terminal
    message: str
    context: List[str] = field(default_factory=list, compare=False)

    def format(self) -> str:
        lines = [f"#{self.index} t={self.t:.6f} src={self.src}: {self.message}"]
        for c in self.context:
            lines.append(f"    after: {c}")
        return "\n".join(lines)


@dataclass
class ConformanceReport:
    trace: str
    events_checked: int = 0
    srcs: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    truncated: bool = False  # hit MAX_VIOLATIONS and stopped collecting

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        head = (
            f"conformance: {self.trace}: {self.events_checked} model "
            f"event(s), {len(self.srcs)} src(s), "
            f"{len(self.violations)} violation(s)"
        )
        if not self.violations:
            return head + " — OK"
        body = "\n".join(v.format() for v in self.violations)
        tail = "\n(further violations suppressed)" if self.truncated else ""
        return f"{head}\n{body}{tail}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace": self.trace,
            "events_checked": self.events_checked,
            "srcs": self.srcs,
            "ok": self.ok,
            "truncated": self.truncated,
            "violations": [
                {
                    "index": v.index,
                    "t": v.t,
                    "src": v.src,
                    "kind": v.kind,
                    "constraint": v.constraint,
                    "message": v.message,
                    "context": v.context,
                }
                for v in self.violations
            ],
        }


class _SrcState:
    __slots__ = ("seen", "terminated", "recent")

    def __init__(self) -> None:
        self.seen: set = set()  # model kinds already seen for this src
        self.terminated = False
        self.recent: Deque[str] = deque(maxlen=CONTEXT_EVENTS)


def check_trace(
    trace_path: str,
    model: Optional[Dict[str, Any]] = None,
    model_path: Optional[Path] = None,
) -> ConformanceReport:
    """Validate one trace file against the protocol model."""
    if model is None:
        model = load_model(model_path)
    model_kinds = frozenset(model.get("kinds", {}))
    requires_prior: Dict[str, str] = {}
    unique = set()
    terminal = set()
    for c in model.get("constraints", ()):
        if c["type"] == "requires_prior":
            requires_prior[c["kind"]] = c["prior"]
        elif c["type"] == "unique":
            unique.add(c["kind"])
        elif c["type"] == "terminal":
            terminal.add(c["kind"])

    from repro.obs.export import read_events

    report = ConformanceReport(trace=str(trace_path))
    states: Dict[str, _SrcState] = {}
    for index, rec in enumerate(read_events(str(trace_path), kinds=model_kinds)):
        report.events_checked = index + 1
        src = str(rec.get("src", ""))
        kind = rec.get("kind")
        t = float(rec.get("t", 0.0))
        st = states.get(src)
        if st is None:
            st = states[src] = _SrcState()

        def violate(constraint: str, message: str) -> None:
            if len(report.violations) >= MAX_VIOLATIONS:
                report.truncated = True
                return
            report.violations.append(
                Violation(
                    index=index,
                    t=t,
                    src=src,
                    kind=kind,
                    constraint=constraint,
                    message=message,
                    context=list(st.recent),
                )
            )

        if st.terminated:
            violate(
                "terminal",
                f"{kind!r} after terminal {CLOSED_KIND!r} "
                "(endpoint kept emitting past close)",
            )
        if kind in unique and kind in st.seen:
            violate("unique", f"duplicate {kind!r} for this src")
        prior = requires_prior.get(kind)
        if prior is not None and prior not in st.seen:
            violate(
                "requires_prior",
                f"{kind!r} before {prior!r} (guarded emit fired on an "
                "unconnected endpoint)",
            )
        st.seen.add(kind)
        if kind in terminal:
            st.terminated = True
        st.recent.append(_fmt_event(rec))
    report.srcs = sorted(states)
    return report
