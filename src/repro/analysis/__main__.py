"""``python -m repro.analysis`` — lint driver + sanitizer worker mode."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
