"""Command-line surface for the analysis suite.

Shared by two entry points: ``repro-udt lint`` / ``repro-udt conform``
(the subcommands wired into :mod:`repro.cli`) and ``python -m
repro.analysis`` (the same lint driver, importable without the rest of
the CLI; also hosts the hidden ``--worker`` mode the determinism
sanitizer spawns).

Exit codes: 0 = clean (no non-baselined findings / sanitizer agreed /
trace conforms), 1 = new findings, divergence or violations,
2 = usage/configuration error.

Full-rule lint runs also maintain ``analysis/.lintstatus.json`` — a
small merge-updated status file (last lint outcome, last conformance
verdicts) the HTML dashboard renders as its code-health card.
"""

from __future__ import annotations

import argparse
import ast as _ast
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.analysis.baseline import (
    compare,
    default_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import default_root, repo_root

#: merge-updated status file consumed by the dashboard's code-health card.
STATUS_RELPATH = "analysis/.lintstatus.json"


def update_status(section: str, payload: Dict[str, Any]) -> Optional[Path]:
    """Merge one section into ``analysis/.lintstatus.json`` (best-effort)."""
    repo = repo_root()
    if repo is None:
        return None
    path = repo / STATUS_RELPATH
    data: Dict[str, Any] = {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        data = {}
    if not isinstance(data, dict) or data.get("schema") != 1:
        data = {"schema": 1, "kind": "lint.status"}
    data[section] = dict(payload, updated=time.time())
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    except OSError:
        return None
    return path


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint options on ``parser`` (shared by both entry points)."""
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the findings/baseline comparison as JSON on stdout "
        "(round-trips through the baseline format)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE",
        help="run only this rule (repeatable); default: all rules. "
        "Rule filtering skips the baseline gate (exit reflects raw findings)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="package tree to analyse (default: the installed repro package)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file to gate against (default: analysis/baseline.json "
        "at the repo root)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings instead of "
        "gating (for deliberate, reviewed exceptions)",
    )
    parser.add_argument(
        "--sanitize",
        metavar="EXP_ID",
        default=None,
        help="additionally run the determinism sanitizer on this experiment "
        "(two perturbed runs, byte-level trace diff)",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="overrides",
        help="runner keyword override for --sanitize (repeatable), "
        "e.g. --set duration=5",
    )
    parser.add_argument(
        "--sanitize-format",
        choices=("jsonl", "jsonl.gz", "rtrc"),
        default="jsonl",
        help="trace format the --sanitize runs record and diff "
        "(default: jsonl)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the incremental lint cache "
        "(analysis/.lintcache.json); full-rule runs use it by default",
    )
    parser.add_argument(
        "--conformance",
        action="append",
        default=[],
        metavar="TRACE",
        help="additionally check this trace (.rtrc/.jsonl[.gz]) against "
        "the extracted protocol model (repeatable); violations fail the "
        "run like findings do",
    )
    parser.add_argument(
        "--model",
        metavar="PATH",
        default=None,
        help="protocol model to check traces against (default: the "
        "committed analysis/protocol_model.json)",
    )


def _parse_overrides(
    items: List[str], parser: Optional[argparse.ArgumentParser] = None
) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {}
    for item in items:
        if "=" not in item:
            msg = f"--set expects KEY=VALUE, got {item!r}"
            if parser is not None:
                parser.error(msg)
            raise SystemExit(msg)
        key, _, raw = item.partition("=")
        try:
            kwargs[key] = _ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            kwargs[key] = raw
    return kwargs


def run_lint(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Run the checker driver, gate against the baseline, maybe sanitize."""
    from repro.analysis import all_checkers, rule_ids
    from repro.analysis.core import run_checkers

    rules = args.rule
    if rules:
        unknown = sorted(set(rules) - set(rule_ids()))
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(unknown)}")

    root = Path(args.root) if args.root else default_root()
    if not root.is_dir():
        parser.error(f"not a directory: {root}")

    # The incremental cache only serves full-rule runs over the default
    # root — a --rule or --root selection would poison its entries.
    cache = None
    if rules is None and args.root is None and not getattr(args, "no_cache", False):
        from repro.analysis.lintcache import open_cache

        cache = open_cache(repo_root(), root)

    t0 = time.perf_counter()
    findings = run_checkers(root, all_checkers(), rules=rules, cache=cache)
    elapsed = time.perf_counter() - t0
    if cache is not None:
        cache.save()

    conform_reports = _run_conformance(args, parser)

    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path()
    )
    if baseline_path is None:
        from repro.analysis.baseline import BASELINE_RELPATH

        baseline_path = Path.cwd() / BASELINE_RELPATH

    if args.write_baseline:
        write_baseline(baseline_path, findings)
        if not args.json:
            print(f"[baseline: {len(findings)} finding(s) -> {baseline_path}]")
        return 0

    if rules:
        # Partial runs can't be compared against the full-tree baseline;
        # report raw findings and let the exit code reflect them.
        payload: Dict[str, Any] = {
            "schema": 1,
            "kind": "lint.report",
            "rules": sorted(rules),
            "elapsed_s": round(elapsed, 3),
            "findings": [f.to_dict() for f in findings],
        }
        if conform_reports is not None:
            payload["conformance"] = [r.to_dict() for r in conform_reports]
        if args.json:
            json.dump(payload, sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            for f in findings:
                print(f.format())
            print(
                f"[lint: {len(findings)} finding(s), rules "
                f"{','.join(sorted(rules))}, {elapsed:.2f}s]"
            )
            for r in conform_reports or ():
                print(r.format())
        bad_traces = any(not r.ok for r in conform_reports or ())
        return 1 if findings or bad_traces else 0

    baseline = load_baseline(baseline_path) if baseline_path.is_file() else []
    cmp = compare(findings, baseline)
    payload = {
        "schema": 1,
        "kind": "lint.report",
        "elapsed_s": round(elapsed, 3),
        "baseline": str(baseline_path),
        **cmp.to_dict(),
    }

    if conform_reports is not None:
        payload["conformance"] = [r.to_dict() for r in conform_reports]

    rc = 0 if cmp.gate_passed else 1
    if any(not r.ok for r in conform_reports or ()):
        rc = 1
    sanitize_result = None
    if args.sanitize:
        from repro.analysis.sanitizer import DeterminismSanitizer

        sanitizer = DeterminismSanitizer(
            args.sanitize,
            overrides=_parse_overrides(args.overrides, parser),
            trace_format=args.sanitize_format,
        )
        sanitize_result = sanitizer.run()
        payload["sanitize"] = sanitize_result.to_dict()
        if not sanitize_result.deterministic:
            rc = 1

    update_status(
        "lint",
        {
            "findings": len(findings),
            "new": len(cmp.new),
            "baselined": len(cmp.baselined),
            "fixed": len(cmp.fixed),
            "gate_passed": cmp.gate_passed,
            "elapsed_s": round(elapsed, 3),
            "cache": (
                {"hits": cache.hits, "misses": cache.misses}
                if cache is not None
                else None
            ),
        },
    )
    if conform_reports is not None:
        update_status(
            "conformance",
            {"traces": [r.to_dict() for r in conform_reports]},
        )

    if args.json:
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return rc

    for f in cmp.new:
        print(f.format())
    cache_note = (
        f", cache {cache.hits} hit/{cache.misses} analysed"
        if cache is not None
        else ""
    )
    summary = (
        f"[lint: {len(findings)} finding(s) — {len(cmp.new)} new, "
        f"{len(cmp.baselined)} baselined, {len(cmp.fixed)} fixed vs baseline; "
        f"{elapsed:.2f}s{cache_note}]"
    )
    print(summary)
    if cmp.fixed:
        print(
            "[note: baseline lists finding(s) no longer present — "
            "refresh it with --write-baseline]"
        )
    for r in conform_reports or ():
        print(r.format())
    if sanitize_result is not None:
        print(sanitize_result.format())
    return rc


def _run_conformance(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> Optional[List[Any]]:
    """Check every --conformance trace; None when none were requested."""
    traces = getattr(args, "conformance", None) or []
    if not traces:
        return None
    from repro.analysis.conformance import check_trace
    from repro.analysis.protomodel import load_model

    model_path = Path(args.model) if getattr(args, "model", None) else None
    try:
        model = load_model(model_path)
    except (OSError, ValueError) as exc:
        parser.error(f"cannot load protocol model: {exc}")
    reports = []
    for trace in traces:
        if not Path(trace).is_file():
            parser.error(f"no such trace: {trace}")
        reports.append(check_trace(trace, model=model))
    return reports


def add_conform_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the ``conform`` subcommand options."""
    parser.add_argument(
        "traces",
        nargs="+",
        metavar="TRACE",
        help="trace file(s) (.rtrc/.jsonl[.gz]) to check against the "
        "protocol model",
    )
    parser.add_argument(
        "--model",
        metavar="PATH",
        default=None,
        help="protocol model JSON (default: committed "
        "analysis/protocol_model.json, extracted live as a fallback)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the reports as JSON on stdout",
    )


def run_conform(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Entry point for ``repro-udt conform``."""
    shim = argparse.Namespace(conformance=args.traces, model=args.model)
    reports = _run_conformance(shim, parser) or []
    update_status("conformance", {"traces": [r.to_dict() for r in reports]})
    if args.json:
        json.dump(
            {
                "schema": 1,
                "kind": "conformance.report",
                "traces": [r.to_dict() for r in reports],
            },
            sys.stdout,
            indent=2,
        )
        sys.stdout.write("\n")
    else:
        for r in reports:
            print(r.format())
    return 1 if any(not r.ok for r in reports) else 0


def _run_worker(args: argparse.Namespace) -> int:
    from repro.analysis.sanitizer import run_worker

    run_worker(
        args.worker,
        args.worker_trace,
        _parse_overrides(args.overrides),
        args.worker_packets,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Protocol-invariant static analysis for the repro tree.",
    )
    add_lint_arguments(parser)
    # Hidden worker mode used by DeterminismSanitizer subprocesses.
    parser.add_argument("--worker", metavar="EXP_ID", help=argparse.SUPPRESS)
    parser.add_argument("--worker-trace", metavar="PATH", help=argparse.SUPPRESS)
    parser.add_argument(
        "--worker-packets", action="store_true", help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)
    if args.worker:
        if not args.worker_trace:
            parser.error("--worker requires --worker-trace")
        return _run_worker(args)
    return run_lint(args, parser)
