"""Baseline bookkeeping: grandfathered findings and the CI gate.

The lint gate is *zero new findings*, not *zero findings*: a checked-in
``analysis/baseline.json`` records any finding that predates a rule (or
is a deliberate exception too broad for an inline suppression), and the
comparator classifies a run's findings into ``new`` / ``baselined`` /
``fixed``.  Policy (docs/ANALYSIS.md): prefer fixing over baselining,
prefer an inline ``# lint: disable=<rule>`` with a justification comment
over a baseline entry, and never let the baseline grow in a PR that
isn't introducing the rule itself.

Matching is by ``(rule, path, message)`` with multiplicity, deliberately
ignoring line numbers so unrelated edits above a grandfathered finding
do not break the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.core import Finding, repo_root

BASELINE_SCHEMA = 1

#: default baseline location, relative to the repository root.
BASELINE_RELPATH = Path("analysis") / "baseline.json"


def default_baseline_path() -> Optional[Path]:
    root = repo_root()
    if root is not None:
        return root / BASELINE_RELPATH
    candidate = Path.cwd() / BASELINE_RELPATH
    return candidate if candidate.exists() else None


def load_baseline(path: Optional[Path]) -> List[Finding]:
    """Read baseline findings; a missing file is an empty baseline."""
    if path is None or not Path(path).exists():
        return []
    with open(path, "r") as f:
        doc = json.load(f)
    if doc.get("kind") != "lint.baseline" or doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path}: not a schema-{BASELINE_SCHEMA} lint.baseline file")
    return [Finding.from_dict(d) for d in doc.get("findings", [])]


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    doc = {
        "schema": BASELINE_SCHEMA,
        "kind": "lint.baseline",
        "findings": [f.to_dict() for f in findings],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


@dataclass
class BaselineComparison:
    """Findings from one run classified against a baseline."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    fixed: List[Finding] = field(default_factory=list)

    @property
    def gate_passed(self) -> bool:
        return not self.new

    def to_dict(self) -> Dict[str, Any]:
        return {
            "new": [f.to_dict() for f in self.new],
            "baselined": [f.to_dict() for f in self.baselined],
            "fixed": [f.to_dict() for f in self.fixed],
            "gate_passed": self.gate_passed,
        }


def compare(
    findings: Sequence[Finding], baseline: Sequence[Finding]
) -> BaselineComparison:
    """Classify ``findings`` against ``baseline`` (multiset semantics)."""
    remaining = Counter(b.identity() for b in baseline)
    out = BaselineComparison()
    for f in findings:
        key = f.identity()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            out.baselined.append(f)
        else:
            out.new.append(f)
    matched: Counter = Counter(b.identity() for b in baseline)
    matched.subtract(remaining)
    leftover = +remaining
    if leftover:
        by_key: Dict[Any, Finding] = {}
        for b in baseline:
            by_key.setdefault(b.identity(), b)
        for key, n in leftover.items():
            out.fixed.extend([by_key[key]] * n)
    return out
