"""vtime-determinism: float virtual-time hygiene and ordered scheduling.

Two classic ways a discrete-event simulation stops being a function of
its seed:

1. **Float equality on virtual time.**  Virtual timestamps are float
   sums of float delays; ``t1 == t2`` between independently computed
   times is a coin flip over rounding.  Ordering comparisons are fine —
   only exact ``==``/``!=`` between time-like values is flagged.  (The
   ``x != x`` NaN idiom is recognised and allowed.)

2. **Scheduling out of an unordered container.**  ``for x in
   some_set: sim.schedule(...)`` enqueues same-time events in hash
   order, which ``PYTHONHASHSEED`` reshuffles run-to-run.  The engine's
   FIFO tie-break then faithfully *preserves* that scrambled order.
   Iterating a ``set`` (or ``dict.keys()``/``.values()``, whose order is
   insertion-dependent and thus fragile under refactors) in a loop that
   reaches ``schedule``/``schedule_at``/``Timer``/``restart`` is
   flagged; wrap the iterable in ``sorted(...)`` to fix.

Scope: ``repro/udt/``, ``repro/sim/`` and ``repro/sabul/``.  The runtime
complement of this rule is
:class:`repro.analysis.sanitizer.DeterminismSanitizer`, which actually
perturbs tie-breaking and hash seeds and diffs the resulting traces.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import Checker, Finding, ModuleContext

RULE = "vtime-determinism"

#: exact names treated as virtual-time values.
_TIME_NAMES = frozenset(
    {"t", "t0", "t1", "now", "time", "deadline", "vtime", "timestamp"}
)
#: name substrings treated as virtual-time values.
_TIME_SUBSTRINGS = ("_time", "time_", "deadline")

#: call/attribute names that schedule events.
_SCHEDULING_CALLS = frozenset(
    {"schedule", "schedule_at", "call_at", "restart", "start_if_idle"}
)
_SCHEDULING_CTORS = frozenset({"Timer"})


def _name_is_timelike(name: str) -> bool:
    if name in _TIME_NAMES:
        return True
    low = name.lower()
    return any(s in low for s in _TIME_SUBSTRINGS)


def _expr_is_timelike(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return _name_is_timelike(node.id)
    if isinstance(node, ast.Attribute):
        return _name_is_timelike(node.attr)
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Attribute) and f.attr == "now":
            return True
        if isinstance(f, ast.Name) and f.id == "now":
            return True
    return False


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _is_float_const(node: ast.AST) -> bool:
    """Non-zero float literal (exact zero is a deliberate sentinel)."""
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value != 0.0
    )


def _is_unordered_iter(node: ast.AST) -> bool:
    """set literals/comprehensions, set(...), d.keys(), d.values()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Name) and f.id in ("set", "frozenset"):
            return True
        if isinstance(f, ast.Attribute) and f.attr in ("keys", "values"):
            return True
    return False


def _contains_scheduling(body: Iterable[ast.AST]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            f = node.func
            if isinstance(f, ast.Attribute) and f.attr in _SCHEDULING_CALLS:
                return True
            if isinstance(f, ast.Name) and f.id in (
                _SCHEDULING_CALLS | _SCHEDULING_CTORS
            ):
                return True
            if isinstance(f, ast.Attribute) and f.attr in _SCHEDULING_CTORS:
                return True
    return False


class VtimeDeterminismChecker(Checker):
    rule = RULE
    description = (
        "no float ==/!= between virtual times; no scheduling out of "
        "set()/dict.keys() iteration (hash-order nondeterminism)"
    )

    def interested(self, ctx: ModuleContext) -> bool:
        rp = ctx.relpath
        return (
            rp.startswith("udt/") or rp.startswith("sim/") or rp.startswith("sabul/")
        )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for op, left, right in zip(node.ops, operands, operands[1:]):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    if _is_none(left) or _is_none(right):
                        continue
                    # Require both sides time-like, or one time-like vs a
                    # float literal: `t != tap` (a tap object) is fine,
                    # `t1 == t2` and `now == 0.25` are not.
                    lt, rt = _expr_is_timelike(left), _expr_is_timelike(right)
                    if not (
                        (lt and rt)
                        or (lt and _is_float_const(right))
                        or (rt and _is_float_const(left))
                    ):
                        continue
                    # x != x is the standard NaN test, not a time compare.
                    if ast.dump(left) == ast.dump(right):
                        continue
                    opname = "==" if isinstance(op, ast.Eq) else "!="
                    findings.append(
                        ctx.finding(
                            RULE,
                            node,
                            f"exact float {opname} between virtual times "
                            "(rounding makes this nondeterministic); compare "
                            "with an epsilon or restructure",
                        )
                    )
            elif isinstance(node, ast.For) and _is_unordered_iter(node.iter):
                if _contains_scheduling(node.body):
                    findings.append(
                        ctx.finding(
                            RULE,
                            node,
                            "scheduling events while iterating an unordered "
                            "container (set()/dict.keys()): same-time event "
                            "order becomes hash-order; iterate sorted(...) "
                            "instead",
                        )
                    )
        return findings
