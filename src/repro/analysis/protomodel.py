"""Statically extract a per-flow event-order model from the UDT endpoint.

:mod:`repro.udt.core` already encodes a protocol lifecycle in its guard
structure: every handler that can emit telemetry first checks
``self.connected`` / ``self.closed``, the handshake path calls
``_become_connected`` only under ``not self.connected``, and ``close``
bails when already closed.  This module reads that structure out of the
AST — it never imports or runs the endpoint — and distils it into a
small, committable JSON model (``analysis/protocol_model.json``):

* ``requires_prior``: kinds whose every static emit site is *dominated*
  by a connected-guard must appear after ``conn.connected`` for the same
  ``src`` in any trace;
* ``unique``: ``conn.connected`` / ``conn.closed`` can appear at most
  once per ``src`` (derived from the guards around their emitters, and
  only emitted into the model when those guards are actually present);
* ``terminal``: nothing follows ``conn.closed`` for a ``src`` (derived
  from every emitter being closed-silent).

Each constraint is **verified against the AST before it is written** —
if a refactor removes a guard, regeneration produces a *different*
model, and the committed-vs-extracted equality test fails loudly rather
than the checker silently enforcing stale rules.  Regenerate with::

    python -m repro.analysis.protomodel

Domination analysis: a method "runs connected" when it opens with a
guard whose failing side returns (``if not self.connected [or ...]:
return``), or when every direct ``self.m(...)`` caller runs connected
*and* the method is neither public API nor referenced as a bare
callback (``self.sched.call_at(t, self._on_exp_timer)`` re-enters the
method from the event loop, bypassing any caller's guard — callbacks
must carry their own).  Congestion-control kinds (``cc.*``) are emitted
from the pluggable controllers; their entry methods are mapped through
``self.cc.<entry>(...)`` call sites in the endpoint and inherit those
sites' domination.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import default_root, repo_root
from repro.analysis.event_schema import _bus_constants

MODEL_SCHEMA = 1
MODEL_KIND = "udt.protocol_model"
#: where the committed model lives, relative to the source checkout root.
MODEL_RELPATH = "analysis/protocol_model.json"

CORE_RELPATH = "udt/core.py"
CORE_CLASS = "UdtCore"
#: congestion-controller modules whose ``cc.*`` emits ride core's guards.
CC_RELPATHS = ("udt/cc.py", "udt/cc_tcp.py", "udt/delaycc.py")

CONNECTED_KIND = "conn.connected"
CLOSED_KIND = "conn.closed"

#: simple statements allowed before (between) leading guards.
_LEADING_OK = (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr)


def _is_not_attr(node: ast.AST, attr: str) -> bool:
    """``not self.<attr>``"""
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.Not)
        and _is_attr(node.operand, attr)
    )


def _is_attr(node: ast.AST, attr: str) -> bool:
    """``self.<attr>``"""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _bails(body: List[ast.stmt]) -> bool:
    """Guard body that abandons the method: ``return`` / ``raise``."""
    return len(body) == 1 and isinstance(body[0], (ast.Return, ast.Raise))


def _leading_guards(fn: ast.AST) -> Set[str]:
    """Facts guaranteed for the rest of the method by leading guard-ifs.

    ``{"connected"}`` when a leading ``if`` whose body returns has
    ``not self.connected`` among its (Or-joined) operands; likewise
    ``{"not_closed"}`` for a ``self.closed`` operand.  In an ``or``
    test every operand alone triggers the bail-out, so each operand
    contributes its guarantee independently.
    """
    facts: Set[str] = set()
    for stmt in fn.body:
        if isinstance(stmt, ast.If) and _bails(stmt.body) and not stmt.orelse:
            operands = (
                stmt.test.values
                if isinstance(stmt.test, ast.BoolOp)
                and isinstance(stmt.test.op, ast.Or)
                else [stmt.test]
            )
            for op in operands:
                if _is_not_attr(op, "connected"):
                    facts.add("connected")
                elif _is_attr(op, "closed"):
                    facts.add("not_closed")
            continue
        if isinstance(stmt, _LEADING_OK):
            continue  # docstring, plain assigns: guards may follow
        break
    return facts


def _kind_of_arg(node: ast.AST, consts: Dict[str, str]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Attribute):
        return consts.get(node.attr)
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    return None


class _MethodInfo:
    __slots__ = ("name", "emits", "self_calls", "cc_calls", "guards")

    def __init__(self, fn: ast.AST, consts: Dict[str, str]):
        self.name = fn.name
        self.guards = _leading_guards(fn)
        self.emits: List[str] = []
        self.self_calls: Set[str] = set()
        self.cc_calls: Set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            f = node.func
            if not isinstance(f, ast.Attribute):
                continue
            if f.attr in ("emit", "_emit") and node.args:
                kind = _kind_of_arg(node.args[0], consts)
                if kind is not None:
                    self.emits.append(kind)
            if isinstance(f.value, ast.Name) and f.value.id == "self":
                self.self_calls.add(f.attr)
            elif _is_attr(f.value, "cc"):
                self.cc_calls.add(f.attr)


def _class_methods(cls: ast.ClassDef, consts: Dict[str, str]) -> Dict[str, _MethodInfo]:
    return {
        n.name: _MethodInfo(n, consts)
        for n in cls.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _callback_refs(cls: ast.ClassDef, methods: Dict[str, _MethodInfo]) -> Set[str]:
    """Methods referenced as bare ``self.m`` (scheduler callbacks etc.)."""
    refs: Set[str] = set()
    calls = {
        id(node.func)
        for node in ast.walk(cls)
        if isinstance(node, ast.Call)
    }
    for node in ast.walk(cls):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in methods
            and id(node) not in calls
        ):
            refs.add(node.attr)
    return refs


def _guaranteed(
    methods: Dict[str, _MethodInfo], roots: Set[str], fact: str
) -> Set[str]:
    """Methods where ``fact`` holds on every statement after the guards.

    Fixpoint: a method qualifies through its own leading guard, or —
    when it is not re-enterable from outside (not a root) — because
    every direct caller qualifies.
    """
    callers: Dict[str, Set[str]] = {name: set() for name in methods}
    for m in methods.values():
        for callee in m.self_calls:
            if callee in callers:
                callers[callee].add(m.name)
    ok = {name for name, m in methods.items() if fact in m.guards}
    changed = True
    while changed:
        changed = False
        for name, m in methods.items():
            if name in ok or name in roots:
                continue
            cs = callers[name]
            if cs and cs <= ok:
                ok.add(name)
                changed = True
    return ok


def _cc_kind_entries(
    pkg_root: Path, consts: Dict[str, str]
) -> Dict[str, Set[Optional[str]]]:
    """cc kind -> set of controller *entry* methods that can reach its emit.

    Entries are resolved per controller class with single-inheritance
    name lookup across the analysed cc modules; a ``None`` entry marks
    an emitting method not reachable from any method (so it must be
    treated as externally callable — never dominated).
    """
    classes: Dict[str, Tuple[List[str], Dict[str, _MethodInfo]]] = {}
    for rel in CC_RELPATHS:
        path = pkg_root / rel
        if not path.is_file():
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for cls in (n for n in tree.body if isinstance(n, ast.ClassDef)):
            bases = [
                b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
                for b in cls.bases
            ]
            classes[cls.name] = (bases, _class_methods(cls, consts))

    def resolved(cname: str) -> Dict[str, _MethodInfo]:
        out: Dict[str, _MethodInfo] = {}
        seen: Set[str] = set()
        todo = [cname]
        while todo:
            c = todo.pop(0)
            if c in seen or c not in classes:
                continue
            seen.add(c)
            bases, methods = classes[c]
            for name, info in methods.items():
                out.setdefault(name, info)
            todo.extend(bases)
        return out

    kind_entries: Dict[str, Set[Optional[str]]] = {}
    for cname in classes:
        methods = resolved(cname)
        callers: Dict[str, Set[str]] = {n: set() for n in methods}
        for m in methods.values():
            for callee in m.self_calls:
                if callee in callers:
                    callers[callee].add(m.name)
        for name, m in methods.items():
            for kind in m.emits:
                if not kind.startswith("cc."):
                    continue
                # Walk up the intra-class call graph to entry methods
                # (methods nobody in the class calls).
                entries: Set[Optional[str]] = set()
                todo, seen = [name], {name}
                while todo:
                    cur = todo.pop()
                    cs = callers.get(cur, set())
                    if not cs:
                        entries.add(cur)
                        continue
                    for c in cs:
                        if c not in seen:
                            seen.add(c)
                            todo.append(c)
                kind_entries.setdefault(kind, set()).update(entries)
    return kind_entries


def _unique_connected_verified(
    methods: Dict[str, _MethodInfo], emitters: Iterable[str], cls: ast.ClassDef
) -> bool:
    """Every call to a conn.connected emitter sits under ``not self.connected``."""
    emitset = set(emitters)
    if not emitset:
        return False
    fns = {
        n.name: n
        for n in cls.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }

    def test_has_not_connected(test: ast.AST) -> bool:
        if _is_not_attr(test, "connected"):
            return True
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            return any(test_has_not_connected(v) for v in test.values)
        return False

    def calls_in(body: List[ast.stmt]) -> Iterable[ast.Call]:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    yield node

    for fn in fns.values():
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            f = node.func
            if not (
                isinstance(f, ast.Attribute)
                and isinstance(f.value, ast.Name)
                and f.value.id == "self"
                and f.attr in emitset
            ):
                continue
            # The call must be inside some If branch whose test (or the
            # conjunction it sits in) includes ``not self.connected``.
            guarded = False
            for outer in ast.walk(fn):
                if not isinstance(outer, ast.If):
                    continue
                if test_has_not_connected(outer.test) and any(
                    c is node for c in calls_in(outer.body)
                ):
                    guarded = True
                    break
            if not guarded:
                return False
    return True


def extract_model(pkg_root: Optional[Path] = None) -> Dict:
    """Extract the protocol model from the source tree (AST only)."""
    pkg_root = pkg_root if pkg_root is not None else default_root()
    consts = _bus_constants()
    core_path = pkg_root / CORE_RELPATH
    tree = ast.parse(core_path.read_text(encoding="utf-8"), filename=str(core_path))
    cls = next(
        (
            n
            for n in tree.body
            if isinstance(n, ast.ClassDef) and n.name == CORE_CLASS
        ),
        None,
    )
    if cls is None:
        raise ValueError(f"{CORE_RELPATH} defines no class {CORE_CLASS}")
    methods = _class_methods(cls, consts)
    callbacks = _callback_refs(cls, methods)
    public = {n for n in methods if not n.startswith("_")}
    roots = callbacks | public
    connected_ok = _guaranteed(methods, roots, "connected")
    not_closed_ok = _guaranteed(methods, roots, "not_closed")

    # kind -> emitting core methods
    kind_emitters: Dict[str, List[str]] = {}
    for name, m in methods.items():
        for kind in m.emits:
            kind_emitters.setdefault(kind, []).append(name)

    # cc.* kinds arrive through the pluggable controller: map their
    # controller entry methods onto the core call sites that invoke them.
    cc_entries = _cc_kind_entries(pkg_root, consts)
    cc_callsites: Dict[str, Set[str]] = {}
    for name, m in methods.items():
        for entry in m.cc_calls:
            cc_callsites.setdefault(entry, set()).add(name)
    for kind, entries in sorted(cc_entries.items()):
        sites: Set[str] = set()
        reachable = True
        for entry in entries:
            callers = cc_callsites.get(entry, set())
            if entry is None or not callers:
                reachable = False  # wired dynamically (e.g. delay taps)
                break
            sites.update(callers)
        if reachable and sites:
            kind_emitters.setdefault(kind, []).extend(sorted(sites))
        else:
            kind_emitters.setdefault(kind, [])

    kinds: Dict[str, Dict] = {}
    constraints: List[Dict] = []
    for kind in sorted(kind_emitters):
        emitters = sorted(set(kind_emitters[kind]))
        dominated = bool(emitters) and all(e in connected_ok for e in emitters)
        kinds[kind] = {
            "emitters": emitters,
            "connected_dominated": dominated,
        }
        if dominated and kind not in (CONNECTED_KIND, CLOSED_KIND):
            constraints.append(
                {"type": "requires_prior", "kind": kind, "prior": CONNECTED_KIND}
            )

    if CONNECTED_KIND in kind_emitters and _unique_connected_verified(
        methods, kind_emitters[CONNECTED_KIND], cls
    ):
        constraints.append({"type": "unique", "kind": CONNECTED_KIND})

    closed_emitters = kind_emitters.get(CLOSED_KIND, [])
    if closed_emitters and all(
        "not_closed" in methods[e].guards for e in closed_emitters
    ):
        constraints.append({"type": "unique", "kind": CLOSED_KIND})
        # Terminal: every emitter of every *other* kind is closed-silent.
        others = [
            e
            for kind, emitters in kind_emitters.items()
            if kind != CLOSED_KIND
            for e in emitters
        ]
        if others and all(e in not_closed_ok for e in others):
            constraints.append({"type": "terminal", "kind": CLOSED_KIND})

    constraints.sort(key=lambda c: (c["type"], c["kind"]))
    return {
        "schema": MODEL_SCHEMA,
        "kind": MODEL_KIND,
        "class": CORE_CLASS,
        "sources": [CORE_RELPATH, *CC_RELPATHS],
        "kinds": kinds,
        "constraints": constraints,
    }


def render_model(model: Dict) -> str:
    return json.dumps(model, indent=2, sort_keys=True) + "\n"


def default_model_path() -> Optional[Path]:
    repo = repo_root()
    return repo / MODEL_RELPATH if repo is not None else None


def load_model(path: Optional[Path] = None) -> Dict:
    """The committed model (or ``path``); extracts live as a fallback."""
    if path is None:
        path = default_model_path()
    if path is not None and path.is_file():
        return json.loads(path.read_text(encoding="utf-8"))
    return extract_model()


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - thin
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.protomodel",
        description="Regenerate analysis/protocol_model.json from the AST.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if the committed model is stale instead of rewriting",
    )
    args = parser.parse_args(argv)
    model = extract_model()
    text = render_model(model)
    path = default_model_path()
    if path is None:
        print(text, end="")
        return 0
    if args.check:
        committed = path.read_text(encoding="utf-8") if path.is_file() else ""
        if committed != text:
            print(f"{path} is stale; regenerate with python -m repro.analysis.protomodel")
            return 1
        print(f"{path} is up to date")
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
