"""units: dimensional consistency of seconds/bytes/packets/rates.

The protocol code mixes quantities whose types are all ``float``/``int``
but whose *dimensions* differ: SYN intervals (seconds), RTT samples that
arrive in microseconds on the wire, window sizes (packets), payload
sizes (bytes) and rates (packets/s, bits/s).  A classic reproduction bug
is adding an RTT in microseconds to a SYN in seconds, or comparing a
window in packets against a buffer in bytes — silently wrong by 10^6 and
dimensionally meaningless respectively.

Built on :mod:`repro.analysis.flow`, this rule assigns each expression a
unit label drawn from ``{s, us, bytes, bits, pkts, pps, bps}``:

* **seeds** — the machine-read ``PARAM_UNITS`` table in
  :mod:`repro.udt.params` (exact identifier names) plus conservative
  suffix heuristics (``*_us`` -> us, ``*_bps`` -> bps, ``*period`` -> s,
  ``*window`` -> pkts, ...), and the scheduling-API annotations in
  :data:`repro.sim.engine.API_UNITS` (``now()`` returns seconds;
  ``call_at``/``schedule_at``/``post_at`` take seconds).
* **algebra** — add/sub/compare of two *known, different* units is
  flagged (the result otherwise keeps the common unit); multiply/divide
  resolve through a small dimensional table (pps x s -> pkts,
  bps x s -> bits, pkts / s -> pps, 1 / s -> pps, x / x -> unitless) and
  are otherwise *unknown* — a bare numeric factor may be a unit
  conversion (``rtt_us / 1e6``), so constants never launder a unit
  through multiplication.
* **telemetry cross-check** — at ``bus.emit`` sites, a keyword whose
  expression has a known unit must match the ``units`` annotation of
  that key in :mod:`repro.obs.catalog`.

Unknown stays unknown: the rule only ever flags when *both* sides are
confidently single-unit, so partial seeding cannot produce noise.

Scope: ``repro/udt/`` and ``repro/sabul/``.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.analysis.core import Checker, Finding, ModuleContext
from repro.analysis.flow import State, TaintTracker, iter_functions

RULE = "units"

#: the unit alphabet (labels); anything else is "unknown" (empty set).
UNITS = ("s", "us", "bytes", "bits", "pkts", "pps", "bps")

#: suffix/name heuristics, tried after the exact PARAM_UNITS table.
#: Ordering matters: first match wins.
_SUFFIX_RULES: Tuple[Tuple[str, str], ...] = (
    ("_bps", "bps"),
    ("_us", "us"),
    ("_bytes", "bytes"),
    ("_pkts", "pkts"),
    ("_packets", "pkts"),
    ("period", "s"),
    ("_time", "s"),
    ("_until", "s"),
    ("_timeout", "s"),
    ("_rtt", "s"),
    ("window", "pkts"),
    ("cwnd", "pkts"),
    ("_rate", "pps"),
    ("_speed", "pps"),
    ("_size", "bytes"),
)

#: exact names recognised everywhere (beyond PARAM_UNITS).
_EXACT_NAMES: Dict[str, str] = {
    "rtt": "s",
    "rtt_var": "s",
    "now": "s",
    "duration": "s",
    "elapsed": "s",
    "interval": "s",
    "bandwidth": "pps",
    "capacity": "pps",
    "speed": "pps",
    "recv_rate": "pps",
    "size": "bytes",
    "nbytes": "bytes",
    "wire_size": "bytes",
    "rate_bps": "bps",
}

#: dimensional products: (a, b) -> a*b, symmetric.
_MULT_TABLE: Dict[Tuple[str, str], str] = {
    ("pps", "s"): "pkts",
    ("bps", "s"): "bits",
}

#: dimensional quotients: (num, den) -> num/den.
_DIV_TABLE: Dict[Tuple[str, str], str] = {
    ("pkts", "s"): "pps",
    ("bits", "s"): "bps",
    ("pkts", "pps"): "s",
    ("bits", "bps"): "s",
}

_FLAGGED_CMPOPS = (ast.Lt, ast.Gt, ast.LtE, ast.GtE, ast.Eq, ast.NotEq)


def _seed_tables() -> Dict[str, str]:
    from repro.udt.params import PARAM_UNITS

    table = dict(_EXACT_NAMES)
    table.update(PARAM_UNITS)
    return table


def _api_units() -> Dict[str, Dict[str, str]]:
    from repro.sim.engine import API_UNITS

    return API_UNITS


def _name_unit(name: str, exact: Dict[str, str]) -> Optional[str]:
    unit = exact.get(name)
    if unit is not None:
        return unit
    low = name.lower()
    for suffix, u in _SUFFIX_RULES:
        if low.endswith(suffix):
            return u
    return None


def _single(labels: FrozenSet[str]) -> Optional[str]:
    """The unit, when the expression is confidently single-unit."""
    if len(labels) == 1:
        return next(iter(labels))
    return None


class _UnitTracker(TaintTracker):
    """Unit labels as taint; multi-label states decay to unknown."""

    def __init__(self, exact: Dict[str, str], api: Dict[str, Dict[str, str]]):
        self._exact = exact
        self._api = api

    def atom_labels(self, node: ast.AST, state: State) -> FrozenSet[str]:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            return frozenset()
        unit = _name_unit(name, self._exact)
        return frozenset({unit}) if unit is not None else frozenset()

    def call_labels(
        self, node: ast.Call, arg_labels: List[FrozenSet[str]], state: State
    ) -> FrozenSet[str]:
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        spec = self._api.get(name) if name is not None else None
        if spec is not None and "returns" in spec:
            return frozenset({spec["returns"]})
        return frozenset()

    def binop_labels(
        self, node: ast.BinOp, left: FrozenSet[str], right: FrozenSet[str]
    ) -> FrozenSet[str]:
        lu, ru = _single(left), _single(right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            # A known unit survives addition with an unknown/constant term;
            # mixed known units are the rule's finding (flagged separately,
            # in the statement pass) and keep the union so the conflict is
            # visible downstream as "not single-unit" (no cascade flags).
            return left | right
        if isinstance(node.op, ast.Mult):
            if lu is not None and ru is not None:
                out = _MULT_TABLE.get((lu, ru)) or _MULT_TABLE.get((ru, lu))
                if out is not None:
                    return frozenset({out})
            return frozenset()
        if isinstance(node.op, ast.Div):
            if lu is not None and ru is not None:
                if lu == ru:
                    return frozenset()  # dimensionless ratio
                out = _DIV_TABLE.get((lu, ru))
                if out is not None:
                    return frozenset({out})
                return frozenset()
            # The 1/period idiom: a bare constant over seconds is a rate.
            if (
                lu is None
                and isinstance(node.left, ast.Constant)
                and ru == "s"
            ):
                return frozenset({"pps"})
            return frozenset()
        # %, //, **, bit ops...: dimensionally opaque.
        return frozenset()


class UnitsChecker(Checker):
    rule = RULE
    description = (
        "dimensional consistency: seconds vs bytes vs packets vs rates, "
        "seeded from udt/params.py PARAM_UNITS and sim/engine.py API_UNITS"
    )

    def __init__(self) -> None:
        self._exact = _seed_tables()
        self._api = _api_units()
        from repro.obs.catalog import CATALOG

        self._catalog = CATALOG
        self._consts = _bus_constants()

    def interested(self, ctx: ModuleContext) -> bool:
        rp = ctx.relpath
        return rp.startswith("udt/") or rp.startswith("sabul/")

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        tracker = _UnitTracker(self._exact, self._api)
        findings: List[Finding] = []
        scopes: List[ast.AST] = [ctx.tree]
        scopes.extend(
            n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)
        )
        scopes.extend(fn for _cls, fn in iter_functions(ctx.tree))
        for scope in scopes:
            cfg, in_states = tracker.analyse(scope)
            for node in cfg.stmt_nodes():
                state = in_states.get(node.idx)
                if state is None:
                    continue
                findings.extend(
                    self._flag_stmt(ctx, tracker, node.stmt, state)
                )
        return findings

    # -- per-statement flagging -----------------------------------------
    def _flag_stmt(
        self,
        ctx: ModuleContext,
        tracker: _UnitTracker,
        stmt: ast.stmt,
        state: State,
    ) -> Iterable[Finding]:
        from repro.analysis.seqno_taint import _own_exprs

        findings: List[Finding] = []
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.op, (ast.Add, ast.Sub)
        ):
            target_labels = state.get(
                _target_key(stmt.target), frozenset()
            ) or tracker.atom_labels(stmt.target, state)
            self._check_addsub(
                ctx,
                stmt,
                type(stmt.op).__name__,
                target_labels,
                tracker.eval_expr(stmt.value, state),
                findings,
            )
        for node in _own_exprs(stmt):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                self._check_addsub(
                    ctx,
                    node,
                    type(node.op).__name__,
                    tracker.eval_expr(node.left, state),
                    tracker.eval_expr(node.right, state),
                    findings,
                )
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for op, left, right in zip(node.ops, operands, operands[1:]):
                    if not isinstance(op, _FLAGGED_CMPOPS):
                        continue
                    self._check_addsub(
                        ctx,
                        node,
                        type(op).__name__ + " comparison",
                        tracker.eval_expr(left, state),
                        tracker.eval_expr(right, state),
                        findings,
                    )
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(ctx, tracker, node, state))
        return findings

    def _check_addsub(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        opname: str,
        left: FrozenSet[str],
        right: FrozenSet[str],
        findings: List[Finding],
    ) -> None:
        lu, ru = _single(left), _single(right)
        if lu is not None and ru is not None and lu != ru:
            findings.append(
                ctx.finding(
                    RULE,
                    node,
                    f"mixed-unit {opname}: left is [{lu}], right is [{ru}] "
                    "(convert explicitly or fix the operand)",
                )
            )

    def _check_call(
        self,
        ctx: ModuleContext,
        tracker: _UnitTracker,
        node: ast.Call,
        state: State,
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        fname = None
        if isinstance(node.func, ast.Name):
            fname = node.func.id
        elif isinstance(node.func, ast.Attribute):
            fname = node.func.attr
        # Scheduler-API argument units.
        spec = self._api.get(fname) if fname is not None else None
        if spec is not None and "arg0" in spec and node.args:
            unit = _single(tracker.eval_expr(node.args[0], state))
            want = spec["arg0"]
            if unit is not None and unit != want:
                findings.append(
                    ctx.finding(
                        RULE,
                        node,
                        f"{fname}() expects [{want}] as its first argument, "
                        f"got [{unit}]",
                    )
                )
        # Telemetry payload units vs the catalog annotation.
        if fname in ("emit", "_emit") and node.args:
            kind = self._kind_of_arg(node.args[0])
            spec2 = self._catalog.get(kind) if kind is not None else None
            if spec2 is not None and spec2.units:
                for kw in node.keywords:
                    want = spec2.units.get(kw.arg or "")
                    if want is None:
                        continue
                    unit = _single(tracker.eval_expr(kw.value, state))
                    if unit is not None and unit != want:
                        findings.append(
                            ctx.finding(
                                RULE,
                                node,
                                f"emit of {kind!r}: key {kw.arg!r} is "
                                f"declared [{want}] in the catalog but the "
                                f"expression is [{unit}]",
                            )
                        )
        return findings

    def _kind_of_arg(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Attribute):
            return self._consts.get(node.attr)
        if isinstance(node, ast.Name):
            return self._consts.get(node.id)
        return None


def _target_key(target: ast.expr) -> str:
    from repro.analysis.flow import var_key

    return var_key(target) or "<untracked>"


def _bus_constants() -> Dict[str, str]:
    from repro.obs import bus as OB

    return {
        name: value
        for name, value in vars(OB).items()
        if name.isupper() and isinstance(value, str)
    }
