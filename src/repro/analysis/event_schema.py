"""event-schema: every telemetry payload matches repro/obs/catalog.py.

PRs 1–2 grew an event bus whose producers (``udt/core.py``,
``sim/link.py``, ``hostmodel/cpu.py``...) and consumers
(``obs/spans.py``, ``obs/timeline.py``) agree on payload keys purely by
string convention.  This checker makes the contract in
:mod:`repro.obs.catalog` machine-enforced, in both directions:

**Producers** — every ``bus.emit(KIND, t, src, key=...)`` (and
``self._emit(KIND, key=...)`` wrapper) site across ``src/repro``:

* ``KIND`` must be declared in the catalog (*emitted-but-never-declared*);
* every keyword must be a declared key (*undeclared key*);
* every ``required`` key must be present (*missing required key* — this
  is the check that makes deleting a key from an emit site fail lint).

**Consumers** — key accesses in ``obs/spans.py`` / ``obs/timeline.py`` /
``obs/report.py``.  The checker understands the idiomatic dispatch
shape: inside a branch guarded by ``kind == "pkt.snd"`` (or ``ev.kind ==
CC_SAMPLE``, or ``kind in (...)``), any ``rec["key"]`` / ``rec.get("key")``
access is attributed to that kind and must be declared
(*consumed-but-never-declared*) and actually produced by at least one
emit site (*consumed-but-never-emitted*).

**Catalog hygiene** — a declared, non-virtual kind with no emit site
anywhere is flagged (*declared-but-never-emitted*).

Kind constants are resolved through :mod:`repro.obs.bus` (``OB.CC_SAMPLE``,
imported names, or string literals).  Emit calls whose kind is a runtime
variable (the bus's own forwarding code) are skipped — the wrapper's
*call sites* are checked instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Checker, Finding, ModuleContext

RULE = "event-schema"

#: modules whose key *accesses* are treated as consumer contract usage.
CONSUMER_MODULES = frozenset(
    {"obs/spans.py", "obs/timeline.py", "obs/report.py"}
)


def _bus_constants() -> Dict[str, str]:
    """NAME -> kind string for every constant in repro.obs.bus."""
    from repro.obs import bus as OB

    return {
        name: value
        for name, value in vars(OB).items()
        if name.isupper() and isinstance(value, str)
    }


@dataclass
class _EmitSite:
    kind: str
    path: str
    line: int
    col: int
    keys: frozenset
    dynamic: bool  # carries **kwargs, so the key set is open


@dataclass
class _Consumption:
    kind: str
    key: str
    path: str
    line: int
    col: int


class _ConsumerVisitor(ast.NodeVisitor):
    """Collects per-kind key accesses inside kind-guarded branches."""

    def __init__(self, consts: Dict[str, str], known_kinds: Set[str]):
        self._consts = consts
        self._known = known_kinds
        self._stack: List[Tuple[str, ...]] = []
        self.accesses: List[Tuple[str, str, ast.AST]] = []  # (kind, key, node)

    # -- kind resolution -------------------------------------------------
    def _kind_of(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value in self._known or "." in node.value:
                return node.value
            return None
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None:
            return self._consts.get(name)
        return None

    def _kinds_from_test(self, test: ast.AST) -> Tuple[str, ...]:
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return ()
        op = test.ops[0]
        rhs = test.comparators[0]
        if isinstance(op, ast.Eq):
            for side in (test.left, rhs):
                kind = self._kind_of(side)
                if kind is not None:
                    return (kind,)
        elif isinstance(op, ast.In) and isinstance(rhs, (ast.Tuple, ast.List, ast.Set)):
            kinds = tuple(
                k for k in (self._kind_of(e) for e in rhs.elts) if k is not None
            )
            return kinds
        return ()

    # -- traversal -------------------------------------------------------
    def visit_If(self, node: ast.If) -> None:
        kinds = self._kinds_from_test(node.test)
        if kinds:
            self._stack.append(kinds)
            for stmt in node.body:
                self.visit(stmt)
            self._stack.pop()
        else:
            for stmt in node.body:
                self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def _record(self, key: str, node: ast.AST) -> None:
        if not self._stack:
            return
        for kind in self._stack[-1]:
            self.accesses.append((kind, key, node))

    def visit_Subscript(self, node: ast.Subscript) -> None:
        sl = node.slice
        if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
            self._record(sl.value, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        f = node.func
        if (
            isinstance(f, ast.Attribute)
            and f.attr == "get"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            self._record(node.args[0].value, node)
        self.generic_visit(node)


class EventSchemaChecker(Checker):
    rule = RULE
    description = (
        "bus.emit payloads and consumer key accesses must match the "
        "declared event catalog (repro/obs/catalog.py)"
    )

    def __init__(self) -> None:
        from repro.obs.catalog import BASE_KEYS, CATALOG

        self._catalog = CATALOG
        self._base_keys = BASE_KEYS
        self._consts = _bus_constants()
        self._emits: List[_EmitSite] = []
        self._consumptions: List[_Consumption] = []
        self._deferred: List[Finding] = []
        self._summaries: Dict[str, Optional[dict]] = {}
        self._catalog_relpath = "obs/catalog.py"
        # Catalog-hygiene findings (declared-but-never-emitted) only make
        # sense when the walked tree is the real repro package; partial
        # trees (unit-test fixtures, subpackage runs) would flag every
        # kind whose producer simply isn't under the analysis root.
        self._saw_catalog = False

    # -- kind resolution at emit sites ------------------------------------
    def _kind_of_arg(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Attribute):
            return self._consts.get(node.attr)
        if isinstance(node, ast.Name):
            return self._consts.get(node.id)
        return None

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        summary = self._extract(ctx)
        self._summaries[ctx.relpath] = summary
        if summary is not None:
            self.consume_summary(ctx.relpath, summary)
        return ()

    def _extract(self, ctx: ModuleContext) -> Optional[dict]:
        """Per-module facts as a JSON-serialisable cacheable summary."""
        emits: List[list] = []
        consumptions: List[list] = []
        # Producers: any module under src/repro.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            f = node.func
            if not (isinstance(f, ast.Attribute) and f.attr in ("emit", "_emit")):
                continue
            if not node.args:
                continue
            kind = self._kind_of_arg(node.args[0])
            if kind is None:
                continue  # runtime-variable kind: the wrapper's own body
            if ctx.suppressed(RULE, node.lineno):
                continue
            keys = sorted(kw.arg for kw in node.keywords if kw.arg is not None)
            dynamic = any(kw.arg is None for kw in node.keywords)
            emits.append([kind, node.lineno, node.col_offset, keys, dynamic])
        # Consumers: the three obs consumer modules.
        if ctx.relpath in CONSUMER_MODULES:
            visitor = _ConsumerVisitor(self._consts, set(self._catalog))
            visitor.visit(ctx.tree)
            for kind, key, node in visitor.accesses:
                if ctx.suppressed(RULE, getattr(node, "lineno", 0)):
                    continue
                consumptions.append(
                    [
                        kind,
                        key,
                        getattr(node, "lineno", 0),
                        getattr(node, "col_offset", 0),
                    ]
                )
        is_catalog = ctx.relpath == self._catalog_relpath
        if not emits and not consumptions and not is_catalog:
            return None
        return {
            "emits": emits,
            "consumptions": consumptions,
            "catalog": is_catalog,
        }

    def module_summary(self, ctx: ModuleContext) -> Optional[dict]:
        return self._summaries.pop(ctx.relpath, None)

    def consume_summary(self, relpath: str, summary: dict) -> None:
        if summary.get("catalog"):
            self._saw_catalog = True
        for kind, line, col, keys, dynamic in summary.get("emits", ()):
            self._emits.append(
                _EmitSite(
                    kind=kind,
                    path=relpath,
                    line=line,
                    col=col,
                    keys=frozenset(keys),
                    dynamic=dynamic,
                )
            )
        for kind, key, line, col in summary.get("consumptions", ()):
            self._consumptions.append(
                _Consumption(kind=kind, key=key, path=relpath, line=line, col=col)
            )

    def finalize(self) -> Iterable[Finding]:
        findings: List[Finding] = []
        emitted_keys: Dict[str, Set[str]] = {}
        emitted_dynamic: Set[str] = set()
        for site in self._emits:
            spec = self._catalog.get(site.kind)
            if spec is None:
                findings.append(
                    Finding(
                        RULE,
                        site.path,
                        site.line,
                        site.col,
                        "error",
                        f"event {site.kind!r} is emitted but never declared "
                        "in repro/obs/catalog.py",
                    )
                )
                continue
            emitted_keys.setdefault(site.kind, set()).update(site.keys)
            if site.dynamic:
                emitted_dynamic.add(site.kind)
            for key in sorted(site.keys - spec.keys):
                findings.append(
                    Finding(
                        RULE,
                        site.path,
                        site.line,
                        site.col,
                        "error",
                        f"emit of {site.kind!r} carries undeclared key "
                        f"{key!r} (declare it in repro/obs/catalog.py)",
                    )
                )
            if not site.dynamic:
                for key in sorted(spec.required - site.keys):
                    findings.append(
                        Finding(
                            RULE,
                            site.path,
                            site.line,
                            site.col,
                            "error",
                            f"emit of {site.kind!r} is missing required key "
                            f"{key!r}",
                        )
                    )
        for c in self._consumptions:
            if c.key in self._base_keys:
                continue
            spec = self._catalog.get(c.kind)
            if spec is None:
                findings.append(
                    Finding(
                        RULE,
                        c.path,
                        c.line,
                        c.col,
                        "error",
                        f"consumer reads event {c.kind!r} which is not "
                        "declared in repro/obs/catalog.py",
                    )
                )
                continue
            if c.key not in spec.keys:
                findings.append(
                    Finding(
                        RULE,
                        c.path,
                        c.line,
                        c.col,
                        "error",
                        f"consumer reads key {c.key!r} of {c.kind!r} which "
                        "is not declared in repro/obs/catalog.py",
                    )
                )
                continue
            produced = emitted_keys.get(c.kind)
            if (
                not spec.virtual
                and produced is not None
                and c.kind not in emitted_dynamic
                and c.key not in produced
            ):
                findings.append(
                    Finding(
                        RULE,
                        c.path,
                        c.line,
                        c.col,
                        "error",
                        f"consumer reads key {c.key!r} of {c.kind!r} which "
                        "no emit site produces",
                    )
                )
        for kind, spec in self._catalog.items():
            if not self._saw_catalog:
                break
            if spec.virtual or kind in emitted_keys:
                continue
            findings.append(
                Finding(
                    RULE,
                    self._catalog_relpath,
                    1,
                    0,
                    "warning",
                    f"event {kind!r} is declared in the catalog but never "
                    "emitted anywhere under src/repro",
                )
            )
        # Reset cross-module state so a driver instance can be reused.
        self._emits = []
        self._consumptions = []
        self._saw_catalog = False
        return findings
