"""Runtime determinism sanitizer: perturb tie-breaking, diff the traces.

Static rules catch the *patterns* that cause nondeterminism; this module
catches the *fact* of it.  :class:`DeterminismSanitizer` runs one named
experiment twice, each run in a fresh subprocess with the perturbations
that flush out hidden ordering dependence:

* **reversed same-vtime tie-breaking** — run A uses the engine's FIFO
  order for equal-time events, run B LIFO (``REPRO_TIE_BREAK=lifo``).
  Causally unrelated events that happen to share a float timestamp must
  commute; if any component secretly depends on their interleaving, the
  runs diverge.
* **different hash seeds** — ``PYTHONHASHSEED`` differs between the
  runs, so any iteration over a ``set`` (or other hash-ordered
  container) that leaks into scheduling or telemetry reorders.

Both runs record a full JSONL telemetry trace (packet-detail tier
included), and the two traces are then compared **byte for byte**, event
by event.  A clean experiment produces identical streams; the first
divergence is reported with the surrounding event context (the qlog-ish
equivalent of a sanitizer stack trace).

Fresh subprocesses matter: ``PYTHONHASHSEED`` is fixed at interpreter
start, and process-global counters (wire-packet uids, default flow ids)
must start from the same state in both runs.  The worker entry point is
``python -m repro.analysis --worker <exp>`` (see ``__main__.py``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: (tie_break, PYTHONHASHSEED) for the two perturbed runs.
PERTURBATIONS: Tuple[Tuple[str, str], ...] = (("fifo", "1"), ("lifo", "2"))


@dataclass
class Divergence:
    """First point where the two perturbed traces disagree."""

    index: int  # 0-based event index (meta line excluded)
    line_a: Optional[str]  # raw JSONL, None = stream A ended early
    line_b: Optional[str]
    context: List[str] = field(default_factory=list)  # events just before

    def _describe(self, line: Optional[str]) -> str:
        if line is None:
            return "<end of trace>"
        try:
            rec = json.loads(line)
        except ValueError:
            return line[:120]
        bits = [f"t={rec.get('t')}", f"kind={rec.get('kind')}", f"src={rec.get('src')}"]
        for key in ("seq", "uid", "flow", "reason"):
            if key in rec:
                bits.append(f"{key}={rec[key]}")
        return " ".join(bits)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "a": self.line_a,
            "b": self.line_b,
            "context": list(self.context),
        }

    def format(self) -> str:
        lines = [f"first divergence at event #{self.index}:"]
        for tag, line in (("A(fifo)", self.line_a), ("B(lifo)", self.line_b)):
            lines.append(f"  {tag}: {self._describe(line)}")
        if self.context:
            lines.append("  preceding events (common to both runs):")
            for c in self.context:
                lines.append(f"    {self._describe(c)}")
        return "\n".join(lines)


@dataclass
class SanitizerResult:
    """Outcome of one dual-run determinism check."""

    exp_id: str
    deterministic: bool
    events: int  # events compared (excluding the trace.meta header)
    divergence: Optional[Divergence] = None
    runs: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "kind": "lint.sanitize",
            "exp_id": self.exp_id,
            "deterministic": self.deterministic,
            "events": self.events,
            "divergence": self.divergence.to_dict() if self.divergence else None,
            "runs": list(self.runs),
        }

    def format(self) -> str:
        if self.deterministic:
            return (
                f"determinism sanitizer: {self.exp_id} OK — "
                f"{self.events} events byte-identical across "
                "fifo/lifo tie-break and differing hash seeds"
            )
        assert self.divergence is not None
        return (
            f"determinism sanitizer: {self.exp_id} DIVERGED\n"
            + self.divergence.format()
        )


def diff_traces(
    path_a: Path, path_b: Path, context: int = 5
) -> Tuple[int, Optional[Divergence]]:
    """Byte-compare two JSONL traces event by event.

    The ``trace.meta`` header line of each file is skipped (it may carry
    run-specific metadata); every subsequent line must match exactly.
    Returns (events_compared, first_divergence_or_None).
    """
    recent: List[str] = []
    index = 0
    with open(path_a, "r") as fa, open(path_b, "r") as fb:
        ia = (line.rstrip("\n") for line in fa)
        ib = (line.rstrip("\n") for line in fb)
        for it in (ia, ib):  # skip each file's meta header, if present
            first = next(it, None)
            if first is not None and '"trace.meta"' not in first:
                raise ValueError("trace does not start with a trace.meta header")
        while True:
            la = next(ia, None)
            lb = next(ib, None)
            if la is None and lb is None:
                return index, None
            if la != lb:
                return index, Divergence(
                    index=index, line_a=la, line_b=lb, context=list(recent)
                )
            assert la is not None
            recent.append(la)
            if len(recent) > context:
                recent.pop(0)
            index += 1


def _worker_argv(
    exp_id: str, trace_path: Path, overrides: Dict[str, Any], packets: bool
) -> List[str]:
    argv = [
        sys.executable,
        "-m",
        "repro.analysis",
        "--worker",
        exp_id,
        "--worker-trace",
        str(trace_path),
    ]
    if packets:
        argv.append("--worker-packets")
    for key, value in overrides.items():
        argv += ["--set", f"{key}={value!r}" if isinstance(value, str) else f"{key}={value}"]
    return argv


def run_worker(exp_id: str, trace_path: str, overrides: Dict[str, Any], packets: bool) -> None:
    """Subprocess body: run one experiment fully traced (no stdout noise)."""
    from repro.experiments import get_experiment
    from repro.experiments.common import traced

    exp = get_experiment(exp_id)
    with traced(trace_path, packets=packets, generator="sanitizer", experiments=[exp_id]):
        exp.runner(**overrides)


class DeterminismSanitizer:
    """Run an experiment under both perturbations and diff the traces.

    Parameters
    ----------
    exp_id:
        Experiment id as listed by ``repro-udt list`` (e.g. ``fig02``).
    overrides:
        Runner keyword overrides, like the CLI's ``--set`` (use reduced
        durations for smoke runs).
    packets:
        Record the per-packet detail tier too (default True — more
        sensitive, bigger traces).
    workdir:
        Where to keep the two traces; a temp dir (deleted on success,
        kept on divergence for forensics) when omitted.
    """

    def __init__(
        self,
        exp_id: str,
        overrides: Optional[Dict[str, Any]] = None,
        packets: bool = True,
        workdir: Optional[str] = None,
        timeout: float = 900.0,
    ):
        self.exp_id = exp_id
        self.overrides = dict(overrides or {})
        self.packets = packets
        self.workdir = workdir
        self.timeout = timeout

    def _spawn(self, trace_path: Path, tie_break: str, hashseed: str) -> Dict[str, Any]:
        env = dict(os.environ)
        env["REPRO_TIE_BREAK"] = tie_break
        env["PYTHONHASHSEED"] = hashseed
        # The worker must resolve the same repro package as this process.
        pkg_root = Path(__file__).resolve().parent.parent.parent
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(pkg_root), env.get("PYTHONPATH")) if p
        )
        argv = _worker_argv(self.exp_id, trace_path, self.overrides, self.packets)
        proc = subprocess.run(
            argv,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            timeout=self.timeout,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"sanitizer worker failed (tie_break={tie_break}, "
                f"rc={proc.returncode}):\n{proc.stderr.decode(errors='replace')[-2000:]}"
            )
        return {
            "tie_break": tie_break,
            "hashseed": hashseed,
            "trace": str(trace_path),
            "bytes": trace_path.stat().st_size,
        }

    def run(self) -> SanitizerResult:
        own_tmp = self.workdir is None
        workdir = Path(self.workdir or tempfile.mkdtemp(prefix="repro-sanitize-"))
        workdir.mkdir(parents=True, exist_ok=True)
        runs: List[Dict[str, Any]] = []
        paths: List[Path] = []
        for tie_break, hashseed in PERTURBATIONS:
            trace_path = workdir / f"{self.exp_id}-{tie_break}.jsonl"
            runs.append(self._spawn(trace_path, tie_break, hashseed))
            paths.append(trace_path)
        events, divergence = diff_traces(paths[0], paths[1])
        result = SanitizerResult(
            exp_id=self.exp_id,
            deterministic=divergence is None,
            events=events,
            divergence=divergence,
            runs=runs,
        )
        if divergence is None and own_tmp:
            for p in paths:
                p.unlink(missing_ok=True)
            try:
                workdir.rmdir()
            except OSError:
                pass
        return result
