"""Runtime determinism sanitizer: perturb tie-breaking, diff the traces.

Static rules catch the *patterns* that cause nondeterminism; this module
catches the *fact* of it.  :class:`DeterminismSanitizer` runs one named
experiment twice, each run in a fresh subprocess with the perturbations
that flush out hidden ordering dependence:

* **reversed same-vtime tie-breaking** — run A uses the engine's FIFO
  order for equal-time events, run B LIFO (``REPRO_TIE_BREAK=lifo``).
  Causally unrelated events that happen to share a float timestamp must
  commute; if any component secretly depends on their interleaving, the
  runs diverge.
* **different hash seeds** — ``PYTHONHASHSEED`` differs between the
  runs, so any iteration over a ``set`` (or other hash-ordered
  container) that leaks into scheduling or telemetry reorders.

Both runs record a full telemetry trace (packet-detail tier included;
JSONL or the ``.rtrc`` binary store), and the two traces are then
compared **byte for byte**, event by event.  The comparison streams in
fixed-size chunks — a packet-tier fig08 trace is 7M+ events, and
paper-scale traces will not fit in memory — and only on a byte mismatch
re-walks the records to pinpoint the first divergent event with its
surrounding context (the qlog-ish equivalent of a sanitizer stack
trace).  A clean experiment produces identical streams.

Fresh subprocesses matter: ``PYTHONHASHSEED`` is fixed at interpreter
start, and process-global counters (wire-packet uids, default flow ids)
must start from the same state in both runs.  The worker entry point is
``python -m repro.analysis --worker <exp>`` (see ``__main__.py``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: (tie_break, PYTHONHASHSEED) for the two perturbed runs.
PERTURBATIONS: Tuple[Tuple[str, str], ...] = (("fifo", "1"), ("lifo", "2"))


@dataclass
class Divergence:
    """First point where the two perturbed traces disagree."""

    index: int  # 0-based event index (meta line excluded)
    line_a: Optional[str]  # raw JSONL, None = stream A ended early
    line_b: Optional[str]
    context: List[str] = field(default_factory=list)  # events just before

    def _describe(self, line: Optional[str]) -> str:
        if line is None:
            return "<end of trace>"
        try:
            rec = json.loads(line)
        except ValueError:
            return line[:120]
        bits = [f"t={rec.get('t')}", f"kind={rec.get('kind')}", f"src={rec.get('src')}"]
        for key in ("seq", "uid", "flow", "reason"):
            if key in rec:
                bits.append(f"{key}={rec[key]}")
        return " ".join(bits)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "a": self.line_a,
            "b": self.line_b,
            "context": list(self.context),
        }

    def format(self) -> str:
        lines = [f"first divergence at event #{self.index}:"]
        for tag, line in (("A(fifo)", self.line_a), ("B(lifo)", self.line_b)):
            lines.append(f"  {tag}: {self._describe(line)}")
        if self.context:
            lines.append("  preceding events (common to both runs):")
            for c in self.context:
                lines.append(f"    {self._describe(c)}")
        return "\n".join(lines)


@dataclass
class SanitizerResult:
    """Outcome of one dual-run determinism check."""

    exp_id: str
    deterministic: bool
    events: int  # events compared (excluding the trace.meta header)
    divergence: Optional[Divergence] = None
    runs: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "kind": "lint.sanitize",
            "exp_id": self.exp_id,
            "deterministic": self.deterministic,
            "events": self.events,
            "divergence": self.divergence.to_dict() if self.divergence else None,
            "runs": list(self.runs),
        }

    def format(self) -> str:
        if self.deterministic:
            return (
                f"determinism sanitizer: {self.exp_id} OK — "
                f"{self.events} events byte-identical across "
                "fifo/lifo tie-break and differing hash seeds"
            )
        assert self.divergence is not None
        return (
            f"determinism sanitizer: {self.exp_id} DIVERGED\n"
            + self.divergence.format()
        )


#: Chunk size for the streaming byte comparison (1 MiB).
_DIFF_CHUNK = 1 << 20


def _read_exact(f: Any, n: int) -> bytes:
    """Read exactly ``n`` bytes unless EOF (gzip streams may short-read)."""
    buf = f.read(n)
    if buf is None or len(buf) == n:
        return buf or b""
    parts = [buf]
    got = len(buf)
    while got < n:
        chunk = f.read(n - got)
        if not chunk:
            break
        parts.append(chunk)
        got += len(chunk)
    return b"".join(parts)


def _event_byte_stream(path: Path) -> Any:
    """Binary stream over a trace's post-``trace.meta`` payload.

    For JSONL (plain or gzip) this is the decompressed byte stream after
    the header line; for ``.rtrc`` it is the raw container bytes after
    the meta frame (block framing and zlib are deterministic, so
    identical event streams give identical container bytes).
    """
    p = str(path)
    if p.endswith(".rtrc"):
        from repro.obs.store import event_region_offset

        f = open(p, "rb")
        f.seek(event_region_offset(path))
        return f
    if p.endswith(".gz"):
        import gzip

        f = gzip.open(p, "rb")
    else:
        f = open(p, "rb")
    first = f.readline()
    if first and b'"trace.meta"' not in first:
        f.close()
        raise ValueError("trace does not start with a trace.meta header")
    return f


def _iter_event_lines(path: Path) -> Any:
    """Canonical JSONL event strings of a trace, any format, streamed."""
    p = str(path)
    if p.endswith(".rtrc"):
        from repro.obs.store import RtrcReader

        with RtrcReader(p) as reader:
            for line in reader.iter_jsonl():
                yield line
        return
    from repro.obs.export import open_trace_text

    with open_trace_text(p, "r") as f:
        first = f.readline()
        if first and '"trace.meta"' not in first:
            raise ValueError("trace does not start with a trace.meta header")
        for line in f:
            yield line.rstrip("\n")


def _count_events(path: Path, newline_count: int) -> int:
    """Events in an equal-stream trace: index footer beats newline tally."""
    if str(path).endswith(".rtrc"):
        from repro.obs.store import RtrcReader

        with RtrcReader(path) as reader:
            return reader.events_total
    return newline_count


def diff_traces(
    path_a: Path, path_b: Path, context: int = 5
) -> Tuple[int, Optional[Divergence]]:
    """Byte-compare two traces event by event, streaming.

    The ``trace.meta`` header of each trace is skipped (it may carry
    run-specific metadata); every subsequent byte must match.  The
    comparison runs in fixed-size chunks with O(chunk) memory; only when
    the streams differ are the records re-walked to report the first
    divergent event with its preceding context.  Works on ``.jsonl``,
    ``.jsonl.gz`` and ``.rtrc`` traces (both sides must share a format).
    Returns (events_compared, first_divergence_or_None).
    """
    equal = True
    newlines = 0
    fa = _event_byte_stream(path_a)
    try:
        fb = _event_byte_stream(path_b)
    except Exception:
        fa.close()
        raise
    try:
        while True:
            ca = _read_exact(fa, _DIFF_CHUNK)
            cb = _read_exact(fb, _DIFF_CHUNK)
            if ca != cb:
                equal = False
                break
            if not ca:
                break
            newlines += ca.count(b"\n")
    finally:
        fa.close()
        fb.close()
    if equal:
        return _count_events(path_a, newlines), None

    # Byte mismatch: re-walk the records for the precise first divergence.
    recent: List[str] = []
    index = 0
    ia = _iter_event_lines(path_a)
    ib = _iter_event_lines(path_b)
    while True:
        la = next(ia, None)
        lb = next(ib, None)
        if la is None and lb is None:
            # compressed bytes differed but the event streams agree
            # (e.g. re-blocked .rtrc); that is still deterministic.
            return index, None
        if la != lb:
            return index, Divergence(
                index=index, line_a=la, line_b=lb, context=list(recent)
            )
        assert la is not None
        recent.append(la)
        if len(recent) > context:
            recent.pop(0)
        index += 1


def _worker_argv(
    exp_id: str, trace_path: Path, overrides: Dict[str, Any], packets: bool
) -> List[str]:
    argv = [
        sys.executable,
        "-m",
        "repro.analysis",
        "--worker",
        exp_id,
        "--worker-trace",
        str(trace_path),
    ]
    if packets:
        argv.append("--worker-packets")
    for key, value in overrides.items():
        argv += ["--set", f"{key}={value!r}" if isinstance(value, str) else f"{key}={value}"]
    return argv


def run_worker(exp_id: str, trace_path: str, overrides: Dict[str, Any], packets: bool) -> None:
    """Subprocess body: run one experiment fully traced (no stdout noise)."""
    from repro.experiments import get_experiment
    from repro.experiments.common import traced

    exp = get_experiment(exp_id)
    with traced(trace_path, packets=packets, generator="sanitizer", experiments=[exp_id]):
        exp.runner(**overrides)


class DeterminismSanitizer:
    """Run an experiment under both perturbations and diff the traces.

    Parameters
    ----------
    exp_id:
        Experiment id as listed by ``repro-udt list`` (e.g. ``fig02``).
    overrides:
        Runner keyword overrides, like the CLI's ``--set`` (use reduced
        durations for smoke runs).
    packets:
        Record the per-packet detail tier too (default True — more
        sensitive, bigger traces).
    workdir:
        Where to keep the two traces; a temp dir (deleted on success,
        kept on divergence for forensics) when omitted.
    trace_format:
        ``jsonl`` (default), ``jsonl.gz`` or ``rtrc`` — the on-disk
        format the perturbed runs record and the diff streams over.
    """

    TRACE_FORMATS = ("jsonl", "jsonl.gz", "rtrc")

    def __init__(
        self,
        exp_id: str,
        overrides: Optional[Dict[str, Any]] = None,
        packets: bool = True,
        workdir: Optional[str] = None,
        timeout: float = 900.0,
        trace_format: str = "jsonl",
    ):
        if trace_format not in self.TRACE_FORMATS:
            raise ValueError(
                f"trace_format must be one of {self.TRACE_FORMATS}, "
                f"got {trace_format!r}"
            )
        self.exp_id = exp_id
        self.overrides = dict(overrides or {})
        self.packets = packets
        self.workdir = workdir
        self.timeout = timeout
        self.trace_format = trace_format

    def _spawn(self, trace_path: Path, tie_break: str, hashseed: str) -> Dict[str, Any]:
        env = dict(os.environ)
        env["REPRO_TIE_BREAK"] = tie_break
        env["PYTHONHASHSEED"] = hashseed
        # The worker must resolve the same repro package as this process.
        pkg_root = Path(__file__).resolve().parent.parent.parent
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(pkg_root), env.get("PYTHONPATH")) if p
        )
        argv = _worker_argv(self.exp_id, trace_path, self.overrides, self.packets)
        proc = subprocess.run(
            argv,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            timeout=self.timeout,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"sanitizer worker failed (tie_break={tie_break}, "
                f"rc={proc.returncode}):\n{proc.stderr.decode(errors='replace')[-2000:]}"
            )
        return {
            "tie_break": tie_break,
            "hashseed": hashseed,
            "trace": str(trace_path),
            "bytes": trace_path.stat().st_size,
        }

    def run(self) -> SanitizerResult:
        own_tmp = self.workdir is None
        workdir = Path(self.workdir or tempfile.mkdtemp(prefix="repro-sanitize-"))
        workdir.mkdir(parents=True, exist_ok=True)
        runs: List[Dict[str, Any]] = []
        paths: List[Path] = []
        for tie_break, hashseed in PERTURBATIONS:
            trace_path = workdir / f"{self.exp_id}-{tie_break}.{self.trace_format}"
            runs.append(self._spawn(trace_path, tie_break, hashseed))
            paths.append(trace_path)
        events, divergence = diff_traces(paths[0], paths[1])
        result = SanitizerResult(
            exp_id=self.exp_id,
            deterministic=divergence is None,
            events=events,
            divergence=divergence,
            runs=runs,
        )
        if divergence is None and own_tmp:
            for p in paths:
                p.unlink(missing_ok=True)
            try:
                workdir.rmdir()
            except OSError:
                pass
        return result
