"""seqno-arith: no raw arithmetic/comparison on wrap-around sequence numbers.

UDT sequence numbers live in a 31-bit circular space (paper §4 and the
loss-list appendix): ``a < b`` and ``b - a`` are meaningless near the
wrap, which is exactly where they pass every test and then corrupt a
multi-terabyte transfer in hour nine.  All ordering, distance and
successor logic must go through :mod:`repro.udt.seqno`
(``seq_cmp``/``seq_off``/``seq_len``/``seq_inc``/``seq_dec``/``valid_seq``).

This rule flags comparison (``<`` ``>`` ``<=`` ``>=`` ``==`` ``!=``) and
additive arithmetic (``+`` ``-``) where either operand *looks like* a
sequence number — a name or attribute containing ``seq`` (``ack_seq``,
``init_seq``, ``.seq``, ``SeqNo``...) or one of the known aliases
(``lrsn``, the receiver's "largest received sequence number").

Scope: ``repro/udt/`` and ``repro/sabul/`` only.  ``repro/udt/seqno.py``
is the one module allowed to do raw modular arithmetic (it *implements*
the helpers), and ``repro/tcp/`` is excluded by design: the NS-2-style
TCP agents number packets with plain unbounded Python ints that never
wrap (see the module docstrings of ``repro/tcp/agent.py`` and
``repro/tcp/scoreboard.py``).

Equality (``==``/``!=``) on two in-range sequence numbers is actually
wrap-safe, but it is flagged anyway: at a glance a reader cannot tell a
safe identity check from an ordering bug, so the deliberate ones carry
an inline ``# lint: disable=seqno-arith`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import Checker, Finding, ModuleContext

RULE = "seqno-arith"

#: variable/attribute names that are sequence numbers without "seq" in them.
_SEQ_ALIASES = frozenset({"lrsn"})

#: names that merely *contain* "seq" but are not circular sequence values.
_NOT_SEQ = frozenset(
    {
        "seq_cmp",
        "seq_off",
        "seq_len",
        "seq_inc",
        "seq_dec",
        "valid_seq",
        "sequence",  # prose-ish identifiers
        # Space-size constants: `w & (MAX_SEQ_NO - 1)` is a bitmask, not
        # sequence arithmetic.  A real seq value on the other side of an
        # operator still triggers the rule on its own.
        "MAX_SEQ_NO",
        "SEQ_THRESHOLD",
    }
)

_FLAGGED_CMPOPS = (ast.Lt, ast.Gt, ast.LtE, ast.GtE, ast.Eq, ast.NotEq)
_FLAGGED_BINOPS = (ast.Add, ast.Sub)


def _name_is_seqlike(name: str) -> bool:
    if name in _NOT_SEQ:
        return False
    low = name.lower()
    return "seq" in low or low in _SEQ_ALIASES


def _expr_is_seqlike(node: ast.AST) -> bool:
    """Heuristic: does this expression denote a sequence-number value?"""
    if isinstance(node, ast.Name):
        return _name_is_seqlike(node.id)
    if isinstance(node, ast.Attribute):
        return _name_is_seqlike(node.attr)
    return False


def _describe(node: ast.AST) -> str:
    try:
        return ast.unparse(node)  # py3.9+
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "<expr>"


class SeqnoArithChecker(Checker):
    rule = RULE
    description = (
        "raw </>/+/-/== arithmetic on wrap-around sequence numbers; "
        "use repro.udt.seqno helpers (seq_cmp/seq_off/seq_inc/...)"
    )

    def interested(self, ctx: ModuleContext) -> bool:
        rp = ctx.relpath
        if rp == "udt/seqno.py":
            return False
        return rp.startswith("udt/") or rp.startswith("sabul/")

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for op, left, right in zip(node.ops, operands, operands[1:]):
                    if not isinstance(op, _FLAGGED_CMPOPS):
                        continue
                    hit = next(
                        (e for e in (left, right) if _expr_is_seqlike(e)), None
                    )
                    if hit is None:
                        continue
                    opname = type(op).__name__
                    findings.append(
                        ctx.finding(
                            RULE,
                            node,
                            f"raw {opname} comparison on sequence number "
                            f"{_describe(hit)!r}; use seq_cmp/valid_seq "
                            "(wrap-around space)",
                        )
                    )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, _FLAGGED_BINOPS
            ):
                hit = next(
                    (e for e in (node.left, node.right) if _expr_is_seqlike(e)),
                    None,
                )
                if hit is not None:
                    opname = type(node.op).__name__
                    findings.append(
                        ctx.finding(
                            RULE,
                            node,
                            f"raw {opname} arithmetic on sequence number "
                            f"{_describe(hit)!r}; use seq_off/seq_inc/seq_dec/"
                            "seq_len (wrap-around space)",
                        )
                    )
        return findings
