"""Figure 8 — loss pattern during heavy congestion.

A UDT flow fills a high-BDP link; a bursting UDP blast is injected at the
bottleneck.  The receiver's loss events (contiguous holes) reach thousands
of packets each — the justification for range-compressed loss storage
(§4.2: "each loss event contains up to 3000+ lost packets").
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.bulk import UdpBlast
from repro.experiments.common import ExperimentResult, flow_start, scaled
from repro.sim.topology import path_topology
from repro.sim.udp import UdpEndpoint
from repro.udt import UdtConfig, start_udt_flow


def collect_loss_events(
    rate_bps: float = 1e9,
    rtt: float = 0.100,
    duration: Optional[float] = None,
    blast_fraction: float = 9.5,
    seed: int = 0,
) -> List[int]:
    """Run the experiment and return per-event lost-packet counts."""
    if duration is None:
        duration = scaled(30.0, minimum=12.0)
    top = path_topology(rate_bps, rtt, seed=seed, cross_sources=1)
    cfg = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
    f = start_udt_flow(top.net, top.src, top.dst, config=cfg, start=flow_start(0))
    # Bursting UDP cross traffic straight into the bottleneck queue.
    cross = [n for n in top.net.nodes.values() if n.name == "cross0"][0]
    sink_ep = UdpEndpoint(top.dst, 9999)
    # The blast exceeds the link rate: while it is ON the queue holds
    # almost only blast packets and every UDT packet in that window is
    # lost — one multi-thousand-packet loss event per burst (Figure 8's
    # pattern).
    UdpBlast(
        top.net,
        cross,
        sink_ep.address,
        rate_bps=rate_bps * blast_fraction,
        on_time=0.10,
        off_time=0.90,
        start=duration * 0.2 + flow_start(1),
    )
    top.net.run(until=duration)
    return list(f.receiver.loss_events)


def run(
    rate_bps: float = 1e9,
    rtt: float = 0.100,
    duration: Optional[float] = None,
    seed: int = 0,
) -> ExperimentResult:
    events = collect_loss_events(rate_bps, rtt, duration, seed=seed)
    res = ExperimentResult(
        "fig08",
        "Lost packets per loss event during heavy congestion",
        ["loss event #", "lost packets"],
        paper_reference="Figure 8 (events of up to 3000+ packets on a "
        "1 Gb/s, 100 ms link under a bursting UDP flow)",
    )
    for i, n in enumerate(events):
        res.add(i, n)
    big = max(events) if events else 0
    res.notes = (
        f"{len(events)} loss events, largest {big} packets, "
        f"mean {sum(events)/len(events):.1f}" if events else "no loss recorded"
    )
    return res
