"""Figure 2 — Jain's fairness index of UDT vs TCP against RTT.

10 concurrent flows on a 100 Mb/s DropTail link (queue = max(100, BDP)).
The paper's result: UDT stays near 1.0 across the whole RTT range, TCP's
index decays as RTT grows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, flow_start, scaled
from repro.metrics import jain_index
from repro.sim.topology import dumbbell
from repro.tcp import start_tcp_flow
from repro.udt import start_udt_flow

DEFAULT_RTTS = (0.001, 0.01, 0.1, 0.5)


def _run_flows(kind: str, n: int, rate: float, rtt: float, duration: float, seed: int):
    d = dumbbell(n, rate, rtt, seed=seed)
    flows = []
    for i in range(n):
        # Staggered, not simultaneous: t=0 handshake ties would make run
        # order depend on the engine tie-break (determinism sanitizer).
        start = flow_start(i)
        if kind == "udt":
            f = start_udt_flow(
                d.net, d.sources[i], d.sinks[i], start=start, flow_id=f"f{i}"
            )
        else:
            f = start_tcp_flow(
                d.net, d.sources[i], d.sinks[i], start=start, flow_id=f"f{i}"
            )
        flows.append(f)
    d.net.run(until=duration)
    return d, flows


def run(
    n_flows: int = 10,
    rate_bps: float = 100e6,
    rtts: Sequence[float] = DEFAULT_RTTS,
    duration: Optional[float] = None,
    seed: int = 0,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(100.0, minimum=20.0)
    res = ExperimentResult(
        "fig02",
        "Jain's fairness index vs RTT",
        ["RTT (ms)", "UDT", "TCP"],
        paper_reference="Figure 2 (UDT ~1.0 across RTTs; TCP decays with RTT)",
        notes=f"{n_flows} flows, {rate_bps/1e6:.0f} Mb/s, {duration:.0f}s, "
        "DropTail q=max(100,BDP)",
    )
    warm = duration / 4
    for rtt in rtts:
        indices = {}
        for kind in ("udt", "tcp"):
            d, flows = _run_flows(kind, n_flows, rate_bps, rtt, duration, seed)
            thr = [f.throughput_bps(warm, duration) for f in flows]
            indices[kind] = jain_index(thr)
        res.add(rtt * 1e3, round(indices["udt"], 4), round(indices["tcp"], 4))
    return res
