"""Figure 1 / §2.1 / §5.3 — the streaming-join motivating example.

Two record streams, A over a 100 ms path and B over a 1 ms path, joined
at C behind a shared 1 Gb/s bottleneck.  With TCP, RTT bias starves the
long stream and the join runs at ~2x the slow stream; with UDT both
streams converge to the fair share and the join approaches link speed
(§5.3 reports 600-800 Mb/s).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.streaming_join import run_streaming_join
from repro.experiments.common import ExperimentResult, mbps, scaled
from repro.sim.topology import join_topology
from repro.tcp import TcpFlow
from repro.udt.sim_adapter import UdtFlow


def run(
    rate_bps: float = 1e9,
    rtt_a: float = 0.100,
    rtt_b: float = 0.001,
    duration: Optional[float] = None,
    queue_pkts: int = 100,
    seed: int = 1,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(30.0, minimum=8.0)
    res = ExperimentResult(
        "fig01",
        "Streaming join: per-stream and join throughput (Mb/s)",
        [
            "transport",
            "stream A (100ms)",
            "stream B (1ms)",
            "join (measured)",
            "join bound 2x slower",
        ],
        paper_reference="Figure 1 + §2.1 (TCP: ~100/863, join ~2x slower stream); "
        "§5.3 (UDT join 600-800 Mb/s)",
        notes=f"rate={mbps(rate_bps):.0f} Mb/s, queue={queue_pkts} pkts, "
        f"duration={duration:.0f}s",
    )
    warm = min(duration / 3, 5.0)
    # Real-time sources at 45% of the link each: a fair transport carries
    # both (join ~= 0.9 x link); an RTT-biased one starves stream A.
    src_rate = 0.45 * rate_bps
    for name, factory in (
        (
            "TCP",
            lambda net, s, d, fid: TcpFlow(net, s, d, flow_id=fid),
        ),
        (
            "UDT",
            lambda net, s, d, fid: UdtFlow(net, s, d, flow_id=fid, app_driven=True),
        ),
    ):
        top = join_topology(
            rate_bps=rate_bps, rtt_a=rtt_a, rtt_b=rtt_b,
            queue_pkts=queue_pkts, seed=seed,
        )
        join, fa, fb = run_streaming_join(
            top, factory, duration=duration, source_rate_bps=src_rate
        )
        ra = fa.throughput_bps(warm, duration)
        rb = fb.throughput_bps(warm, duration)
        join_bps = join.stats.joined_bytes(1456) * 8.0 / duration
        bound = 2.0 * min(ra, rb)
        res.add(name, mbps(ra), mbps(rb), mbps(join_bps), mbps(bound))
    res.notes += (
        f"; real-time sources at {mbps(src_rate):.0f} Mb/s each — the paper's "
        "bound: join <= 2 x slower stream"
    )
    return res
