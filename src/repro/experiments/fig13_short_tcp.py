"""Figure 13 — aggregate throughput of short TCP transfers vs background
UDT flows.

A train of short (1 MB) TCP transfers runs from Chicago to Amsterdam
while 0..N bulk UDT flows occupy the same path.  The paper's point: the
aggregate short-TCP throughput decays *gently* (690 -> 480 Mb/s from 0 to
10 UDT flows) because UDT yields the bandwidth short TCP flows claim.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, flow_start, mbps, scaled
from repro.sim.topology import dumbbell
from repro.tcp import start_tcp_flow
from repro.udt import UdtConfig, start_udt_flow

DEFAULT_UDT_COUNTS = (0, 1, 2, 4, 7, 10)


def _measure(
    n_udt: int,
    rate_bps: float,
    rtt: float,
    duration: float,
    xfer_bytes: int,
    concurrent_tcp: int,
    seed: int,
) -> float:
    d = dumbbell(concurrent_tcp + max(n_udt, 1), rate_bps, rtt, seed=seed)
    for i in range(n_udt):
        cfg = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
        start_udt_flow(
            d.net, d.sources[concurrent_tcp + i], d.sinks[concurrent_tcp + i],
            config=cfg, start=flow_start(i), flow_id=f"udt{i}",
        )
    # Each TCP "slot" runs back-to-back short transfers for the whole run;
    # the metric is aggregate delivered TCP bytes in the measurement
    # window (partial transfers count — the paper measures throughput,
    # not completions).
    flow_ids = []

    def launch(slot: int, start_at: float, k: int) -> None:
        fid = f"tcp{slot}-{k}"
        flow_ids.append(fid)
        f = start_tcp_flow(
            d.net,
            d.sources[slot],
            d.sinks[slot],
            nbytes=xfer_bytes,
            start=start_at,
            flow_id=fid,
        )

        def check() -> None:
            if f.done:
                f.close()
                if d.net.sim.now < duration:
                    launch(slot, d.net.sim.now, k + 1)
            elif d.net.sim.now < duration:
                d.net.sim.schedule(0.05, check)

        d.net.sim.schedule(0.05, check)

    warm = duration * 0.25
    for slot in range(concurrent_tcp):
        launch(slot, warm + slot * 0.01, 0)
    d.net.run(until=duration)
    return sum(
        d.net.monitor.throughput_bps(fid, warm, duration) for fid in flow_ids
    )


def run(
    rate_bps: float = 1e9,
    rtt: float = 0.110,
    udt_counts: Sequence[int] = DEFAULT_UDT_COUNTS,
    duration: Optional[float] = None,
    xfer_bytes: int = 10_000_000,
    concurrent_tcp: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(40.0, minimum=15.0)
    res = ExperimentResult(
        "fig13",
        "Aggregate short-TCP throughput vs number of background UDT flows",
        ["UDT flows", "TCP aggregate (Mb/s)"],
        paper_reference="Figure 13 (decays gently, ~690 -> ~480 Mb/s from "
        "0 to 10 background UDT flows)",
        notes=f"{concurrent_tcp} x {xfer_bytes/1e6:.0f} MB transfers "
        f"back-to-back, {mbps(rate_bps):.0f} Mb/s, {rtt*1e3:.0f} ms, "
        f"{duration:.0f}s",
    )
    for n in udt_counts:
        agg = _measure(
            n, rate_bps, rtt, duration, xfer_bytes, concurrent_tcp, seed
        )
        res.add(n, mbps(agg))
    return res
