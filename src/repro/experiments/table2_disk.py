"""Table 2 — UDT disk-to-disk performance matrix.

Every (source, destination) pair of the three sites transfers a file
through the modelled disks; throughput lands on min(source read,
destination write, network path) — §5.3's "limited by the disk IO
bottleneck".
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.apps.fileio import DiskTransfer
from repro.experiments.common import ExperimentResult, mbps, scaled
from repro.hostmodel.disk import SITE_DISKS, disk_disk_limit
from repro.sim.topology import path_topology

#: (rate, RTT) of the path between each ordered site pair (§5).
PATHS: Dict[Tuple[str, str], Tuple[float, float]] = {
    ("Chicago", "Chicago"): (1e9, 0.0004),
    ("Chicago", "Ottawa"): (622e6, 0.016),
    ("Chicago", "Amsterdam"): (1e9, 0.110),
    ("Ottawa", "Chicago"): (622e6, 0.016),
    ("Ottawa", "Ottawa"): (1e9, 0.0004),
    ("Ottawa", "Amsterdam"): (622e6, 0.126),
    ("Amsterdam", "Chicago"): (1e9, 0.110),
    ("Amsterdam", "Ottawa"): (622e6, 0.126),
    ("Amsterdam", "Amsterdam"): (1e9, 0.0004),
}


def run(
    nbytes: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    if nbytes is None:
        nbytes = int(scaled(400e6, minimum=120e6))
    res = ExperimentResult(
        "table2",
        "UDT disk-disk throughput matrix (Mb/s)",
        ["from \\ to", "Chicago", "Ottawa", "Amsterdam", "expected min()"],
        paper_reference="Table 2 (every entry tracks the disk IO bottleneck)",
        notes=f"file size {nbytes/1e6:.0f} MB; expected = "
        "min(src read, dst write, path) for the slowest column",
    )
    sites = ["Chicago", "Ottawa", "Amsterdam"]
    for src_name in sites:
        row = [src_name]
        expected = []
        for dst_name in sites:
            rate, rtt = PATHS[(src_name, dst_name)]
            top = path_topology(rate, rtt, seed=seed)
            xfer = DiskTransfer(
                top.net,
                top.src,
                top.dst,
                SITE_DISKS[src_name],
                SITE_DISKS[dst_name],
                nbytes=nbytes,
            )
            limit = disk_disk_limit(SITE_DISKS[src_name], SITE_DISKS[dst_name], rate)
            top.net.run(until=nbytes * 8.0 / limit * 3 + 10)
            thr = xfer.effective_throughput_bps() if xfer.done else 0.0
            row.append(round(mbps(thr), 1))
            expected.append(round(mbps(limit), 1))
        row.append("/".join(str(e) for e in expected))
        res.add(*row)
    return res
