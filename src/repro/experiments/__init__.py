"""Experiment runners — one per table/figure of the paper, plus ablations.

Every runner returns an :class:`~repro.experiments.common.ExperimentResult`
whose rows mirror the series the paper plots.  ``python -m repro list``
shows the registry; benchmarks under ``benchmarks/`` regenerate each
artefact via these runners.
"""

from repro.experiments.registry import REGISTRY, get_experiment, list_experiments

__all__ = ["REGISTRY", "get_experiment", "list_experiments"]
