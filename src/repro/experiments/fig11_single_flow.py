"""Figure 11 — single-flow efficiency on the three testbed paths.

Chicago->Chicago (1 Gb/s, 0.04 ms), Chicago->Ottawa (OC-12 622 Mb/s,
16 ms), Chicago->Amsterdam (1 Gb/s, 110 ms).  UDT reaches ~940/580/940
Mb/s; tuned TCP manages only ~100-300 Mb/s on the long path.

The real testbeds carry occasional random loss (§2.2: "the existence of
random loss on the physical link ... prevent TCP from utilizing high
bandwidth with a single flow"); we model it with a small per-packet BER
loss — without it a clean simulated path lets even Reno eventually fill
the pipe, which is not what physical Gb/s WANs do.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, mbps, scaled
from repro.sim.topology import path_topology
from repro.tcp import start_tcp_flow
from repro.udt import UdtConfig, start_udt_flow

#: (name, rate, RTT) for the three §5 paths.
PATHS = (
    ("to Chicago (1G, 0.04ms)", 1e9, 0.00004),
    ("to Ottawa (OC-12, 16ms)", 622e6, 0.016),
    ("to Amsterdam (1G, 110ms)", 1e9, 0.110),
)

#: Residual random loss on the optical paths (per packet).
LINK_LOSS = 1e-5


def run(
    duration: Optional[float] = None,
    loss_rate: float = LINK_LOSS,
    seed: int = 0,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(60.0, minimum=18.0)
    res = ExperimentResult(
        "fig11",
        "Single-flow throughput per path (Mb/s)",
        ["path", "UDT", "TCP (tuned)"],
        paper_reference="Figure 11 (UDT 940/580/940; tuned TCP far below "
        "on the high-BDP path)",
        notes=f"duration {duration:.0f}s, link loss {loss_rate:g}/pkt "
        "(models residual physical-path loss)",
    )
    warm = duration / 2  # measure steady state, not the ramp
    for name, rate, rtt in PATHS:
        vals = {}
        for kind in ("udt", "tcp"):
            top = path_topology(rate, rtt, loss_rate=loss_rate, seed=seed)
            if kind == "udt":
                cfg = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
                f = start_udt_flow(top.net, top.src, top.dst, config=cfg)
            else:
                f = start_tcp_flow(top.net, top.src, top.dst)
            top.net.run(until=duration)
            vals[kind] = f.throughput_bps(warm, duration)
        res.add(name, mbps(vals["udt"]), mbps(vals["tcp"]))
    return res
