"""Figure 6 — RTT fairness of UDT.

Two concurrent UDT flows on the Figure 1 topology: flow 1 with a fixed
100 ms RTT, flow 2 with RTT swept 1-1000 ms.  The constant SYN control
interval makes throughput RTT-independent: the paper reports the ratio
within 10% of 1 across the whole sweep.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.experiments.common import ExperimentResult, scaled
from repro.metrics import rtt_fairness_ratio
from repro.sim.topology import join_topology
from repro.udt import UdtConfig
from repro.udt.cc import CongestionControl, UdtNativeCC
from repro.udt.sim_adapter import UdtFlow

DEFAULT_RTTS = (0.001, 0.01, 0.1, 0.5, 1.0)


def run(
    rate_bps: float = 100e6,
    ref_rtt: float = 0.100,
    rtts: Sequence[float] = DEFAULT_RTTS,
    duration: Optional[float] = None,
    seed: int = 0,
    cc_factory: Callable[[UdtConfig], CongestionControl] = UdtNativeCC,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(60.0, minimum=15.0)
    res = ExperimentResult(
        "fig06",
        "RTT fairness: throughput(variable-RTT flow) / throughput(100ms flow)",
        ["flow2 RTT (ms)", "ratio", "flow1 Mb/s", "flow2 Mb/s"],
        paper_reference="Figure 6 (ratio within 10% of 1.0 for 1-1000 ms)",
        notes=f"2 UDT flows, {rate_bps/1e6:.0f} Mb/s shared bottleneck, "
        f"{duration:.0f}s (paper runs at 1 Gb/s)",
    )
    for rtt in rtts:
        # Long-RTT flows need proportionally longer runs to converge:
        # the paper's claim is about steady state, not the ramp.
        dur = max(duration, rtt * 60.0)
        warm = dur / 2
        top = join_topology(rate_bps=rate_bps, rtt_a=ref_rtt, rtt_b=rtt, seed=seed)
        f1 = UdtFlow(top.net, top.src_a, top.sink, flow_id="ref", cc_factory=cc_factory)
        f2 = UdtFlow(top.net, top.src_b, top.sink, flow_id="var", cc_factory=cc_factory)
        top.net.run(until=dur)
        t1 = f1.throughput_bps(warm, dur)
        t2 = f2.throughput_bps(warm, dur)
        res.add(rtt * 1e3, round(rtt_fairness_ratio(t2, t1), 3), t1 / 1e6, t2 / 1e6)
    return res
