"""Ablation experiments for the design choices DESIGN.md calls out.

* ``bwe``   — bandwidth-estimated increase (formula (1)) vs fixed AIMD.
* ``syn``   — the SYN-interval tradeoff of §3.7 (efficiency vs
  friendliness vs stability).
* ``sabul`` — UDT's AIMD vs SABUL's MIMD: fairness convergence after a
  staggered start (§2.3 / §5.2).
* ``multibottleneck`` — §3.4 footnote: on multi-bottleneck topologies a
  UDT flow reaches at least half of its max-min fair share.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, flow_start, mbps, scaled
from repro.metrics import jain_index
from repro.sabul import start_sabul_flow
from repro.sim.topology import dumbbell, multi_bottleneck, path_topology
from repro.tcp import start_tcp_flow
from repro.udt import FixedAimdCC, UdtConfig, start_udt_flow


def run_bwe(
    rate_bps: float = 622e6,
    rtt: float = 0.1,
    duration: Optional[float] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Formula (1) vs a fixed +1 packet/SYN increase."""
    if duration is None:
        duration = scaled(40.0, minimum=12.0)
    res = ExperimentResult(
        "ablation-bwe",
        "Bandwidth-estimated vs fixed AIMD increase",
        ["controller", "single-flow Mb/s", "2-flow Jain (staggered start)"],
        paper_reference="§3.3-§3.4 (estimation picks the increase "
        "parameter automatically)",
        notes=f"{mbps(rate_bps):.0f} Mb/s, {rtt*1e3:.0f} ms, link loss 1e-5",
    )
    warm = duration / 3
    for name, cc_factory in (
        ("UDT native (bw estimation)", None),
        ("fixed +1 pkt/SYN", lambda cfg: FixedAimdCC(cfg, 1.0)),
    ):
        kw = {} if cc_factory is None else {"cc_factory": cc_factory}
        top = path_topology(rate_bps, rtt, loss_rate=1e-5, seed=seed)
        cfg = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
        f = start_udt_flow(top.net, top.src, top.dst, config=cfg, **kw)
        top.net.run(until=duration)
        single = f.throughput_bps(warm, duration)

        d = dumbbell(2, rate_bps, rtt, seed=seed)
        f1 = start_udt_flow(d.net, d.sources[0], d.sinks[0], config=cfg, **kw)
        f2 = start_udt_flow(
            d.net, d.sources[1], d.sinks[1], config=cfg, start=duration / 4, **kw
        )
        d.net.run(until=duration)
        fairness = jain_index(
            [f1.throughput_bps(warm * 2, duration), f2.throughput_bps(warm * 2, duration)]
        )
        res.add(name, mbps(single), round(fairness, 4))
    return res


def run_syn(
    syn_values: Sequence[float] = (0.001, 0.01, 0.1),
    rate_bps: float = 100e6,
    rtt: float = 0.1,
    duration: Optional[float] = None,
    seed: int = 0,
) -> ExperimentResult:
    """§3.7: smaller SYN -> more efficient, less TCP-friendly."""
    if duration is None:
        duration = scaled(40.0, minimum=12.0)
    res = ExperimentResult(
        "ablation-syn",
        "SYN interval tradeoff: efficiency vs TCP share",
        ["SYN (ms)", "UDT alone Mb/s", "TCP share vs 1 UDT (Mb/s)"],
        paper_reference='§3.7 ("decrease SYN: more efficiency, less '
        'friendliness"); default SYN = 10 ms',
        notes=f"{mbps(rate_bps):.0f} Mb/s, {rtt*1e3:.0f} ms",
    )
    warm = duration / 3
    for syn in syn_values:
        cfg = UdtConfig(syn=syn, rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
        top = path_topology(rate_bps, rtt, loss_rate=1e-5, seed=seed)
        f = start_udt_flow(top.net, top.src, top.dst, config=cfg)
        top.net.run(until=duration)
        alone = f.throughput_bps(warm, duration)

        d = dumbbell(2, rate_bps, rtt, seed=seed)
        start_udt_flow(d.net, d.sources[0], d.sinks[0], config=cfg, start=flow_start(0))
        tcp = start_tcp_flow(d.net, d.sources[1], d.sinks[1], start=flow_start(1))
        d.net.run(until=duration)
        res.add(syn * 1e3, mbps(alone), mbps(tcp.throughput_bps(warm, duration)))
    return res


def run_sabul(
    rate_bps: float = 100e6,
    rtt: float = 0.05,
    duration: Optional[float] = None,
    seed: int = 0,
) -> ExperimentResult:
    """UDT vs SABUL: fairness convergence after a staggered start."""
    if duration is None:
        duration = scaled(90.0, minimum=45.0)
    res = ExperimentResult(
        "ablation-sabul",
        "UDT (AIMD + bw estimation) vs SABUL (MIMD): staggered-start fairness",
        ["protocol", "flow1 Mb/s", "flow2 Mb/s", "Jain index (last third)"],
        paper_reference="§2.3/§5.2 (SABUL's MIMD converges slowly to "
        "fairness; similar efficiency)",
        notes=f"flow2 starts at t={duration/4:.0f}s; measured over the last third",
    )
    for name, starter in (("UDT", start_udt_flow), ("SABUL", start_sabul_flow)):
        d = dumbbell(2, rate_bps, rtt, seed=seed)
        f1 = starter(d.net, d.sources[0], d.sinks[0], flow_id="f1")
        f2 = starter(d.net, d.sources[1], d.sinks[1], start=duration / 4, flow_id="f2")
        d.net.run(until=duration)
        t0 = duration * 2 / 3
        t1, t2 = f1.throughput_bps(t0, duration), f2.throughput_bps(t0, duration)
        res.add(name, mbps(t1), mbps(t2), round(jain_index([t1, t2]), 4))
    return res


def run_delay(
    rate_bps: float = 50e6,
    rtt: float = 0.05,
    duration: Optional[float] = None,
    seed: int = 4,
) -> ExperimentResult:
    """§6's obsolete design: PCT/PDT delay-trend congestion warnings.

    Reproduces the lesson learned: the delay-based variant is friendlier
    to a competing TCP flow but pays for it in throughput.
    """
    from repro.tcp import start_tcp_flow
    from repro.udt.delaycc import DelayWarningCC, attach_delay_detection
    from repro.udt.sim_adapter import UdtFlow

    if duration is None:
        duration = scaled(60.0, minimum=20.0)
    res = ExperimentResult(
        "ablation-delay",
        "Loss-only vs delay-trend (PCT/PDT) congestion detection",
        ["variant", "UDT Mb/s", "competing TCP Mb/s", "UDT retransmissions"],
        paper_reference='§6 ("friendlier to TCP, but may lead to poor '
        'throughputs"); the design UDT shipped without',
        notes=f"1 UDT + 1 TCP on {mbps(rate_bps):.0f} Mb/s, {rtt*1e3:.0f} ms",
    )
    warm = duration / 2
    for name, use_delay in (("loss-only (final UDT)", False), ("delay-trend", True)):
        d = dumbbell(2, rate_bps, rtt, seed=seed)
        if use_delay:
            u = UdtFlow(
                d.net, d.sources[0], d.sinks[0],
                cc_factory=DelayWarningCC, start=flow_start(0), flow_id="u",
            )
            attach_delay_detection(u)
        else:
            u = start_udt_flow(
                d.net, d.sources[0], d.sinks[0], start=flow_start(0), flow_id="u"
            )
        t = start_tcp_flow(
            d.net, d.sources[1], d.sinks[1], start=flow_start(1), flow_id="t"
        )
        d.net.run(until=duration)
        res.add(
            name,
            mbps(u.throughput_bps(warm, duration)),
            mbps(t.throughput_bps(warm, duration)),
            u.sender.stats.retransmitted_pkts,
        )
    return res


def run_control_channel(
    rate_bps: float = 50e6,
    rtt: float = 0.05,
    duration: Optional[float] = None,
    seed: int = 9,
) -> ExperimentResult:
    """§2.3/§6: SABUL's TCP control channel vs UDT's UDP-only design."""
    from repro.sabul.control_channel import attach_tcp_control_channel

    if duration is None:
        duration = scaled(50.0, minimum=20.0)
    res = ExperimentResult(
        "ablation-control-channel",
        "Control over UDP (UDT) vs over a TCP-like channel (SABUL legacy)",
        ["control channel", "aggregate Mb/s", "ctrl retransmissions"],
        paper_reference='§6 ("Using TCP in another transport protocol '
        'should be avoided" — HOL-blocked feedback during congestion)',
        notes=f"2 UDT flows on {mbps(rate_bps):.0f} Mb/s, small queue to "
        "force recurring congestion",
    )
    warm = duration * 0.4
    for label, tcp_ctrl in (("UDP (UDT)", False), ("TCP-like (SABUL)", True)):
        d = dumbbell(2, rate_bps, rtt, queue_pkts=60, seed=seed)
        f1 = start_udt_flow(
            d.net, d.sources[0], d.sinks[0], start=flow_start(0), flow_id="a"
        )
        f2 = start_udt_flow(
            d.net, d.sources[1], d.sinks[1], start=flow_start(1), flow_id="b"
        )
        retx = 0
        if tcp_ctrl:
            chans = [attach_tcp_control_channel(f1), attach_tcp_control_channel(f2)]
        d.net.run(until=duration)
        if tcp_ctrl:
            retx = sum(c.retransmissions for ch in chans for c in ch.values())
        total = f1.throughput_bps(warm, duration) + f2.throughput_bps(warm, duration)
        res.add(label, mbps(total), retx)
    return res


def run_multibottleneck(
    n_hops: int = 3,
    rate_bps: float = 100e6,
    hop_rtt: float = 0.02,
    duration: Optional[float] = None,
    seed: int = 0,
) -> ExperimentResult:
    """§3.4 footnote: the long flow gets >= half its max-min share."""
    if duration is None:
        duration = scaled(60.0, minimum=15.0)
    m = multi_bottleneck(n_hops, rate_bps, hop_rtt, seed=seed)
    cfg = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
    long_flow = start_udt_flow(
        m.net, m.sources[0], m.sinks[0], config=cfg,
        start=flow_start(0), flow_id="long",
    )
    cross = [
        start_udt_flow(
            m.net, m.sources[i + 1], m.sinks[i + 1], config=cfg,
            start=flow_start(i + 1), flow_id=f"x{i}",
        )
        for i in range(n_hops)
    ]
    m.net.run(until=duration)
    warm = duration / 3
    lt = long_flow.throughput_bps(warm, duration)
    res = ExperimentResult(
        "ablation-multibottleneck",
        "Parking lot: long flow vs per-hop cross flows",
        ["flow", "throughput (Mb/s)", "fraction of max-min share"],
        paper_reference="§3.4 footnote (long flow >= 1/2 of max-min share)",
        notes=f"{n_hops} bottlenecks of {mbps(rate_bps):.0f} Mb/s; "
        f"max-min share = {mbps(rate_bps)/2:.0f} Mb/s each",
    )
    maxmin = rate_bps / 2.0
    res.add("long (all hops)", mbps(lt), round(lt / maxmin, 3))
    for i, f in enumerate(cross):
        ct = f.throughput_bps(warm, duration)
        res.add(f"cross hop {i}", mbps(ct), round(ct / maxmin, 3))
    return res
