"""Table 3 — CPU utilisation ratio per protocol function.

Runs the Figure 14 workload and reports each cost category's share of
the endpoint's consumed cycles, next to the published shares.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, scaled
from repro.hostmodel import CpuMeter, UDT_RECEIVER_COSTS, UDT_SENDER_COSTS
from repro.hostmodel.cpu import UDT_RECEIVER_SHARES, UDT_SENDER_SHARES
from repro.sim.topology import path_topology
from repro.udt import UdtConfig
from repro.udt.sim_adapter import UdtFlow

#: (meter category, paper row, published share) — sending column.
SEND_ROWS = (
    ("udp_io", "UDP writing", UDT_SENDER_SHARES["udp_io"]),
    ("timing", "Timing", UDT_SENDER_SHARES["timing"]),
    ("codec", "Packing data", UDT_SENDER_SHARES["codec"]),
    ("ctrl", "Processing control packet", UDT_SENDER_SHARES["ctrl"]),
    ("app", "Application interaction", UDT_SENDER_SHARES["app"]),
    ("other", "Other", UDT_SENDER_SHARES["other"]),
)

RECV_ROWS = (
    ("udp_io", "UDP reading", UDT_RECEIVER_SHARES["udp_io"]),
    ("measurement", "Bandwidth/RTT/arrival measurement", UDT_RECEIVER_SHARES["measurement"]),
    ("codec", "Unpacking data", UDT_RECEIVER_SHARES["codec"]),
    ("loss", "Loss processing", UDT_RECEIVER_SHARES["loss"]),
    ("timing", "Timing", UDT_RECEIVER_SHARES["timing"]),
    ("other", "Other (+ACK generation)", UDT_RECEIVER_SHARES["other"]),
)


def run(
    rate_bps: float = 1e9,
    rtt: float = 0.001,
    duration: Optional[float] = None,
    seed: int = 0,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(15.0, minimum=5.0)
    top = path_topology(rate_bps, rtt, seed=seed)
    clock = lambda: top.net.sim.now  # noqa: E731
    ms = CpuMeter(UDT_SENDER_COSTS, clock)
    mr = CpuMeter(UDT_RECEIVER_COSTS, clock)
    cfg = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
    UdtFlow(top.net, top.src, top.dst, config=cfg, meter_snd=ms, meter_rcv=mr)
    top.net.run(until=duration)

    res = ExperimentResult(
        "table3",
        "CPU utilisation ratio of functions in UDT (%)",
        ["side", "function", "paper %", "measured %"],
        paper_reference="Table 3 (VTune profile on dual 2.4 GHz Xeon; "
        "memory copy inside UDP IO dominates)",
        notes="measured = share of modelled cycles at the Fig 14 workload",
    )
    snd_bd = ms.breakdown()
    rcv_bd = mr.breakdown()
    for cat, label, paper in SEND_ROWS:
        res.add("sending", label, paper, round(snd_bd.get(cat, 0.0) * 100, 1))
    for cat, label, paper in RECV_ROWS:
        measured = rcv_bd.get(cat, 0.0)
        if cat == "other":
            measured += rcv_bd.get("ctrl_send", 0.0)
        res.add("receiving", label, paper, round(measured * 100, 1))
    return res
