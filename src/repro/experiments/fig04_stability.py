"""Figure 4 — stability index of UDT vs TCP against RTT (§3.6).

Same setup as Figure 2 (10 flows, 100 Mb/s, DropTail max(100, BDP)),
sampling each flow's throughput every second.  Paper shape: UDT is more
stable than TCP except in the mid-RTT band (~1-10 ms) where TCP's queue
happens to be ideally sized.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, flow_start, scaled
from repro.metrics import stability_index
from repro.sim.topology import dumbbell
from repro.tcp import start_tcp_flow
from repro.udt import start_udt_flow

DEFAULT_RTTS = (0.001, 0.01, 0.1, 0.5)


def run(
    n_flows: int = 10,
    rate_bps: float = 100e6,
    rtts: Sequence[float] = DEFAULT_RTTS,
    duration: Optional[float] = None,
    sample_interval: float = 1.0,
    seed: int = 0,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(100.0, minimum=20.0)
    res = ExperimentResult(
        "fig04",
        "Stability index vs RTT (lower is more stable)",
        ["RTT (ms)", "UDT", "TCP"],
        paper_reference="Figure 4 (UDT more stable except ~1-10 ms RTT)",
        notes=f"{n_flows} flows, {rate_bps/1e6:.0f} Mb/s, {duration:.0f}s, "
        f"{sample_interval:.0f}s samples",
    )
    warm = duration / 4
    for rtt in rtts:
        out = {}
        for kind, starter in (("udt", start_udt_flow), ("tcp", start_tcp_flow)):
            d = dumbbell(n_flows, rate_bps, rtt, seed=seed)
            flows = [
                # Staggered starts: t=0 handshake ties would make run
                # order depend on the engine tie-break (see
                # common.flow_start / the determinism sanitizer).
                starter(
                    d.net,
                    d.sources[i],
                    d.sinks[i],
                    start=flow_start(i),
                    flow_id=f"f{i}",
                )
                for i in range(n_flows)
            ]
            d.net.run(until=duration)
            # Sample sink *arrival* rate (NS-2 style): in-order goodput
            # stalls during hole repair and would conflate reordering
            # latency with instability.
            samples = d.net.monitor.sample_matrix(
                [f.arrival_flow_id for f in flows], sample_interval, warm, duration
            )
            out[kind] = stability_index(samples)
        res.add(rtt * 1e3, round(out["udt"], 4), round(out["tcp"], 4))
    return res
