"""§2.2 ablation — parallel TCP striping vs a single UDT flow.

Reproduces both published criticisms of the PSockets-style workaround:

* the N that recovers the bandwidth is scenario-dependent (needs tuning
  per path), while one UDT flow adapts automatically;
* striping is unfair: an N-striped transfer takes ~N shares from a
  competing standard TCP flow.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.parallel_tcp import ParallelTcpTransfer
from repro.experiments.common import ExperimentResult, flow_start, mbps, scaled
from repro.sim.topology import dumbbell, path_topology
from repro.tcp import start_tcp_flow
from repro.udt import UdtConfig, start_udt_flow

DEFAULT_STREAMS = (1, 4, 16)


def run(
    rate_bps: float = 622e6,
    rtt: float = 0.110,
    loss_rate: float = 1e-5,
    streams: Sequence[int] = DEFAULT_STREAMS,
    duration: Optional[float] = None,
    seed: int = 0,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(40.0, minimum=12.0)
    res = ExperimentResult(
        "ablation-parallel-tcp",
        "Parallel TCP striping vs one UDT flow",
        ["configuration", "goodput (Mb/s)", "competing TCP keeps (Mb/s)"],
        paper_reference="§2.2 (parallel TCP needs per-scenario tuning and "
        "is unfair to standard TCP)",
        notes=f"{mbps(rate_bps):.0f} Mb/s, {rtt*1e3:.0f} ms, link loss "
        f"{loss_rate:g}; competing flow measured on a shared bottleneck",
    )
    warm = duration / 2

    def coexistence(maker) -> float:
        """What a single standard TCP keeps next to the configuration."""
        d = dumbbell(2, rate_bps, rtt, seed=seed)
        maker(d)
        # The striped transfer occupies the flow_start(0)-based slots;
        # its stream count is bounded by max(streams), so 64 clears them.
        comp = start_tcp_flow(
            d.net, d.sources[1], d.sinks[1], start=flow_start(64), flow_id="victim"
        )
        d.net.run(until=duration)
        return comp.throughput_bps(warm, duration)

    for n in streams:
        top = path_topology(rate_bps, rtt, loss_rate=loss_rate, seed=seed)
        p = ParallelTcpTransfer(top.net, top.src, top.dst, n_streams=n)
        top.net.run(until=duration)
        solo = p.throughput_bps(warm, duration)
        kept = coexistence(
            lambda d, n=n: ParallelTcpTransfer(
                d.net, d.sources[0], d.sinks[0], n_streams=n
            )
        )
        res.add(f"parallel TCP x{n}", mbps(solo), mbps(kept))

    cfg = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
    top = path_topology(rate_bps, rtt, loss_rate=loss_rate, seed=seed)
    u = start_udt_flow(top.net, top.src, top.dst, config=cfg)
    top.net.run(until=duration)
    solo = u.throughput_bps(warm, duration)
    kept = coexistence(
        lambda d: start_udt_flow(d.net, d.sources[0], d.sinks[0], config=cfg)
    )
    res.add("UDT x1 (no tuning)", mbps(solo), mbps(kept))
    return res
