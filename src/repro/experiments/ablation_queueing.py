"""§3.7 footnote ablation — queueing impacts TCP, barely touches UDT.

"TCP's performance can be heavily affected by queuing, which, however,
have little impact on UDT's rate control."  We sweep the bottleneck
DropTail queue size (as a fraction of the BDP) and also swap in RED, and
compare each protocol's single-flow throughput.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, mbps, scaled
from repro.sim.queues import REDQueue
from repro.sim.topology import Network, bdp_packets
from repro.tcp import start_tcp_flow
from repro.udt import UdtConfig, start_udt_flow

DEFAULT_FRACTIONS = (0.05, 0.25, 1.0)


def _path(rate_bps, rtt, queue_pkts=None, red=False, seed=0):
    net = Network(seed=seed)
    src = net.add_host("src")
    dst = net.add_host("dst")
    r1 = net.add_router("r1")
    r2 = net.add_router("r2")
    big = max(queue_pkts or 100, 1000)
    net.add_link(src, r1, rate_bps * 10, 1e-6, queue_pkts=big)
    if red:
        qf = lambda: REDQueue(queue_pkts, rng=random.Random(seed))  # noqa: E731
        net.add_link(r1, r2, rate_bps, rtt / 2, queue_factory=qf)
    else:
        net.add_link(r1, r2, rate_bps, rtt / 2, queue_pkts=queue_pkts)
    net.add_link(r2, dst, rate_bps * 10, 1e-6, queue_pkts=big)
    net.finalize()
    return net, src, dst


def run(
    rate_bps: float = 200e6,
    rtt: float = 0.1,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    duration: Optional[float] = None,
    seed: int = 0,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(40.0, minimum=12.0)
    res = ExperimentResult(
        "ablation-queueing",
        "Single-flow throughput vs bottleneck queue provisioning",
        ["queue", "UDT (Mb/s)", "TCP (Mb/s)"],
        paper_reference="§3.7 footnote (queueing heavily affects TCP, "
        "little impact on UDT's rate control)",
        notes=f"{mbps(rate_bps):.0f} Mb/s, {rtt*1e3:.0f} ms",
    )
    warm = duration / 2
    bdp = bdp_packets(rate_bps, rtt)
    cases = [(f"DropTail {f:.2f}xBDP", max(int(bdp * f), 4), False) for f in fractions]
    cases.append(("RED 0.5xBDP", max(bdp // 2, 8), True))
    cfg = UdtConfig(rcv_buffer_pkts=4 * bdp, snd_buffer_pkts=4 * bdp)
    for label, q, red in cases:
        vals = {}
        for kind in ("udt", "tcp"):
            net, src, dst = _path(rate_bps, rtt, queue_pkts=q, red=red, seed=seed)
            if kind == "udt":
                f = start_udt_flow(net, src, dst, config=cfg)
            else:
                f = start_tcp_flow(net, src, dst)
            net.run(until=duration)
            vals[kind] = f.throughput_bps(warm, duration)
        res.add(label, mbps(vals["udt"]), mbps(vals["tcp"]))
    return res
