"""Figure 5 — TCP friendliness index vs RTT (§3.7).

m UDT flows and n TCP flows share a 100 Mb/s link; a control run starts
m+n TCP flows instead.  T = (aggregate TCP with UDT present) / (TCP's
n/(m+n) fair share from the control).  Paper shape: T stays above ~0.2
even at very long RTTs and approaches/exceeds 1 at short RTTs where TCP
is the more aggressive protocol.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, flow_start, scaled
from repro.metrics import friendliness_index
from repro.sim.topology import dumbbell
from repro.tcp import start_tcp_flow
from repro.udt import start_udt_flow

DEFAULT_RTTS = (0.001, 0.01, 0.1, 0.5)


def run(
    n_udt: int = 5,
    n_tcp: int = 10,
    rate_bps: float = 100e6,
    rtts: Sequence[float] = DEFAULT_RTTS,
    duration: Optional[float] = None,
    seed: int = 0,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(100.0, minimum=20.0)
    res = ExperimentResult(
        "fig05",
        "TCP friendliness index vs RTT (1 = ideal, <1 = UDT overruns TCP)",
        ["RTT (ms)", "T index", "TCP Mb/s (w/ UDT)", "TCP fair share Mb/s"],
        paper_reference="Figure 5 (5 UDT + 10 TCP; TCP keeps >20% of fair "
        "share even at 1000 ms)",
        notes=f"{n_udt} UDT + {n_tcp} TCP on {rate_bps/1e6:.0f} Mb/s, "
        f"{duration:.0f}s",
    )
    warm = duration / 4
    total = n_udt + n_tcp
    for rtt in rtts:
        # mixed run
        d = dumbbell(total, rate_bps, rtt, seed=seed)
        tcp_flows = []
        for i in range(n_udt):
            start_udt_flow(
                d.net, d.sources[i], d.sinks[i],
                start=flow_start(i), flow_id=f"u{i}",
            )
        for i in range(n_udt, total):
            tcp_flows.append(
                start_tcp_flow(
                    d.net, d.sources[i], d.sinks[i],
                    start=flow_start(i), flow_id=f"t{i}",
                )
            )
        d.net.run(until=duration)
        with_udt = [f.throughput_bps(warm, duration) for f in tcp_flows]

        # all-TCP control
        c = dumbbell(total, rate_bps, rtt, seed=seed + 1)
        control = [
            start_tcp_flow(
                c.net, c.sources[i], c.sinks[i],
                start=flow_start(i), flow_id=f"c{i}",
            )
            for i in range(total)
        ]
        c.net.run(until=duration)
        alone = [f.throughput_bps(warm, duration) for f in control]

        t = friendliness_index(with_udt, alone, n_udt)
        fair = sum(alone) * (n_tcp / total)
        res.add(rtt * 1e3, round(t, 3), sum(with_udt) / 1e6, fair / 1e6)
    return res
