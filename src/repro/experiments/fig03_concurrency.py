"""Figure 3 — UDT performance vs number of concurrent flows.

Multiplexed UDT flows on one bottleneck: aggregate utilisation stays high
but the standard deviation of per-flow throughput grows with concurrency
(the §3.6 point that UDT targets low-concurrency bulk networks).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, flow_start, mbps, scaled
from repro.sim.topology import dumbbell
from repro.udt import start_udt_flow

DEFAULT_COUNTS = (2, 8, 32, 96)
DEFAULT_RTTS = (0.0001, 0.001, 0.1)


def run(
    rate_bps: float = 100e6,
    counts: Sequence[int] = DEFAULT_COUNTS,
    rtts: Sequence[float] = DEFAULT_RTTS,
    duration: Optional[float] = None,
    seed: int = 0,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(60.0, minimum=15.0)
    res = ExperimentResult(
        "fig03",
        "Per-flow throughput stddev and aggregate utilisation vs #flows",
        ["flows", "RTT (ms)", "stddev (Mb/s)", "aggregate (Mb/s)"],
        paper_reference="Figure 3 (oscillation grows with concurrency; "
        "utilisation stays high)",
        notes=f"link {mbps(rate_bps):.0f} Mb/s, duration {duration:.0f}s "
        "(paper: 1 Gb/s, up to 400 flows — rate scaled for CPython)",
    )
    warm = duration / 3
    for rtt in rtts:
        for n in counts:
            d = dumbbell(n, rate_bps, rtt, seed=seed)
            flows = [
                start_udt_flow(
                    d.net, d.sources[i], d.sinks[i],
                    start=flow_start(i), flow_id=f"f{i}",
                )
                for i in range(n)
            ]
            d.net.run(until=duration)
            thr = [f.throughput_bps(warm, duration) for f in flows]
            mean = sum(thr) / n
            std = math.sqrt(sum((t - mean) ** 2 for t in thr) / n)
            res.add(n, rtt * 1e3, mbps(std), mbps(sum(thr)))
    return res
