"""Experiment registry: id -> (runner, description)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments import ablation_parallel_tcp
from repro.experiments import ablation_queueing
from repro.experiments import ablations
from repro.experiments import fig01_streaming_join
from repro.experiments import fig02_fairness
from repro.experiments import fig03_concurrency
from repro.experiments import fig04_stability
from repro.experiments import fig05_friendliness
from repro.experiments import fig06_rtt_fairness
from repro.experiments import fig07_flow_control
from repro.experiments import fig08_loss_pattern
from repro.experiments import fig09_losslist
from repro.experiments import fig11_single_flow
from repro.experiments import fig12_three_flows
from repro.experiments import fig13_short_tcp
from repro.experiments import fig14_cpu
from repro.experiments import fig15_packet_size
from repro.experiments import table1_increase
from repro.experiments import table2_disk
from repro.experiments import table3_breakdown
from repro.experiments.common import ExperimentResult


@dataclass(frozen=True)
class Experiment:
    exp_id: str
    runner: Callable[..., ExperimentResult]
    description: str
    paper_artefact: str


REGISTRY: Dict[str, Experiment] = {}


def _register(exp_id: str, runner, description: str, artefact: str) -> None:
    REGISTRY[exp_id] = Experiment(exp_id, runner, description, artefact)


_register("table1", table1_increase.run, "increase parameter computation", "Table 1")
_register("fig01", fig01_streaming_join.run, "streaming join example", "Figure 1/§5.3")
_register("fig02", fig02_fairness.run, "Jain fairness index vs RTT", "Figure 2")
_register("fig03", fig03_concurrency.run, "stddev vs concurrent flows", "Figure 3")
_register("fig04", fig04_stability.run, "stability index vs RTT", "Figure 4")
_register("fig05", fig05_friendliness.run, "TCP friendliness vs RTT", "Figure 5")
_register("fig06", fig06_rtt_fairness.run, "RTT fairness of UDT", "Figure 6")
_register("fig07", fig07_flow_control.run, "flow control on/off", "Figure 7")
_register("fig08", fig08_loss_pattern.run, "loss pattern under congestion", "Figure 8")
_register("fig09", fig09_losslist.run, "loss-list access times", "Figure 9")
_register("fig11", fig11_single_flow.run, "single-flow efficiency", "Figure 11")
_register("fig12", fig12_three_flows.run, "three concurrent flows", "Figure 12")
_register("fig13", fig13_short_tcp.run, "short TCP vs background UDT", "Figure 13")
_register("fig14", fig14_cpu.run, "CPU utilisation", "Figure 14")
_register("fig15", fig15_packet_size.run, "throughput vs packet size", "Figure 15")
_register("table2", table2_disk.run, "disk-disk matrix", "Table 2")
_register("table3", table3_breakdown.run, "CPU per-function breakdown", "Table 3")
_register("ablation-bwe", ablations.run_bwe, "bandwidth estimation ablation", "§3.3-3.4")
_register("ablation-syn", ablations.run_syn, "SYN interval tradeoff", "§3.7")
_register("ablation-sabul", ablations.run_sabul, "UDT vs SABUL", "§2.3/§5.2")
_register(
    "ablation-delay",
    ablations.run_delay,
    "obsolete delay-trend design vs loss-only",
    "§6",
)
_register(
    "ablation-control-channel",
    ablations.run_control_channel,
    "UDP vs TCP-like control channel",
    "§2.3/§6",
)
_register(
    "ablation-parallel-tcp",
    ablation_parallel_tcp.run,
    "parallel TCP striping vs one UDT flow",
    "§2.2",
)
_register(
    "ablation-queueing",
    ablation_queueing.run,
    "queue provisioning: TCP sensitive, UDT not",
    "§3.7 footnote",
)
_register(
    "ablation-multibottleneck",
    ablations.run_multibottleneck,
    "max-min share on parking lot",
    "§3.4 footnote",
)


def get_experiment(exp_id: str) -> Experiment:
    if exp_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(sorted(REGISTRY))}"
        )
    return REGISTRY[exp_id]


def list_experiments() -> List[Experiment]:
    return list(REGISTRY.values())
