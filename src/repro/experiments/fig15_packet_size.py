"""Figure 15 — UDT throughput vs packet size.

Single flow on a 1 Gb/s, 110 ms path whose MTU is 1500 bytes.  Small
packets waste capacity on headers and per-packet CPU; packets above the
MTU are IP-fragmented, so one lost fragment kills the whole packet
("segmentation collapse", §6).  The optimum sits exactly at MSS = MTU.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, flow_start, mbps, scaled
from repro.sim.topology import path_topology
from repro.udt import UdtConfig, start_udt_flow

DEFAULT_SIZES = (576, 1000, 1500, 2000, 3000, 6000)


def run(
    rate_bps: float = 1e9,
    rtt: float = 0.110,
    mtu: int = 1500,
    sizes: Sequence[int] = DEFAULT_SIZES,
    loss_rate: float = 1e-4,
    duration: Optional[float] = None,
    seed: int = 0,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(15.0, minimum=5.0)
    res = ExperimentResult(
        "fig15",
        "UDT throughput vs packet size (MTU 1500)",
        ["MSS (bytes)", "throughput (Mb/s)", "fragments/pkt"],
        paper_reference="Figure 15 (optimum at MSS = path MTU = 1500; "
        "collapse above)",
        notes=f"{mbps(rate_bps):.0f} Mb/s, {rtt*1e3:.0f} ms, per-fragment "
        f"loss {loss_rate:g}, duration {duration:.0f}s",
    )
    warm = duration / 3
    for mss in sizes:
        top = path_topology(
            rate_bps, rtt, mtu=mtu, loss_rate=loss_rate, seed=seed
        )
        cfg = UdtConfig(mss=mss, rcv_buffer_pkts=40000, snd_buffer_pkts=40000)
        f = start_udt_flow(top.net, top.src, top.dst, config=cfg, start=flow_start(0))
        top.net.run(until=duration)
        frags = -(-mss // mtu)
        res.add(mss, mbps(f.throughput_bps(warm, duration)), frags)
    return res
