"""Shared experiment plumbing: results, scaling, formatting, tracing."""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """One reproduced artefact: a table of rows mirroring the paper's plot."""

    exp_id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: str = ""
    paper_reference: str = ""

    def add(self, *row: Any) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def column(self, name: str) -> List[Any]:
        idx = list(self.columns).index(name)
        return [r[idx] for r in self.rows]

    def to_text(self) -> str:
        widths = [
            max(len(str(c)), *(len(_fmt(r[i])) for r in self.rows)) if self.rows else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        lines = [f"== {self.exp_id}: {self.title} =="]
        if self.paper_reference:
            lines.append(f"   (paper: {self.paper_reference})")
        header = "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for r in self.rows:
            lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(r, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - mirrors the deliverable spec
        print(self.to_text())


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100:
            return f"{v:.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4f}"
    return str(v)


def scale() -> float:
    """Global duration/size multiplier.

    Benchmarks run at the default reduced scale so a full sweep finishes
    in minutes of wall time on CPython; set ``REPRO_SCALE=1`` to run every
    experiment at the paper's published durations (much slower).  Scaling
    shortens *time*, never link rates or RTTs, so the control dynamics
    stay in the paper's operating regime.
    """
    return float(os.environ.get("REPRO_SCALE", "0.3"))


def scaled(seconds: float, minimum: float = 2.0) -> float:
    return max(seconds * scale(), minimum)


def mbps(bps: float) -> float:
    return bps / 1e6


#: Deterministic spacing between "concurrent" flow starts.  Flows that
#: all start at exactly t=0 leave their handshakes tied in virtual time,
#: making run order depend on the engine's same-instant tie-break — the
#: determinism sanitizer (docs/ANALYSIS.md) flags that.  ~10 µs is far
#: below any RTT or rate-control period, so staggered flows are still
#: concurrent for every experiment's purposes.  The extra 2.13 ns pushes
#: the stagger off the decimal float grid: handshake delays and pacing
#: periods are round decimals, so an exactly-10 µs offset can re-align
#: two flows' timer grids later in the run (observed in
#: ablation-control-channel, where flow B's conn.connected tied with
#: flow A's paced send 0.1 s in).
FLOW_START_STAGGER = 1.000000213e-5


def flow_start(i: int) -> float:
    """Start time for the i-th concurrent flow of an experiment."""
    return i * FLOW_START_STAGGER


@contextmanager
def traced(
    trace_path: Optional[str] = None,
    summary: bool = False,
    packets: bool = False,
    sample: Optional[Dict[str, Any]] = None,
    **meta: Any,
) -> Iterator[Any]:
    """Run any experiment fully traced.

    Subscribes a trace writer (when ``trace_path`` is given; the suffix
    selects JSONL, ``.jsonl.gz``, or the ``.rtrc`` binary store) and/or
    a :class:`~repro.obs.export.TraceSummary` to the process default
    bus, which wakes up every instrumentation point in the stack —
    protocol cores, links, meters — for the duration of the block::

        with traced("out.jsonl", summary=True) as session:
            result = get_experiment("fig04").runner()
        print(session.summary_text())

    ``packets=True`` additionally records the per-packet detail tier
    (``pkt.snd``/``pkt.rcv``/``link.enq``/``link.deq``) so the trace can
    be span-reconstructed with ``repro-udt report`` /
    :func:`repro.obs.spans.build_spans`.  ``sample`` applies a per-kind
    sampling policy (``{kind: "stride:N" | "head:N"}``, recorded in
    ``trace.meta``) to bound trace volume.

    With neither output requested the block runs untraced (the bus stays
    disabled, so the instrumented paths keep their near-zero idle cost).
    Yields a :class:`~repro.obs.export.TraceSession`.
    """
    from repro.obs.export import trace_session

    with trace_session(
        trace_path, summary=summary, packets=packets, sample=sample, **meta
    ) as session:
        yield session


@contextmanager
def profiled() -> Iterator[Any]:
    """Profile every simulator an experiment creates inside the block.

    Yields a :class:`~repro.obs.prof.SimProfiler`; after the block its
    ``to_text()`` / ``write_json()`` carry the hot-path breakdown::

        with profiled() as prof:
            get_experiment("fig02").runner()
        prof.write_json("BENCH_profile_fig02.json", exp_id="fig02")
    """
    from repro.obs.prof import profile_simulators

    with profile_simulators() as prof:
        yield prof
