"""Figure 14 — CPU utilisation of UDT vs TCP at ~970 Mb/s.

The protocol endpoints run with host CPU meters attached; utilisation is
re-derived from the packets/bytes the flow actually moved through the
calibrated cost model (see repro.hostmodel.cpu).  Paper: UDT ~43%
sending / ~52% receiving, TCP ~33% / ~35%.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, mbps, scaled
from repro.hostmodel import (
    CpuMeter,
    TCP_RECEIVER_COSTS,
    TCP_SENDER_COSTS,
    UDT_RECEIVER_COSTS,
    UDT_SENDER_COSTS,
)
from repro.sim.topology import path_topology
from repro.tcp import TcpFlow
from repro.udt import UdtConfig
from repro.udt.sim_adapter import UdtFlow


def run(
    rate_bps: float = 1e9,
    rtt: float = 0.001,
    duration: Optional[float] = None,
    seed: int = 0,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(15.0, minimum=5.0)
    res = ExperimentResult(
        "fig14",
        "CPU utilisation for memory-memory transfer (%)",
        ["protocol", "throughput (Mb/s)", "sending CPU %", "receiving CPU %"],
        paper_reference="Figure 14 (UDT 43/52, TCP 33/35 at ~970 Mb/s on "
        "dual 2.4 GHz Xeons)",
        notes=f"duration {duration:.0f}s on a clean {mbps(rate_bps):.0f} Mb/s path",
    )
    warm = duration / 3

    # UDT
    top = path_topology(rate_bps, rtt, seed=seed)
    clock = lambda: top.net.sim.now  # noqa: E731
    ms = CpuMeter(UDT_SENDER_COSTS, clock)
    mr = CpuMeter(UDT_RECEIVER_COSTS, clock)
    cfg = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
    f = UdtFlow(top.net, top.src, top.dst, config=cfg, meter_snd=ms, meter_rcv=mr)
    top.net.run(until=duration)
    res.add(
        "UDT",
        mbps(f.throughput_bps(warm, duration)),
        round(ms.utilization() * 100, 1),
        round(mr.utilization() * 100, 1),
    )
    udt_meters = (ms, mr)

    # TCP
    top2 = path_topology(rate_bps, rtt, seed=seed)
    clock2 = lambda: top2.net.sim.now  # noqa: E731
    ts = CpuMeter(TCP_SENDER_COSTS, clock2)
    tr = CpuMeter(TCP_RECEIVER_COSTS, clock2)
    f2 = TcpFlow(top2.net, top2.src, top2.dst, meter_snd=ts, meter_rcv=tr)
    top2.net.run(until=duration)
    res.add(
        "TCP",
        mbps(f2.throughput_bps(warm, duration)),
        round(ts.utilization() * 100, 1),
        round(tr.utilization() * 100, 1),
    )
    res.meters = {"udt": udt_meters, "tcp": (ts, tr)}  # for table3 reuse
    return res
