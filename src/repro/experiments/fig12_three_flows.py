"""Figure 12 — three simultaneous UDT flows from one host.

Three flows leave Chicago simultaneously for a local machine, Ottawa and
Amsterdam, all squeezing through the source's 1 Gb/s egress.  UDT's
RTT-independent control gives each ~325 Mb/s; TCP on the same setup is
grossly skewed toward the short path (§5.1: 754 / 155 / 27).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, flow_start, mbps, scaled
from repro.sim.topology import Network, paper_queue_size
from repro.tcp import start_tcp_flow
from repro.udt import UdtConfig, start_udt_flow

#: (destination, path rate after egress, one-way delay)
DESTS = (
    ("Chicago", 1e9, 0.0002),
    ("Ottawa", 622e6, 0.008),
    ("Amsterdam", 1e9, 0.055),
)


def build_star(seed: int = 0):
    """One source whose 1 Gb/s egress fans out to the three paths."""
    net = Network(seed=seed)
    src = net.add_host("chicago-src")
    egress = net.add_router("egress")
    q = paper_queue_size(1e9, 0.110)
    net.add_link(src, egress, 1e9, 1e-6, queue_pkts=q)
    sinks = []
    for name, rate, delay in DESTS:
        d = net.add_host(f"sink-{name}")
        net.add_link(egress, d, rate, delay, queue_pkts=q)
        sinks.append(d)
    net.finalize()
    return net, src, sinks


def run(duration: Optional[float] = None, seed: int = 0) -> ExperimentResult:
    if duration is None:
        duration = scaled(20.0, minimum=6.0)
    res = ExperimentResult(
        "fig12",
        "Three concurrent flows sharing one 1 Gb/s egress (Mb/s)",
        ["destination", "UDT", "TCP"],
        paper_reference="Figure 12 (UDT: ~325 each; TCP: 754/155/27)",
        notes=f"duration {duration:.0f}s; egress is the shared bottleneck",
    )
    warm = duration / 3
    results = {}
    for kind in ("udt", "tcp"):
        net, src, sinks = build_star(seed=seed)
        flows = []
        for i, ((name, _, _), sink) in enumerate(zip(DESTS, sinks)):
            if kind == "udt":
                cfg = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
                flows.append(
                    start_udt_flow(
                        net, src, sink, config=cfg,
                        start=flow_start(i), flow_id=f"u-{name}",
                    )
                )
            else:
                flows.append(
                    start_tcp_flow(
                        net, src, sink, start=flow_start(i), flow_id=f"t-{name}"
                    )
                )
        net.run(until=duration)
        results[kind] = [f.throughput_bps(warm, duration) for f in flows]
    for i, (name, _, _) in enumerate(DESTS):
        res.add(name, mbps(results["udt"][i]), mbps(results["tcp"][i]))
    return res
