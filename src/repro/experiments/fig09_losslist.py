"""Figure 9 — access time to the loss list.

Replays a Figure 8-style loss trace against the appendix data structure
and times every insert / delete (retransmission arrival) / query in
microseconds.  The paper's claim: accesses complete in ~1 us regardless
of how many packets each congestion event killed.  The naive
one-entry-per-packet list is included as the ablation baseline.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Tuple

from repro.experiments.common import ExperimentResult
from repro.udt.losslist import NaiveLossList, ReceiverLossList


def synth_loss_trace(
    n_events: int = 300, max_burst: int = 3000, seed: int = 0
) -> List[Tuple[int, int]]:
    """Loss events shaped like Figure 8: bursts up to thousands of packets."""
    rng = random.Random(seed)
    trace = []
    seq = 0
    for _ in range(n_events):
        seq += rng.randint(1, 500)  # received run
        burst = rng.randint(1, max_burst)
        trace.append((seq, seq + burst - 1))
        seq += burst
    return trace


def time_structure(make, trace) -> dict:
    """Mean/max microseconds for insert, delete, query over the trace."""
    ll = make()
    out = {}
    # inserts
    times = []
    for a, b in trace:
        t0 = time.perf_counter_ns()
        ll.insert(a, b)
        times.append(time.perf_counter_ns() - t0)
    out["insert_mean_us"] = sum(times) / len(times) / 1e3
    out["insert_max_us"] = max(times) / 1e3
    # queries (hit the middle of random events)
    rng = random.Random(1)
    times = []
    for _ in range(len(trace)):
        a, b = trace[rng.randrange(len(trace))]
        probe = (a + b) // 2
        t0 = time.perf_counter_ns()
        ll.contains(probe)
        times.append(time.perf_counter_ns() - t0)
    out["query_mean_us"] = sum(times) / len(times) / 1e3
    # deletes: retransmissions arrive for the first packet of each event
    times = []
    for a, _ in trace:
        t0 = time.perf_counter_ns()
        if isinstance(ll, ReceiverLossList):
            ll.remove(a)
        else:
            ll.remove_upto(a)
        times.append(time.perf_counter_ns() - t0)
    out["delete_mean_us"] = sum(times) / len(times) / 1e3
    return out


def run(
    n_events: int = 300, max_burst: int = 3000, seed: int = 0
) -> ExperimentResult:
    trace = synth_loss_trace(n_events, max_burst, seed)
    total_lost = sum(b - a + 1 for a, b in trace)
    res = ExperimentResult(
        "fig09",
        "Loss-list access time (microseconds)",
        ["structure", "insert mean", "insert max", "query mean", "delete mean"],
        paper_reference="Figure 9 (~1 us per access, independent of loss "
        "volume, on 2.4 GHz Xeons)",
        notes=f"{n_events} loss events, {total_lost} lost packets total; "
        "naive per-packet list shown as the §4.2 ablation",
    )
    for name, make in (
        ("range list (UDT)", ReceiverLossList),
        ("naive per-packet", NaiveLossList),
    ):
        r = time_structure(make, trace)
        res.add(
            name,
            round(r["insert_mean_us"], 2),
            round(r["insert_max_us"], 2),
            round(r["query_mean_us"], 2),
            round(r["delete_mean_us"], 2),
        )
    return res
