"""Figure 7 — UDT throughput with and without flow control.

Single flow on a high-BDP path (paper: 1 Gb/s, 100 ms, queue = BDP) with
periodic competing bursts (the real networks of §5 are never perfectly
quiet).  With the dynamic window the rate curve stays smooth near link
speed and loss stays small; without it the sender keeps a queue's worth
of excess in flight, every burst triggers an avalanche of loss and the
delivered rate oscillates — §3.2's argument for the supportive window.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.bulk import UdpBlast
from repro.experiments.common import ExperimentResult, flow_start, mbps, scaled
from repro.sim.topology import bdp_packets, path_topology
from repro.sim.udp import UdpEndpoint
from repro.udt import UdtConfig, start_udt_flow


def run(
    rate_bps: float = 1e9,
    rtt: float = 0.100,
    duration: Optional[float] = None,
    sample_interval: float = 0.5,
    seed: int = 0,
) -> ExperimentResult:
    if duration is None:
        duration = scaled(30.0, minimum=10.0)
    res = ExperimentResult(
        "fig07",
        "UDT throughput over time, with vs without flow control (Mb/s)",
        ["time (s)", "with FC", "without FC"],
        paper_reference="Figure 7 (smooth near capacity with FC; deep "
        "oscillations without)",
        notes=f"{mbps(rate_bps):.0f} Mb/s, {rtt*1e3:.0f} ms, queue=BDP",
    )
    q = bdp_packets(rate_bps, rtt)
    series = {}
    stats = {}
    for label, fc in (("with", True), ("without", False)):
        top = path_topology(rate_bps, rtt, queue_pkts=q, seed=seed, cross_sources=1)
        cfg = UdtConfig(
            flow_control=fc,
            rcv_buffer_pkts=4 * q,
            snd_buffer_pkts=4 * q,
        )
        f = start_udt_flow(top.net, top.src, top.dst, config=cfg, start=flow_start(0))
        # Periodic competing burst at the bottleneck (staggered like any
        # other concurrent sender so its first packet never ties with a
        # flow event in virtual time).
        cross = [n for n in top.net.nodes.values() if n.name == "cross0"][0]
        sink_ep = UdpEndpoint(top.dst, 9999)
        UdpBlast(
            top.net, cross, sink_ep.address, rate_bps=rate_bps * 0.6,
            on_time=0.2, off_time=1.8, start=duration * 0.25 + flow_start(1),
        )
        top.net.run(until=duration)
        series[label] = f.series(sample_interval, 0, duration)
        stats[label] = f.sender.stats
    for (t, w), (_, wo) in zip(series["with"], series["without"]):
        res.add(t, mbps(w), mbps(wo))
    res.retransmissions = {
        k: v.retransmitted_pkts for k, v in stats.items()
    }
    res.notes += (
        f"; retransmissions with FC: {stats['with'].retransmitted_pkts}, "
        f"without FC: {stats['without'].retransmitted_pkts}"
    )
    return res
