"""Table 1 — UDT increase-parameter computation (formula (1))."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.udt.cc import increase_param

#: The published table (B band in Mb/s -> inc in packets, MSS=1500).
PAPER_TABLE_1 = [
    ("1000 < B <= 10000", 10000.0, 10.0),
    ("100 < B <= 1000", 1000.0, 1.0),
    ("10 < B <= 100", 100.0, 0.1),
    ("1 < B <= 10", 10.0, 0.01),
    ("0.1 < B <= 1", 1.0, 0.001),
    ("B <= 0.1", 0.1, 0.00067),
]


def run(mss: int = 1500) -> ExperimentResult:
    res = ExperimentResult(
        "table1",
        "UDT increase parameter vs estimated available bandwidth",
        ["B band (Mb/s)", "inc (paper)", "inc (ours)", "match"],
        paper_reference="Table 1",
        notes=f"MSS={mss}; paper floor 0.00067 = 1/1500 packets",
    )
    for label, b_mbps, paper_inc in PAPER_TABLE_1:
        ours = increase_param(b_mbps * 1e6, mss)
        match = abs(ours - paper_inc) / paper_inc < 0.01
        res.add(label, paper_inc, round(ours, 6), "yes" if match else "NO")
    return res
