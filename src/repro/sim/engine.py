"""Discrete-event engine.

A single-threaded event loop over a binary heap.  Events scheduled for the
same instant fire in FIFO order (a monotone tie-break counter guarantees
determinism), which the protocol agents rely on — e.g. an ACK that arrives
at the same instant a retransmission timer expires must be processed first
if it was scheduled first.  The tie-break order is perturbable
(``tie_break="lifo"`` / ``REPRO_TIE_BREAK=lifo``) so the determinism
sanitizer can verify that *causally unrelated* same-time events commute.

The engine is the hot path of every experiment, so the inner loop avoids
attribute lookups and allocates nothing beyond the events themselves.
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
from math import inf
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

#: Same-instant tie-break orders.  "fifo" (the default, and the property
#: agents may rely on) fires equal-time events in scheduling order;
#: "lifo" reverses it.  LIFO exists for the determinism sanitizer
#: (repro.analysis.sanitizer), which runs an experiment under both
#: orders: any outcome difference means some component depends on the
#: incidental interleaving of *causally unrelated* same-time events.
TIE_BREAKS = ("fifo", "lifo")

#: Environment override consulted when Simulator(tie_break=None); lets
#: the sanitizer perturb whole experiment runs without plumbing a flag
#: through every topology/flow constructor.
TIE_BREAK_ENV = "REPRO_TIE_BREAK"


def format_vtime(t: float) -> str:
    """Render a virtual timestamp for human-facing output.

    Sub-millisecond times keep microsecond resolution; everything else
    prints as seconds with millisecond resolution.  Shared by the report
    renderer and :meth:`Simulator.now_str`.
    """
    if t != t:  # NaN
        return "?"
    if abs(t) < 1.0:
        return f"{t*1e3:.3f}ms"
    return f"{t:.3f}s"


class Event:
    """A scheduled callback.  ``cancel()`` marks it dead in O(1)."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        # Drop references so cancelled events pinned in the heap do not
        # keep packets/agents alive.
        self.fn = None
        self.args = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        # Must never raise: cancelled events have fn/args cleared, and
        # debuggers repr() whatever is left in the heap.
        try:
            t = f"{self.time:.6f}"
        except (TypeError, ValueError):
            t = repr(self.time)
        if self.cancelled:
            return f"<Event t={t} seq={self.seq} cancelled>"
        fn = self.fn
        name = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", None)
        if name is None:
            name = type(fn).__name__ if fn is not None else "?"
        return f"<Event t={t} seq={self.seq} pending {name}>"


#: Scheduling-API units, machine-read by the ``units`` lint rule
#: (repro.analysis.units): method name -> {"returns": unit, "arg0": unit}.
#: ``now`` — whether the Simulator attribute or the Scheduler-protocol
#: method — is virtual seconds; the ``*_at`` forms take an absolute
#: virtual time in seconds, the relative forms a delay in seconds.
API_UNITS = {
    "now": {"returns": "s"},
    "schedule": {"arg0": "s"},
    "schedule_at": {"arg0": "s"},
    "post": {"arg0": "s"},
    "post_at": {"arg0": "s"},
    "call_at": {"arg0": "s"},
}


class Simulator:
    """Virtual-time event loop.

    Parameters
    ----------
    seed:
        Seed for the simulation-owned :class:`random.Random`.  All random
        behaviour in the substrate (BER loss, RED drops, jittered app
        starts) draws from this stream, so a run is reproducible from its
        seed alone.
    tie_break:
        Order for events scheduled at the same instant: ``"fifo"``
        (default) or ``"lifo"`` (reversed; used by the determinism
        sanitizer to flush out hidden ordering dependence).  ``None``
        reads the ``REPRO_TIE_BREAK`` environment variable, falling back
        to FIFO.
    """

    def __init__(self, seed: Optional[int] = 0, tie_break: Optional[str] = None):
        if tie_break is None:
            tie_break = os.environ.get(TIE_BREAK_ENV, "fifo")
        if tie_break not in TIE_BREAKS:
            raise ValueError(f"tie_break must be one of {TIE_BREAKS}, got {tie_break!r}")
        self.now: float = 0.0
        self.tie_break = tie_break
        # FIFO pushes (time, +seq, ev); LIFO negates the tie counter so
        # equal-time events pop in reverse scheduling order.
        self._tie_sign = 1 if tie_break == "fifo" else -1
        # Heap entries come in two shapes, distinguished by length:
        #   (time, seq, Event)      — cancellable, from schedule()/schedule_at()
        #   (time, seq, fn, args)   — fire-and-forget, from post()/post_at()
        # Ordering never has to look past (time, seq) — seq is unique — so
        # comparisons stay in C for both shapes.
        self._heap: list[tuple] = []
        self._counter = itertools.count()
        self._running = False
        self.rng = random.Random(seed)
        self.events_processed = 0

    # -- scheduling ----------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self.now + delay
        seq = next(self._counter)
        ev = Event(time, seq, fn, args)
        heapq.heappush(self._heap, (time, self._tie_sign * seq, ev))
        return ev

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past: {time} < {self.now}")
        seq = next(self._counter)
        ev = Event(time, seq, fn, args)
        heapq.heappush(self._heap, (time, self._tie_sign * seq, ev))
        return ev

    def post(self, delay: float, fn: Callable, *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`Event`, no cancel.

        The hot path for the millions of per-packet events (link
        serialisation done, propagation arrival) that are never cancelled:
        it skips the Event allocation entirely, which is a measurable
        share of a long run's wall clock.  Ordering is identical to
        ``schedule`` — both draw from the same tie-break counter.
        """
        heapq.heappush(
            self._heap,
            (self.now + delay, self._tie_sign * next(self._counter), fn, args),
        )

    def post_at(self, time: float, fn: Callable, *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at` (see :meth:`post`)."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past: {time} < {self.now}")
        heapq.heappush(
            self._heap, (time, self._tie_sign * next(self._counter), fn, args)
        )

    # -- execution -----------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or virtual time reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier, so back-to-back ``run``
        segments observe a continuous clock.
        """
        heap = self._heap
        pop = heapq.heappop
        limit = inf if until is None else until
        self._running = True
        processed = 0
        try:
            while heap and self._running:
                entry = heap[0]
                time = entry[0]
                if time > limit:
                    break
                entry = pop(heap)
                if len(entry) == 4:  # fire-and-forget fast path
                    self.now = time
                    processed += 1
                    entry[2](*entry[3])
                    continue
                ev = entry[2]
                if ev.cancelled:
                    continue
                self.now = time
                processed += 1
                ev.fn(*ev.args)
        finally:
            self._running = False
            self.events_processed += processed
        if until is not None and self.now < until:
            self.now = until

    def run_profiled(
        self, until: Optional[float] = None, acc: Optional[Dict[Any, List]] = None
    ) -> Dict[Any, List]:
        """:meth:`run` with per-handler wall-clock attribution.

        Semantically identical to :meth:`run`, but each event's handler
        is timed with ``perf_counter`` and charged to ``acc``, a dict
        mapping the handler's underlying function object to a mutable
        ``[count, seconds]`` pair (pass the same dict across segments —
        and across simulators — to accumulate).  :class:`Timer` ticks are
        charged to the wrapped callback, not to ``Timer._fire``.

        This is a separate method (rather than a flag on ``run``) so the
        unprofiled loop keeps its zero-overhead inner body; the profiler
        in :mod:`repro.obs.prof` swaps ``run`` for this one on install.
        """
        if acc is None:
            acc = {}
        heap = self._heap
        pop = heapq.heappop
        timer_fire = Timer._fire
        limit = inf if until is None else until
        self._running = True
        processed = 0
        try:
            while heap and self._running:
                entry = heap[0]
                time = entry[0]
                if time > limit:
                    break
                entry = pop(heap)
                if len(entry) == 4:
                    fn, args = entry[2], entry[3]
                else:
                    ev = entry[2]
                    if ev.cancelled:
                        continue
                    fn, args = ev.fn, ev.args
                self.now = time
                processed += 1
                t0 = perf_counter()
                fn(*args)
                dt = perf_counter() - t0
                key = getattr(fn, "__func__", fn)
                if key is timer_fire:
                    inner = fn.__self__.fn
                    key = getattr(inner, "__func__", inner)
                ent = acc.get(key)
                if ent is None:
                    acc[key] = [1, dt]
                else:
                    ent[0] += 1
                    ent[1] += dt
        finally:
            self._running = False
            self.events_processed += processed
        if until is not None and self.now < until:
            self.now = until
        return acc

    def stop(self) -> None:
        """Abort :meth:`run` after the current event finishes."""
        self._running = False

    def now_str(self) -> str:
        """Current virtual time, formatted for humans (see format_vtime)."""
        return format_vtime(self.now)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(
            1
            for entry in self._heap
            if len(entry) == 4 or not entry[2].cancelled
        )


class Timer:
    """Restartable one-shot timer bound to a simulator.

    Protocol agents use these for ACK/NAK/EXP/SYN timers: ``restart`` both
    cancels the previous deadline and arms a fresh one, mirroring how the
    UDT receiver re-arms its timers after each timed UDP receive (§4.8).
    """

    __slots__ = ("sim", "fn", "_event")

    def __init__(self, sim: Simulator, fn: Callable[[], None]):
        self.sim = sim
        self.fn = fn
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    @property
    def deadline(self) -> Optional[float]:
        return self._event.time if self.armed else None

    def restart(self, delay: float) -> None:
        self.cancel()
        self._event = self.sim.schedule(delay, self._fire)

    def start_if_idle(self, delay: float) -> None:
        if not self.armed:
            self.restart(delay)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.fn()
