"""Topology construction.

:class:`Network` wraps a simulator plus nodes/links and provides the
canonical topologies of the paper:

* ``dumbbell``   — N sources, one bottleneck, N sinks (Figures 2–5, 7, 13).
* ``join``       — Figure 1: two sources with different RTTs sharing a
  bottleneck into one sink (also used for RTT fairness, Figure 6).
* ``path``       — a single source-to-sink path (Figures 8, 11, 15).
* ``multi_bottleneck`` — parking-lot chain for the max-min footnote ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.fluid import FluidController, ambient_fidelity
from repro.sim.link import Link
from repro.sim.monitor import FlowMonitor
from repro.sim.node import Host, Node, Router
from repro.sim.queues import DropTailQueue
from repro.sim.routing import compute_routes

#: Paper default: DropTail with queue size max(100, BDP in packets).
DEFAULT_QUEUE_PKTS = 100


def bdp_packets(rate_bps: float, rtt: float, mss: int = 1500) -> int:
    """Bandwidth-delay product in MSS-sized packets (rounded up, >= 1)."""
    return max(1, int(rate_bps * rtt / (8.0 * mss) + 0.999999))


def paper_queue_size(rate_bps: float, rtt: float, mss: int = 1500) -> int:
    """The paper's DropTail sizing rule: max(100, BDP)."""
    return max(DEFAULT_QUEUE_PKTS, bdp_packets(rate_bps, rtt, mss))


class Network:
    """A simulator plus its nodes and links.

    ``default_jitter`` is applied to every link unless overridden: a small
    zero-mean randomisation of serialisation times that breaks DropTail
    phase effects (deterministic two-flow simulations otherwise produce
    wildly distorted RTT-bias results; NS-2's randomised overhead serves
    the same purpose).

    ``fidelity`` selects the simulation tier: ``"packet"`` (every packet
    an event) or ``"hybrid"`` (steady bulk-transfer stretches advanced
    analytically by a :class:`~repro.sim.fluid.FluidController`; see
    docs/SIMULATION.md).  ``None`` reads ``REPRO_FIDELITY``, defaulting
    to packet.
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        seed: int = 0,
        default_jitter: float = 0.1,
        fidelity: Optional[str] = None,
    ):
        self.sim = sim if sim is not None else Simulator(seed=seed)
        self.nodes: Dict[int, Node] = {}
        self.links: Dict[Tuple[int, int], Link] = {}
        self.monitor = FlowMonitor(self.sim)
        self.default_jitter = default_jitter
        self.fidelity = fidelity if fidelity is not None else ambient_fidelity()
        self.fluid: Optional[FluidController] = (
            FluidController(self) if self.fidelity == "hybrid" else None
        )
        self._next_id = 0

    # -- construction ----------------------------------------------------
    def add_host(self, name: str = "") -> Host:
        node = Host(self.sim, self._next_id, name)
        self.nodes[node.id] = node
        self._next_id += 1
        return node

    def add_router(self, name: str = "") -> Router:
        node = Router(self.sim, self._next_id, name)
        self.nodes[node.id] = node
        self._next_id += 1
        return node

    def add_link(
        self,
        a: Node,
        b: Node,
        rate_bps: float,
        delay: float,
        queue_pkts: Optional[int] = None,
        loss_rate: float = 0.0,
        mtu: Optional[int] = None,
        duplex: bool = True,
        queue_factory=None,
        jitter: Optional[float] = None,
    ) -> Tuple[Link, Optional[Link]]:
        """Create a link (by default both directions, each with its own queue)."""

        def make_queue() -> DropTailQueue:
            if queue_factory is not None:
                return queue_factory()
            return DropTailQueue(queue_pkts or DEFAULT_QUEUE_PKTS)

        j = self.default_jitter if jitter is None else jitter
        fwd = Link(self.sim, a, b, rate_bps, delay, make_queue(), loss_rate, mtu, jitter=j)
        self.links[(a.id, b.id)] = fwd
        rev = None
        if duplex:
            rev = Link(self.sim, b, a, rate_bps, delay, make_queue(), loss_rate, mtu, jitter=j)
            self.links[(b.id, a.id)] = rev
        return fwd, rev

    def finalize(self) -> "Network":
        """Compute static routes.  Call after topology construction."""
        compute_routes(self.nodes, self.links)
        return self

    def run(self, until: float) -> None:
        if self.fluid is not None:
            self.fluid.on_run(until)
        self.sim.run(until=until)


@dataclass
class Dumbbell:
    net: Network
    sources: List[Host]
    sinks: List[Host]
    left: Router
    right: Router
    bottleneck: Link

    @property
    def sim(self) -> Simulator:
        return self.net.sim


def dumbbell(
    n_flows: int,
    rate_bps: float,
    rtt: float,
    access_rate: Optional[float] = None,
    queue_pkts: Optional[int] = None,
    access_delay: float = 1e-6,
    seed: int = 0,
    mtu: Optional[int] = None,
    loss_rate: float = 0.0,
) -> Dumbbell:
    """Classic dumbbell with the RTT concentrated on the bottleneck.

    ``access_rate`` defaults to 10x the bottleneck so sources are never
    access-limited; queue defaults to the paper's max(100, BDP) rule.
    """
    if n_flows < 1:
        raise ValueError("need at least one flow")
    net = Network(seed=seed)
    left = net.add_router("L")
    right = net.add_router("R")
    qsize = queue_pkts if queue_pkts is not None else paper_queue_size(rate_bps, rtt)
    # Propagation: bottleneck carries RTT/2 each way minus tiny access delays.
    bneck_delay = max(rtt / 2.0 - 2 * access_delay, 1e-9)
    bneck, _ = net.add_link(
        left, right, rate_bps, bneck_delay, queue_pkts=qsize, mtu=mtu,
        loss_rate=loss_rate,
    )
    acc = access_rate if access_rate is not None else rate_bps * 10
    sources, sinks = [], []
    for i in range(n_flows):
        s = net.add_host(f"src{i}")
        d = net.add_host(f"dst{i}")
        net.add_link(s, left, acc, access_delay, queue_pkts=max(qsize, 1000))
        net.add_link(right, d, acc, access_delay, queue_pkts=max(qsize, 1000))
        sources.append(s)
        sinks.append(d)
    net.finalize()
    return Dumbbell(net, sources, sinks, left, right, bneck)


@dataclass
class JoinTopology:
    """Figure 1: A --(rtt_a)--> C and B --(rtt_b)--> C share C's ingress."""

    net: Network
    src_a: Host
    src_b: Host
    sink: Host
    gateway: Router
    bottleneck: Link


def join_topology(
    rate_bps: float = 1e9,
    rtt_a: float = 0.100,
    rtt_b: float = 0.001,
    queue_pkts: Optional[int] = None,
    seed: int = 0,
) -> JoinTopology:
    net = Network(seed=seed)
    a = net.add_host("A")
    b = net.add_host("B")
    c = net.add_host("C")
    gw = net.add_router("GW")
    qsize = (
        queue_pkts
        if queue_pkts is not None
        else paper_queue_size(rate_bps, max(rtt_a, rtt_b))
    )
    # Long and short access paths converge on the shared gateway->C link.
    net.add_link(a, gw, rate_bps, rtt_a / 2.0, queue_pkts=qsize)
    net.add_link(b, gw, rate_bps, rtt_b / 2.0, queue_pkts=qsize)
    bneck, _ = net.add_link(gw, c, rate_bps, 1e-6, queue_pkts=qsize)
    net.finalize()
    return JoinTopology(net, a, b, c, gw, bneck)


@dataclass
class PathTopology:
    net: Network
    src: Host
    dst: Host
    bottleneck: Link


def path_topology(
    rate_bps: float,
    rtt: float,
    queue_pkts: Optional[int] = None,
    mtu: Optional[int] = None,
    loss_rate: float = 0.0,
    seed: int = 0,
    cross_sources: int = 0,
) -> PathTopology:
    """Single path src -> r1 -> r2 -> dst; bottleneck is r1->r2.

    ``cross_sources`` extra hosts are attached to r1 so experiments can
    inject cross traffic (Figure 8's bursting UDP flow).
    """
    net = Network(seed=seed)
    src = net.add_host("src")
    dst = net.add_host("dst")
    r1 = net.add_router("r1")
    r2 = net.add_router("r2")
    qsize = queue_pkts if queue_pkts is not None else paper_queue_size(rate_bps, rtt)
    net.add_link(src, r1, rate_bps * 10, 1e-6, queue_pkts=max(qsize, 1000))
    bneck, _ = net.add_link(
        r1, r2, rate_bps, max(rtt / 2.0 - 3e-6, 1e-9), queue_pkts=qsize,
        mtu=mtu, loss_rate=loss_rate,
    )
    net.add_link(r2, dst, rate_bps * 10, 1e-6, queue_pkts=max(qsize, 1000))
    for i in range(cross_sources):
        x = net.add_host(f"cross{i}")
        net.add_link(x, r1, rate_bps * 10, 1e-6, queue_pkts=max(qsize, 1000))
    net.finalize()
    return PathTopology(net, src, dst, bneck)


@dataclass
class MultiBottleneck:
    net: Network
    sources: List[Host]
    sinks: List[Host]
    routers: List[Router]
    bottlenecks: List[Link]


def multi_bottleneck(
    n_hops: int,
    rate_bps: float,
    hop_rtt: float,
    queue_pkts: Optional[int] = None,
    seed: int = 0,
) -> MultiBottleneck:
    """Parking-lot: one long flow crosses ``n_hops`` bottlenecks, each also
    carrying a one-hop cross flow (max-min fairness footnote, §3.4)."""
    if n_hops < 2:
        raise ValueError("parking lot needs >= 2 hops")
    net = Network(seed=seed)
    routers = [net.add_router(f"r{i}") for i in range(n_hops + 1)]
    qsize = (
        queue_pkts
        if queue_pkts is not None
        else paper_queue_size(rate_bps, hop_rtt * n_hops)
    )
    bnecks = []
    for i in range(n_hops):
        l, _ = net.add_link(
            routers[i], routers[i + 1], rate_bps, hop_rtt / 2.0, queue_pkts=qsize
        )
        bnecks.append(l)
    # Long flow endpoints.
    long_src = net.add_host("long_src")
    long_dst = net.add_host("long_dst")
    net.add_link(long_src, routers[0], rate_bps * 10, 1e-6, queue_pkts=qsize)
    net.add_link(routers[-1], long_dst, rate_bps * 10, 1e-6, queue_pkts=qsize)
    sources, sinks = [long_src], [long_dst]
    # One cross flow per hop.
    for i in range(n_hops):
        s = net.add_host(f"xsrc{i}")
        d = net.add_host(f"xdst{i}")
        net.add_link(s, routers[i], rate_bps * 10, 1e-6, queue_pkts=qsize)
        net.add_link(routers[i + 1], d, rate_bps * 10, 1e-6, queue_pkts=qsize)
        sources.append(s)
        sinks.append(d)
    net.finalize()
    return MultiBottleneck(net, sources, sinks, routers, bnecks)
