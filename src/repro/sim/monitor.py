"""Per-flow goodput monitoring.

Protocol receivers report in-order application-level deliveries here.
The monitor aggregates per-flow byte counts into fixed-interval bins so
experiments can compute time series (Figures 7, 11, 12), averages
(fairness/friendliness indices) and per-sample standard deviations
(stability index, §3.6) without storing every packet.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

#: Snap tolerance for bin-boundary arithmetic: a t0/t1 within 1e-9 s of a
#: bin edge is treated as exactly on the edge, so float noise cannot flip
#: the final bin in or out of an average.
_EDGE_EPS = 1e-9

from repro.sim.engine import Simulator


class FlowMonitor:
    def __init__(self, sim: Simulator, bin_width: float = 0.1):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.sim = sim
        self.bin_width = bin_width
        self._bins: Dict[object, Dict[int, int]] = defaultdict(dict)
        self.total_bytes: Dict[object, int] = defaultdict(int)
        self.first_seen: Dict[object, float] = {}

    def on_deliver(self, flow: object, nbytes: int) -> None:
        """Record ``nbytes`` of goodput for ``flow`` at the current time."""
        t = self.sim.now
        self.first_seen.setdefault(flow, t)
        self.total_bytes[flow] += nbytes
        b = int(t / self.bin_width)
        bins = self._bins[flow]
        bins[b] = bins.get(b, 0) + nbytes

    def credit_span(self, flow: object, t0: float, t1: float, nbytes: int) -> None:
        """Credit ``nbytes`` of goodput spread uniformly over [t0, t1).

        The fluid tier (repro.sim.fluid) integrates delivery analytically
        and books the result here instead of per packet.  Bytes are
        apportioned to bins by exact overlap with cumulative rounding, so
        the sum credited always equals ``nbytes`` — byte conservation is
        what the hybrid≡packet equivalence tests lean on.
        """
        if nbytes <= 0 or t1 <= t0:
            return
        self.first_seen.setdefault(flow, t0)
        self.total_bytes[flow] += nbytes
        w = self.bin_width
        span = t1 - t0
        b0 = int(math.floor(t0 / w + _EDGE_EPS))
        b1 = max(b0 + 1, int(math.ceil(t1 / w - _EDGE_EPS)))
        bins = self._bins[flow]
        covered = 0.0
        given = 0
        for b in range(b0, b1):
            hi = min(t1, (b + 1) * w)
            covered += hi - max(t0, b * w)
            target = nbytes if b == b1 - 1 else int(round(nbytes * covered / span))
            add = target - given
            if add:
                bins[b] = bins.get(b, 0) + add
                given = target

    # -- queries ---------------------------------------------------------
    def flows(self) -> List[object]:
        return list(self.total_bytes)

    def throughput_bps(
        self, flow: object, t0: float = 0.0, t1: Optional[float] = None
    ) -> float:
        """Average goodput in bits/s over [t0, t1) at bin resolution.

        Boundary rule (explicit, float-rounding-proof): a bin is counted
        iff it *overlaps* the half-open interval [t0, t1) — partial bins
        at both ends are included in full.  Edges within 1e-9 s of a bin
        boundary are snapped to it, so ``t1`` landing exactly on a
        boundary excludes the bin starting there regardless of whether
        the division rounds to ``9.999...`` or ``10.000...1``.
        """
        if t1 is None:
            t1 = self.sim.now
        if t1 <= t0:
            return 0.0
        w = self.bin_width
        b0 = int(math.floor(t0 / w + _EDGE_EPS))  # first bin overlapping t0
        b1 = int(math.ceil(t1 / w - _EDGE_EPS))  # exclusive: bins end before t1
        if b1 <= b0:
            b1 = b0 + 1
        total = sum(n for b, n in self._bins.get(flow, {}).items() if b0 <= b < b1)
        return total * 8.0 / (t1 - t0)

    def series(
        self,
        flow: object,
        interval: float,
        t0: float = 0.0,
        t1: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """(time, throughput bits/s) samples at ``interval`` granularity.

        ``interval`` must be an integer multiple of the bin width.
        """
        if t1 is None:
            t1 = self.sim.now
        k = round(interval / self.bin_width)
        if k < 1 or abs(k * self.bin_width - interval) > 1e-9:
            raise ValueError(
                f"interval {interval} must be a multiple of bin width {self.bin_width}"
            )
        bins = self._bins.get(flow, {})
        out = []
        t = t0
        while t + interval <= t1 + 1e-12:
            b0 = int(t / self.bin_width)
            total = sum(bins.get(b0 + i, 0) for i in range(k))
            out.append((t + interval, total * 8.0 / interval))
            t += interval
        return out

    def sample_matrix(
        self, flows: List[object], interval: float, t0: float, t1: float
    ) -> List[List[float]]:
        """Row per flow of throughput samples — input to the stability index."""
        return [[v for _, v in self.series(f, interval, t0, t1)] for f in flows]
