"""Unreliable datagram service — the substrate UDT rides on.

``UdpEndpoint`` mirrors the sockets API shape the paper's implementation
uses: bind to a host/port, ``sendto`` best-effort datagrams, receive via a
callback.  On-wire size = payload size + 28 bytes of IP/UDP headers; the
simulator applies queueing, loss and delay; there is no reliability,
ordering, or congestion control here — exactly UDP's contract.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.node import Host
from repro.sim.packet import IP_UDP_HEADER, Address, Packet

Handler = Callable[[Any, Address, int], None]  # (payload, src_addr, size)


class UdpEndpoint:
    __slots__ = (
        "host",
        "sim",
        "port",
        "_handler",
        "_closed",
        "_addr",
        "bytes_sent",
        "datagrams_sent",
        "datagrams_received",
    )

    def __init__(self, host: Host, port: Optional[int] = None):
        self.host = host
        self.sim = host.sim
        if port is None:
            port = host.next_free_port()
        self.port = port
        self._handler: Optional[Handler] = None
        host.bind(port, self._on_packet)
        self._closed = False
        self._addr: Address = (host.id, port)
        self.bytes_sent = 0
        self.datagrams_sent = 0
        self.datagrams_received = 0

    @property
    def address(self) -> Address:
        return self._addr

    def on_receive(self, handler: Handler) -> None:
        self._handler = handler

    def sendto(
        self,
        payload: Any,
        size: int,
        dst: Address,
        flow: Optional[int] = None,
    ) -> bool:
        """Send a datagram whose application payload is ``size`` bytes."""
        if self._closed:
            raise RuntimeError("endpoint is closed")
        wire = size + IP_UDP_HEADER
        pkt = Packet(wire, self._addr, dst, payload, flow, self.sim.now)
        self.bytes_sent += wire
        self.datagrams_sent += 1
        return self.host.send(pkt)

    def close(self) -> None:
        if not self._closed:
            self.host.unbind(self.port)
            self._closed = True

    def _on_packet(self, pkt: Packet) -> None:
        self.datagrams_received += 1
        if self._handler is not None:
            self._handler(pkt.payload, pkt.src, pkt.size - IP_UDP_HEADER)
