"""Unidirectional links: serialisation rate, propagation delay, loss, MTU.

A link owns an egress queue (DropTail by default).  Packets larger than the
MTU are IP-fragmented: the wire carries extra per-fragment headers and the
loss of *any* fragment loses the whole transport packet — the
"segmentation collapse" the paper's Figure 15 demonstrates for MSS > MTU.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.obs import bus as OB
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue

#: Per-IP-fragment header bytes (IPv4 header repeated on each fragment).
FRAG_HEADER = 20

#: Tap event kinds (ns-2 letters; re-exported by :mod:`repro.sim.trace`).
ENQUEUE = "+"
DEQUEUE = "-"
DROP = "d"

#: A link tap: ``tap(kind, time, link, pkt)``.
LinkTap = Callable[[str, float, "Link", Packet], None]


class Link:
    """One-way pipe from ``src`` to ``dst`` node.

    Parameters
    ----------
    rate_bps:
        Serialisation rate in bits/second.
    delay:
        Propagation delay in seconds (one way).
    queue:
        Egress queue; defaults to a 100-packet DropTail.
    loss_rate:
        Independent per-packet random loss probability (physical link error,
        §2.2 "random loss on the physical link").
    mtu:
        Maximum transmission unit in bytes (on-wire size per fragment).
        ``None`` disables fragmentation.
    jitter:
        Zero-mean fractional randomisation of each packet's serialisation
        time (e.g. 0.1 => +-5%).  Deterministic simulators suffer DropTail
        phase effects that grossly distort two-flow RTT bias; NS-2 breaks
        them with randomised processing overhead and this serves the same
        purpose.  Jitter perturbs transmission (not propagation) so FIFO
        ordering is preserved exactly.
    """

    def __init__(
        self,
        sim: Simulator,
        src: "Node",
        dst: "Node",
        rate_bps: float,
        delay: float,
        queue: Optional[DropTailQueue] = None,
        loss_rate: float = 0.0,
        mtu: Optional[int] = None,
        name: str = "",
        jitter: float = 0.0,
    ):
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("link delay cannot be negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.queue = queue if queue is not None else DropTailQueue(100)
        self.loss_rate = loss_rate
        self.mtu = mtu
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.jitter = jitter
        self.name = name or f"{src.id}->{dst.id}"
        # Lazy transmitter state: the wire is occupied until ``_busy_until``
        # (virtual time); a single pending drain event services the queue.
        self._busy_until = 0.0
        self._drain_pending = False
        # stats
        self.bytes_sent = 0
        self.pkts_sent = 0
        self.pkts_lost = 0
        # observability: stable hook points (no monkey-patching needed).
        # ``taps`` see every enqueue/dequeue/drop; the bus gets drop and
        # queue high-water events.  Both paths are dormant-by-default:
        # an empty tap list is one truthiness check, a disabled bus one
        # attribute load.
        self.taps: List[LinkTap] = []
        self.bus = OB.default_bus()
        self._q_highwater = 0

    # -- helpers --------------------------------------------------------
    def wire_size(self, pkt: Packet) -> int:
        """On-wire bytes including fragmentation overhead."""
        if self.mtu is None or pkt.size <= self.mtu:
            return pkt.size
        nfrag = -(-pkt.size // self.mtu)  # ceil
        return pkt.size + (nfrag - 1) * FRAG_HEADER

    def fragments(self, pkt: Packet) -> int:
        if self.mtu is None or pkt.size <= self.mtu:
            return 1
        return -(-pkt.size // self.mtu)

    def tx_time(self, pkt: Packet) -> float:
        return self.wire_size(pkt) * 8.0 / self.rate_bps

    # -- observability hooks --------------------------------------------
    def add_tap(self, tap: LinkTap) -> None:
        """Register a packet-event tap (idempotent).

        Equality comparison (not identity): bound methods compare equal
        across accesses, so ``add_tap(obj.cb)`` / ``remove_tap(obj.cb)``
        pair up naturally.
        """
        if tap not in self.taps:
            self.taps.append(tap)

    def remove_tap(self, tap: LinkTap) -> None:
        self.taps = [t for t in self.taps if t != tap]

    def _fire_taps(self, kind: str, pkt: Packet) -> None:
        t = self.sim.now
        for tap in self.taps:
            tap(kind, t, self, pkt)

    # -- data path ------------------------------------------------------
    #
    # The transmitter is *lazy*: instead of an end-of-serialisation event
    # per packet (busy flag set/cleared by a ``_tx_done`` callback), the
    # wire's occupancy is a timestamp.  A packet arriving at an idle link
    # costs exactly ONE simulator event (its delivery at the far end);
    # only packets that actually queue pay for a drain event.  At sweep
    # scale this halves the event count on every uncongested hop.
    def send(self, pkt: Packet) -> bool:
        """Hand a packet to this link's egress; False if the queue drops it."""
        sim = self.sim
        if sim.now >= self._busy_until and not self.queue:
            # Idle wire: serialisation starts immediately.
            if self.taps or self.bus.detail:
                # Instrumented: emit the enqueue, then share _transmit
                # with the drain path.  Same RNG draw sites either way.
                if self.taps:
                    self._fire_taps(ENQUEUE, pkt)
                if self.bus.detail:
                    self.bus.emit(
                        OB.LINK_ENQ,
                        sim.now,
                        self.name,
                        uid=pkt.uid,
                        flow=pkt.flow,
                        seq=getattr(pkt.payload, "seq", None),
                        qlen=0,
                    )
                self._transmit(pkt)
                return True
            # Untraced fast path — the hottest lines in the simulator;
            # _transmit is inlined to drop a frame per packet-hop.
            now = sim.now
            size = pkt.size
            mtu = self.mtu
            if mtu is None or size <= mtu:
                nfrag = 1
                wire = size
            else:
                nfrag = -(-size // mtu)
                wire = size + (nfrag - 1) * FRAG_HEADER
            tx = wire * 8.0 / self.rate_bps
            if self.jitter:
                tx *= 1.0 + self.jitter * (sim.rng.random() - 0.5)
            self._busy_until = now + tx
            self.bytes_sent += wire
            self.pkts_sent += 1
            if self.loss_rate > 0.0 and sim.rng.random() >= (
                (1.0 - self.loss_rate) ** nfrag
            ):
                self.pkts_lost += 1
                if self.bus.enabled:
                    self.bus.emit(
                        OB.LINK_DROP,
                        now,
                        self.name,
                        reason="loss",
                        size=size,
                        flow=pkt.flow,
                        uid=pkt.uid,
                        seq=getattr(pkt.payload, "seq", None),
                    )
            else:
                pkt.hops += 1
                sim.post(tx + self.delay, self.dst.receive, pkt)
            return True
        ok = self.queue.push(pkt)
        if self.taps:
            self._fire_taps(ENQUEUE if ok else DROP, pkt)
        bus = self.bus
        if bus.enabled:
            if not ok:
                bus.emit(
                    OB.LINK_DROP,
                    sim.now,
                    self.name,
                    reason="queue",
                    size=pkt.size,
                    flow=pkt.flow,
                    qlen=len(self.queue),
                    uid=pkt.uid,
                    seq=getattr(pkt.payload, "seq", None),
                )
            else:
                qlen = len(self.queue)
                if qlen > self._q_highwater:
                    self._q_highwater = qlen
                    bus.emit(
                        OB.QUEUE_HIGHWATER,
                        sim.now,
                        self.name,
                        pkts=qlen,
                        bytes=self.queue.bytes,
                    )
                if bus.detail:
                    bus.emit(
                        OB.LINK_ENQ,
                        sim.now,
                        self.name,
                        uid=pkt.uid,
                        flow=pkt.flow,
                        seq=getattr(pkt.payload, "seq", None),
                        qlen=qlen,
                    )
        if ok and not self._drain_pending:
            self._drain_pending = True
            sim.post_at(self._busy_until, self._drain)
        return ok

    def _transmit(self, pkt: Packet) -> None:
        """Start serialising ``pkt`` now (the caller guarantees an idle wire).

        Hot path: wire_size/tx_time are inlined (one call per packet per
        link adds up to minutes over a sweep).  The random-loss draw
        happens at serialisation start so traced and untraced runs
        consume the RNG stream identically.
        """
        sim = self.sim
        now = sim.now
        size = pkt.size
        mtu = self.mtu
        if mtu is None or size <= mtu:
            nfrag = 1
            wire = size
        else:
            nfrag = -(-size // mtu)
            wire = size + (nfrag - 1) * FRAG_HEADER
        tx = wire * 8.0 / self.rate_bps
        if self.jitter:
            tx *= 1.0 + self.jitter * (sim.rng.random() - 0.5)
        self._busy_until = now + tx
        self.bytes_sent += wire
        self.pkts_sent += 1
        if self.taps:
            self._fire_taps(DEQUEUE, pkt)
        bus = self.bus
        if bus.detail:
            bus.emit(
                OB.LINK_DEQ,
                now,
                self.name,
                uid=pkt.uid,
                flow=pkt.flow,
                seq=getattr(pkt.payload, "seq", None),
            )
        # Random (non-congestion) loss; any lost fragment loses the packet.
        if self.loss_rate > 0.0 and sim.rng.random() >= (
            (1.0 - self.loss_rate) ** nfrag
        ):
            self.pkts_lost += 1
            if bus.enabled:
                bus.emit(
                    OB.LINK_DROP,
                    now,
                    self.name,
                    reason="loss",
                    size=size,
                    flow=pkt.flow,
                    uid=pkt.uid,
                    seq=getattr(pkt.payload, "seq", None),
                )
        else:
            pkt.hops += 1
            sim.post(tx + self.delay, self.dst.receive, pkt)

    def _drain(self) -> None:
        """Serialise the next queued packet (fires at ``_busy_until``)."""
        self._drain_pending = False
        pkt = self.queue.pop()
        if pkt is None:
            return
        self._transmit(pkt)
        if self.queue:
            self._drain_pending = True
            self.sim.post_at(self._busy_until, self._drain)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.rate_bps/1e6:.0f}Mb/s {self.delay*1e3:.2f}ms>"
