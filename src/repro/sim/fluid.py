"""The fluid-approximation tier of the hybrid simulator.

When every flow on a network is in steady bulk transfer, packet-level
simulation spends millions of events re-deriving what the UDT rate law
already states in closed form: each flow's rate follows the per-SYN
difference equation of §3.4 and nothing else happens until the aggregate
reaches link capacity.  :class:`FluidController` exploits that — it
detects the steady state, drains the pipe to a *quiescent* point (every
packet acknowledged, every loss repaired, every timer idle), then
advances virtual time analytically: per-SYN rate updates via
``cc.fluid_tick()``, delivered bytes integrated in closed form and
credited to the :class:`~repro.sim.monitor.FlowMonitor`, and a single
engine event at the span's end.  The packet engine resumes at the next
CC-relevant boundary:

* **capacity** — a link's aggregate fluid rate reached its service rate
  (the queue would start filling; queue growth and loss are deliberately
  packet-level),
* **boundary** — a registered source (e.g. an ON/OFF UDP blast) is about
  to change state,
* **horizon** — the ``run(until=...)`` limit,
* **max-span** — the configurable span cap.

Entry is conservative: any registered flow that is not fluid-eligible
(slow start, finite transfer, app-driven, TCP) blocks the whole tier,
and a *quiet check* verifies the event heap holds nothing but the
registered sources' own events before a span starts — any in-flight
packet or straggler timer aborts the attempt.  Sequence numbers do NOT
advance across a span; only monitor byte counters and CC rate state do
(see docs/SIMULATION.md for the full fidelity contract).

The controller is deterministic: no RNG, registration-order iteration,
and all its timer constants sit off the decimal grid so its events never
tie with protocol timers (the determinism sanitizer perturbs same-time
ordering).
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Tuple

from repro.obs import bus as OB

#: Environment variable selecting the simulation fidelity tier.
FIDELITY_ENV = "REPRO_FIDELITY"

#: Recognised fidelity tiers: pure packet-level, or packet + fluid spans.
FIDELITIES = ("packet", "hybrid")


def ambient_fidelity() -> str:
    """The fidelity tier selected by ``REPRO_FIDELITY`` (default packet)."""
    fid = os.environ.get(FIDELITY_ENV, "packet")
    if fid not in FIDELITIES:
        raise ValueError(
            f"{FIDELITY_ENV} must be one of {FIDELITIES}, got {fid!r}"
        )
    return fid


class FluidController:
    """Per-network driver of the fluid tier (one per hybrid Network).

    Flow adapters (duck-typed; see ``_UdtFluidAdapter`` in
    :mod:`repro.udt.sim_adapter`) provide::

        eligible() -> bool      # steady bulk transfer, fluid-capable CC
        quiesced() -> bool      # nothing unacked, loss lists empty
        hold(flag)              # gate NEW data (retransmissions still flow)
        freeze() -> state       # cancel periodic timers, return restore info
        resume(state)           # re-arm timers / re-seed CC after a span
        rate_pps() -> float     # current analytic sending rate
        tick() -> float         # advance one SYN interval, return new rate
        links() -> [Link]       # data-direction path
        drain_delay() -> float  # time for in-flight control to settle
        credit(t0, t1, bytes)   # book analytically delivered bytes
        wire_bytes, syn         # per-packet wire size, SYN interval

    Known sources (ON/OFF generators) provide ``blocking()``,
    ``next_boundary()`` and ``pending_events()``; blockers are plain
    callables returning True while fluid entry must be vetoed.
    """

    # All intervals sit off the decimal float grid so controller events
    # never tie with protocol timers (SYN multiples, pacing periods).
    PROBE_INTERVAL = 0.0500000137
    POLL_INTERVAL = 0.0100000071
    BACKOFF = 0.2500000119
    QUIESCE_TIMEOUT = 4.0000000113  # per attempt, from hold to span entry
    #: Margin a span keeps clear of a source boundary so the resume event
    #: never ties with the source's own wake-up.
    BOUNDARY_MARGIN = 1.0000000211e-4
    #: Do not start an attempt with less than this much horizon left.
    MIN_HORIZON = 2.0
    #: A span must cover at least this many SYN ticks to be worth the
    #: quiesce/drain detour it costs.
    MIN_TICKS = 20
    #: Fraction of link capacity at which a span exits (queue onset).
    THETA = 1.0
    #: Ticks per monitor credit chunk (10 ticks of the 0.01 s SYN = one
    #: 0.1 s monitor bin).
    CHUNK_TICKS = 10
    #: Hard cap on analytic span length, in seconds.
    MAX_SPAN = 600.0
    #: Length of a *saturated* span (flows window-limited at capacity;
    #: rates credited as max-min shares, CC rate parameter held).  Spans
    #: are finite so flow joins and source boundaries are never starved
    #: of packet-level attention for long.
    SAT_SPAN = 4.0000000139
    #: Per-flow offset when resuming after a span/abort.  Re-arming every
    #: sender at the same instant would make their first post-span sends
    #: tie, and same-time ordering of causally unrelated events is
    #: exactly what the determinism sanitizer perturbs.
    RESUME_STAGGER = 1.0000000187e-6

    def __init__(self, net: object):
        self.net = net
        self.sim = net.sim  # type: ignore[attr-defined]
        self.bus = OB.default_bus()
        self.flows: List[object] = []
        self.sources: List[object] = []
        self.blockers: List[Callable[[], bool]] = []
        self._event = None  # the single outstanding controller event
        self._horizon: Optional[float] = None
        self._deadline = 0.0
        self._entry_flows: List[object] = []
        self._frozen: List[Tuple[object, object]] = []
        # -- statistics (read by tests and the run summary) --------------
        self.spans = 0
        self.aborts = 0
        self.ticks = 0
        self.fluid_time = 0.0

    # -- registration ----------------------------------------------------
    def register_flow(self, adapter: object) -> None:
        self.flows.append(adapter)

    def register_source(self, source: object) -> None:
        self.sources.append(source)

    def register_blocker(self, active: Callable[[], bool]) -> None:
        self.blockers.append(active)

    # -- run hook --------------------------------------------------------
    def on_run(self, until: Optional[float]) -> None:
        """Called by ``Network.run`` before the engine runs.

        Records the horizon and arms the first probe.  Idempotent across
        back-to-back run segments: an already-armed controller only
        updates its horizon.
        """
        self._horizon = until
        if self._event is None and self.flows:
            self._schedule(self.sim.now + self.PROBE_INTERVAL, self._probe)

    # -- state machine ---------------------------------------------------
    def _schedule(self, t: float, fn: Callable[[], None]) -> None:
        if t < self.sim.now:
            t = self.sim.now
        self._event = self.sim.schedule_at(t, fn)

    def _reprobe(self, delay: float) -> None:
        self._schedule(self.sim.now + delay, self._probe)

    def _probe(self) -> None:
        self._event = None
        now = self.sim.now
        if self._horizon is None or self._horizon - now < self.MIN_HORIZON:
            return  # run is ending; stop probing (nothing re-armed)
        if not self._may_enter():
            self._reprobe(self.PROBE_INTERVAL)
            return
        # Quiesce: gate new data on every flow; recovery traffic still
        # flows, so loss lists drain and the pipe empties.
        self._entry_flows = list(self.flows)
        for f in self._entry_flows:
            f.hold(True)  # type: ignore[attr-defined]
        self._deadline = now + self.QUIESCE_TIMEOUT
        self._schedule(now + self.POLL_INTERVAL, self._poll)

    def _may_enter(self) -> bool:
        """Every flow steady and fluid-capable, no blockers, headroom left."""
        for active in self.blockers:
            if active():
                return False
        for s in self.sources:
            if s.blocking():  # type: ignore[attr-defined]
                return False
        if not self.flows:
            return False
        for f in self.flows:
            if not f.eligible():  # type: ignore[attr-defined]
                return False
        return True

    def _poll(self) -> None:
        self._event = None
        now = self.sim.now
        if now > self._deadline:
            self._abort()
            return
        if not all(f.quiesced() for f in self._entry_flows):  # type: ignore[attr-defined]
            self._schedule(now + self.POLL_INTERVAL, self._poll)
            return
        # Freeze periodic timers, then wait for in-flight control packets
        # (the tail of the ACK/ACK2 conversation) to settle before the
        # quiet check.
        self._frozen = [
            (f, f.freeze()) for f in self._entry_flows  # type: ignore[attr-defined]
        ]
        drain = max(
            f.drain_delay() for f in self._entry_flows  # type: ignore[attr-defined]
        )
        self._schedule(now + drain + self.POLL_INTERVAL, self._quiet_check)

    def _quiet_check(self) -> None:
        self._event = None
        now = self.sim.now
        expected = sum(
            s.pending_events() for s in self.sources  # type: ignore[attr-defined]
        )
        still = all(
            f.quiesced() for f in self._entry_flows  # type: ignore[attr-defined]
        )
        if not still or self.sim.pending() != expected:
            # A straggler (in-flight NAK, un-fired pacing post) surfaced.
            if now > self._deadline:
                self._abort()
            else:
                self._schedule(now + self.POLL_INTERVAL, self._quiet_check)
            return
        self._enter_span(now)

    def _release(self) -> None:
        """Resume frozen flows and release every hold, micro-staggered.

        The first flow wakes synchronously; each further one a
        :data:`RESUME_STAGGER` later (deterministic registration order),
        so no two senders re-arm their pacing at the same instant.
        """
        now = self.sim.now
        frozen = self._frozen
        self._frozen = []
        held = self._entry_flows
        self._entry_flows = []
        frozen_ids = {id(f) for f, _ in frozen}
        for f in held:
            if id(f) not in frozen_ids:
                f.hold(False)  # type: ignore[attr-defined]
        for i, (f, state) in enumerate(frozen):

            def _wake(f=f, state=state):
                f.resume(state)  # type: ignore[attr-defined]
                f.hold(False)  # type: ignore[attr-defined]

            if i == 0:
                _wake()
            else:
                self.sim.post_at(now + i * self.RESUME_STAGGER, _wake)

    def _abort(self) -> None:
        """Resume everything and back off; the attempt found no quiet point."""
        self._release()
        self.aborts += 1
        self._reprobe(self.BACKOFF)

    # -- the analytic span ----------------------------------------------
    def _span_bound(self, t0: float) -> Tuple[float, str]:
        """Latest admissible span end and the reason that bounds it."""
        t_end, reason = t0 + self.MAX_SPAN, "max-span"
        if self._horizon is not None and self._horizon < t_end:
            t_end, reason = self._horizon, "horizon"
        for s in self.sources:
            b = s.next_boundary()  # type: ignore[attr-defined]
            if b is not None and b - self.BOUNDARY_MARGIN < t_end:
                t_end, reason = b - self.BOUNDARY_MARGIN, "boundary"
        return t_end, reason

    @staticmethod
    def _maxmin_shares(
        demands: List[float], members: List[List[int]], capacity: List[float]
    ) -> List[float]:
        """Demand-capped max-min fair allocation over shared links.

        Progressive filling: raise every unfixed flow's share in lockstep
        until a link saturates (its members are fixed at the bottleneck
        fair share) or a flow reaches its demand.  ``demands`` and the
        returned shares are in the same unit as ``capacity`` (bits/s of
        wire occupancy).
        """
        n = len(demands)
        share = [0.0] * n
        active = [True] * n
        cap = list(capacity)
        for _ in range(n + len(cap) + 1):
            counts = [sum(1 for i in mem if active[i]) for mem in members]
            inc = None
            for j, c in enumerate(counts):
                if c:
                    v = cap[j] / c
                    if inc is None or v < inc:
                        inc = v
            if inc is None:
                break
            for i in range(n):
                if active[i]:
                    v = demands[i] - share[i]
                    if v < inc:
                        inc = v
            if inc > 0.0:
                for i in range(n):
                    if active[i]:
                        share[i] += inc
                for j, c in enumerate(counts):
                    cap[j] -= inc * c
            # Fix demand-met flows and every flow on an exhausted link.
            for i in range(n):
                if active[i] and demands[i] - share[i] <= 1e-9 * demands[i]:
                    active[i] = False
            for j, mem in enumerate(members):
                if counts[j] and cap[j] <= 1e-9 * capacity[j]:
                    for i in mem:
                        active[i] = False
            if not any(active):
                break
        return share

    def _enter_span(self, t0: float) -> None:
        flows = self._entry_flows
        syn = min(f.syn for f in flows)  # type: ignore[attr-defined]
        t_max, bound_reason = self._span_bound(t0)
        if t_max - t0 < self.MIN_TICKS * syn:
            self._abort()
            return
        rates = [f.rate_pps() for f in flows]  # type: ignore[attr-defined]
        # Static path/link tables for the analytic phase.
        wire_bits = [8.0 * f.wire_bytes for f in flows]  # type: ignore[attr-defined]
        links: List[object] = []
        members: List[List[int]] = []  # per link: indices of crossing flows
        index: dict = {}
        for i, f in enumerate(flows):
            for link in f.links():  # type: ignore[attr-defined]
                j = index.get(link)
                if j is None:
                    j = index[link] = len(links)
                    links.append(link)
                    members.append([])
                members[j].append(i)
        capacity = [self.THETA * link.rate_bps for link in links]  # type: ignore[attr-defined]

        def saturated(r: List[float]) -> bool:
            for j, mem in enumerate(members):
                load = 0.0
                for i in mem:
                    load += r[i] * wire_bits[i]
                if load >= capacity[j]:
                    return True
            return False

        # -- phase 1: ramp.  While the aggregate is under capacity the
        # rates evolve by the per-SYN difference equation (§3.4) and
        # delivery equals the sending rate.  Capacity is tested BEFORE
        # crediting a tick, so the ramp ends exactly at the onset of
        # saturation with queues still empty.
        nflows = len(flows)
        n_max = int((t_max - t0) / syn)
        accum = [0.0] * nflows  # payload bytes owed since last flush
        chunk_start = t0
        ticks = 0
        reason = bound_reason
        at_capacity = saturated(rates)
        while not at_capacity and ticks < n_max:
            new_rates = [f.tick() for f in flows]  # type: ignore[attr-defined]
            if saturated(new_rates):
                at_capacity = True
                break
            rates = new_rates
            for i, f in enumerate(flows):
                accum[i] += rates[i] * syn * f.payload_bytes  # type: ignore[attr-defined]
            ticks += 1
            if ticks % self.CHUNK_TICKS == 0:
                t_chunk = t0 + ticks * syn
                for i, f in enumerate(flows):
                    f.credit(chunk_start, t_chunk, accum[i])  # type: ignore[attr-defined]
                    accum[i] = 0.0
                chunk_start = t_chunk
        t_ramp_end = t0 + ticks * syn
        for i, f in enumerate(flows):
            if accum[i] > 0.0:
                f.credit(chunk_start, t_ramp_end, accum[i])  # type: ignore[attr-defined]
                accum[i] = 0.0

        # -- phase 2: saturated.  Flows are window-limited at capacity
        # (the CC rate parameter legitimately floats above the link rate
        # while flow control binds, §3.2): delivery is the max-min fair
        # share of each link, integrated in closed form with the rate
        # parameter held.  Finite length so boundaries stay fresh.
        span_end = t_ramp_end
        if at_capacity:
            # Long-RTT flows pay seconds of drain per quiesce; stretch the
            # span so the packet-level detour stays a small duty fraction.
            drain = max(
                f.drain_delay() for f in flows  # type: ignore[attr-defined]
            )
            sat_len = max(self.SAT_SPAN, 8.0 * drain)
            sat_end = min(t_max, t_ramp_end + sat_len)
            if sat_end - t_ramp_end > self.MIN_TICKS * syn:
                demands = [rates[i] * wire_bits[i] for i in range(nflows)]
                shares = self._maxmin_shares(demands, members, capacity)
                dt = sat_end - t_ramp_end
                for i, f in enumerate(flows):
                    payload_rate = (
                        shares[i]
                        / wire_bits[i]
                        * f.payload_bytes  # type: ignore[attr-defined]
                    )
                    f.credit(  # type: ignore[attr-defined]
                        t_ramp_end, sat_end, payload_rate * dt
                    )
                span_end = sat_end
                reason = "saturated" if sat_end < t_max else bound_reason
            elif ticks < self.MIN_TICKS:
                # Immediately saturated and no room for a useful span.
                self._abort()
                return
        elif ticks < self.MIN_TICKS:
            self._abort()
            return

        bus = self.bus
        if bus.enabled:
            bus.emit(OB.FLUID_ENTER, t0, "fluid", flows=nflows)
        self._span_ticks = ticks
        self._span_reason = reason
        self._span_start = t0
        self._schedule(span_end, self._on_span_end)

    def _on_span_end(self) -> None:
        self._event = None
        now = self.sim.now
        self._release()
        span = now - self._span_start
        self.spans += 1
        self.ticks += self._span_ticks
        self.fluid_time += span
        bus = self.bus
        if bus.enabled:
            bus.emit(
                OB.FLUID_EXIT,
                now,
                "fluid",
                reason=self._span_reason,
                span=span,
                ticks=self._span_ticks,
            )
        self._reprobe(self.PROBE_INTERVAL)
