"""Nodes: hosts (datagram endpoints) and routers (store-and-forward).

Forwarding is by destination node id through a static routing table
(``routes[dst_node] -> Link``) installed by :class:`repro.sim.topology.Network`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet


class Node:
    def __init__(self, sim: Simulator, node_id: int, name: str = ""):
        self.sim = sim
        self.id = node_id
        self.name = name or f"n{node_id}"
        self.routes: Dict[int, Link] = {}
        self.pkts_forwarded = 0
        self.pkts_delivered = 0
        self.pkts_unroutable = 0

    def receive(self, pkt: Packet) -> None:
        if pkt.dst_node == self.id:
            self.pkts_delivered += 1
            self.deliver(pkt)
        else:
            self.forward(pkt)

    def forward(self, pkt: Packet) -> None:
        link = self.routes.get(pkt.dst_node)
        if link is None:
            self.pkts_unroutable += 1
            return
        self.pkts_forwarded += 1
        link.send(pkt)

    def deliver(self, pkt: Packet) -> None:
        """Hand a packet addressed to this node to a local endpoint."""
        raise NotImplementedError

    def send(self, pkt: Packet) -> bool:
        """Originate a packet from this node (loopback short-circuits)."""
        if pkt.dst_node == self.id:
            # Local delivery still takes one event so callers never re-enter.
            self.sim.schedule(0.0, self.receive, pkt)
            return True
        link = self.routes.get(pkt.dst_node)
        if link is None:
            self.pkts_unroutable += 1
            return False
        return link.send(pkt)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


class Router(Node):
    """Pure store-and-forward node; delivering to a router is an error."""

    def deliver(self, pkt: Packet) -> None:
        raise RuntimeError(f"packet addressed to router {self.name}: {pkt!r}")


class Host(Node):
    """End host: demultiplexes delivered packets to bound ports."""

    def __init__(self, sim: Simulator, node_id: int, name: str = ""):
        super().__init__(sim, node_id, name)
        self._ports: Dict[int, Callable[[Packet], None]] = {}

    def bind(self, port: int, handler: Callable[[Packet], None]) -> None:
        if port in self._ports:
            raise ValueError(f"port {port} already bound on {self.name}")
        self._ports[port] = handler

    def unbind(self, port: int) -> None:
        self._ports.pop(port, None)

    def next_free_port(self, start: int = 49152) -> int:
        port = start
        while port in self._ports:
            port += 1
        return port

    def deliver(self, pkt: Packet) -> None:
        handler = self._ports.get(pkt.dst_port)
        if handler is not None:
            handler(pkt)
        # Unbound port: silently dropped, like a real host with no listener.
