"""Nodes: hosts (datagram endpoints) and routers (store-and-forward).

Forwarding is by destination node id through a static routing table
(``routes[dst_node] -> Link``) installed by :class:`repro.sim.topology.Network`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet


class Node:
    __slots__ = (
        "sim",
        "id",
        "name",
        "routes",
        "pkts_forwarded",
        "pkts_delivered",
        "pkts_unroutable",
    )

    def __init__(self, sim: Simulator, node_id: int, name: str = ""):
        self.sim = sim
        self.id = node_id
        self.name = name or f"n{node_id}"
        self.routes: Dict[int, Link] = {}
        self.pkts_forwarded = 0
        self.pkts_delivered = 0
        self.pkts_unroutable = 0

    # receive() runs once per packet per hop — the single hottest call in
    # any experiment — so Host/Router override it with flattened bodies
    # (no receive->deliver/forward call chain, no dst_node property).
    def receive(self, pkt: Packet) -> None:
        if pkt.dst[0] == self.id:
            self.pkts_delivered += 1
            self.deliver(pkt)
        else:
            self.forward(pkt)

    def forward(self, pkt: Packet) -> None:
        link = self.routes.get(pkt.dst[0])
        if link is None:
            self.pkts_unroutable += 1
            return
        self.pkts_forwarded += 1
        link.send(pkt)

    def deliver(self, pkt: Packet) -> None:
        """Hand a packet addressed to this node to a local endpoint."""
        raise NotImplementedError

    def send(self, pkt: Packet) -> bool:
        """Originate a packet from this node (loopback short-circuits)."""
        if pkt.dst[0] == self.id:
            # Local delivery still takes one event so callers never re-enter.
            self.sim.post(0.0, self.receive, pkt)
            return True
        link = self.routes.get(pkt.dst[0])
        if link is None:
            self.pkts_unroutable += 1
            return False
        return link.send(pkt)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


class Router(Node):
    """Pure store-and-forward node; delivering to a router is an error."""

    __slots__ = ()

    def receive(self, pkt: Packet) -> None:
        dst_node = pkt.dst[0]
        if dst_node == self.id:
            self.pkts_delivered += 1
            self.deliver(pkt)
            return
        link = self.routes.get(dst_node)
        if link is None:
            self.pkts_unroutable += 1
            return
        self.pkts_forwarded += 1
        link.send(pkt)

    def deliver(self, pkt: Packet) -> None:
        raise RuntimeError(f"packet addressed to router {self.name}: {pkt!r}")


class Host(Node):
    """End host: demultiplexes delivered packets to bound ports."""

    __slots__ = ("_ports",)

    def __init__(self, sim: Simulator, node_id: int, name: str = ""):
        super().__init__(sim, node_id, name)
        self._ports: Dict[int, Callable[[Packet], None]] = {}

    def bind(self, port: int, handler: Callable[[Packet], None]) -> None:
        if port in self._ports:
            raise ValueError(f"port {port} already bound on {self.name}")
        self._ports[port] = handler

    def unbind(self, port: int) -> None:
        self._ports.pop(port, None)

    def next_free_port(self, start: int = 49152) -> int:
        port = start
        while port in self._ports:
            port += 1
        return port

    def receive(self, pkt: Packet) -> None:
        dst = pkt.dst
        if dst[0] == self.id:
            self.pkts_delivered += 1
            handler = self._ports.get(dst[1])
            if handler is not None:
                handler(pkt)
            else:
                # No bound port: defer to deliver() so subclasses that
                # override it (test sinks, raw consumers) still see the
                # packet; the base implementation drops it silently.
                self.deliver(pkt)
            return
        link = self.routes.get(dst[0])
        if link is None:
            self.pkts_unroutable += 1
            return
        self.pkts_forwarded += 1
        link.send(pkt)

    def deliver(self, pkt: Packet) -> None:
        handler = self._ports.get(pkt.dst[1])
        if handler is not None:
            handler(pkt)
        # Unbound port: silently dropped, like a real host with no listener.
