"""Egress queue disciplines.

The paper's simulations all use DropTail with the queue sized to
``max(100, BDP)`` packets; RED is provided for ablations (queueing impacts
on TCP vs UDT, §3.7 footnote).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.sim.packet import Packet


class DropTailQueue:
    """FIFO queue bounded in packets (and optionally bytes)."""

    def __init__(self, capacity_pkts: int, capacity_bytes: Optional[int] = None):
        if capacity_pkts < 1:
            raise ValueError("queue needs room for at least one packet")
        self.capacity_pkts = capacity_pkts
        self.capacity_bytes = capacity_bytes
        self._q: deque[Packet] = deque()
        self.bytes = 0
        self.drops = 0
        self.enqueued = 0
        # occupancy high-water marks (observability; two compares/packet)
        self.peak_pkts = 0
        self.peak_bytes = 0

    def push(self, pkt: Packet) -> bool:
        """Enqueue; returns False (and counts a drop) when full."""
        if len(self._q) >= self.capacity_pkts or (
            self.capacity_bytes is not None
            and self.bytes + pkt.size > self.capacity_bytes
        ):
            self.drops += 1
            return False
        self._q.append(pkt)
        self.bytes += pkt.size
        self.enqueued += 1
        n = len(self._q)
        if n > self.peak_pkts:
            self.peak_pkts = n
        if self.bytes > self.peak_bytes:
            self.peak_bytes = self.bytes
        return True

    def pop(self) -> Optional[Packet]:
        if not self._q:
            return None
        pkt = self._q.popleft()
        self.bytes -= pkt.size
        return pkt

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)


class REDQueue(DropTailQueue):
    """Random Early Detection (gentle RED) over the DropTail base.

    Classic Floyd/Jacobson RED: an EWMA of the instantaneous queue length is
    compared against ``[min_th, max_th]``; in between, packets are dropped
    with probability growing to ``max_p`` (and to 1 between ``max_th`` and
    ``2*max_th`` in gentle mode).
    """

    def __init__(
        self,
        capacity_pkts: int,
        min_th: Optional[float] = None,
        max_th: Optional[float] = None,
        max_p: float = 0.1,
        weight: float = 0.002,
        rng=None,
    ):
        super().__init__(capacity_pkts)
        self.min_th = min_th if min_th is not None else capacity_pkts / 4
        self.max_th = max_th if max_th is not None else capacity_pkts / 2
        if not 0 < self.min_th < self.max_th:
            raise ValueError("need 0 < min_th < max_th")
        self.max_p = max_p
        self.weight = weight
        self.avg = 0.0
        self._count = 0  # packets since last early drop
        if rng is None:
            import random

            rng = random.Random(0)
        self.rng = rng

    def push(self, pkt: Packet) -> bool:
        self.avg += self.weight * (len(self._q) - self.avg)
        if self.avg >= self.min_th:
            if self.avg >= 2 * self.max_th:
                p = 1.0
            elif self.avg >= self.max_th:
                # gentle region: max_p .. 1
                p = self.max_p + (self.avg - self.max_th) / self.max_th * (
                    1.0 - self.max_p
                )
            else:
                p = (
                    (self.avg - self.min_th)
                    / (self.max_th - self.min_th)
                    * self.max_p
                )
                # spread drops out: p/(1 - count*p)
                denom = 1.0 - self._count * p
                p = p / denom if denom > 0 else 1.0
            if self.rng.random() < p:
                self.drops += 1
                self._count = 0
                return False
            self._count += 1
        else:
            self._count = 0
        return super().push(pkt)
