"""NS-2-style event tracing.

Attach a :class:`PacketTracer` to links to capture enqueue/dequeue/drop
events, or a :class:`QueueSampler` to sample queue occupancy over time.
Used by tests to validate micro-behaviour (probe-pair spacing, drop
clustering) and by users to debug protocol dynamics; traces write out in
an ns-2-like ``<event> <time> <link> <size> <flow>`` text format.

Tracers ride on the links' stable tap hooks
(:meth:`repro.sim.link.Link.add_tap`) rather than monkey-patching the
data path, so they can be detached and re-attached freely —
``with PacketTracer() as tr: tr.attach(link); ...`` restores the link on
exit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, TextIO

from repro.sim.engine import Event, Simulator
from repro.sim.link import DEQUEUE, DROP, ENQUEUE, Link
from repro.sim.packet import Packet

#: Trace event kinds (ns-2 letters: + enqueue, - dequeue, d drop, r receive).
#: ENQUEUE/DEQUEUE/DROP are shared with :mod:`repro.sim.link`'s tap API.
RECEIVE = "r"

__all__ = [
    "ENQUEUE",
    "DEQUEUE",
    "DROP",
    "RECEIVE",
    "TraceEvent",
    "PacketTracer",
    "QueueSampler",
]


@dataclass
class TraceEvent:
    kind: str
    time: float
    link: str
    size: int
    flow: Optional[object]
    uid: int

    def format(self) -> str:
        return (
            f"{self.kind} {self.time:.9f} {self.link} {self.size} "
            f"{self.flow if self.flow is not None else '-'} {self.uid}"
        )


class PacketTracer:
    """Records every packet event on the links it is attached to.

    Usable as a context manager: on exit every link is detached (its
    data path returns to the untraced fast path).
    """

    def __init__(self, limit: int = 1_000_000):
        self.events: List[TraceEvent] = []
        self.limit = limit
        self._links: List[Link] = []

    # -- attachment --------------------------------------------------------
    def attach(self, link: Link) -> None:
        """Instrument one link (idempotent per link)."""
        if any(l is link for l in self._links):
            return
        self._links.append(link)
        link.add_tap(self._on_tap)

    def detach(self, link: Optional[Link] = None) -> None:
        """Restore one link (or, with no argument, all attached links)."""
        targets = [link] if link is not None else list(self._links)
        for l in targets:
            l.remove_tap(self._on_tap)
            self._links = [x for x in self._links if x is not l]

    def __enter__(self) -> "PacketTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    @property
    def attached_links(self) -> List[Link]:
        return list(self._links)

    def _on_tap(self, kind: str, time: float, link: Link, pkt: Packet) -> None:
        if len(self.events) < self.limit:
            self.events.append(
                TraceEvent(kind, time, link.name, pkt.size, pkt.flow, pkt.uid)
            )

    # -- queries -----------------------------------------------------------
    def drops(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == DROP]

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def dequeue_times(self, uid_filter: Optional[Callable[[int], bool]] = None):
        return [
            e.time
            for e in self.events
            if e.kind == DEQUEUE and (uid_filter is None or uid_filter(e.uid))
        ]

    def write(self, out: TextIO) -> int:
        for e in self.events:
            out.write(e.format() + "\n")
        return len(self.events)


class QueueSampler:
    """Samples a link's queue occupancy at a fixed interval."""

    def __init__(self, sim: Simulator, link: Link, interval: float = 0.01):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.link = link
        self.interval = interval
        self.samples: List[tuple] = []  # (time, packets, bytes)
        self._event: Optional[Event] = None
        self._tick()

    def _tick(self) -> None:
        self.samples.append((self.sim.now, len(self.link.queue), self.link.queue.bytes))
        self._event = self.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        """Cancel the sampling tick (samples taken so far are kept)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def max_occupancy(self) -> int:
        return max((p for _, p, _ in self.samples), default=0)

    def mean_occupancy(self) -> float:
        if not self.samples:
            return 0.0
        return sum(p for _, p, _ in self.samples) / len(self.samples)
