"""NS-2-style event tracing.

Attach a :class:`PacketTracer` to links to capture enqueue/dequeue/drop/
deliver events, or a :class:`QueueSampler` to sample queue occupancy over
time.  Used by tests to validate micro-behaviour (probe-pair spacing,
drop clustering) and by users to debug protocol dynamics; traces write
out in an ns-2-like ``<event> <time> <link> <size> <flow>`` text format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, TextIO

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet

#: Trace event kinds (ns-2 letters: + enqueue, - dequeue, d drop, r receive).
ENQUEUE = "+"
DEQUEUE = "-"
DROP = "d"
RECEIVE = "r"


@dataclass
class TraceEvent:
    kind: str
    time: float
    link: str
    size: int
    flow: Optional[object]
    uid: int

    def format(self) -> str:
        return (
            f"{self.kind} {self.time:.9f} {self.link} {self.size} "
            f"{self.flow if self.flow is not None else '-'} {self.uid}"
        )


class PacketTracer:
    """Wraps a link's data path to record every packet event."""

    def __init__(self, limit: int = 1_000_000):
        self.events: List[TraceEvent] = []
        self.limit = limit
        self._links: List[Link] = []

    def attach(self, link: Link) -> None:
        """Instrument one link (idempotent per link)."""
        if any(l is link for l in self._links):
            return
        self._links.append(link)
        sim = link.sim
        orig_send = link.send
        orig_tx_done = link._tx_done
        orig_push = link.queue.push

        def record(kind: str, pkt: Packet) -> None:
            if len(self.events) < self.limit:
                self.events.append(
                    TraceEvent(kind, sim.now, link.name, pkt.size, pkt.flow, pkt.uid)
                )

        def traced_push(pkt: Packet) -> bool:
            ok = orig_push(pkt)
            record(ENQUEUE if ok else DROP, pkt)
            return ok

        def traced_send(pkt: Packet) -> bool:
            if not link._busy:
                record(ENQUEUE, pkt)  # goes straight to the transmitter
            return orig_send(pkt)

        def traced_tx_done(pkt: Packet) -> None:
            record(DEQUEUE, pkt)
            orig_tx_done(pkt)

        link.queue.push = traced_push
        link.send = traced_send
        link._tx_done = traced_tx_done

    # -- queries -----------------------------------------------------------
    def drops(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == DROP]

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def dequeue_times(self, uid_filter: Optional[Callable[[int], bool]] = None):
        return [
            e.time
            for e in self.events
            if e.kind == DEQUEUE and (uid_filter is None or uid_filter(e.uid))
        ]

    def write(self, out: TextIO) -> int:
        for e in self.events:
            out.write(e.format() + "\n")
        return len(self.events)


class QueueSampler:
    """Samples a link's queue occupancy at a fixed interval."""

    def __init__(self, sim: Simulator, link: Link, interval: float = 0.01):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.link = link
        self.interval = interval
        self.samples: List[tuple] = []  # (time, packets, bytes)
        self._tick()

    def _tick(self) -> None:
        self.samples.append((self.sim.now, len(self.link.queue), self.link.queue.bytes))
        self.sim.schedule(self.interval, self._tick)

    def max_occupancy(self) -> int:
        return max((p for _, p, _ in self.samples), default=0)

    def mean_occupancy(self) -> float:
        if not self.samples:
            return 0.0
        return sum(p for _, p, _ in self.samples) / len(self.samples)
