"""Packet records.

A packet is a lightweight slotted record; the transport-protocol message it
carries lives in ``payload`` (an arbitrary object owned by the protocol
layer, e.g. a :class:`repro.udt.packets.DataPacket`).  ``size`` is the full
on-wire size in bytes including all headers — links serialise by size only
and never look inside the payload.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Tuple

#: IPv4 (20 B) + UDP (8 B) header overhead added by the datagram service.
IP_UDP_HEADER = 28

_packet_ids = itertools.count()

Address = Tuple[int, int]  # (node id, port)


class Packet:
    __slots__ = (
        "uid",
        "size",
        "src",
        "dst",
        "payload",
        "flow",
        "created",
        "hops",
    )

    def __init__(
        self,
        size: int,
        src: Address,
        dst: Address,
        payload: Any = None,
        flow: Optional[int] = None,
        created: float = 0.0,
    ):
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.uid = next(_packet_ids)
        self.size = size
        self.src = src
        self.dst = dst
        self.payload = payload
        self.flow = flow
        self.created = created
        self.hops = 0

    @property
    def dst_node(self) -> int:
        return self.dst[0]

    @property
    def dst_port(self) -> int:
        return self.dst[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.uid} {self.src}->{self.dst} {self.size}B "
            f"flow={self.flow} {self.payload!r}>"
        )
