"""Packet-level discrete-event network simulator.

This subpackage is the substrate playing the role of both NS-2 and the
paper's optical testbeds: an event engine, links with rate/delay/loss,
DropTail and RED queues, hosts and routers with static routing, an
unreliable datagram (UDP) service, and per-flow monitoring.
"""

from repro.sim.engine import Event, Simulator, Timer
from repro.sim.link import Link
from repro.sim.monitor import FlowMonitor
from repro.sim.node import Host, Node, Router
from repro.sim.packet import IP_UDP_HEADER, Packet
from repro.sim.queues import DropTailQueue, REDQueue
from repro.sim.topology import Network

__all__ = [
    "Event",
    "Simulator",
    "Timer",
    "Packet",
    "IP_UDP_HEADER",
    "DropTailQueue",
    "REDQueue",
    "Link",
    "Node",
    "Host",
    "Router",
    "Network",
    "FlowMonitor",
]
