"""Static shortest-path routing.

Routes are computed once over the topology graph (weighted by propagation
delay) and installed as per-node next-hop tables.  The simulator models a
stable provisioned network — the paper's testbeds are static light paths —
so dynamic routing is out of scope.
"""

from __future__ import annotations

from typing import Dict, Tuple

import networkx as nx

from repro.sim.link import Link
from repro.sim.node import Node


def compute_routes(
    nodes: Dict[int, Node], links: Dict[Tuple[int, int], Link]
) -> None:
    """Install next-hop tables on every node (all-pairs Dijkstra by delay)."""
    g = nx.DiGraph()
    g.add_nodes_from(nodes)
    for (a, b), link in links.items():
        g.add_edge(a, b, weight=link.delay + 1e-12, link=link)
    paths = dict(nx.all_pairs_dijkstra_path(g, weight="weight"))
    for src_id, node in nodes.items():
        node.routes.clear()
        reachable = paths.get(src_id, {})
        for dst_id, path in reachable.items():
            if dst_id == src_id or len(path) < 2:
                continue
            node.routes[dst_id] = links[(path[0], path[1])]
