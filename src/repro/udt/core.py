"""The UDT endpoint: full-duplex sender + receiver state machines (§3, §4.8).

``UdtCore`` is sans-IO: it never touches sockets or the simulator
directly.  It is constructed with

* a **scheduler** (``now() / call_at(t, fn) / cancel(handle)``) — bound to
  the discrete-event engine in simulation or a timer thread in the
  loopback runtime, and
* a **transmit function** ``transmit(msg, wire_size)`` that puts one UDP
  datagram on the wire.

Incoming datagrams are fed through :meth:`on_datagram`.

The structure follows §4.8 of the paper: the *sender* half only paces data
packets out under rate control (period from the congestion controller)
and window control (min of the peer's flow window and the congestion
window), always servicing the loss list first; the *receiver* half detects
loss, fires the ACK/NAK/EXP timers, and computes the arrival-speed and
link-capacity estimates that are fed back in every ACK.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Protocol, Tuple

from repro.obs import bus as OB
from repro.udt import packets as P
from repro.udt.buffers import ReceiveBuffer, SendBuffer
from repro.udt.cc import CongestionControl, LossEvent, UdtNativeCC
from repro.udt.history import ArrivalRecorder, ProbeRecorder, RttEstimator
from repro.udt.losslist import ReceiverLossList, SenderLossList
from repro.udt.nakcodec import decode as nak_decode
from repro.udt.nakcodec import encode as nak_encode
from repro.udt.params import UdtConfig
from repro.udt.seqno import seq_cmp, seq_dec, seq_inc, seq_off


class Scheduler(Protocol):
    def now(self) -> float: ...

    def call_at(self, time: float, fn: Callable[[], None]) -> Any: ...

    def cancel(self, handle: Any) -> None: ...


TransmitFn = Callable[[Any, int], None]  # (message, wire size in bytes)
DeliverFn = Callable[[int, Optional[bytes]], None]


@dataclass
class UdtStats:
    """Counters exposed for experiments and the host cost model."""

    data_pkts_sent: int = 0
    data_bytes_sent: int = 0
    retransmitted_pkts: int = 0
    data_pkts_received: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    ack2_sent: int = 0
    naks_sent: int = 0
    naks_received: int = 0
    loss_reported: int = 0
    exp_events: int = 0
    freezes: int = 0
    ctrl_bytes_sent: int = 0
    buffer_drops: int = 0


class UdtCore:
    """One endpoint of a UDT connection."""

    def __init__(
        self,
        config: UdtConfig,
        scheduler: Scheduler,
        transmit: TransmitFn,
        deliver: Optional[DeliverFn] = None,
        cc: Optional[CongestionControl] = None,
        init_seq: int = 0,
        name: str = "udt",
        meter: Optional[Any] = None,
        bus: Optional[OB.EventBus] = None,
    ):
        self.config = config
        self.sched = scheduler
        self._transmit = transmit
        self.name = name
        self.meter = meter  # hostmodel CPU meter; charged when present
        #: telemetry bus; the process default when not given.  Emit sites
        #: are guarded by ``bus.enabled`` so an idle bus costs one branch.
        self.bus = bus if bus is not None else OB.default_bus()
        self.stats = UdtStats()

        self.cc = cc if cc is not None else UdtNativeCC(config)
        self.cc.init(_CcView(self))
        self.cc.bus = self.bus
        self.cc.src = self.name

        # --- connection state ------------------------------------------
        self.connected = False
        self.closed = False
        self._start_time = scheduler.now()
        self._hs_timer: Any = None
        self._is_initiator = False
        self.peer_mss: Optional[int] = None

        # --- sender state -------------------------------------------------
        self.init_seq = init_seq
        self.curr_seq = init_seq  # next NEW sequence number to assign
        self.snd_last_ack = init_seq  # everything before this is acked
        self.max_seq_sent = seq_dec(init_seq)  # largest sent so far
        self.snd_loss = SenderLossList()
        self.snd_buffer = SendBuffer(config.snd_buffer_pkts, config.payload_size)
        self.flow_window = 16.0  # peer-advertised, replaced at handshake
        self.rtt = 0.1
        self.rtt_var = 0.05
        self.recv_rate = 0.0  # EWMA of peer-measured delivery rate (pkts/s)
        self.bandwidth = 0.0  # EWMA of peer link-capacity estimate (pkts/s)
        self._send_event: Any = None
        # Fast-path pacing timer: when the scheduler offers fire-and-forget
        # ``post_at`` (the sim engine does), the per-packet send tick runs
        # without allocating a cancellable Event — ``_send_scheduled``
        # dedupes and ``closed``/``connected`` guards make cancel moot.
        self._post_at = getattr(scheduler, "post_at", None)
        self._send_scheduled = False
        self._freeze_until = 0.0
        self._pair_pending = False
        self._unlimited_source = False
        # Hybrid-tier gate (repro.sim.fluid): while held, NEW data stays
        # queued but loss-list retransmissions continue so recovery can
        # finish and the pipe drain to a quiescent state.
        self._fluid_hold = False
        self._probe_interval = config.probe_interval  # hot-path cache
        # §4.4: the real inter-send interval (EWMA).  On hosts where one
        # send costs more than the nominal period, the controller must
        # correct P' with the achieved rate or rate control is impaired.
        self.achieved_period = 0.0
        self._last_emit_time: Optional[float] = None

        # --- receiver state -----------------------------------------------
        self.rcv_loss = ReceiverLossList()
        self.rcv_buffer = ReceiveBuffer(config.rcv_buffer_pkts, self._on_delivered)
        self._deliver_cb = deliver
        self.lrsn: Optional[int] = None  # largest received sequence number
        self.arrivals = ArrivalRecorder()
        self.probes = ProbeRecorder()
        self.rtt_est = RttEstimator()
        self._ack_no = 0
        self._ack_window: dict[int, Tuple[int, float]] = {}
        self._last_ack_seq_sent: Optional[int] = None
        self._data_since_ack = 0
        self._speed_ewma = 0.0
        self._syn_timer: Any = None
        self._syn_deadline = 0.0  # next SYN-tick fire time (fluid re-arm phase)
        self._exp_timer: Any = None
        self._exp_count = 1
        self._last_arrival = scheduler.now()
        self._rtt_sampled = False
        #: sizes (packets) of each detected loss event — Figure 8's series.
        self.loss_events: list[int] = []
        #: optional tap fired for every accepted (non-duplicate) data
        #: packet — NS-2-style sink arrival sampling for stability plots.
        self.arrival_cb: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Initiate the handshake (client side)."""
        self._is_initiator = True
        self._send_handshake(req_type=1)
        self._hs_timer = self.sched.call_at(
            self.sched.now() + 0.25, self._handshake_retry
        )

    def listen(self) -> None:
        """Passively wait for a handshake (server side)."""

    def _handshake_retry(self) -> None:
        if self.connected or self.closed:
            return
        self._send_handshake(req_type=1)
        self._hs_timer = self.sched.call_at(
            self.sched.now() + 0.25, self._handshake_retry
        )

    def _send_handshake(self, req_type: int) -> None:
        hs = P.Handshake(
            ts=self._ts(),
            init_seq=self.init_seq,
            mss=self.config.mss,
            flow_window=self._advertised_window_cap(),
            req_type=req_type,
        )
        self._xmit(hs)

    def _advertised_window_cap(self) -> int:
        return min(self.config.rcv_buffer_pkts, self.config.max_flow_window)

    def _become_connected(self, hs: P.Handshake) -> None:
        self.connected = True
        self.peer_mss = hs.mss
        self.flow_window = float(hs.flow_window)
        self.cc.max_cwnd = float(hs.flow_window)
        self.rcv_buffer.start(hs.init_seq)
        self.lrsn = seq_dec(hs.init_seq)
        if self._hs_timer is not None:
            self.sched.cancel(self._hs_timer)
            self._hs_timer = None
        now = self.sched.now()
        if self.bus.enabled:
            self.bus.emit(
                OB.CONN_CONNECTED,
                now,
                self.name,
                peer_seq=hs.init_seq,
                flow_window=hs.flow_window,
                initiator=self._is_initiator,
            )
        self._syn_deadline = now + self.config.syn
        self._syn_timer = self.sched.call_at(self._syn_deadline, self._on_syn_timer)
        self._arm_exp_timer()
        self._ensure_send_scheduled()

    def close(self) -> None:
        if self.closed:
            return
        if self.connected:
            self._xmit(P.Shutdown(ts=self._ts()))
        if self.bus.enabled:
            self.bus.emit(
                OB.CONN_CLOSED,
                self.sched.now(),
                self.name,
                data_pkts_sent=self.stats.data_pkts_sent,
                data_pkts_received=self.stats.data_pkts_received,
            )
        self.closed = True
        self.connected = False
        for h in (self._send_event, self._syn_timer, self._exp_timer, self._hs_timer):
            if h is not None:
                self.sched.cancel(h)
        self._send_event = self._syn_timer = self._exp_timer = self._hs_timer = None

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------
    def send(self, nbytes: int, data: Optional[bytes] = None) -> int:
        """Queue application data; returns the number of bytes accepted."""
        if self.closed:
            raise RuntimeError("socket closed")
        accepted = self.snd_buffer.add(nbytes, data)
        if accepted:
            self._ensure_send_scheduled()
        return accepted

    def send_forever(self) -> None:
        """Mark this endpoint as an unlimited bulk source (sim workloads)."""
        self._unlimited_source = True
        self._ensure_send_scheduled()

    def post_recv_buffer(self, nbytes: int) -> None:
        """Overlapped IO: post user memory the receiver fills directly."""
        self.rcv_buffer.post_user_buffer(nbytes)

    # ------------------------------------------------------------------
    # datagram input
    # ------------------------------------------------------------------
    def on_datagram(self, msg: Any, size: int) -> None:
        if self.closed:
            return
        # Any arrival resets the EXP escalation.  The timer itself is not
        # re-armed per packet (that would double the event count at high
        # rates); it checks ``_last_arrival`` lazily when it fires.
        self._exp_count = 1
        self._last_arrival = self.sched.now()
        kind = msg.type_name
        if kind == "data":
            self._on_data(msg)
        elif kind == "ack":
            self._on_ack(msg)
        elif kind == "nak":
            self._on_nak(msg)
        elif kind == "ack2":
            self._on_ack2(msg)
        elif kind == "handshake":
            self._on_handshake(msg)
        elif kind == "shutdown":
            self.closed = True
            self.connected = False
        # keepalive needs no action beyond the EXP reset above

    def _on_handshake(self, hs: P.Handshake) -> None:
        if hs.req_type == 1:  # request reaching the listener (or a re-send)
            if not self.connected:
                self._become_connected(hs)
            self._send_handshake(req_type=-1)
        elif hs.req_type == -1 and not self.connected:
            self._become_connected(hs)

    # ------------------------------------------------------------------
    # fluid-tier hooks (repro.sim.fluid; no-ops unless a FluidController
    # drives them — packet-mode behaviour is untouched)
    # ------------------------------------------------------------------
    def fluid_hold(self, hold: bool) -> None:
        """Gate NEW data while the hybrid tier drains the pipe.

        Loss-list retransmissions keep flowing (recovery must complete
        before a fluid span can start); clearing the hold re-primes the
        pacing timer.
        """
        self._fluid_hold = hold
        if not hold:
            self._ensure_send_scheduled()

    def fluid_quiesced(self) -> bool:
        """True iff this endpoint has no protocol work in flight.

        Sender side: every packet sent is acknowledged and the loss list
        is empty.  Receiver side: no sequence holes awaiting NAK service.
        """
        if not self.connected or self.closed:
            return False
        if self.snd_loss.peek() is not None or self.rcv_loss.first() is not None:
            return False
        return seq_off(self.snd_last_ack, self.curr_seq) == 0

    def fluid_freeze(self) -> float:
        """Suspend the periodic SYN/EXP timers for a fluid span.

        Returns the captured SYN deadline; :meth:`fluid_resume` uses it
        to re-arm the tick grid phase-preserved, so a span must not
        shift later ACK/NAK times off the deterministic schedule.
        """
        for h in (self._syn_timer, self._exp_timer):
            if h is not None:
                self.sched.cancel(h)
        self._syn_timer = self._exp_timer = None
        return self._syn_deadline

    def fluid_resume(self, rate_pps: float, syn_deadline: float) -> None:
        """Re-enter packet mode after a fluid span.

        Re-arms the SYN tick on its pre-span phase, resets the EXP
        machinery as if the peer had just been heard from, and seeds the
        arrival-speed EWMA with the analytic rate so the first window
        advertisement after the span matches steady state.
        """
        now = self.sched.now()
        syn = self.config.syn
        k = math.ceil((now - syn_deadline) / syn - 1e-9)
        if k < 0:
            k = 0
        self._syn_deadline = syn_deadline + k * syn
        self._syn_timer = self.sched.call_at(self._syn_deadline, self._on_syn_timer)
        self._last_arrival = now
        self._exp_count = 1
        self._arm_exp_timer()
        if rate_pps > 0:
            self._speed_ewma = rate_pps
        self._ensure_send_scheduled()

    # ------------------------------------------------------------------
    # sender half
    # ------------------------------------------------------------------
    def _ensure_send_scheduled(self) -> None:
        if not self.connected or self.closed:
            return
        if self._send_scheduled or self._send_event is not None:
            return
        self._schedule_send(max(self.sched.now(), self._freeze_until))

    def _schedule_send(self, t: float) -> None:
        if self._post_at is not None:
            self._send_scheduled = True
            self._post_at(t, self._on_send_timer)
        else:
            self._send_event = self.sched.call_at(t, self._on_send_timer)

    def _on_send_timer(self) -> None:
        self._send_event = None
        self._send_scheduled = False
        if not self.connected or self.closed:
            return
        now = self.sched.now()
        if now < self._freeze_until:
            self._schedule_send(self._freeze_until)
            return
        sent = self._try_send_one()
        if not sent:
            # Break the achieved-rate measurement chain: idle or blocked
            # gaps must not count as send intervals (§4.4).
            self._last_emit_time = None
            return  # idle; a future ACK/app-write/NAK will reschedule
        if self._pair_pending:
            # Second packet of a probe pair leaves back-to-back (§3.4).
            delay = 0.0
        else:
            delay = self.cc.period
        self._schedule_send(now + delay)

    def _try_send_one(self) -> bool:
        """Transmit one data packet: loss list first, then new data.

        The §3.2 window is a threshold on *unacknowledged* packets, so it
        gates retransmissions too: recovery proceeds oldest-hole-first
        within the window instead of flooding the whole loss list back
        into an already-congested queue.

        Runs once per data packet sent — self-attribute loads are hoisted
        into locals on purpose.
        """
        snd_loss = self.snd_loss
        snd_buffer = self.snd_buffer
        last_ack = self.snd_last_ack
        window = min(self.flow_window, self.cc.window)
        # 1. retransmission
        while True:
            seq = snd_loss.peek()
            if seq is None:
                break
            if seq_cmp(seq, last_ack) < 0:
                snd_loss.pop()
                continue  # already acknowledged meanwhile
            if seq_off(last_ack, seq) >= window:
                return False  # beyond the unacked threshold; wait for ACKs
            snd_loss.pop()
            entry = snd_buffer.lookup(seq)
            if entry is None:
                continue
            size, data = entry
            self._pair_pending = False
            self._emit_data(seq, size, data, retransmitted=True)
            return True
        # 2. new data, if the window allows
        if self._fluid_hold:
            return False  # hybrid tier is draining the pipe
        seq = self.curr_seq
        if seq_off(last_ack, seq) >= window:
            return False
        if not snd_buffer.has_data:
            if not self._unlimited_source:
                return False
            snd_buffer.add(self.config.payload_size)
        size = snd_buffer.packetise(seq)
        if size is None:
            return False
        data = None
        entry = snd_buffer.lookup(seq)
        if entry is not None:
            data = entry[1]
        self.curr_seq = seq_inc(seq)
        if seq_cmp(seq, self.max_seq_sent) > 0:
            self.max_seq_sent = seq
        # A probe pair starts at every 16th packet of the sequence space.
        self._pair_pending = seq % self._probe_interval == 0
        self._emit_data(seq, size, data, retransmitted=False)
        return True

    def _emit_data(
        self, seq: int, size: int, data: Optional[bytes], retransmitted: bool
    ) -> None:
        now = self.sched.now()
        if self._last_emit_time is not None and not self._pair_pending:
            interval = now - self._last_emit_time
            if interval > 0:
                self.achieved_period = (
                    interval
                    if self.achieved_period == 0
                    else (self.achieved_period * 7 + interval) / 8
                )
        self._last_emit_time = now
        pkt = P.DataPacket(
            seq=seq, size=size, ts=self._ts(), data=data, retransmitted=retransmitted
        )
        stats = self.stats
        stats.data_pkts_sent += 1
        stats.data_bytes_sent += size
        if retransmitted:
            stats.retransmitted_pkts += 1
        if self.meter is not None:
            self.meter.on_data_sent(size)
        if self.bus.detail:
            self.bus.emit(
                OB.PKT_SND, now, self.name, seq=seq, size=size, retx=retransmitted
            )
        self._transmit(pkt, pkt.wire_size)

    # -- sender-side control input ----------------------------------------
    def _on_ack(self, ack: P.Ack) -> None:
        # Pre-handshake control packets (reordered, duplicated or stray)
        # must not touch sender state; this guard also lets the protocol
        # model prove every SND_ACK/CC_SAMPLE emit happens connected.
        if not self.connected:
            return
        self.stats.acks_received += 1
        if self.meter is not None:
            self.meter.on_ctrl("ack")
        seq = ack.recv_seq
        if seq_cmp(seq, self.snd_last_ack) > 0:
            self.snd_last_ack = seq
            self.snd_buffer.ack_upto(seq)
            self.snd_loss.remove_upto(seq_dec(seq))
        if not ack.light:
            if ack.rtt_us > 0:
                self.rtt = ack.rtt_us / 1e6
                self.rtt_var = ack.rtt_var_us / 1e6
                self._rtt_sampled = True
            self.flow_window = float(ack.buf_avail)
            if ack.recv_speed > 0:
                self.recv_rate = (
                    ack.recv_speed
                    if self.recv_rate == 0
                    else (self.recv_rate * 7 + ack.recv_speed) / 8
                )
            if ack.capacity > 0:
                self.bandwidth = (
                    ack.capacity
                    if self.bandwidth == 0
                    else (self.bandwidth * 7 + ack.capacity) / 8
                )
            self._xmit(P.Ack2(ts=self._ts(), ack_no=ack.ack_no))
            self.stats.ack2_sent += 1
        self.cc.on_ack(seq)
        if self.bus.enabled:
            self.bus.emit(
                OB.SND_ACK, self.sched.now(), self.name, seq=seq, light=ack.light
            )
            self._emit_cc_sample("ack")
        self._ensure_send_scheduled()

    def _on_nak(self, nak: P.Nak) -> None:
        if not self.connected:
            return
        self.stats.naks_received += 1
        if self.meter is not None:
            self.meter.on_ctrl("nak")
        try:
            ranges = nak_decode(nak.loss)
        except ValueError:
            return  # corrupt report: ignore; the receiver will re-send it
        biggest = None
        lost = 0
        for a, b in ranges:
            if seq_cmp(a, self.snd_last_ack) < 0:
                if seq_cmp(b, self.snd_last_ack) < 0:
                    continue
                a = self.snd_last_ack
            self.snd_loss.insert(a, b)
            lost += seq_off(a, b) + 1
            if biggest is None or seq_cmp(b, biggest) > 0:
                biggest = b
        if biggest is None:
            return
        self.stats.loss_reported += lost
        self.cc.on_loss(LossEvent(ranges=ranges, biggest_seq=biggest, lost_packets=lost))
        froze = False
        if self.cc.freeze_requested:
            self.cc.freeze_requested = False
            self._freeze_until = self.sched.now() + self.config.syn
            self.stats.freezes += 1
            froze = True
        if self.bus.enabled:
            self.bus.emit(
                OB.SND_NAK,
                self.sched.now(),
                self.name,
                lost=lost,
                ranges=len(ranges),
                froze=froze,
            )
            self._emit_cc_sample("nak")
        self._ensure_send_scheduled()

    def _emit_cc_sample(self, trigger: str) -> None:
        """One timeline sample: the full CC state after an update.

        Emitted after every congestion-control update (ACK/NAK), this is
        the series the paper's Figure 4/6/7 plots are drawn from.
        Callers check ``bus.enabled`` first.
        """
        cc = self.cc
        period = cc.period
        self.bus.emit(
            OB.CC_SAMPLE,
            self.sched.now(),
            self.name,
            trigger=trigger,
            rate_bps=self.config.mss * 8.0 / period if period > 0 else 0.0,
            period=period,
            cwnd=cc.window,
            flow_window=self.flow_window,
            rtt=self.rtt,
            bw_est=self.bandwidth,
            recv_rate=self.recv_rate,
            loss_len=len(self.snd_loss),
            exp_count=self._exp_count,
            slow_start=getattr(cc, "slow_start", False),
        )

    # ------------------------------------------------------------------
    # receiver half
    # ------------------------------------------------------------------
    def _on_data(self, pkt: P.DataPacket) -> None:
        if not self.connected or self.lrsn is None:
            return
        now = self.sched.now()
        # Receive-buffer overflow mirrors the OS dropping datagrams before
        # the protocol sees them: it looks like network loss and the normal
        # NAK/EXP machinery recovers it.
        ne = self.rcv_buffer.next_expected
        if ne is not None and not self.rcv_buffer.accepts(pkt.seq):
            self.stats.buffer_drops += 1
            if self.bus.enabled:
                self.bus.emit(
                    OB.RCV_BUFFER_DROP, now, self.name, seq=pkt.seq, size=pkt.size
                )
            return
        self.stats.data_pkts_received += 1
        if self.bus.detail:
            self.bus.emit(
                OB.PKT_RCV, now, self.name, seq=pkt.seq, retx=pkt.retransmitted
            )
        if self.meter is not None:
            self.meter.on_data_received(pkt.size)
        # Measurement hooks (§3.2 / §3.4).
        self.arrivals.on_arrival(now)
        if not pkt.retransmitted:
            phase = pkt.seq % self._probe_interval
            if phase == 0:
                self.probes.on_probe1(now)
            elif phase == 1:
                self.probes.on_probe2(now)

        off = seq_off(self.lrsn, pkt.seq)
        if off > 1:
            # A hole: packets lrsn+1 .. seq-1 are missing.  NAK immediately
            # so the sender can react as fast as possible (§3.1).
            first, last = seq_inc(self.lrsn), seq_dec(pkt.seq)
            self.rcv_loss.insert(first, last, now=now)
            self.loss_events.append(off - 1)
            if self.meter is not None:
                self.meter.on_loss_processing()
            if self.bus.enabled:
                self.bus.emit(
                    OB.RCV_LOSS, now, self.name, first=first, last=last, length=off - 1
                )
            self._send_nak([(first, last)])
            self.lrsn = pkt.seq
        elif off == 1:
            self.lrsn = pkt.seq
        else:
            # Retransmission (or duplicate): clear it from the loss list.
            if self.meter is not None:
                self.meter.on_loss_processing()
            self.rcv_loss.remove(pkt.seq)
        accepted = self.rcv_buffer.on_data(pkt.seq, pkt.size, pkt.data)
        if accepted and self.arrival_cb is not None:
            self.arrival_cb(pkt.size)
        self._data_since_ack += 1

    def _on_delivered(self, size: int, data: Optional[bytes]) -> None:
        if self._deliver_cb is not None:
            self._deliver_cb(size, data)

    def _send_nak(self, ranges: List[Tuple[int, int]]) -> None:
        words = nak_encode(ranges)
        self._xmit(P.Nak(ts=self._ts(), loss=words))
        self.stats.naks_sent += 1

    def _on_syn_timer(self) -> None:
        """The fixed-interval tick driving ACK and NAK retransmission."""
        if self.closed or not self.connected:
            return
        self._send_ack_if_due()
        rtt = self.rtt_est.rtt
        expired = self.rcv_loss.expired_ranges(self.sched.now(), rtt)
        if expired:
            self._send_nak(expired)
        self._syn_deadline = self.sched.now() + self.config.syn
        self._syn_timer = self.sched.call_at(self._syn_deadline, self._on_syn_timer)

    def _send_ack_if_due(self) -> None:
        if self.lrsn is None:
            return
        first_hole = self.rcv_loss.first()
        ack_seq = first_hole if first_hole is not None else seq_inc(self.lrsn)
        # Identity (not ordering) of two in-range seqs is wrap-safe: this
        # only suppresses a duplicate ACK, never orders the space.
        if ack_seq == self._last_ack_seq_sent and self._data_since_ack == 0:  # lint: disable=seqno-taint
            return
        self._data_since_ack = 0
        self._last_ack_seq_sent = ack_seq
        speed = self.arrivals.speed()
        capacity = self.probes.capacity()
        # Smooth the arrival speed (7/8 EWMA, mirroring the reference's
        # receiver-rate handling at the sender): retransmission catch-up
        # bursts arrive back-to-back at link rate and would otherwise
        # inflate the 16-sample median into a wildly oversized window.
        if speed > 0:
            self._speed_ewma = (
                speed if self._speed_ewma == 0 else (self._speed_ewma * 7 + speed) / 8
            )
        # Flow control (§3.2): W = AS * (SYN + RTT); advertise
        # min(W, free receiver buffer).  With flow control disabled the
        # advertisement degenerates to the buffer cap (Figure 7 ablation).
        if self.config.flow_control and self._speed_ewma > 0:
            # +16 packets of headroom, like the reference implementation's
            # congestion window: pure AS*(SYN+RTT) is self-limiting (the
            # window caps delivery at the rate that produced the window).
            w = self._speed_ewma * (self.config.syn + self.rtt_est.rtt) + 16.0
            window = min(w, float(self.rcv_buffer.available))
            window = max(window, 2.0)
        else:
            window = float(self.rcv_buffer.available)
        self._ack_no += 1
        ack = P.Ack(
            ts=self._ts(),
            ack_no=self._ack_no,
            recv_seq=ack_seq,
            rtt_us=int(self.rtt_est.rtt * 1e6),
            rtt_var_us=int(self.rtt_est.var * 1e6),
            buf_avail=int(window),
            recv_speed=int(speed),
            capacity=int(capacity),
        )
        self._ack_window[self._ack_no] = (ack_seq, self.sched.now())
        if len(self._ack_window) > 64:
            oldest = min(self._ack_window)
            del self._ack_window[oldest]
        self._xmit(ack)
        self.stats.acks_sent += 1

    def _on_ack2(self, ack2: P.Ack2) -> None:
        if not self.connected:
            return
        entry = self._ack_window.pop(ack2.ack_no, None)
        if entry is None:
            return
        _, sent_at = entry
        self.rtt_est.update(self.sched.now() - sent_at)

    # ------------------------------------------------------------------
    # EXP (timeout) handling — §3.5 congestion-collapse guard
    # ------------------------------------------------------------------
    def _exp_interval(self) -> float:
        """Expiration grows with consecutive timeouts (§3.5)."""
        if not self._rtt_sampled:
            # No RTT measurement yet (e.g. the very first RTT of a long
            # path): use a conservative initial timeout, like classic
            # TCP's 3 s initial RTO, or 1 s-RTT paths false-fire before
            # their first ACK can possibly arrive.
            return max(3.0, self.config.min_exp_timeout) * self._exp_count
        base = self._exp_count * (self.rtt + 4 * self.rtt_var) + self.config.syn
        return max(base, self.config.min_exp_timeout * self._exp_count)

    def _arm_exp_timer(self) -> None:
        if self.closed:
            return
        if self._exp_timer is not None:
            self.sched.cancel(self._exp_timer)
        self._exp_timer = self.sched.call_at(
            self.sched.now() + self._exp_interval(), self._on_exp_timer
        )

    def _on_exp_timer(self) -> None:
        self._exp_timer = None
        if self.closed or not self.connected:
            return
        # Lazy check: if the peer was heard from recently, just re-arm.
        deadline = self._last_arrival + self._exp_interval()
        now = self.sched.now()
        if now < deadline - 1e-12:
            self._exp_timer = self.sched.call_at(deadline, self._on_exp_timer)
            return
        unacked = seq_off(self.snd_last_ack, self.curr_seq)
        if unacked > 0:
            self.stats.exp_events += 1
            if self.bus.enabled:
                self.bus.emit(
                    OB.EXP_TIMEOUT,
                    now,
                    self.name,
                    exp_count=self._exp_count,
                    unacked=unacked,
                )
            # No feedback for a full timeout: treat everything unacked as
            # lost (it will be resent from the loss list) and notify CC.
            if len(self.snd_loss) == 0:
                self.snd_loss.insert(self.snd_last_ack, seq_dec(self.curr_seq))
                self.cc.on_timeout()
            self._ensure_send_scheduled()
        elif self._is_initiator:
            self._xmit(P.KeepAlive(ts=self._ts()))
        self._exp_count += 1
        if self._exp_count > self.config.max_exp_count:
            self.close()
            return
        self._arm_exp_timer()

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _ts(self) -> int:
        return int((self.sched.now() - self._start_time) * 1e6) & 0xFFFFFFFF

    def _xmit(self, msg: Any) -> None:
        size = msg.wire_size
        if msg.type_name != "data":
            self.stats.ctrl_bytes_sent += size
            if self.meter is not None:
                self.meter.on_ctrl_sent(size)
        self._transmit(msg, size)

    # Convenience for experiments.
    @property
    def delivered_bytes(self) -> int:
        return self.rcv_buffer.delivered_bytes

    @property
    def sending_rate_bps(self) -> float:
        return self.config.mss * 8.0 / self.cc.period if self.cc.period > 0 else 0.0


class _CcView:
    """The restricted endpoint view handed to congestion controllers."""

    __slots__ = ("_core",)

    def __init__(self, core: UdtCore):
        self._core = core

    def now(self) -> float:
        return self._core.sched.now()

    @property
    def rtt(self) -> float:
        return self._core.rtt

    @property
    def recv_rate(self) -> float:
        return self._core.recv_rate

    @property
    def bandwidth(self) -> float:
        return self._core.bandwidth

    @property
    def max_seq_sent(self) -> int:
        return self._core.max_seq_sent

    @property
    def achieved_period(self) -> float:
        return self._core.achieved_period
