"""UDT — UDP-based Data Transport (the paper's primary contribution).

The protocol core (:mod:`repro.udt.core`) is written *sans-IO*: it is a pair
of sender/receiver state machines driven by a clock abstraction and an
outbound message sink.  Two bindings exist:

* :mod:`repro.udt.sim_adapter` — runs the core over the simulated UDP
  service (all paper experiments use this).
* :mod:`repro.live` — runs the same core over real UDP sockets on loopback.
"""

from repro.udt.cc import CongestionControl, FixedAimdCC, UdtNativeCC
from repro.udt.core import UdtCore
from repro.udt.losslist import ReceiverLossList, SenderLossList
from repro.udt.params import SYN, UdtConfig
from repro.udt.sim_adapter import UdtFlow, start_udt_flow

__all__ = [
    "SYN",
    "UdtConfig",
    "UdtCore",
    "CongestionControl",
    "UdtNativeCC",
    "FixedAimdCC",
    "SenderLossList",
    "ReceiverLossList",
    "UdtFlow",
    "start_udt_flow",
]
