"""The abandoned delay-based design (§6, "lessons learned").

Early UDT used the PCT/PDT trend tests of Jain & Dovrolis's Pathload on
packet delays as a *supportive* congestion signal: a rising one-way-delay
trend triggers a rate decrease before any packet is lost.  The paper
kept the code out of the final protocol — delay measurements are noisy
on real end systems and correlate imperfectly with congestion — but
records that the design was "friendlier to TCP, but may lead to poor
throughputs on certain systems".

This module reproduces that obsolete design so the tradeoff can be
measured (see ``benchmarks/test_bench_delay_ablation.py``):

* the receiver tracks one-way-delay samples (sender timestamp vs arrival
  time) per SYN epoch;
* PCT (pairwise comparison test) and PDT (pairwise difference test) are
  applied to the sample window;
* when both report an increasing trend, a delay warning is fed to the
  congestion controller, which reacts like a (gentler) loss event.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs import bus as OB
from repro.udt.cc import UdtNativeCC
from repro.udt.params import UdtConfig

#: Pathload decision thresholds (Jain & Dovrolis 2002).
PCT_THRESHOLD = 0.66
PDT_THRESHOLD = 0.55


def pct(samples: List[float]) -> float:
    """Pairwise Comparison Test: fraction of consecutive increases."""
    if len(samples) < 2:
        return 0.0
    inc = sum(1 for a, b in zip(samples, samples[1:]) if b > a)
    return inc / (len(samples) - 1)


def pdt(samples: List[float]) -> float:
    """Pairwise Difference Test: net drift over total variation."""
    if len(samples) < 2:
        return 0.0
    total = sum(abs(b - a) for a, b in zip(samples, samples[1:]))
    if total == 0:
        return 0.0
    return (samples[-1] - samples[0]) / total


def increasing_trend(samples: List[float]) -> bool:
    """Both tests agree the delay is trending upward."""
    return pct(samples) > PCT_THRESHOLD and pdt(samples) > PDT_THRESHOLD


class DelayTrendDetector:
    """Receiver-side one-way-delay trend detection per SYN epoch."""

    def __init__(self, window: int = 16, min_samples: int = 8):
        self.window = window
        self.min_samples = min_samples
        self._samples: List[float] = []
        self.warnings = 0

    def on_delay_sample(self, one_way_delay: float) -> None:
        self._samples.append(one_way_delay)
        if len(self._samples) > self.window:
            self._samples.pop(0)

    def check_and_reset(self) -> bool:
        """Called every SYN: True if a warning should be emitted."""
        if len(self._samples) < self.min_samples:
            return False
        trend = increasing_trend(self._samples)
        self._samples.clear()
        if trend:
            self.warnings += 1
        return trend


class DelayWarningCC(UdtNativeCC):
    """Native UDT control plus reaction to delay warnings.

    A warning halves the *increase* behaviour for a while by applying a
    single gentle decrease (x 8/9 of the rate, the same factor as loss)
    without freezing — early congestion avoidance, before loss occurs.
    """

    def __init__(self, config: UdtConfig):
        super().__init__(config)
        self.delay_decreases = 0

    def on_delay_warning(self) -> None:
        if self.slow_start:
            self._exit_slow_start()
        self.last_dec_period = self.period
        self.period *= 1.125
        if self.ctx is not None:
            self.last_dec_seq = self.ctx.max_seq_sent
        self.delay_decreases += 1
        self._emit(OB.CC_DELAY_WARNING, period=self.period)


def attach_delay_detection(flow, window: int = 16) -> DelayTrendDetector:
    """Wire the obsolete delay pipeline into a simulated UdtFlow.

    The receiver samples one-way delay from data-packet timestamps; every
    SYN it runs PCT/PDT and, on a detected rise, the *sender's*
    controller applies the early decrease (shortcut for the dedicated
    congestion-warning control packet of the obsolete design).
    """
    detector = DelayTrendDetector(window=window)
    receiver = flow.receiver
    sender = flow.sender
    if not isinstance(sender.cc, DelayWarningCC):
        raise TypeError("flow must use DelayWarningCC (cc_factory=DelayWarningCC)")

    original_on_data = receiver._on_data

    def tapped_on_data(pkt):
        if pkt.type_name == "data":
            send_time = receiver._start_time + pkt.ts / 1e6
            detector.on_delay_sample(receiver.sched.now() - send_time)
        original_on_data(pkt)

    receiver._on_data = tapped_on_data

    original_syn = receiver._on_syn_timer

    def tapped_syn():
        if detector.check_and_reset():
            sender.cc.on_delay_warning()
        original_syn()

    receiver._on_syn_timer = tapped_syn
    return detector
