"""31-bit wrap-around sequence-number arithmetic.

UDT numbers *packets*, not bytes (§6: "A packet-based scheme is more
suitable for high-speed protocols"), using the low 31 bits of a 32-bit
field; the top bit is reserved as the loss-compression flag (appendix).
All comparisons are modular with a half-space threshold, exactly like the
reference implementation's ``CSeqNo``.
"""

from __future__ import annotations

from repro.udt.params import MAX_SEQ_NO

#: Distance threshold deciding wrap direction (half the sequence space).
SEQ_THRESHOLD = MAX_SEQ_NO // 2


def seq_cmp(a: int, b: int) -> int:
    """Wrap-aware comparison: negative if a precedes b, positive if after."""
    d = a - b
    if abs(d) < SEQ_THRESHOLD:
        return d
    return b - a


def seq_off(a: int, b: int) -> int:
    """Number of increments from a to b (wrap-aware; negative if b < a)."""
    d = b - a
    if d >= SEQ_THRESHOLD:
        return d - MAX_SEQ_NO
    if d < -SEQ_THRESHOLD:
        return d + MAX_SEQ_NO
    return d


def seq_len(a: int, b: int) -> int:
    """Count of sequence numbers in the inclusive range [a, b]."""
    return (b - a) % MAX_SEQ_NO + 1


def seq_inc(a: int, step: int = 1) -> int:
    return (a + step) % MAX_SEQ_NO


def seq_dec(a: int, step: int = 1) -> int:
    return (a - step) % MAX_SEQ_NO


def valid_seq(a: int) -> bool:
    return 0 <= a < MAX_SEQ_NO
