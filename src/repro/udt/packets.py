"""UDT packet formats.

Message objects double as the simulator payloads (no serialisation on the
fast path) and as real wire datagrams for the loopback runtime — every
message implements ``encode()``/``decode()`` with the UDT header layout:

* Data:    ``0 | seq(31)`` · msg-flags · timestamp(µs) · dest-socket-id
* Control: ``1 | type(15) | reserved`` · additional-info · timestamp · id

All multi-byte fields are network byte order.  The ACK body carries the
paper's §3.2/§3.4 feedback: next-expected sequence, RTT and its variance,
available receive buffer, packet arrival speed and estimated link capacity.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import ClassVar, List, Optional, Tuple

from repro.udt.params import MAX_SEQ_NO, UDT_HEADER
from repro.udt.seqno import valid_seq

_CTRL_BIT = 1 << 31
_HDR = struct.Struct("!IIII")

# Control types (matching the reference implementation's numbering).
HANDSHAKE = 0
KEEPALIVE = 1
ACK = 2
NAK = 3
SHUTDOWN = 5
ACK2 = 6


def _check_seq(seq: int) -> int:
    if not valid_seq(seq):
        raise ValueError(f"bad sequence number {seq}")
    return seq


class DataPacket:
    """One fixed-size data segment.  ``size`` is the payload byte count.

    Hand-written with ``__slots__`` rather than a dataclass: one of these
    is allocated per data packet sent, so skipping the per-instance
    ``__dict__`` is a measurable win on long runs (and slots=True
    dataclasses need Python >= 3.10).
    """

    __slots__ = ("seq", "size", "ts", "dst_id", "data", "retransmitted")

    type_name: ClassVar[str] = "data"

    def __init__(
        self,
        seq: int,
        size: int,
        ts: int = 0,  # sender timestamp, microseconds
        dst_id: int = 0,
        data: Optional[bytes] = None,  # real payload (live mode); None in sim
        retransmitted: bool = False,
    ):
        self.seq = seq
        self.size = size
        self.ts = ts
        self.dst_id = dst_id
        self.data = data
        self.retransmitted = retransmitted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataPacket(seq={self.seq}, size={self.size}, ts={self.ts}, "
            f"dst_id={self.dst_id}, retransmitted={self.retransmitted})"
        )

    @property
    def wire_size(self) -> int:
        return UDT_HEADER + self.size

    def encode(self) -> bytes:
        flags = 1 if self.retransmitted else 0
        body = self.data if self.data is not None else b"\x00" * self.size
        if len(body) != self.size:
            raise ValueError("payload length mismatch")
        return _HDR.pack(_check_seq(self.seq), flags, self.ts, self.dst_id) + body


@dataclass
class ControlPacket:
    ts: int = 0
    dst_id: int = 0

    ctrl_type: ClassVar[int] = -1
    type_name: ClassVar[str] = "ctrl"

    @property
    def wire_size(self) -> int:
        return UDT_HEADER + len(self._body())

    def _info(self) -> int:
        return 0

    def _body(self) -> bytes:
        return b""

    def encode(self) -> bytes:
        word0 = _CTRL_BIT | (self.ctrl_type << 16)
        return _HDR.pack(word0, self._info(), self.ts, self.dst_id) + self._body()


@dataclass
class Handshake(ControlPacket):
    version: int = 4
    init_seq: int = 0
    mss: int = 1500
    flow_window: int = 8192
    req_type: int = 1  # 1 = request, -1 = response
    socket_id: int = 0

    ctrl_type: ClassVar[int] = HANDSHAKE
    type_name: ClassVar[str] = "handshake"

    _FMT: ClassVar[struct.Struct] = struct.Struct("!IIIIiI")

    def _body(self) -> bytes:
        return self._FMT.pack(
            self.version,
            _check_seq(self.init_seq),
            self.mss,
            self.flow_window,
            self.req_type,
            self.socket_id,
        )


@dataclass
class Ack(ControlPacket):
    """Timer-based selective acknowledgement (§3.1)."""

    ack_no: int = 0  # this ACK's own serial number (for ACK2 pairing)
    recv_seq: int = 0  # next expected sequence number (all prior received)
    rtt_us: int = 0
    rtt_var_us: int = 0
    buf_avail: int = 0  # receiver buffer space, packets
    recv_speed: int = 0  # packets/second (0 = unknown)
    capacity: int = 0  # packets/second (0 = unknown)
    light: bool = False  # light ACK: no rate/capacity fields

    ctrl_type: ClassVar[int] = ACK
    type_name: ClassVar[str] = "ack"

    _FMT: ClassVar[struct.Struct] = struct.Struct("!IIIIII")

    def _info(self) -> int:
        return self.ack_no

    def _body(self) -> bytes:
        if self.light:
            return struct.pack("!I", _check_seq(self.recv_seq))
        return self._FMT.pack(
            _check_seq(self.recv_seq),
            self.rtt_us,
            self.rtt_var_us,
            self.buf_avail,
            self.recv_speed,
            self.capacity,
        )


@dataclass
class Ack2(ControlPacket):
    ack_no: int = 0

    ctrl_type: ClassVar[int] = ACK2
    type_name: ClassVar[str] = "ack2"

    def _info(self) -> int:
        return self.ack_no


@dataclass
class Nak(ControlPacket):
    """Negative acknowledgement carrying a compressed loss report."""

    loss: List[int] = field(default_factory=list)  # encoded words (nakcodec)

    ctrl_type: ClassVar[int] = NAK
    type_name: ClassVar[str] = "nak"

    def _body(self) -> bytes:
        return struct.pack(f"!{len(self.loss)}I", *self.loss)


@dataclass
class KeepAlive(ControlPacket):
    ctrl_type: ClassVar[int] = KEEPALIVE
    type_name: ClassVar[str] = "keepalive"


@dataclass
class Shutdown(ControlPacket):
    ctrl_type: ClassVar[int] = SHUTDOWN
    type_name: ClassVar[str] = "shutdown"


def decode(datagram: bytes) -> object:
    """Parse a wire datagram into the matching message object."""
    if len(datagram) < UDT_HEADER:
        raise ValueError(f"short datagram ({len(datagram)} bytes)")
    w0, info, ts, dst_id = _HDR.unpack_from(datagram)
    body = datagram[UDT_HEADER:]
    if not w0 & _CTRL_BIT:
        pkt = DataPacket(
            seq=w0 & (MAX_SEQ_NO - 1),
            size=len(body),
            ts=ts,
            dst_id=dst_id,
            data=body,
            retransmitted=bool(info & 1),
        )
        return pkt
    ctype = (w0 >> 16) & 0x7FFF
    if ctype == HANDSHAKE:
        v, iseq, mss, fw, req, sid = Handshake._FMT.unpack(body)
        return Handshake(ts, dst_id, v, iseq, mss, fw, req, sid)
    if ctype == ACK:
        if len(body) == 4:
            (recv_seq,) = struct.unpack("!I", body)
            return Ack(ts, dst_id, ack_no=info, recv_seq=recv_seq, light=True)
        rs, rtt, var, buf, spd, cap = Ack._FMT.unpack(body)
        return Ack(ts, dst_id, info, rs, rtt, var, buf, spd, cap)
    if ctype == ACK2:
        return Ack2(ts, dst_id, ack_no=info)
    if ctype == NAK:
        n = len(body) // 4
        return Nak(ts, dst_id, list(struct.unpack(f"!{n}I", body)))
    if ctype == KEEPALIVE:
        return KeepAlive(ts, dst_id)
    if ctype == SHUTDOWN:
        return Shutdown(ts, dst_id)
    raise ValueError(f"unknown control type {ctype}")
