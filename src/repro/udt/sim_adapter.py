"""Run UDT endpoints over the simulated network.

:class:`UdtFlow` wires two :class:`~repro.udt.core.UdtCore` endpoints to
UDP endpoints on two simulated hosts, handles connection setup, and tracks
goodput through the network's :class:`~repro.sim.monitor.FlowMonitor`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.obs import bus as OB
from repro.sim.engine import Event, Simulator
from repro.sim.node import Host
from repro.sim.topology import Network
from repro.sim.udp import UdpEndpoint
from repro.udt.cc import CongestionControl, UdtNativeCC
from repro.udt.core import UdtCore
from repro.udt.params import UDT_HEADER, UdtConfig


class SimScheduler:
    """Adapts the discrete-event engine to the core's Scheduler protocol."""

    __slots__ = ("sim",)

    def __init__(self, sim: Simulator):
        self.sim = sim

    def now(self) -> float:
        return self.sim.now

    def call_at(self, time: float, fn: Callable[[], None]) -> Event:
        return self.sim.schedule_at(max(time, self.sim.now), fn)

    def post_at(self, time: float, fn: Callable[[], None]) -> None:
        """Fire-and-forget timer: no Event allocation, not cancellable."""
        sim = self.sim
        now = sim.now
        sim.post_at(time if time > now else now, fn)

    def cancel(self, handle: Event) -> None:
        handle.cancel()


class _UdtFluidAdapter:
    """Glue between one :class:`UdtFlow` and the network's fluid tier.

    Implements the adapter protocol documented on
    :class:`repro.sim.fluid.FluidController`: eligibility/quiescence
    checks over both endpoint cores, freeze/resume delegation, the
    analytic rate from the sender's congestion controller, and byte
    credits booked to the flow monitor under both the goodput key and
    the sink-arrival key (delivery and arrival coincide in a loss-free
    fluid span).
    """

    __slots__ = ("flow", "syn", "wire_bytes", "payload_bytes", "_links", "_accum", "_credited")

    def __init__(self, flow: "UdtFlow", src: Host, dst: Host):
        self.flow = flow
        self.syn = flow.config.syn
        self.payload_bytes = flow.config.payload_size
        self.wire_bytes = UDT_HEADER + flow.config.payload_size
        self._links = self._walk_path(src, dst)
        self._accum = 0.0  # fractional bytes owed to the monitor
        self._credited = 0

    @staticmethod
    def _walk_path(src: Host, dst: Host) -> list:
        links = []
        node = src
        while node.id != dst.id:
            link = node.routes[dst.id]
            links.append(link)
            node = link.dst
        return links

    def eligible(self) -> bool:
        f = self.flow
        return (
            f.nbytes is None
            and not f.app_driven
            and not f.done
            and f.sender.connected
            and f.receiver.connected
            and f.sender.cc.fluid_eligible()
        )

    def quiesced(self) -> bool:
        return self.flow.sender.fluid_quiesced() and self.flow.receiver.fluid_quiesced()

    def hold(self, hold: bool) -> None:
        self.flow.sender.fluid_hold(hold)

    def freeze(self):
        return (self.flow.sender.fluid_freeze(), self.flow.receiver.fluid_freeze())

    def resume(self, state) -> None:
        snd_deadline, rcv_deadline = state
        rate = self.rate_pps()
        self.flow.sender.fluid_resume(rate, snd_deadline)
        self.flow.receiver.fluid_resume(rate, rcv_deadline)
        self.flow.sender.cc.fluid_resume(rate)

    def rate_pps(self) -> float:
        return 1.0 / self.flow.sender.cc.period

    def tick(self) -> float:
        return self.flow.sender.cc.fluid_tick()

    def links(self) -> list:
        return self._links

    def drain_delay(self) -> float:
        # A full control round trip (ACK out, ACK2 back) plus a few SYN
        # intervals for the last duplicate-suppressed ACK to be skipped.
        return 2.0 * sum(l.delay for l in self._links) + 4.0 * self.syn

    def credit(self, t0: float, t1: float, nbytes: float) -> None:
        """Book ``nbytes`` (fractional) of analytic delivery over [t0, t1).

        A running float accumulator against an integer credited total
        keeps the span-wide sum exact to the floor of the analytic
        total — byte conservation for the equivalence tests.
        """
        self._accum += nbytes
        total = int(self._accum)
        add = total - self._credited
        if add <= 0:
            return
        self._credited = total
        monitor = self.flow.net.monitor
        monitor.credit_span(self.flow.flow_id, t0, t1, add)
        monitor.credit_span(self.flow.arrival_flow_id, t0, t1, add)


class UdtFlow:
    """A unidirectional UDT transfer from ``src`` to ``dst``.

    Parameters
    ----------
    nbytes:
        Application bytes to transfer; ``None`` means an unlimited bulk
        source (the paper's memory-memory workloads).
    app_driven:
        When True the flow performs no data pumping of its own — an
        application object (e.g. :class:`repro.apps.fileio.DiskTransfer`)
        feeds ``sender.send`` explicitly.
    start:
        Virtual time at which the connection handshake begins.
    """

    _flow_counter = 0

    def __init__(
        self,
        net: Network,
        src: Host,
        dst: Host,
        config: Optional[UdtConfig] = None,
        cc_factory: Callable[[UdtConfig], CongestionControl] = UdtNativeCC,
        nbytes: Optional[int] = None,
        start: float = 0.0,
        flow_id: Optional[object] = None,
        meter_snd: Optional[Any] = None,
        meter_rcv: Optional[Any] = None,
        app_driven: bool = False,
        bus: Optional[OB.EventBus] = None,
    ):
        self.net = net
        self.bus = bus if bus is not None else OB.default_bus()
        self.config = config if config is not None else UdtConfig()
        if flow_id is None:
            flow_id = f"udt{UdtFlow._flow_counter}"
            UdtFlow._flow_counter += 1
        self.flow_id = flow_id
        self.nbytes = nbytes
        self.app_driven = app_driven
        self.start_time = start
        self.done = False
        self.finish_time: Optional[float] = None
        self._offered = 0  # bytes handed to the send buffer so far

        sched = SimScheduler(net.sim)
        self._src_ep = UdpEndpoint(src)
        self._dst_ep = UdpEndpoint(dst)

        # Wire packets carry the flow id so link-level telemetry (drops,
        # queue events, ns-2 taps) is attributable to a connection.  The
        # endpoints/addresses are pre-bound: transmit runs once per packet.
        src_sendto = self._src_ep.sendto
        dst_sendto = self._dst_ep.sendto
        src_addr = self._src_ep.address
        dst_addr = self._dst_ep.address
        fid = self.flow_id

        def snd_transmit(msg: Any, size: int) -> None:
            src_sendto(msg, size, dst_addr, flow=fid)

        def rcv_transmit(msg: Any, size: int) -> None:
            dst_sendto(msg, size, src_addr, flow=fid)

        self.sender = UdtCore(
            self.config,
            sched,
            snd_transmit,
            cc=cc_factory(self.config),
            name=f"{flow_id}-snd",
            meter=meter_snd,
            bus=self.bus,
        )
        self.receiver = UdtCore(
            self.config,
            sched,
            rcv_transmit,
            deliver=self._on_deliver,
            name=f"{flow_id}-rcv",
            meter=meter_rcv,
            bus=self.bus,
        )
        snd_datagram = self.sender.on_datagram
        rcv_datagram = self.receiver.on_datagram
        self._src_ep.on_receive(lambda msg, addr, size: snd_datagram(msg, size))
        self._dst_ep.on_receive(lambda msg, addr, size: rcv_datagram(msg, size))
        # Arrival-rate series (sink-side, NS-2 style) under "<id>:arr".
        arr_key = (self.flow_id, "arr")
        monitor_deliver = net.monitor.on_deliver
        self.receiver.arrival_cb = lambda size: monitor_deliver(arr_key, size)

        fluid = getattr(net, "fluid", None)
        if fluid is not None:
            fluid.register_flow(_UdtFluidAdapter(self, src, dst))

        net.sim.schedule_at(max(start, net.sim.now), self._begin)

    def _begin(self) -> None:
        self.receiver.listen()
        self.sender.connect()
        if self.app_driven:
            return
        if self.nbytes is None:
            self.sender.send_forever()
        else:
            self._push_app_data()

    def _push_app_data(self) -> None:
        """Feed the finite transfer into the send buffer as space frees up."""
        assert self.nbytes is not None
        remaining = self.nbytes - self._offered
        if remaining > 0:
            self._offered += self.sender.send(remaining)
        if self._offered < self.nbytes and not self.done:
            # Poll again shortly; the buffer drains at the sending rate.
            self.net.sim.schedule(self.config.syn, self._push_app_data)

    def _on_deliver(self, size: int, data: Optional[bytes]) -> None:
        self.net.monitor.on_deliver(self.flow_id, size)
        if (
            self.nbytes is not None
            and not self.done
            and self.receiver.delivered_bytes >= self.nbytes
        ):
            self.done = True
            self.finish_time = self.net.sim.now
            if self.bus.enabled:
                self.bus.emit(
                    OB.FLOW_DONE,
                    self.finish_time,
                    str(self.flow_id),
                    bytes=self.receiver.delivered_bytes,
                    elapsed=self.finish_time - self.start_time,
                )

    # -- experiment helpers ------------------------------------------------
    def throughput_bps(self, t0: float = 0.0, t1: Optional[float] = None) -> float:
        return self.net.monitor.throughput_bps(self.flow_id, t0, t1)

    def series(self, interval: float, t0: float = 0.0, t1: Optional[float] = None):
        return self.net.monitor.series(self.flow_id, interval, t0, t1)

    @property
    def arrival_flow_id(self):
        """Monitor key of the sink-arrival (vs in-order goodput) series."""
        return (self.flow_id, "arr")

    @property
    def delivered_bytes(self) -> int:
        return self.receiver.delivered_bytes

    def close(self) -> None:
        self.sender.close()
        self.receiver.close()
        self._src_ep.close()
        self._dst_ep.close()


def start_udt_flow(
    net: Network,
    src: Host,
    dst: Host,
    start: float = 0.0,
    nbytes: Optional[int] = None,
    config: Optional[UdtConfig] = None,
    cc_factory: Callable[[UdtConfig], CongestionControl] = UdtNativeCC,
    flow_id: Optional[object] = None,
    bus: Optional[OB.EventBus] = None,
) -> UdtFlow:
    """Convenience wrapper used throughout the experiments."""
    return UdtFlow(
        net,
        src,
        dst,
        config=config,
        cc_factory=cc_factory,
        nbytes=nbytes,
        start=start,
        flow_id=flow_id,
        bus=bus,
    )
