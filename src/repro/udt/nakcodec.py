"""Compressed loss-report encoding (paper appendix).

A loss report is a list of 32-bit words.  If a word's top (flag) bit is
set, it is the first sequence number of a lost *range* whose last number
is the following word; otherwise the word is a single lost sequence
number.  E.g. ``0x80000003, 0x00000005, 0x00000007`` encodes losses
3,4,5 and 7.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.udt.params import MAX_SEQ_NO
from repro.udt.seqno import seq_off, valid_seq

#: The range flag occupies the bit excluded from the sequence space.
RANGE_FLAG = MAX_SEQ_NO  # 0x80000000


def encode(ranges: Iterable[Tuple[int, int]]) -> List[int]:
    """Encode inclusive (first, last) loss ranges into report words."""
    words: List[int] = []
    for first, last in ranges:
        if not (valid_seq(first) and valid_seq(last)):
            raise ValueError(f"sequence number out of range: ({first}, {last})")
        span = seq_off(first, last)
        if span < 0:
            raise ValueError(f"inverted range ({first}, {last})")
        if span == 0:
            words.append(first)
        else:
            words.append(first | RANGE_FLAG)
            words.append(last)
    return words


def decode(words: Sequence[int]) -> List[Tuple[int, int]]:
    """Decode report words back into inclusive (first, last) ranges."""
    out: List[Tuple[int, int]] = []
    i = 0
    n = len(words)
    while i < n:
        w = words[i]
        if w & RANGE_FLAG:
            if i + 1 >= n:
                raise ValueError("range start with no end word")
            first = w & (MAX_SEQ_NO - 1)
            last = words[i + 1]
            if last & RANGE_FLAG:
                raise ValueError("range end carries the flag bit")
            if seq_off(first, last) < 0:
                raise ValueError(f"inverted decoded range ({first}, {last})")
            out.append((first, last))
            i += 2
        else:
            out.append((w, w))
            i += 1
    return out


def report_size_bytes(words: Sequence[int]) -> int:
    """Wire size of the loss-report body (4 bytes per word)."""
    return 4 * len(words)
