"""Arrival-rate and link-capacity measurement (§3.2, §3.4).

Two 16-slot circular windows of inter-packet intervals feed median filters:

* **Packet arrival speed (AS)** — intervals between consecutive data-packet
  arrivals.  The paper is explicit that a plain mean does not work because
  sending may pause; the median filter discards outliers (intervals outside
  [median/8, median*8]) and averages the rest.  AS drives the flow window
  ``W = AS * (SYN + RTT)``.
* **Link capacity (RBPP)** — intervals inside receiver-based packet pairs
  (two packets sent back-to-back every 16th packet).  The pair spacing at
  the receiver reflects the bottleneck serialisation time, so
  ``capacity = 1 / median-filtered pair interval``.
"""

from __future__ import annotations

from typing import List, Optional


class IntervalWindow:
    """Fixed-size circular window of time intervals with a median filter."""

    __slots__ = ("size", "_buf", "_idx", "_count")

    def __init__(self, size: int = 16):
        if size < 2:
            raise ValueError("window size must be >= 2")
        self.size = size
        self._buf: List[float] = [0.0] * size
        self._idx = 0
        self._count = 0

    def push(self, interval: float) -> None:
        if interval < 0:
            raise ValueError("negative interval")
        self._buf[self._idx] = interval
        self._idx = (self._idx + 1) % self.size
        if self._count < self.size:
            self._count += 1

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count == self.size

    def filtered_rate(self, require_majority: bool = True) -> float:
        """Events/second from median-filtered intervals, 0.0 if unknown.

        Intervals outside [median/8, median*8] are treated as sending
        pauses or measurement noise and excluded.  With
        ``require_majority`` (used for AS), at least half the window must
        survive the filter, per the reference implementation.
        """
        n = self._count
        if n < 2:
            return 0.0
        vals = sorted(self._buf[:n])
        median = vals[n // 2]
        if median <= 0.0:
            return 0.0
        lo, hi = median / 8.0, median * 8.0
        kept = [v for v in vals if lo < v < hi]
        if not kept:
            return 0.0
        if require_majority and len(kept) <= n // 2:
            return 0.0
        return len(kept) / sum(kept)


class ArrivalRecorder:
    """Feeds data-packet arrival times into an :class:`IntervalWindow`."""

    __slots__ = ("window", "_last")

    def __init__(self, size: int = 16):
        self.window = IntervalWindow(size)
        self._last: Optional[float] = None

    def on_arrival(self, now: float) -> None:
        if self._last is not None:
            self.window.push(now - self._last)
        self._last = now

    def skip(self) -> None:
        """Break the chain (e.g. second probe packet must not pollute AS)."""
        self._last = None

    def speed(self) -> float:
        """Packet arrival speed in packets/second (0 when unmeasurable)."""
        return self.window.filtered_rate(require_majority=True)


class ProbeRecorder:
    """Packet-pair capacity estimation (RBPP)."""

    __slots__ = ("window", "_first_time")

    def __init__(self, size: int = 16):
        self.window = IntervalWindow(size)
        self._first_time: Optional[float] = None

    def on_probe1(self, now: float) -> None:
        self._first_time = now

    def on_probe2(self, now: float) -> None:
        if self._first_time is not None:
            self.window.push(now - self._first_time)
            self._first_time = None

    def capacity(self) -> float:
        """Estimated link capacity in packets/second (0 when unmeasurable)."""
        return self.window.filtered_rate(require_majority=False)


class RttEstimator:
    """Smoothed RTT from ACK/ACK2 handshakes (EWMA 7/8, like the reference)."""

    __slots__ = ("rtt", "var", "_initialized")

    def __init__(self, initial: float = 0.1):
        self.rtt = initial
        self.var = initial / 2.0
        self._initialized = False

    def update(self, sample: float) -> None:
        if sample < 0:
            raise ValueError("negative RTT sample")
        if not self._initialized:
            self.rtt = sample
            self.var = sample / 2.0
            self._initialized = True
            return
        self.var = (3.0 * self.var + abs(sample - self.rtt)) / 4.0
        self.rtt = (7.0 * self.rtt + sample) / 8.0

    @property
    def rto(self) -> float:
        return self.rtt + 4.0 * self.var
