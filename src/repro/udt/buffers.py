"""Send/receive buffers with overlapped-IO accounting (§4.3, §4.6).

The simulator does not ship real payload bytes around (packets carry byte
*counts*), but the buffer logic is complete: the receive buffer reorders
out-of-order arrivals, delivers contiguous runs to the application, and
reports available space for flow control.  When real data is present (the
loopback runtime) the same code paths carry ``bytes``.

Overlapped IO is modelled exactly as Figure 10 describes: the application
may post a user buffer that becomes a logical extension of the protocol
buffer; packets whose position falls inside the posted region are counted
as *zero-copy* (they would land directly in user memory), everything else
incurs a protocol-buffer copy.  The speculation counters implement §4.6:
the receiver always guesses the next packet is LRSN+1; each loss and each
retransmission arrival cost one speculation miss.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.udt.seqno import seq_cmp, seq_inc, seq_off


class SendBuffer:
    """Application bytes queued for (re)transmission, packetised at MSS.

    Packets keep their payload until acknowledged so retransmissions can
    look sizes (and live-mode data) back up by sequence number.
    """

    def __init__(self, capacity_pkts: int, payload_size: int):
        if capacity_pkts < 1 or payload_size < 1:
            raise ValueError("bad buffer geometry")
        self.capacity_pkts = capacity_pkts
        self.payload_size = payload_size
        self._pending_bytes = 0  # accepted, not yet packetised
        self._pending_data: list[bytes] = []  # live mode only
        self._inflight: Dict[int, Tuple[int, Optional[bytes]]] = {}
        # Sequence numbers in packetisation order; ACKs release a strict
        # prefix, so ack_upto is O(packets acked), never a full scan.
        from collections import deque

        self._order: deque[int] = deque()

    # -- application side --------------------------------------------------
    def free_packets(self) -> int:
        used = len(self._inflight) + self.queued_packets()
        return max(self.capacity_pkts - used, 0)

    def queued_packets(self) -> int:
        return -(-self._pending_bytes // self.payload_size) if self._pending_bytes else 0

    def add(self, nbytes: int, data: Optional[bytes] = None) -> int:
        """Queue up to ``nbytes`` application bytes; returns bytes accepted."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        room = self.free_packets() * self.payload_size
        take = min(nbytes, room)
        if take <= 0:
            return 0
        if data is not None:
            self._pending_data.append(data[:take])
        self._pending_bytes += take
        return take

    @property
    def has_data(self) -> bool:
        return self._pending_bytes > 0

    # -- sender side ---------------------------------------------------------
    def packetise(self, seq: int) -> Optional[int]:
        """Bind the next chunk to sequence ``seq``; returns payload size."""
        if self._pending_bytes <= 0:
            return None
        size = min(self.payload_size, self._pending_bytes)
        self._pending_bytes -= size
        data: Optional[bytes] = None
        if self._pending_data:
            chunks: list[bytes] = []
            need = size
            while need and self._pending_data:
                head = self._pending_data[0]
                if len(head) <= need:
                    chunks.append(head)
                    self._pending_data.pop(0)
                    need -= len(head)
                else:
                    chunks.append(head[:need])
                    self._pending_data[0] = head[need:]
                    need = 0
            data = b"".join(chunks)
        self._inflight[seq] = (size, data)
        self._order.append(seq)
        return size

    def lookup(self, seq: int) -> Optional[Tuple[int, Optional[bytes]]]:
        """Payload (size, data) for a retransmission, None if already acked."""
        return self._inflight.get(seq)

    def ack_upto(self, seq: int) -> int:
        """Release every packet strictly before ``seq``; returns count freed."""
        freed = 0
        order = self._order
        inflight = self._inflight
        while order and seq_cmp(order[0], seq) < 0:
            del inflight[order.popleft()]
            freed += 1
        return freed

    @property
    def inflight_packets(self) -> int:
        return len(self._inflight)


class ReceiveBuffer:
    """Reordering receive buffer with in-order delivery.

    ``deliver`` is invoked once per contiguous run handed to the
    application (monitors hook this).  Available space — what flow control
    advertises — shrinks with packets held for reordering *and* delivered
    packets the application has not yet drained (the sim application
    drains instantly by default).
    """

    def __init__(
        self,
        capacity_pkts: int,
        deliver: Optional[Callable[[int, Optional[bytes]], None]] = None,
        hold_for_app: bool = False,
    ):
        if capacity_pkts < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity_pkts = capacity_pkts
        self._deliver = deliver
        #: when True, delivered packets still occupy buffer space until the
        #: application explicitly reads them (disk-limited workloads where
        #: flow control must throttle the sender to the drain rate).
        self.hold_for_app = hold_for_app
        self.unread_packets = 0
        self._held: Dict[int, Tuple[int, Optional[bytes]]] = {}
        self.next_expected: Optional[int] = None
        self.delivered_bytes = 0
        self.delivered_packets = 0
        self.duplicates = 0
        # §4.6 speculation accounting
        self.speculation_hits = 0
        self.speculation_misses = 0
        # §4.3 overlapped IO accounting
        self._user_buffer_bytes = 0
        self.zero_copy_bytes = 0
        self.copied_bytes = 0

    def start(self, init_seq: int) -> None:
        self.next_expected = init_seq
        self._speculated = init_seq

    def post_user_buffer(self, nbytes: int) -> None:
        """Overlapped IO: extend the protocol buffer with user memory."""
        if nbytes < 0:
            raise ValueError("negative buffer size")
        self._user_buffer_bytes += nbytes

    @property
    def available(self) -> int:
        """Free packet slots (advertised in ACKs for flow control)."""
        return max(self.capacity_pkts - len(self._held) - self.unread_packets, 0)

    def app_read(self, npkts: int) -> int:
        """Application consumed ``npkts`` delivered packets (hold mode)."""
        if npkts < 0:
            raise ValueError("negative read count")
        taken = min(npkts, self.unread_packets)
        self.unread_packets -= taken
        return taken

    def accepts(self, seq: int) -> bool:
        """Would a packet with this sequence fit the buffer window?"""
        if self.next_expected is None:
            return False
        off = seq_off(self.next_expected, seq)
        return off < self.capacity_pkts - self.unread_packets

    def on_data(self, seq: int, size: int, data: Optional[bytes] = None) -> bool:
        """Accept one data packet; returns False for duplicates/overflow."""
        if self.next_expected is None:
            raise RuntimeError("buffer not started")
        off = seq_off(self.next_expected, seq)
        if off < 0 or seq in self._held:
            self.duplicates += 1
            return False
        if not self.accepts(seq):
            return False  # no room — dropped as if the NIC queue overflowed
        # Speculation: the receiver always guesses the largest-seen + 1.
        # Identity (not ordering) of two in-range seqs is wrap-safe.
        if seq == self._speculated:  # lint: disable=seqno-taint
            self.speculation_hits += 1
        else:
            self.speculation_misses += 1
        if seq_off(self._speculated, seq) >= 0:
            self._speculated = seq_inc(seq)
        self._held[seq] = (size, data)
        self._drain()
        return True

    def _drain(self) -> None:
        while self.next_expected in self._held:
            size, data = self._held.pop(self.next_expected)
            if self.hold_for_app:
                self.unread_packets += 1
            if self._user_buffer_bytes >= size:
                self._user_buffer_bytes -= size
                self.zero_copy_bytes += size
            else:
                self.copied_bytes += size
            self.delivered_bytes += size
            self.delivered_packets += 1
            if self._deliver is not None:
                self._deliver(size, data)
            self.next_expected = seq_inc(self.next_expected)

    @property
    def held_packets(self) -> int:
        return len(self._held)
