"""Protocol constants and per-socket configuration.

The values mirror §3–§4 of the paper: SYN (the constant rate-control /
ACK / NAK interval) is 0.01 s, MSS defaults to 1500 bytes, a packet pair
is emitted every 16 data packets, and the flow window is driven by a
16-sample median filter on packet arrival intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Rate-control / ACK interval, seconds (§3.1, §3.3: "The constant SYN
#: value in UDT is 0.01 second").
SYN = 0.01

#: UDT header bytes on every data/control packet (32-bit seqno + timestamp
#: + type fields — matches the reference implementation's 16-byte header).
UDT_HEADER = 16

#: Sequence number space: 31 usable bits, top bit is the loss-compression
#: flag (appendix).
MAX_SEQ_NO = 1 << 31

#: A packet pair is sent every N packets (§3.4: "We use N = 16").
PKT_PAIR_INTERVAL = 16

#: Sizes of the sliding windows feeding the median filters (§3.2, §3.4).
ARRIVAL_WINDOW = 16
PROBE_WINDOW = 16

#: Physical units of the constants and :class:`UdtConfig` fields above,
#: machine-read by the ``units`` lint rule (repro.analysis.units) as its
#: exact-name seed table: any identifier or attribute with one of these
#: names carries the declared unit wherever it appears in ``udt/`` and
#: ``sabul/``.  Units: ``s`` (seconds), ``us`` (microseconds), ``bytes``,
#: ``bits``, ``pkts`` (packets), ``pps`` (packets/s), ``bps`` (bits/s).
PARAM_UNITS = {
    "SYN": "s",
    "syn": "s",
    "UDT_HEADER": "bytes",
    "PKT_PAIR_INTERVAL": "pkts",
    "ARRIVAL_WINDOW": "pkts",
    "PROBE_WINDOW": "pkts",
    "mss": "bytes",
    "payload_size": "bytes",
    "max_flow_window": "pkts",
    "rcv_buffer_pkts": "pkts",
    "snd_buffer_pkts": "pkts",
    "initial_period": "s",
    "probe_interval": "pkts",
    "_probe_interval": "pkts",  # UdtCore's hot-path cache of the above
    "min_exp_timeout": "s",
}


@dataclass
class UdtConfig:
    """Tunables of one UDT endpoint.

    Every field corresponds to a designed-in knob from the paper; the
    defaults reproduce the published configuration.
    """

    #: Fixed data packet payload size in bytes, excluding UDT/UDP/IP
    #: headers.  The paper treats MSS as the full packet size with 1500
    #: matching the path MTU; we keep payload+headers == mss on the wire.
    mss: int = 1500

    #: Rate-control interval (seconds).  Exposed for the SYN-tradeoff
    #: ablation (§3.7: smaller SYN => more efficient, less friendly).
    syn: float = SYN

    #: Flow-control window on/off (Figure 7 ablation) and its cap.
    flow_control: bool = True
    max_flow_window: int = 1 << 20

    #: Receiver buffer size in packets (flow control feeds back
    #: min(window, available buffer), §3.2).
    rcv_buffer_pkts: int = 8192

    #: Send buffer size in packets; senders block (in the app model) when
    #: it fills.
    snd_buffer_pkts: int = 8192

    #: Initial packet sending period in seconds.  The reference
    #: implementation starts at 1 packet per SYN.
    initial_period: Optional[float] = None

    #: Packet-pair probe spacing (packets).
    probe_interval: int = PKT_PAIR_INTERVAL

    #: EXP (timeout) timer floor, seconds (reference implementation: 0.3 s).
    min_exp_timeout: float = 0.3

    #: Number of continuous EXP timeouts before the peer is declared dead.
    max_exp_count: int = 64

    #: Enable the §3.3 "freeze" — stop sending for one SYN after a NAK
    #: that reports fresh (post-decrease) loss.
    freeze_on_new_loss: bool = True

    #: Use bandwidth estimation to pick the increase parameter.  When
    #: False the ablation FixedAimdCC-style constant increase is used.
    bandwidth_estimation: bool = True

    #: §4.4: correct the sending period with the measured real sending
    #: rate.  Intended for real hosts where one send() costs more than
    #: the nominal period (the live runtime); in the simulator emission
    #: timing is exact, and a window-limited sender must NOT have its
    #: rate control frozen at the achieved rate, so this defaults off.
    correct_sending_rate: bool = False

    def __post_init__(self) -> None:
        if self.mss <= UDT_HEADER + 28:
            raise ValueError(
                f"mss {self.mss} must exceed the UDT+UDP/IP headers ({UDT_HEADER + 28})"
            )
        if self.syn <= 0:
            raise ValueError("syn must be positive")
        if self.rcv_buffer_pkts < 2 or self.snd_buffer_pkts < 2:
            raise ValueError("buffers need at least 2 packets")
        if self.probe_interval < 2:
            raise ValueError("probe interval must be >= 2")

    @property
    def payload_size(self) -> int:
        """Application bytes carried per full data packet.

        ``mss`` is the *total on-wire* packet size (the paper equates the
        optimal MSS with the path MTU, Figure 15), so the payload excludes
        the UDT header and the IP/UDP headers (28 bytes).
        """
        return self.mss - UDT_HEADER - 28
