"""Loss-information storage (paper appendix + §4.2).

Continuous losses are stored as ``[start, end]`` range nodes instead of one
entry per lost packet, so the cost of every insert/delete/query scales with
the number of *loss events*, not lost packets — the property Figure 9
measures (~1 µs per access, independent of how many packets a congestion
event killed).

The lists keep ranges sorted by an *unwrapped* absolute coordinate so the
31-bit sequence wrap (§6) is handled uniformly: each incoming sequence
number is unwrapped against the most recent position, which is valid as
long as live loss spans less than half the sequence space — guaranteed
because the flow window is far smaller than 2^30 packets.

``NaiveLossList`` is the strawman (one entry per lost sequence number) used
by the Figure 9 ablation benchmark.
"""

from __future__ import annotations

# This module IS the wrap handling: every internal comparison and
# addition runs on the unwrapped monotone absolute axis built by
# _Unwrapper (see module docstring), where raw int arithmetic is the
# point.  Boundary crossings go through seq_off/valid_seq/to_seq.
# lint: disable-file=seqno-taint

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Tuple

from repro.udt.params import MAX_SEQ_NO
from repro.udt.seqno import seq_inc, seq_off, valid_seq


class _Unwrapper:
    """Maps wrapped 31-bit sequence numbers to a monotone absolute axis."""

    __slots__ = ("_last_abs", "_last_seq", "_initialized")

    def __init__(self) -> None:
        self._last_abs = 0
        self._last_seq = 0
        self._initialized = False

    def to_abs(self, seq: int) -> int:
        if not valid_seq(seq):
            raise ValueError(f"sequence number {seq} out of range")
        if not self._initialized:
            self._initialized = True
            self._last_seq = seq
            self._last_abs = seq
            return seq
        a = self._last_abs + seq_off(self._last_seq, seq)
        if a > self._last_abs:
            self._last_abs = a
            self._last_seq = seq
        return a

    @staticmethod
    def to_seq(abs_pos: int) -> int:
        return abs_pos % MAX_SEQ_NO


class _RangeList:
    """Sorted disjoint inclusive ranges on the absolute axis.

    Mirrors the appendix insert algorithm: locate the would-be position,
    extend/merge with the prior node when overlapping or adjacent, then
    coalesce with following nodes.  ``bisect`` gives O(log E) search —
    the same "few steps around the near neighbours" locality the static
    list exploits.
    """

    __slots__ = ("starts", "ends", "count")

    def __init__(self) -> None:
        self.starts: List[int] = []
        self.ends: List[int] = []
        self.count = 0  # number of individual sequence numbers stored

    def __len__(self) -> int:
        return self.count

    def events(self) -> int:
        """Number of range nodes (loss events)."""
        return len(self.starts)

    def ranges(self) -> Iterator[Tuple[int, int]]:
        return zip(self.starts, self.ends)

    def first(self) -> Optional[int]:
        return self.starts[0] if self.starts else None

    def contains(self, x: int) -> bool:
        i = bisect_right(self.starts, x) - 1
        return i >= 0 and self.ends[i] >= x

    def insert(self, a: int, b: int) -> int:
        """Insert inclusive [a, b]; returns how many numbers were new."""
        if b < a:
            raise ValueError(f"inverted range [{a}, {b}]")
        starts, ends = self.starts, self.ends
        # Leftmost node that could merge with [a, b] (adjacency counts).
        lo = bisect_left(ends, a - 1)
        # Rightmost node that could merge.
        hi = bisect_right(starts, b + 1)
        if lo >= hi:
            # No overlap/adjacency: plain insertion.
            starts.insert(lo, a)
            ends.insert(lo, b)
            self.count += b - a + 1
            return b - a + 1
        # Merge nodes lo..hi-1 with [a, b].
        new_a = min(a, starts[lo])
        new_b = max(b, ends[hi - 1])
        absorbed = sum(ends[i] - starts[i] + 1 for i in range(lo, hi))
        del starts[lo:hi]
        del ends[lo:hi]
        starts.insert(lo, new_a)
        ends.insert(lo, new_b)
        added = (new_b - new_a + 1) - absorbed
        self.count += added
        return added

    def remove_one(self, x: int) -> bool:
        """Remove a single number; splits its range if interior."""
        starts, ends = self.starts, self.ends
        i = bisect_right(starts, x) - 1
        if i < 0 or ends[i] < x:
            return False
        s, e = starts[i], ends[i]
        if s == e:
            del starts[i]
            del ends[i]
        elif x == s:
            starts[i] = x + 1
        elif x == e:
            ends[i] = x - 1
        else:
            ends[i] = x - 1
            starts.insert(i + 1, x + 1)
            ends.insert(i + 1, e)
        self.count -= 1
        return True

    def remove_upto(self, x: int) -> int:
        """Remove every number <= x; returns how many were removed."""
        starts, ends = self.starts, self.ends
        i = bisect_right(ends, x)
        removed = sum(ends[j] - starts[j] + 1 for j in range(i))
        if i:
            del starts[:i]
            del ends[:i]
        if starts and starts[0] <= x:
            removed += x - starts[0] + 1
            starts[0] = x + 1
        self.count -= removed
        return removed

    def pop_first(self) -> Optional[int]:
        """Remove and return the smallest stored number."""
        if not self.starts:
            return None
        x = self.starts[0]
        if self.starts[0] == self.ends[0]:
            del self.starts[0]
            del self.ends[0]
        else:
            self.starts[0] += 1
        self.count -= 1
        return x


class SenderLossList:
    """Sequence numbers reported lost by the receiver, pending retransmit.

    The sender always services this list before new data (§4.8: "It always
    sends the lost packets with higher priority").
    """

    def __init__(self) -> None:
        self._rl = _RangeList()
        self._uw = _Unwrapper()

    def __len__(self) -> int:
        return len(self._rl)

    def events(self) -> int:
        return self._rl.events()

    def insert(self, seq1: int, seq2: Optional[int] = None) -> int:
        if seq2 is None:
            seq2 = seq1
        a = self._uw.to_abs(seq1)
        b = a + seq_off(seq1, seq2)
        if b < a:
            raise ValueError(f"inverted loss range {seq1}..{seq2}")
        return self._rl.insert(a, b)

    def remove_upto(self, seq: int) -> int:
        """Drop everything at or before ``seq`` (covered by a new ACK)."""
        return self._rl.remove_upto(self._uw.to_abs(seq))

    def pop(self) -> Optional[int]:
        """Lowest lost sequence number, removed — next retransmission."""
        a = self._rl.pop_first()
        return None if a is None else _Unwrapper.to_seq(a)

    def peek(self) -> Optional[int]:
        a = self._rl.first()
        return None if a is None else _Unwrapper.to_seq(a)

    def contains(self, seq: int) -> bool:
        return self._rl.contains(self._uw.to_abs(seq))


class ReceiverLossList:
    """Holes detected in the receive stream, with NAK feedback state.

    Each loss event remembers when its loss report was last sent and how
    many times, so reports can be retransmitted after an *increasing*
    interval (§3.1, and §3.5's congestion-collapse guard).
    """

    def __init__(self) -> None:
        self._rl = _RangeList()
        self._uw = _Unwrapper()
        # feedback state per absolute seq -> [last_sent_time, sent_count]
        # kept per-event at range granularity: dict keyed by range start.
        self._feedback: dict[int, list] = {}

    def __len__(self) -> int:
        return len(self._rl)

    def events(self) -> int:
        return self._rl.events()

    def insert(self, seq1: int, seq2: Optional[int] = None, now: float = 0.0) -> int:
        if seq2 is None:
            seq2 = seq1
        a = self._uw.to_abs(seq1)
        b = a + seq_off(seq1, seq2)
        added = self._rl.insert(a, b)
        if added:
            self._feedback[a] = [now, 1]
        return added

    def remove(self, seq: int) -> bool:
        """A retransmission arrived; drop just this number."""
        return self._rl.remove_one(self._uw.to_abs(seq))

    def remove_upto(self, seq: int) -> int:
        return self._rl.remove_upto(self._uw.to_abs(seq))

    def first(self) -> Optional[int]:
        a = self._rl.first()
        return None if a is None else _Unwrapper.to_seq(a)

    def contains(self, seq: int) -> bool:
        return self._rl.contains(self._uw.to_abs(seq))

    def ranges(self) -> List[Tuple[int, int]]:
        return [
            (_Unwrapper.to_seq(a), _Unwrapper.to_seq(b)) for a, b in self._rl.ranges()
        ]

    def expired_ranges(self, now: float, rtt: float) -> List[Tuple[int, int]]:
        """Loss ranges whose report timed out and must be re-NAKed.

        The per-event resend interval grows linearly with the number of
        reports already sent (``count * RTT`` plus one SYN of slack), so a
        receiver drowning in loss backs off instead of melting the sender
        with feedback (§3.5).
        """
        out = []
        gc: List[int] = []
        live_starts = set(self._rl.starts)
        for key in list(self._feedback):
            if key not in live_starts:
                gc.append(key)
        for key in gc:
            del self._feedback[key]
        for a, b in self._rl.ranges():
            st = self._feedback.setdefault(a, [0.0, 1])
            # First resend waits 2x(RTT+SYN): a NAK'd retransmission needs
            # a full RTT to arrive, so re-reporting sooner just duplicates
            # it.  Subsequent resends back off further (§3.5).
            interval = (st[1] + 1) * (rtt + 0.01)
            if now - st[0] >= interval:
                st[0] = now
                st[1] += 1
                out.append((_Unwrapper.to_seq(a), _Unwrapper.to_seq(b)))
        return out


class NaiveLossList:
    """Strawman: one set entry per lost packet (what §4.2 warns against)."""

    def __init__(self) -> None:
        self._lost: set[int] = set()

    def __len__(self) -> int:
        return len(self._lost)

    def insert(self, seq1: int, seq2: Optional[int] = None) -> int:
        if seq2 is None:
            seq2 = seq1
        n = seq_off(seq1, seq2) + 1
        before = len(self._lost)
        for i in range(n):
            self._lost.add(seq_inc(seq1, i))
        return len(self._lost) - before

    def remove_upto(self, seq: int) -> int:
        doomed = [s for s in self._lost if seq_off(s, seq) >= 0]
        for s in doomed:
            self._lost.remove(s)
        return len(doomed)

    def pop(self) -> Optional[int]:
        if not self._lost:
            return None
        s = min(self._lost)  # O(n) scan — the point of the ablation
        self._lost.remove(s)
        return s

    def contains(self, seq: int) -> bool:
        return seq in self._lost
