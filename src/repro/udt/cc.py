"""Congestion control (§3.3–§3.5).

UDT's control is rate-based AIMD whose *increase parameter is chosen from
estimated available bandwidth* (formula (1)); the decrease is a gentle
1/9th (formula (3)) with a one-SYN freeze on fresh congestion.  The
congestion-control algorithm is pluggable (the paper's conclusion calls
this out as a design goal): subclass :class:`CongestionControl` and hand it
to the socket/flow factory.

Formula (1) with B the estimated available bandwidth in bits/s::

    inc = max( 10 ** (ceil(log10(B)) - 9), 1/1500 ) * (1500 / MSS)   [packets/SYN]

which yields the paper's Table 1 (MSS = 1500):

    B in (1000, 10000] Mb/s -> 10        B in (1, 10] Mb/s   -> 0.01
    B in (100, 1000] Mb/s   -> 1         B in (0.1, 1] Mb/s  -> 0.001
    B in (10, 100] Mb/s     -> 0.1       B <= 0.1 Mb/s       -> 0.00067

Formula (2) converts the increment into a new packet-sending period::

    SYN / P_new = SYN / P_old + inc

Formula (3), on congestion::

    P_new = P_old * 1.125          (rate decrease factor 1/9)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple

from repro.obs import bus as OB
from repro.udt.params import UdtConfig
from repro.udt.seqno import seq_cmp

#: Multiplicative period increase on congestion — rate x 8/9 (formula (3)).
DECREASE_FACTOR = 1.125

#: Initial slow-start window in packets (reference implementation value).
INITIAL_CWND = 16.0


def increase_param(bw_bps: float, mss: int) -> float:
    """Formula (1): packets to add per SYN given available bandwidth."""
    if bw_bps <= 0:
        return 1500.0 / mss / 1500.0  # the 1/MSS floor
    inc = 10.0 ** (math.ceil(math.log10(bw_bps)) - 9)
    inc = max(inc, 1.0 / 1500.0)
    return inc * (1500.0 / mss)


class CcContext(Protocol):
    """What a congestion controller may observe about its endpoint."""

    def now(self) -> float: ...

    @property
    def rtt(self) -> float: ...

    @property
    def recv_rate(self) -> float:  # packets/s measured by the receiver
        ...

    @property
    def bandwidth(self) -> float:  # packets/s link capacity estimate
        ...

    @property
    def max_seq_sent(self) -> int: ...


@dataclass
class LossEvent:
    """NAK contents handed to the controller."""

    ranges: List[Tuple[int, int]]
    biggest_seq: int
    lost_packets: int


class CongestionControl:
    """Base class: fixed-rate, window-unlimited (pure pacing)."""

    def __init__(self, config: UdtConfig):
        self.config = config
        # The reference implementation starts the period at 1 us: during
        # slow start sending is purely window-limited.
        self.period: float = (
            config.initial_period if config.initial_period is not None else 1e-6
        )
        self.window: float = INITIAL_CWND
        self.ctx: Optional[CcContext] = None
        #: set True by on_loss to request a one-SYN send freeze (§3.3).
        self.freeze_requested = False
        #: slow-start exit threshold; the core lowers it to the peer's
        #: advertised flow window after the handshake.
        self.max_cwnd: float = float(config.max_flow_window)
        #: telemetry (set by the owning core; None when run standalone).
        self.bus: Optional[OB.EventBus] = None
        self.src: str = "cc"

    # -- lifecycle -------------------------------------------------------
    def init(self, ctx: CcContext) -> None:
        self.ctx = ctx

    def _emit(self, kind: str, **fields: object) -> None:
        """Emit a telemetry event if a live bus is attached (rare path)."""
        bus = self.bus
        if bus is not None and bus.enabled and self.ctx is not None:
            bus.emit(kind, self.ctx.now(), self.src, **fields)

    # -- event hooks -------------------------------------------------------
    def on_ack(self, ack_seq: int) -> None:
        """Called when an ACK advances the acknowledged sequence."""

    def on_loss(self, loss: LossEvent) -> None:
        """Called when a NAK arrives at the sender."""

    def on_timeout(self) -> None:
        """Called on an EXP (no-feedback) timeout."""

    # -- fluid (hybrid-tier) hooks ----------------------------------------
    # The fluid tier (repro.sim.fluid) advances steady bulk-transfer
    # phases analytically; a controller opts in by implementing these.
    def fluid_eligible(self) -> bool:
        """True when the rate law can be iterated without packet events."""
        return False

    def fluid_tick(self) -> float:
        """Apply one SYN-interval rate update analytically.

        Must mirror the per-SYN update ``on_ack`` would apply during
        steady bulk transfer, using the frozen context estimates; returns
        the new sending rate in packets/s.
        """
        raise NotImplementedError

    def fluid_resume(self, rate_pps: float) -> None:
        """Re-seed packet-mode state after a fluid span at ``rate_pps``."""

    # -- observability ----------------------------------------------------
    @property
    def rate_pps(self) -> float:
        return 1.0 / self.period if self.period > 0 else float("inf")


class UdtNativeCC(CongestionControl):
    """The paper's algorithm: bandwidth-estimating AIMD + slow start.

    * Increase every SYN (rate-limited; ACKs arrive every SYN anyway) by
      formula (1) applied to estimated available bandwidth B:
      ``B = L - C`` normally, clamped to ``min(L/9, L - C)`` while still
      recovering from the last decrease (§3.4).
    * Decrease by factor 1/9 when a NAK reports loss in packets sent
      *after* the previous decrease (a fresh congestion event), plus a
      one-SYN freeze (§3.3); NAKs replaying old loss do not trigger
      further decreases — the §6 "processing continuous loss" lesson.
    * Slow start: window doubles-by-ack until the first loss or the window
      cap, mirroring the reference implementation; on exit the sending
      period is seeded from the measured receive rate.
    """

    def __init__(self, config: UdtConfig):
        super().__init__(config)
        self.slow_start = True
        self.last_dec_period = self.period
        # None until the first decrease (a -1 sentinel would need raw
        # integer comparison, which seqno-taint forbids on seq values).
        self.last_dec_seq: Optional[int] = None
        self.last_rc_time = 0.0
        self.last_ack_seq = 0
        self.decreases = 0
        self.increases = 0
        self.freezes = 0

    def init(self, ctx: CcContext) -> None:
        super().init(ctx)
        self.last_rc_time = ctx.now()

    # -- increase ---------------------------------------------------------
    def on_ack(self, ack_seq: int) -> None:
        ctx = self.ctx
        assert ctx is not None, "controller not initialised"
        now = ctx.now()
        syn = self.config.syn
        # Small tolerance: ACKs arrive every SYN up to float rounding, and
        # skipping a tick would halve the effective control frequency.
        if now - self.last_rc_time < syn - 1e-9:
            return
        self.last_rc_time = now
        recv_rate = ctx.recv_rate

        if self.slow_start:
            acked = seq_cmp(ack_seq, self.last_ack_seq)
            if acked > 0:
                self.window = min(self.window + acked, self.max_cwnd)
            self.last_ack_seq = ack_seq
            if self.window >= self.max_cwnd:
                self._exit_slow_start()
            return
        self.last_ack_seq = ack_seq

        # Post-slow-start congestion window: enough for one (SYN+RTT) of
        # flight at the measured delivery rate (§3.2's dynamic window,
        # computed sender-side as in the reference implementation).
        if recv_rate > 0:
            self.window = recv_rate * (syn + ctx.rtt) + INITIAL_CWND

        # Rate increase, formula (1)/(2).
        capacity = ctx.bandwidth  # L, packets/s
        current = 1.0 / self.period  # C, packets/s
        mss = self.config.mss
        if not self.config.bandwidth_estimation or capacity <= 0:
            inc = 1.0 * (1500.0 / mss)  # fixed 1 packet/SYN fallback
        else:
            if self.period > self.last_dec_period:
                # Still below the pre-decrease rate: everyone backed off by
                # 1/9, so at most L/9 is actually spare (§3.4).
                avail = min(capacity / 9.0, capacity - current)
            else:
                avail = capacity - current
            inc = increase_param(avail * mss * 8.0, mss)
        # §4.4 (opt-in, live runtime): if the host cannot actually send
        # at 1/period — one send costs more than the nominal interval —
        # correct P' with the real sending rate before applying formula
        # (2); otherwise the period keeps dropping while the send path
        # silently saturates.
        period = self.period
        if self.config.correct_sending_rate:
            achieved = getattr(ctx, "achieved_period", 0.0)
            if achieved > period and 1.0 / period > 1.2 * (1.0 / achieved):
                period = achieved
        self.period = (period * syn) / (period * inc + syn)
        self.increases += 1

    # -- fluid (hybrid-tier) hooks ----------------------------------------
    def fluid_eligible(self) -> bool:
        # Slow start is window-driven (doubles by ack); the fluid model
        # only covers the post-slow-start rate law.
        return not self.slow_start

    def fluid_tick(self) -> float:
        # The exact per-SYN difference equation from on_ack, with the
        # context estimates (capacity, recv rate) frozen at span entry.
        # The §4.4 achieved-period correction is skipped: fluid pacing is
        # ideal by construction.
        ctx = self.ctx
        assert ctx is not None, "controller not initialised"
        syn = self.config.syn
        mss = self.config.mss
        capacity = ctx.bandwidth
        current = 1.0 / self.period
        if not self.config.bandwidth_estimation or capacity <= 0:
            inc = 1.0 * (1500.0 / mss)
        else:
            if self.period > self.last_dec_period:
                avail = min(capacity / 9.0, capacity - current)
            else:
                avail = capacity - current
            inc = increase_param(avail * mss * 8.0, mss)
        self.period = (self.period * syn) / (self.period * inc + syn)
        self.increases += 1
        return 1.0 / self.period

    def fluid_resume(self, rate_pps: float) -> None:
        ctx = self.ctx
        assert ctx is not None, "controller not initialised"
        # Window sized for one (SYN+RTT) of flight at the exit rate, as
        # on_ack would compute once the receiver's rate estimate catches
        # up; last_rc_time realigns the SYN gate to the resume epoch.
        if rate_pps > 0:
            self.window = rate_pps * (self.config.syn + ctx.rtt) + INITIAL_CWND
        self.last_rc_time = ctx.now()

    def _exit_slow_start(self) -> None:
        self.slow_start = False
        ctx = self.ctx
        recv_rate = ctx.recv_rate if ctx is not None else 0.0
        if recv_rate > 0:
            self.period = 1.0 / recv_rate
        else:
            self.period = (ctx.rtt + self.config.syn) / max(self.window, 1.0)
        self._emit(OB.CC_SLOWSTART_EXIT, period=self.period, window=self.window)

    # -- decrease -----------------------------------------------------------
    def on_loss(self, loss: LossEvent) -> None:
        ctx = self.ctx
        assert ctx is not None, "controller not initialised"
        if self.slow_start:
            self._exit_slow_start()
        if (
            self.last_dec_seq is None
            or seq_cmp(loss.biggest_seq, self.last_dec_seq) > 0
        ):
            # Fresh congestion: packets sent after the previous decrease
            # are being lost.  Apply formula (3) and freeze one SYN.
            self.last_dec_period = self.period
            self.period *= DECREASE_FACTOR
            self.last_dec_seq = ctx.max_seq_sent
            self.decreases += 1
            if self.config.freeze_on_new_loss:
                self.freeze_requested = True
                self.freezes += 1
            self._emit(OB.CC_DECREASE, trigger="loss", period=self.period)
        # NAKs for pre-decrease packets carry no new congestion signal.

    def on_timeout(self) -> None:
        if self.slow_start:
            self._exit_slow_start()
        # Continuous timeouts mean feedback is not returning at all; the
        # EXP path in the core retransmits, and we back the rate off once.
        self.last_dec_period = self.period
        self.period *= DECREASE_FACTOR
        if self.ctx is not None:
            self.last_dec_seq = self.ctx.max_seq_sent
        self.decreases += 1
        self._emit(OB.CC_DECREASE, trigger="timeout", period=self.period)


class FixedAimdCC(UdtNativeCC):
    """Ablation: TCP-style fixed additive increase (no bandwidth estimate).

    Identical to the native controller except formula (1) is replaced by a
    constant increment, demonstrating what bandwidth estimation buys
    (efficiency at high BDP, faster convergence to fairness).
    """

    def __init__(self, config: UdtConfig, inc_packets: float = 1.0):
        cfg = UdtConfig(**{**config.__dict__, "bandwidth_estimation": False})
        super().__init__(cfg)
        self.inc_packets = inc_packets

    def on_ack(self, ack_seq: int) -> None:
        ctx = self.ctx
        assert ctx is not None
        now = ctx.now()
        syn = self.config.syn
        if now - self.last_rc_time < syn - 1e-9:
            return
        self.last_rc_time = now
        if self.slow_start:
            acked = seq_cmp(ack_seq, self.last_ack_seq)
            if acked > 0:
                self.window = min(self.window + acked, self.max_cwnd)
            self.last_ack_seq = ack_seq
            if self.window >= self.max_cwnd:
                self._exit_slow_start()
            return
        self.last_ack_seq = ack_seq
        if ctx.recv_rate > 0:
            self.window = ctx.recv_rate * (syn + ctx.rtt) + INITIAL_CWND
        inc = self.inc_packets * (1500.0 / self.config.mss)
        self.period = (self.period * syn) / (self.period * inc + syn)
        self.increases += 1

    def fluid_tick(self) -> float:
        # Constant additive increase — the ablation's on_ack law.
        syn = self.config.syn
        inc = self.inc_packets * (1500.0 / self.config.mss)
        self.period = (self.period * syn) / (self.period * inc + syn)
        self.increases += 1
        return 1.0 / self.period
