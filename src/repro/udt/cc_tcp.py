"""TCP-style congestion controllers running over the UDT framework.

The paper's conclusion states UDT is designed so that "alternate ...
congestion control algorithms ... can be tested"; the reference
implementation later shipped exactly this as its CCC sample set (CTCP,
CScalableTCP, CHSLTCP, CBiCTCP ...).  This module provides the same
family: a window-based AIMD controller driven by UDT's ACK/NAK events,
parameterised by the identical response functions used by the native TCP
agents (:mod:`repro.tcp.responses`) — so the *same* response function can
be compared inside a kernel-style TCP and on top of UDT's UDP framing.

Differences from real TCP mechanics, inherent to the UDT event model:

* ACKs arrive per SYN (not per packet), so the per-ACK window increment
  is applied once per newly-acknowledged packet reported by the ACK;
* loss is explicit (NAK) rather than inferred from dupacks;
* there is no RTO here — UDT's EXP timer plays that role.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import bus as OB
from repro.tcp.responses import Response
from repro.udt.cc import CongestionControl, LossEvent
from repro.udt.params import UdtConfig
from repro.udt.seqno import seq_cmp


class TcpOverUdtCC(CongestionControl):
    """Window-based (ACK-clocked) control over UDT, pluggable response."""

    def __init__(self, config: UdtConfig, response: Optional[Response] = None):
        super().__init__(config)
        self.response = response if response is not None else Response()
        self.window = 2.0
        self.ssthresh = float(1 << 20)
        self.period = 0.0  # purely window-limited, like TCP
        self.last_ack_seq = 0
        # None until the first decrease (avoids raw sentinel comparison
        # on a wrap-around sequence value; see the seqno-taint lint rule).
        self.last_dec_seq: Optional[int] = None
        self._rtt_mark = 0

    @property
    def in_slow_start(self) -> bool:
        return self.window < self.ssthresh

    def on_ack(self, ack_seq: int) -> None:
        ctx = self.ctx
        assert ctx is not None
        acked = seq_cmp(ack_seq, self.last_ack_seq)
        if acked <= 0:
            return
        self.last_ack_seq = ack_seq
        self.response.on_ack_arrival(acked, ctx.now())
        self.response.on_rtt_sample(ctx.rtt)
        if self.in_slow_start:
            self.window = min(self.window + acked, self.max_cwnd)
        else:
            for _ in range(acked):
                self.window += self.response.ack_increment(self.window)
            self.window = min(self.window, self.max_cwnd)
            if seq_cmp(ack_seq, self._rtt_mark) >= 0:
                self.response.per_rtt_adjust(_SenderShim(self))
                self._rtt_mark = ctx.max_seq_sent

    def on_loss(self, loss: LossEvent) -> None:
        ctx = self.ctx
        assert ctx is not None
        # One multiplicative decrease per congestion epoch, like NewReno's
        # recover guard (and UDT's own §3.3 rule).
        if (
            self.last_dec_seq is not None
            and seq_cmp(loss.biggest_seq, self.last_dec_seq) <= 0
        ):
            return
        self.last_dec_seq = ctx.max_seq_sent
        override = self.response.ssthresh_after_loss(_SenderShim(self))
        if override is not None:
            self.ssthresh = max(override, 2.0)
        else:
            self.ssthresh = max(self.window * self.response.backoff(self.window), 2.0)
        self.window = self.ssthresh
        self._emit(OB.CC_DECREASE, trigger="loss", window=self.window)

    def on_timeout(self) -> None:
        self.response.on_timeout()
        self.ssthresh = max(self.window / 2.0, 2.0)
        self.window = 2.0
        self._emit(OB.CC_DECREASE, trigger="timeout", window=self.window)


class _SenderShim:
    """Adapter: response functions expect an object with ``cwnd``."""

    __slots__ = ("_cc",)

    def __init__(self, cc: TcpOverUdtCC):
        self._cc = cc

    @property
    def cwnd(self) -> float:
        return self._cc.window

    @cwnd.setter
    def cwnd(self, value: float) -> None:
        self._cc.window = max(value, 2.0)


def ctcp(config: UdtConfig) -> TcpOverUdtCC:
    """CTCP: standard Reno AIMD over UDT (the UDT4 sample)."""
    return TcpOverUdtCC(config, Response())


def make_cc_factory(response_factory):
    """Build a ``cc_factory`` for UdtFlow from a Response factory, e.g.
    ``make_cc_factory(HighSpeedResponse)``."""

    def factory(config: UdtConfig) -> TcpOverUdtCC:
        return TcpOverUdtCC(config, response_factory())

    return factory
