"""High-precision timing (§4.5).

General-purpose OS sleeps are far too coarse for rate control at high
packet rates (the paper measured ~10 ms minimum sleep on Linux of its
era, during which a Gb/s NIC would emit ~833 packets).  UDT's answer is
busy-waiting on the CPU clock; we implement the standard hybrid: sleep
until close to the deadline, then spin out the rest.
"""

from __future__ import annotations

import time

#: Sleep is only trusted to wake up within this margin; inside it we spin.
SPIN_THRESHOLD = 0.0015


def wait_until(deadline: float, spin_threshold: float = SPIN_THRESHOLD) -> None:
    """Block until ``time.perf_counter() >= deadline`` with µs precision."""
    while True:
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            return
        if remaining > spin_threshold:
            time.sleep(remaining - spin_threshold)
        # else: busy-wait; the loop condition is the spin


class SpinClock:
    """Monotonic clock + precise waiting, measurable for tests."""

    def __init__(self, spin_threshold: float = SPIN_THRESHOLD):
        self.spin_threshold = spin_threshold
        self.origin = time.perf_counter()

    def now(self) -> float:
        return time.perf_counter() - self.origin

    def wait_until(self, t: float) -> None:
        wait_until(self.origin + t, self.spin_threshold)
