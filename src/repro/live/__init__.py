"""Run the UDT protocol core over real UDP sockets (loopback-scale).

The same sans-IO :class:`~repro.udt.core.UdtCore` that drives all
simulations binds here to the genuine BSD sockets API, a receive thread,
and a high-precision hybrid sleep/spin timer thread (§4.5) — so the
implementation techniques of §4 run for real, at the rates a Python
process on loopback can sustain.
"""

from repro.live.clock import SpinClock, wait_until
from repro.live.transport import LiveUdtEndpoint, loopback_transfer

__all__ = ["SpinClock", "wait_until", "LiveUdtEndpoint", "loopback_transfer"]
