"""UDT over real UDP sockets.

Architecture mirrors §4.8: per endpoint, a receive thread blocks on the
UDP socket (with a timeout, like the reference's ``RCV_TIMEO`` loop) and
a timer thread services the core's scheduled events (send pacing, SYN,
EXP) with the §4.5 hybrid spin timer.  A single lock serialises all core
access; the core itself is the identical sans-IO state machine the
simulator runs.
"""

from __future__ import annotations

import heapq
import itertools
import socket
import threading
import time
from typing import Callable, Optional, Tuple

from repro.live.clock import SPIN_THRESHOLD
from repro.udt import packets as P
from repro.udt.core import UdtCore
from repro.udt.params import UdtConfig


class _ThreadScheduler:
    """Scheduler-protocol implementation backed by a timer thread."""

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._cond = threading.Condition(lock)
        self._heap: list = []
        self._counter = itertools.count()
        self._origin = time.perf_counter()
        self._stop = False
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def now(self) -> float:
        return time.perf_counter() - self._origin

    def call_at(self, when: float, fn: Callable[[], None]):
        entry = [when, next(self._counter), fn, False]  # [t, seq, fn, cancelled]
        with self._cond:
            heapq.heappush(self._heap, entry)
            self._cond.notify()
        return entry

    def cancel(self, handle) -> None:
        handle[3] = True
        handle[2] = None

    def stop(self) -> None:
        with self._cond:
            self._stop = True
            self._cond.notify()
        if self._thread.is_alive() and threading.current_thread() is not self._thread:
            self._thread.join(timeout=2.0)

    def _loop(self) -> None:
        while True:
            with self._cond:
                if self._stop:
                    return
                if not self._heap:
                    self._cond.wait(timeout=0.05)
                    continue
                when = self._heap[0][0]
                delay = when - self.now()
                if delay > SPIN_THRESHOLD:
                    self._cond.wait(timeout=delay - SPIN_THRESHOLD * 0.5)
                    continue
                if delay > 0:
                    # Spin phase: release the lock so the receive thread
                    # keeps running, then re-check.
                    pass
                else:
                    entry = heapq.heappop(self._heap)
                    if not entry[3] and entry[2] is not None:
                        entry[2]()  # run under the lock, like sim events
                    continue
            # busy-wait outside the lock for sub-threshold delays
            while True:
                with self._cond:
                    if self._stop or not self._heap:
                        break
                    if self._heap[0][0] - self.now() <= 0:
                        break
                time.sleep(0)


class LiveUdtEndpoint:
    """One UDT endpoint on a real UDP socket.

    >>> server = LiveUdtEndpoint(("127.0.0.1", 0)); server.listen()
    >>> client = LiveUdtEndpoint(("127.0.0.1", 0))
    >>> client.connect(server.local_addr)
    >>> client.send(b"hello")
    """

    def __init__(
        self,
        bind_addr: Tuple[str, int] = ("127.0.0.1", 0),
        config: Optional[UdtConfig] = None,
        deliver: Optional[Callable[[bytes], None]] = None,
    ):
        if config is None:
            config = UdtConfig(correct_sending_rate=True)  # §4.4 on real hosts
        self.config = config
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind(bind_addr)
        self.sock.settimeout(0.05)
        self.local_addr = self.sock.getsockname()
        self.peer: Optional[Tuple[str, int]] = None
        self._lock = threading.RLock()
        self._sched = _ThreadScheduler(self._lock)
        self._deliver_cb = deliver
        self.received = bytearray()
        self._recv_cond = threading.Condition(self._lock)
        self.core = UdtCore(
            self.config,
            self._sched,
            self._transmit,
            deliver=self._on_deliver,
            name=f"live:{self.local_addr[1]}",
        )
        self._rx_thread = threading.Thread(target=self._rx_loop, daemon=True)
        self._closed = False
        self._sched.start()
        self._rx_thread.start()

    # -- wiring ----------------------------------------------------------
    def _transmit(self, msg, size: int) -> None:
        if self.peer is None or self._closed:
            return
        try:
            self.sock.sendto(msg.encode(), self.peer)
        except OSError:
            pass  # socket closed under us during shutdown

    def _on_deliver(self, size: int, data: Optional[bytes]) -> None:
        if data is not None:
            self.received.extend(data)
        if self._deliver_cb is not None and data is not None:
            self._deliver_cb(data)
        self._recv_cond.notify_all()

    def _rx_loop(self) -> None:
        while not self._closed:
            try:
                datagram, addr = self.sock.recvfrom(65536)
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                msg = P.decode(datagram)
            except ValueError:
                continue
            with self._lock:
                if self.peer is None:
                    self.peer = addr
                self.core.on_datagram(msg, len(datagram))

    # -- application API ----------------------------------------------------
    def listen(self) -> None:
        with self._lock:
            self.core.listen()

    def connect(self, peer: Tuple[str, int], timeout: float = 5.0) -> None:
        self.peer = peer
        with self._lock:
            self.core.connect()
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            with self._lock:
                if self.core.connected:
                    return
            time.sleep(0.005)
        raise TimeoutError(f"UDT handshake with {peer} timed out")

    @property
    def connected(self) -> bool:
        with self._lock:
            return self.core.connected

    def send(self, data: bytes, timeout: float = 30.0) -> int:
        """Queue application bytes, blocking while the send buffer is full."""
        sent = 0
        deadline = time.perf_counter() + timeout
        while sent < len(data):
            with self._lock:
                sent += self.core.send(len(data) - sent, data[sent:])
            if sent < len(data):
                if time.perf_counter() > deadline:
                    raise TimeoutError("send buffer stayed full")
                time.sleep(0.002)
        return sent

    def recv_exactly(self, nbytes: int, timeout: float = 30.0) -> bytes:
        """Block until ``nbytes`` of in-order data have been delivered."""
        deadline = time.monotonic() + timeout
        with self._recv_cond:
            while len(self.received) < nbytes:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"received {len(self.received)}/{nbytes} bytes"
                    )
                self._recv_cond.wait(timeout=min(remaining, 0.1))
            out = bytes(self.received[:nbytes])
            del self.received[:nbytes]
            return out

    # -- §4.7's file-transfer extensions ---------------------------------
    def send_file(self, path: str, chunk: int = 1 << 16, timeout: float = 60.0) -> int:
        """``sendfile``: stream a file from disk into the connection."""
        total = 0
        with open(path, "rb") as fh:
            while True:
                block = fh.read(chunk)
                if not block:
                    break
                total += self.send(block, timeout=timeout)
        return total

    def recv_file(self, path: str, nbytes: int, timeout: float = 60.0) -> int:
        """``recvfile``: receive exactly ``nbytes`` straight to disk."""
        remaining = nbytes
        with open(path, "wb") as fh:
            while remaining:
                block = self.recv_exactly(min(remaining, 1 << 20), timeout=timeout)
                fh.write(block)
                remaining -= len(block)
        return nbytes

    def close(self) -> None:
        if self._closed:
            return
        with self._lock:
            self.core.close()
        self._closed = True
        self._sched.stop()
        self.sock.close()


def loopback_transfer(payload: bytes, config: Optional[UdtConfig] = None) -> dict:
    """Ship ``payload`` client->server over loopback UDT; returns stats."""
    server = LiveUdtEndpoint(("127.0.0.1", 0), config=config)
    client = LiveUdtEndpoint(("127.0.0.1", 0), config=config)
    try:
        server.listen()
        client.connect(server.local_addr)
        t0 = time.perf_counter()
        client.send(payload)
        got = server.recv_exactly(len(payload))
        dt = time.perf_counter() - t0
        assert got == payload, "payload corrupted in transit"
        return {
            "bytes": len(payload),
            "seconds": dt,
            "throughput_bps": len(payload) * 8.0 / dt if dt > 0 else 0.0,
            "retransmissions": client.core.stats.retransmitted_pkts,
            "acks": client.core.stats.acks_received,
        }
    finally:
        client.close()
        server.close()
