"""Command-line entry point: ``python -m repro`` / ``repro-udt``.

    repro-udt list                  # show all experiments (id, artefact,
                                    # one-line description)
    repro-udt run fig02             # run one experiment, print its table
    repro-udt run all               # run everything (slow)
    repro-udt run fig04 --trace out.jsonl --summary
                                    # fully traced run: JSONL event trace
                                    # (CC timelines, drops, EXP events)
                                    # plus a telemetry summary

``REPRO_SCALE`` (default 0.3) scales experiment durations; set it to 1
for the paper's published durations.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import get_experiment, list_experiments
from repro.experiments.common import traced


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-udt",
        description="Reproduce the UDT (SC'04) evaluation tables and figures.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("exp_id", help="experiment id from 'list', or 'all'")
    runp.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="overrides",
        help="override a runner keyword, e.g. --set duration=60 "
        "--set rate_bps=1e9 (repeatable; ignored with 'all')",
    )
    runp.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL telemetry trace (CC-state timelines, loss/EXP "
        "events, link drops) of the whole run to PATH",
    )
    runp.add_argument(
        "--summary",
        action="store_true",
        help="print a telemetry summary (event counts, last CC state per "
        "connection) after the run",
    )
    args = parser.parse_args(argv)

    if args.cmd == "list":
        exps = list_experiments()
        id_w = max(len(e.exp_id) for e in exps)
        art_w = max(len(e.paper_artefact) for e in exps)
        for exp in exps:
            print(
                f"{exp.exp_id:<{id_w}}  {exp.paper_artefact:<{art_w}}  "
                f"{exp.description}"
            )
        return 0

    kwargs = {}
    for item in getattr(args, "overrides", []):
        if "=" not in item:
            parser.error(f"--set expects KEY=VALUE, got {item!r}")
        key, _, raw = item.partition("=")
        try:
            import ast

            kwargs[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            kwargs[key] = raw

    ids = (
        [e.exp_id for e in list_experiments()]
        if args.exp_id == "all"
        else [args.exp_id]
    )
    with traced(
        args.trace, summary=args.summary, generator="repro-udt", experiments=ids
    ) as session:
        for exp_id in ids:
            exp = get_experiment(exp_id)
            t0 = time.perf_counter()
            result = exp.runner(**(kwargs if args.exp_id != "all" else {}))
            dt = time.perf_counter() - t0
            result.print()
            print(f"[{exp_id} finished in {dt:.1f}s wall]\n")
    if args.trace:
        print(f"[trace: {session.events_written} events -> {args.trace}]")
    if args.summary:
        print(session.summary_text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
