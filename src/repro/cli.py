"""Command-line entry point: ``python -m repro`` / ``repro-udt``.

    repro-udt list                  # show all experiments (id, artefact,
                                    # one-line description)
    repro-udt run fig02             # run one experiment, print its table
    repro-udt run all               # run everything (slow)
    repro-udt run fig04 --trace out.jsonl --summary
                                    # fully traced run: JSONL event trace
                                    # (CC timelines, drops, EXP events)
                                    # plus a telemetry summary
    repro-udt run fig08 --trace t.jsonl --trace-packets
                                    # + per-packet lifecycle events for
                                    # span reconstruction
    repro-udt run fig02 --profile   # hot-path profile: where the wall
                                    # clock goes, written to
                                    # BENCH_profile_fig02.json
    repro-udt sweep --jobs 8        # run every experiment in parallel
                                    # worker processes with digest-keyed
                                    # result caching (unchanged
                                    # experiments are skipped); timings
                                    # merge into BENCH_runtime.json
    repro-udt sweep --only fig02,fig08 --scale 0.05 --force
                                    # re-run a subset at smoke scale
    repro-udt run fig08 --trace t.rtrc --trace-packets
                                    # indexed binary trace (~10x smaller
                                    # than JSONL, block-skippable queries)
    repro-udt trace query t.rtrc --kind link.drop --stats
                                    # indexed trace query: filter by
                                    # kind/src/time without a full scan
    repro-udt trace convert t.rtrc t.jsonl.gz
                                    # re-encode between trace formats
    repro-udt report t.jsonl        # loss-forensics report from a trace
    repro-udt lint                  # protocol-invariant static analysis
                                    # over the repro tree (seqno-taint,
                                    # sansio-purity, event-schema,
                                    # vtime-determinism) gated against
                                    # analysis/baseline.json
    repro-udt lint --sanitize fig02 --set duration=5
                                    # + determinism sanitizer: the
                                    # experiment runs twice with perturbed
                                    # tie-breaking and hash seeds, traces
                                    # must be byte-identical
    repro-udt conform t.rtrc        # event-order conformance: the trace
                                    # is checked against the protocol
                                    # model statically extracted from
                                    # udt/core.py guard structure

``REPRO_SCALE`` (default 0.3) scales experiment durations; set it to 1
for the paper's published durations.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.experiments import get_experiment, list_experiments
from repro.experiments.common import traced


def _cmd_run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if getattr(args, "fidelity", None):
        import os

        from repro.sim.fluid import FIDELITY_ENV

        os.environ[FIDELITY_ENV] = args.fidelity
    kwargs = {}
    for item in getattr(args, "overrides", []):
        if "=" not in item:
            parser.error(f"--set expects KEY=VALUE, got {item!r}")
        key, _, raw = item.partition("=")
        try:
            import ast

            kwargs[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            kwargs[key] = raw

    ids = (
        [e.exp_id for e in list_experiments()]
        if args.exp_id == "all"
        else [args.exp_id]
    )
    sample = None
    if getattr(args, "trace_sample", None):
        from repro.obs.store import parse_sample_specs

        try:
            sample = parse_sample_specs(args.trace_sample)
        except ValueError as exc:
            parser.error(str(exc))
    profiling = args.profile or args.profile_json is not None
    with traced(
        args.trace,
        summary=args.summary,
        packets=args.trace_packets,
        sample=sample,
        generator="repro-udt",
        experiments=ids,
    ) as session:
        for exp_id in ids:
            exp = get_experiment(exp_id)
            profiler = None
            if profiling:
                from repro.obs.prof import SimProfiler

                profiler = SimProfiler().install()
            t0 = time.perf_counter()
            try:
                result = exp.runner(**(kwargs if args.exp_id != "all" else {}))
            finally:
                if profiler is not None:
                    profiler.uninstall()
            dt = time.perf_counter() - t0
            result.print()
            print(f"[{exp_id} finished in {dt:.1f}s wall]\n")
            if profiler is not None:
                print(profiler.to_text(top_n=args.profile_top) + "\n")
                path = args.profile_json or f"BENCH_profile_{exp_id}.json"
                profiler.write_json(path, exp_id=exp_id, total_wall_seconds=dt)
                print(f"[profile -> {path}]\n")
    if args.trace:
        print(f"[trace: {session.events_written} events -> {args.trace}]")
    if args.summary:
        print(session.summary_text())
    return 0


def _cmd_sweep(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from pathlib import Path

    from repro.runner.sweep import run_sweep, update_bench

    only = None
    if args.only:
        only = [s for s in args.only.replace(" ", "").split(",") if s]
    try:
        report = run_sweep(
            only=only,
            jobs=args.jobs,
            scale=args.scale,
            cache_dir=Path(args.cache_dir) if args.cache_dir else None,
            force=args.force,
            trace_dir=Path(args.trace_dir) if args.trace_dir else None,
            trace_packets=args.trace_packets,
            trace_format=args.trace_format,
            progress=args.progress,
            progress_path=Path(args.progress_file) if args.progress_file else None,
            fidelity=args.fidelity,
            emit=print,
        )
    except (KeyError, ValueError) as exc:
        parser.error(str(exc.args[0]) if exc.args else str(exc))
    print(report.to_text())
    if not args.no_bench:
        path = update_bench(
            report, Path(args.bench) if args.bench else None
        )
        print(f"[sweep timings merged into {path}]")
    if args.html:
        from repro.obs.html import build_dashboard, collect_inputs

        traces = {}
        if args.trace_dir:
            trace_dir = Path(args.trace_dir)
            for exp_id in report.experiments:
                trace = trace_dir / f"{exp_id}.{args.trace_format}"
                if trace.exists():
                    traces[exp_id] = trace
        progress_path = None
        if args.progress or args.progress_file:
            from repro.runner.progress import default_progress_path

            progress_path = (
                Path(args.progress_file)
                if args.progress_file
                else default_progress_path(
                    Path(args.cache_dir) if args.cache_dir else None
                )
            )
        inputs = collect_inputs(
            cache_dir=Path(args.cache_dir) if args.cache_dir else None,
            bench_path=Path(args.bench) if args.bench else None,
            traces=traces,
            only=report.experiments if only else None,
            sweep_summary=report.to_text(),
            progress_path=progress_path,
        )
        build_dashboard(Path(args.html), inputs, emit=print)
    return 0 if report.ok else 1


def _cmd_report(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from pathlib import Path

    if args.trace is None and not args.html:
        parser.error("report needs a trace file and/or --html OUT_DIR")

    spanset = None
    if args.trace is not None:
        from repro.obs.report import render_report, report_dict, summary_only_hint
        from repro.obs.spans import build_spans

        stats: dict = {}
        spanset = build_spans(args.trace, stats=stats)
        hint = summary_only_hint(spanset)
        if hint:
            # summary-only trace: say how to get forensics, succeed anyway
            print(f"[report] {hint}")
        else:
            print(render_report(spanset))
            if stats.get("skipped_lines"):
                print(
                    f"[warning: skipped {stats['skipped_lines']} malformed "
                    "trace line(s)]"
                )
            if args.json:
                with open(args.json, "w") as f:
                    json.dump(report_dict(spanset), f, indent=2, default=str)
                    f.write("\n")
                print(f"[report JSON -> {args.json}]")

    if args.html:
        from repro.obs.html import build_dashboard, collect_inputs

        traces = {}
        if args.trace is not None and spanset is not None:
            for exp_id in (spanset.meta or {}).get("experiments") or []:
                traces[exp_id] = Path(args.trace)
        only = None
        if args.only:
            only = [s for s in args.only.replace(" ", "").split(",") if s]
        inputs = collect_inputs(
            cache_dir=Path(args.cache_dir) if args.cache_dir else None,
            results_dir=Path(args.results) if args.results else None,
            bench_path=Path(args.bench) if args.bench else None,
            ledger_path=Path(args.ledger) if args.ledger else None,
            traces=traces,
            only=only,
            progress_path=Path(args.progress_file) if args.progress_file else None,
        )
        build_dashboard(Path(args.html), inputs, emit=print)
    return 0


def build_parser() -> "tuple[argparse.ArgumentParser, dict]":
    """Build the ``repro-udt`` argument parser.

    Returns ``(parser, subparsers)`` where ``subparsers`` maps each
    subcommand name to its own ArgumentParser.  The CLI-reference
    generator (:mod:`repro.analysis.clidoc`) and the docs checker
    (:mod:`repro.analysis.docscheck`) walk this tree, which is what
    keeps docs/API.md structurally unable to drift from the real CLI.
    """
    parser = argparse.ArgumentParser(
        prog="repro-udt",
        description="Reproduce the UDT (SC'04) evaluation tables and figures.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    listp = sub.add_parser("list", help="list available experiments")

    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("exp_id", help="experiment id from 'list', or 'all'")
    runp.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="overrides",
        help="override a runner keyword, e.g. --set duration=60 "
        "--set rate_bps=1e9 (repeatable; ignored with 'all')",
    )
    runp.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a telemetry trace (CC-state timelines, loss/EXP "
        "events, link drops) of the whole run to PATH; the suffix picks "
        "the format: .jsonl (text), .jsonl.gz (gzip), .rtrc (indexed "
        "binary store, ~10x smaller, queryable with 'repro-udt trace')",
    )
    runp.add_argument(
        "--trace-packets",
        action="store_true",
        help="include per-packet lifecycle events (pkt.snd/pkt.rcv/"
        "link.enq/link.deq) in the trace so 'repro-udt report' can "
        "reconstruct packet spans; much larger traces",
    )
    runp.add_argument(
        "--trace-sample",
        action="append",
        default=[],
        metavar="KIND=POLICY",
        help="per-kind trace sampling to bound volume, e.g. "
        "--trace-sample pkt.snd=stride:100 --trace-sample "
        "link.deq=head:1000 (repeatable; policy recorded in trace.meta)",
    )
    runp.add_argument(
        "--summary",
        action="store_true",
        help="print a telemetry summary (event counts, last CC state per "
        "connection) after the run",
    )
    runp.add_argument(
        "--profile",
        action="store_true",
        help="profile the simulator hot path: per-category handler time, "
        "printed top-N plus a BENCH_profile_<exp>.json snapshot",
    )
    runp.add_argument(
        "--profile-json",
        metavar="PATH",
        default=None,
        help="where to write the profile snapshot (implies --profile; "
        "default BENCH_profile_<exp>.json)",
    )
    runp.add_argument(
        "--profile-top",
        type=int,
        default=10,
        metavar="N",
        help="how many categories the printed profile shows (default 10)",
    )
    runp.add_argument(
        "--fidelity",
        choices=["packet", "hybrid"],
        default=None,
        help="simulation tier: 'packet' (every packet an event) or "
        "'hybrid' (steady bulk-transfer stretches advanced analytically "
        "by the fluid tier; see docs/SIMULATION.md). Default: inherit "
        "REPRO_FIDELITY, falling back to packet",
    )

    sweepp = sub.add_parser(
        "sweep",
        help="run every experiment in parallel worker processes with "
        "digest-keyed result caching; merges timings into "
        "benchmarks/results/BENCH_runtime.json (see docs/PERFORMANCE.md)",
    )
    sweepp.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes to keep in flight (default 1)",
    )
    sweepp.add_argument(
        "--scale",
        type=float,
        default=None,
        metavar="S",
        help="REPRO_SCALE for the workers (default: inherit, 0.3)",
    )
    sweepp.add_argument(
        "--only",
        default=None,
        metavar="EXP,...",
        help="comma-separated experiment ids to sweep (default: all)",
    )
    sweepp.add_argument(
        "--force",
        action="store_true",
        help="ignore cache hits (results are still stored)",
    )
    sweepp.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache directory (default $REPRO_CACHE_DIR or .repro-cache)",
    )
    sweepp.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="write per-experiment traces to DIR/<exp>.<trace-format> "
        "(implies execution: trace runs never reuse the cache)",
    )
    sweepp.add_argument(
        "--trace-packets",
        action="store_true",
        help="with --trace-dir, include per-packet lifecycle events",
    )
    sweepp.add_argument(
        "--trace-format",
        choices=["jsonl", "jsonl.gz", "rtrc"],
        default="jsonl",
        help="with --trace-dir, the trace format workers record "
        "(default jsonl; rtrc is the indexed binary store, ~10x smaller)",
    )
    sweepp.add_argument(
        "--progress",
        action="store_true",
        help="stream live per-worker progress (vtime frontier, events/s, "
        "ETA) as status lines and into the progress feed the dashboard's "
        "live-run card reads",
    )
    sweepp.add_argument(
        "--progress-file",
        metavar="PATH",
        default=None,
        help="where the progress feed is written (implies --progress "
        "recording; default <cache-dir>/progress.jsonl)",
    )
    sweepp.add_argument(
        "--bench",
        default=None,
        metavar="PATH",
        help="runtime ledger to merge into (default "
        "benchmarks/results/BENCH_runtime.json)",
    )
    sweepp.add_argument(
        "--no-bench",
        action="store_true",
        help="do not touch the runtime ledger",
    )
    sweepp.add_argument(
        "--html",
        metavar="OUT_DIR",
        default=None,
        help="after the sweep, build the static HTML dashboard under "
        "OUT_DIR from the swept results (see 'repro-udt report --html')",
    )
    sweepp.add_argument(
        "--fidelity",
        choices=["packet", "hybrid"],
        default=None,
        help="simulation tier the workers run at (default: inherit "
        "REPRO_FIDELITY, falling back to packet); hybrid results cache "
        "under separate digest keys and bench under '<exp>@hybrid' "
        "(see docs/SIMULATION.md)",
    )

    repp = sub.add_parser(
        "report",
        help="packet-lifecycle loss forensics from a JSONL trace "
        "(record with: run ... --trace t.jsonl --trace-packets)",
    )
    repp.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="JSONL trace file from a traced run (optional with --html)",
    )
    repp.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the full report as JSON to PATH",
    )
    repp.add_argument(
        "--html",
        metavar="OUT_DIR",
        default=None,
        help="build the static HTML dashboard (index + one page per "
        "experiment with inline SVG figures, fidelity deltas, forensics "
        "and runtime trends) under OUT_DIR; results come from the sweep "
        "cache, never from running experiments",
    )
    repp.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="sweep result cache the dashboard reads results from "
        "(default $REPRO_CACHE_DIR or .repro-cache)",
    )
    repp.add_argument(
        "--results",
        metavar="DIR",
        default=None,
        help="directory of <exp>.json result entries preferred over the cache",
    )
    repp.add_argument(
        "--bench",
        metavar="PATH",
        default=None,
        help="runtime ledger for trends (default "
        "benchmarks/results/BENCH_runtime.json)",
    )
    repp.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help="fidelity ledger (default benchmarks/results/BENCH_fidelity.json)",
    )
    repp.add_argument(
        "--only",
        metavar="EXP,...",
        default=None,
        help="restrict dashboard pages to these experiment ids",
    )
    repp.add_argument(
        "--progress-file",
        metavar="PATH",
        default=None,
        help="a 'sweep --progress' feed (progress.jsonl) to render as the "
        "dashboard's live-run card",
    )

    tracep = sub.add_parser(
        "trace",
        help="query, inspect and convert telemetry traces (.jsonl, "
        ".jsonl.gz, .rtrc); .rtrc queries answer from the block index "
        "without a full scan (see docs/OBSERVABILITY.md)",
    )
    from repro.obs.tracecli import add_trace_arguments

    add_trace_arguments(tracep)

    lintp = sub.add_parser(
        "lint",
        help="protocol-invariant static analysis (and optional determinism "
        "sanitizer) over the repro tree; see docs/ANALYSIS.md",
    )
    from repro.analysis.cli import add_conform_arguments, add_lint_arguments

    add_lint_arguments(lintp)

    confp = sub.add_parser(
        "conform",
        help="check recorded traces against the statically-extracted "
        "protocol model (analysis/protocol_model.json); see docs/ANALYSIS.md",
    )
    add_conform_arguments(confp)

    return parser, {
        "list": listp,
        "run": runp,
        "sweep": sweepp,
        "report": repp,
        "trace": tracep,
        "lint": lintp,
        "conform": confp,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser, subs = build_parser()
    args = parser.parse_args(argv)

    if args.cmd == "list":
        exps = list_experiments()
        id_w = max(len(e.exp_id) for e in exps)
        art_w = max(len(e.paper_artefact) for e in exps)
        for exp in exps:
            print(
                f"{exp.exp_id:<{id_w}}  {exp.paper_artefact:<{art_w}}  "
                f"{exp.description}"
            )
        return 0
    if args.cmd == "sweep":
        return _cmd_sweep(args, parser)
    if args.cmd == "report":
        return _cmd_report(args, parser)
    if args.cmd == "trace":
        from repro.obs.tracecli import run_trace

        return run_trace(args, subs["trace"])
    if args.cmd == "lint":
        from repro.analysis.cli import run_lint

        return run_lint(args, subs["lint"])
    if args.cmd == "conform":
        from repro.analysis.cli import run_conform

        return run_conform(args, subs["conform"])
    return _cmd_run(args, parser)


if __name__ == "__main__":
    sys.exit(main())
