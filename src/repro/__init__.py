"""UDT — UDP-based Data Transport (SC '04) reproduction.

Top-level convenience exports; see README.md for the tour and
``python -m repro list`` for the experiment catalogue.
"""

__version__ = "1.0.0"

from repro.sim.topology import Network, dumbbell, join_topology, path_topology
from repro.tcp import TcpConfig, start_tcp_flow
from repro.udt import UdtConfig, start_udt_flow

__all__ = [
    "__version__",
    "Network",
    "path_topology",
    "dumbbell",
    "join_topology",
    "UdtConfig",
    "start_udt_flow",
    "TcpConfig",
    "start_tcp_flow",
]
