#!/usr/bin/env python3
"""The paper's motivating workload (§2.1): a distributed streaming join.

Machine A streams records over a 100 ms WAN path, machine B over a 1 ms
LAN path; machine C joins records by key behind a shared 1 Gb/s
bottleneck.  The sources generate records in real time — a transport that
cannot sustain the generation rate drops its stream out of the join
window.

TCP's RTT bias starves the long path, capping the join at twice the
slow stream; UDT carries both streams at the fair share and the join
runs near link speed (§5.3's 600-800 Mb/s).

Run:  python examples/streaming_join_demo.py
"""

from repro.apps.streaming_join import run_streaming_join
from repro.sim.topology import join_topology
from repro.tcp import TcpFlow
from repro.udt.sim_adapter import UdtFlow

RATE = 1e9  # shared bottleneck, bits/s
DURATION = 12.0  # simulated seconds
SOURCE_RATE = 0.45 * RATE  # each stream's real-time generation rate


def main() -> None:
    print(f"{'transport':10s} {'A (100ms)':>12s} {'B (1ms)':>12s} "
          f"{'join rate':>12s} {'expired':>9s}")
    for name, factory in (
        ("TCP", lambda net, s, d, fid: TcpFlow(net, s, d, flow_id=fid)),
        ("UDT", lambda net, s, d, fid: UdtFlow(net, s, d, flow_id=fid,
                                               app_driven=True)),
    ):
        top = join_topology(rate_bps=RATE, rtt_a=0.100, rtt_b=0.001,
                            queue_pkts=100)
        join, fa, fb = run_streaming_join(
            top, factory, duration=DURATION, source_rate_bps=SOURCE_RATE,
        )
        ra = fa.throughput_bps(DURATION / 3, DURATION) / 1e6
        rb = fb.throughput_bps(DURATION / 3, DURATION) / 1e6
        jr = join.stats.joined_bytes(1456) * 8 / DURATION / 1e6
        print(f"{name:10s} {ra:10.1f}Mb {rb:10.1f}Mb {jr:10.1f}Mb "
              f"{join.stats.expired:9d}")
    print("\nThe slower stream limits the join (join <= 2 x slower stream);")
    print("UDT keeps both streams at the source rate, TCP does not.")


if __name__ == "__main__":
    main()
