#!/usr/bin/env python3
"""UDT over *real* UDP sockets on loopback.

The identical sans-IO protocol core that drives the simulations binds
here to genuine BSD sockets, a receive thread and the §4.5 hybrid
spin-wait timer — demonstrating that the implementation is a working
transport, not only a model.  (CPython on loopback reaches tens of
Mb/s; the paper's multi-Gb/s numbers need the C++ implementation and
real NICs — see DESIGN.md's substitution notes.)

Run:  python examples/live_loopback.py
"""

import os

from repro.live import loopback_transfer
from repro.udt import UdtConfig


def main() -> None:
    payload = os.urandom(4_000_000)
    config = UdtConfig(mss=1500, rcv_buffer_pkts=8192, snd_buffer_pkts=8192)
    print(f"transferring {len(payload)/1e6:.1f} MB over loopback UDT ...")
    stats = loopback_transfer(payload, config=config)
    print(f"delivered        : {stats['bytes']} bytes, verified byte-for-byte")
    print(f"elapsed          : {stats['seconds']:.2f} s")
    print(f"throughput       : {stats['throughput_bps']/1e6:.1f} Mb/s")
    print(f"retransmissions  : {stats['retransmissions']}")
    print(f"ACKs received    : {stats['acks']} (timer-based, not per packet)")


if __name__ == "__main__":
    main()
