#!/usr/bin/env python3
"""Parallel bulk transfers: intra-protocol fairness and TCP coexistence.

Starts four staggered UDT flows plus one standard TCP flow on a shared
622 Mb/s, 50 ms bottleneck (an OC-12-like provisioned path) and reports
per-flow shares, Jain's fairness index over the UDT flows, and what the
TCP flow retained — the paper's "multiple UDT flows coexist, and TCP
keeps a useful share" story (§3.4, §3.7).

Run:  python examples/parallel_transfers.py
"""

from repro.metrics import jain_index
from repro.sim.topology import dumbbell
from repro.tcp import start_tcp_flow
from repro.udt import UdtConfig, start_udt_flow

RATE = 622e6
RTT = 0.050
DURATION = 20.0
N_UDT = 4


def main() -> None:
    d = dumbbell(N_UDT + 1, RATE, RTT)
    cfg = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
    udt_flows = [
        start_udt_flow(
            d.net, d.sources[i], d.sinks[i],
            config=cfg, start=i * 2.0, flow_id=f"udt{i}",
        )
        for i in range(N_UDT)
    ]
    tcp = start_tcp_flow(d.net, d.sources[N_UDT], d.sinks[N_UDT], flow_id="tcp")
    d.net.run(until=DURATION)

    warm = DURATION / 2
    shares = [f.throughput_bps(warm, DURATION) for f in udt_flows]
    tcp_share = tcp.throughput_bps(warm, DURATION)
    for i, s in enumerate(shares):
        started = i * 2.0
        print(f"UDT flow {i} (started t={started:4.1f}s): {s/1e6:7.1f} Mb/s")
    print(f"TCP flow              : {tcp_share/1e6:7.1f} Mb/s")
    print(f"UDT Jain fairness     : {jain_index(shares):.4f}  (1.0 = perfect)")
    print(f"aggregate utilisation : {(sum(shares)+tcp_share)/RATE*100:.1f}%")


if __name__ == "__main__":
    main()
