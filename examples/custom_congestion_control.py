#!/usr/bin/env python3
"""Plugging a custom congestion-control algorithm into UDT.

The paper's conclusion highlights that UDT is structured so "alternate
... congestion control algorithms ... can be tested".  This example
implements a toy delay-threshold controller ("DAIMD": back off when the
measured RTT inflates past 1.5x its floor — the idea §6 warns is
hazardous to rely on, reproduced here as an experiment) and races it
against the native controller on the same path.

Run:  python examples/custom_congestion_control.py
"""

from repro.sim.topology import path_topology
from repro.udt import UdtConfig, start_udt_flow
from repro.udt.cc import CongestionControl, LossEvent


class DelayThresholdCC(CongestionControl):
    """Additive increase; multiplicative decrease on loss OR delay rise."""

    def __init__(self, config: UdtConfig):
        super().__init__(config)
        self.min_rtt = float("inf")
        self.period = 1e-6
        self.slow_start = True

    def on_ack(self, ack_seq: int) -> None:
        ctx = self.ctx
        rtt = ctx.rtt
        self.min_rtt = min(self.min_rtt, rtt)
        if self.slow_start:
            self.window = min(self.window + 16, self.max_cwnd)
            if self.window >= self.max_cwnd:
                self.slow_start = False
                rate = ctx.recv_rate
                self.period = 1.0 / rate if rate > 0 else self.config.syn
            return
        if ctx.recv_rate > 0:
            self.window = ctx.recv_rate * (self.config.syn + rtt) + 16
        if rtt > 1.5 * self.min_rtt:
            self.period *= 1.02  # ease off as queueing builds
        else:
            syn = self.config.syn
            self.period = (self.period * syn) / (self.period * 1.0 + syn)

    def on_loss(self, loss: LossEvent) -> None:
        if self.slow_start:
            self.slow_start = False
            rate = self.ctx.recv_rate
            self.period = 1.0 / rate if rate > 0 else self.config.syn
        self.period *= 1.125

    def on_timeout(self) -> None:
        self.period *= 1.25


def main() -> None:
    for name, cc_factory in (
        ("UDT native", None),
        ("DelayThresholdCC", DelayThresholdCC),
    ):
        top = path_topology(rate_bps=622e6, rtt=0.050)
        cfg = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
        kwargs = {} if cc_factory is None else {"cc_factory": cc_factory}
        flow = start_udt_flow(top.net, top.src, top.dst, config=cfg, **kwargs)
        top.net.run(until=12.0)
        thr = flow.throughput_bps(6.0, 12.0) / 1e6
        retx = flow.sender.stats.retransmitted_pkts
        print(f"{name:18s}: {thr:7.1f} Mb/s, {retx} retransmissions")
    print("\nSwap in any CongestionControl subclass via cc_factory=...")


if __name__ == "__main__":
    main()
