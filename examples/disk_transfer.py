#!/usr/bin/env python3
"""sendfile/recvfile: disk-to-disk transfer over UDT (§4.7, Table 2).

Moves a file from Chicago's disk to Amsterdam's disk across the 1 Gb/s,
110 ms path.  The source disk feeds the socket at its read rate and the
destination drains the protocol buffer at its write rate, so UDT's flow
control automatically throttles the network to the disk bottleneck —
"UDT can transfer data between disks at nearly the highest speed, which
is limited by the disk IO bottleneck" (§5.3).

Run:  python examples/disk_transfer.py
"""

from repro.apps.fileio import DiskTransfer
from repro.hostmodel.disk import SITE_DISKS, disk_disk_limit
from repro.sim.topology import path_topology

NBYTES = 200_000_000  # a 200 MB file


def main() -> None:
    src_disk = SITE_DISKS["Chicago"]
    dst_disk = SITE_DISKS["Amsterdam"]
    top = path_topology(rate_bps=1e9, rtt=0.110)
    xfer = DiskTransfer(
        top.net, top.src, top.dst, src_disk, dst_disk, nbytes=NBYTES
    )
    bound = disk_disk_limit(src_disk, dst_disk, 1e9)
    top.net.run(until=NBYTES * 8 / bound * 3 + 10)

    assert xfer.done, "transfer did not complete"
    thr = xfer.effective_throughput_bps()
    print(f"file size            : {NBYTES/1e6:.0f} MB")
    print(f"network path         : 1000 Mb/s, 110 ms RTT")
    print(f"source disk read     : {src_disk.read_bps/1e6:.0f} Mb/s")
    print(f"destination write    : {dst_disk.write_bps/1e6:.0f} Mb/s")
    print(f"pipeline bound       : {bound/1e6:.0f} Mb/s (min of the three)")
    print(f"achieved             : {thr/1e6:.1f} Mb/s "
          f"({thr/bound*100:.0f}% of the bound)")


if __name__ == "__main__":
    main()
