#!/usr/bin/env python3
"""Quickstart: a UDT bulk transfer over a simulated high-BDP WAN.

Builds the paper's Chicago->Amsterdam path (1 Gb/s, 110 ms RTT), runs a
single UDT flow for ten simulated seconds, and prints what the protocol
did: throughput vs the goodput ceiling, the congestion controller's
state, and the bandwidth estimate from receiver-based packet pairs.

Run:  python examples/quickstart.py
"""

from repro.sim.topology import path_topology
from repro.udt import UdtConfig, start_udt_flow


def main() -> None:
    # 1. A network: src -- 1 Gb/s, 110 ms RTT --> dst (DropTail, BDP queue).
    top = path_topology(rate_bps=1e9, rtt=0.110)

    # 2. A UDT connection carrying an unlimited bulk source.
    config = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
    flow = start_udt_flow(top.net, top.src, top.dst, config=config)

    # 3. Run virtual time forward.
    duration = 10.0
    top.net.run(until=duration)

    # 4. Inspect.
    goodput = flow.throughput_bps(duration / 2, duration)
    ceiling = 1e9 * config.payload_size / config.mss
    snd = flow.sender
    print(f"goodput          : {goodput / 1e6:7.1f} Mb/s "
          f"(ceiling {ceiling / 1e6:.1f} Mb/s after headers)")
    print(f"packets sent     : {snd.stats.data_pkts_sent}")
    print(f"retransmissions  : {snd.stats.retransmitted_pkts}")
    print(f"ACKs / NAKs      : {snd.stats.acks_received} / {snd.stats.naks_received}")
    print(f"sending period   : {snd.cc.period * 1e6:.1f} us/packet")
    print(f"est. capacity    : {snd.bandwidth * config.mss * 8 / 1e6:.1f} Mb/s "
          "(receiver-based packet pairs)")
    print(f"RTT estimate     : {snd.rtt * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
