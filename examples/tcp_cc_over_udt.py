#!/usr/bin/env python3
"""Racing the whole congestion-control family over the UDT framework.

The paper's conclusion: "the UDT implementation is designed so that
alternate ... congestion control algorithms ... can be tested."  The
reference implementation later shipped TCP-style controllers (CTCP and
friends) as CCC samples; this example runs the same comparison — one
framework, six control laws — on a lossy OC-12-like path where the
differences show.

Run:  python examples/tcp_cc_over_udt.py
"""

from repro.sim.topology import path_topology
from repro.tcp.responses import (
    BicResponse,
    HighSpeedResponse,
    Response,
    ScalableResponse,
)
from repro.udt import UdtConfig
from repro.udt.cc_tcp import make_cc_factory
from repro.udt.sim_adapter import UdtFlow

RATE = 622e6
RTT = 0.1
LOSS = 1e-4  # enough random loss to separate the control laws
DURATION = 20.0

CONTROLLERS = [
    ("UDT native", None),
    ("CTCP (Reno over UDT)", make_cc_factory(Response)),
    ("HighSpeed over UDT", make_cc_factory(HighSpeedResponse)),
    ("Scalable over UDT", make_cc_factory(ScalableResponse)),
    ("BIC over UDT", make_cc_factory(BicResponse)),
]


def main() -> None:
    print(f"{'controller':24s} {'goodput':>12s} {'retransmissions':>16s}")
    for name, factory in CONTROLLERS:
        top = path_topology(RATE, RTT, loss_rate=LOSS)
        cfg = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
        kw = {} if factory is None else {"cc_factory": factory}
        f = UdtFlow(top.net, top.src, top.dst, config=cfg, **kw)
        top.net.run(until=DURATION)
        thr = f.throughput_bps(DURATION / 2, DURATION) / 1e6
        print(f"{name:24s} {thr:9.1f} Mb/s "
              f"{f.sender.stats.retransmitted_pkts:16d}")
    print("\nOne event framework (ACK/NAK/EXP), six control laws —")
    print("swap them with cc_factory=... on any UdtFlow or socket.")


if __name__ == "__main__":
    main()
