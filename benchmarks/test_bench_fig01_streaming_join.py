"""Figure 1 / §5.3 — streaming join: TCP's RTT bias cripples the join."""

from conftest import run_once

from repro.experiments.fig01_streaming_join import run


def test_bench_fig01(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    rows = {r[0]: r for r in result.rows}
    tcp_a, tcp_b = rows["TCP"][1], rows["TCP"][2]
    udt_a, udt_b = rows["UDT"][1], rows["UDT"][2]
    # TCP: severe RTT bias (paper: ~35-100 vs ~863 Mb/s).
    assert tcp_b > 3 * tcp_a
    # UDT: both streams near the source rate (paper: fair shares).
    assert min(udt_a, udt_b) > 0.6 * max(udt_a, udt_b)
    # The join: UDT's far exceeds TCP's (paper: 600-800 vs ~70-200 bound).
    tcp_join_bound = rows["TCP"][4]
    udt_join = rows["UDT"][3]
    assert udt_join > 2 * tcp_join_bound
