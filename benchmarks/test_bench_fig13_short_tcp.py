"""Figure 13 — short TCP transfers vs background UDT flows.

The reproducible shape: the short-TCP aggregate declines as bulk UDT
flows are added, yet the TCP train keeps making progress at every
count.  The paper's *retention fraction* (~70%) does not reproduce —
our substrate's friendliness at 110 ms matches our Figure 5 measurement
(TCP keeps a small share at high BDP), and the published numbers are
OCR-ambiguous (69->48 vs 690->480 Mb/s).  See EXPERIMENTS.md.
"""

from conftest import run_once

from repro.experiments.fig13_short_tcp import run


def test_bench_fig13(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    counts = result.column("UDT flows")
    agg = result.column("TCP aggregate (Mb/s)")
    base = agg[counts.index(0)]
    assert base > 50, "short TCP train never got going"
    # Adding bulk UDT background reduces the short-TCP aggregate...
    assert agg[-1] < 0.8 * base
    # ...but never starves it completely: every transfer keeps moving.
    assert min(agg) > 0.5
    # And the trend is broadly monotone (each point at most ~2x the
    # previous — no resurgence artifacts).
    for prev, cur in zip(agg, agg[1:]):
        assert cur < max(prev * 2.0, base * 0.5)
