"""Figure 15 — throughput vs packet size peaks at the path MTU."""

from conftest import run_once

from repro.experiments.fig15_packet_size import run


def test_bench_fig15(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    sizes = result.column("MSS (bytes)")
    thr = result.column("throughput (Mb/s)")
    by_size = dict(zip(sizes, thr))
    # The optimum is at MSS = MTU = 1500 (paper's headline point).
    assert by_size[1500] == max(thr)
    # Below the MTU: monotone improvement with size (header/CPU overhead).
    assert by_size[576] < by_size[1000] < by_size[1500]
    # Above the MTU: fragmentation ("segmentation collapse").
    assert by_size[2000] < by_size[1500]
    assert by_size[6000] < by_size[1500]
