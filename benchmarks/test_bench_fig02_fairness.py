"""Figure 2 — Jain's fairness index of UDT vs TCP across RTTs."""

from conftest import run_once

from repro.experiments.fig02_fairness import run


def test_bench_fig02(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    udt = result.column("UDT")
    tcp = result.column("TCP")
    # UDT stays highly fair at every RTT (paper: ~1.0 throughout; our
    # scaled runs dip to ~0.85 at 1 ms where SYN >> RTT).
    assert min(udt) > 0.8
    assert sum(udt) / len(udt) > 0.9
    # TCP's fairness degrades at long RTT; UDT beats it there.
    long_rtt_idx = len(result.rows) - 1
    assert udt[long_rtt_idx] > tcp[long_rtt_idx]
