"""Figure 11 — single-flow efficiency on the three testbed paths."""

from conftest import run_once

from repro.experiments.fig11_single_flow import run


def test_bench_fig11(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    rows = {r[0]: r for r in result.rows}
    local = rows["to Chicago (1G, 0.04ms)"]
    oc12 = rows["to Ottawa (OC-12, 16ms)"]
    wan = rows["to Amsterdam (1G, 110ms)"]
    # UDT high on all three paths (paper: 940 / 580 / 940; our scaled
    # steady-state with residual loss lands at ~85/73/82% of capacity).
    assert local[1] > 800
    assert oc12[1] > 400
    assert wan[1] > 700
    # TCP holds the short path but collapses on the lossy high-BDP path
    # (paper: tuned TCP far below UDT Chicago->Amsterdam).
    assert wan[2] < 0.5 * wan[1]
