"""Figure 9 — loss-list accesses finish in ~a microsecond."""

from conftest import run_once

from repro.experiments.fig09_losslist import run


def test_bench_fig09(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    rows = {r[0]: r for r in result.rows}
    rl = rows["range list (UDT)"]
    naive = rows["naive per-packet"]
    # Paper: ~1 us accesses on 2.4 GHz Xeons; allow interpreter headroom.
    assert rl[1] < 50, f"range-list insert too slow: {rl[1]} us"
    assert rl[3] < 50 and rl[4] < 50
    # The ablation gap: the naive structure is orders of magnitude worse
    # on insert (per-packet work) for the same loss trace.
    assert naive[1] > 10 * rl[1]
