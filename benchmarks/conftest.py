"""Benchmark harness plumbing.

Each benchmark regenerates one paper artefact through its experiment
runner (``rounds=1`` — these are workload reproductions, not
micro-timings), prints the same rows/series the paper reports, saves them
under ``benchmarks/results/`` and asserts the paper's *shape*: who wins,
by roughly what factor, where the crossovers are.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Print an ExperimentResult and persist it under benchmarks/results."""

    def _record(result):
        text = result.to_text()
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.exp_id}.txt").write_text(text + "\n")
        return result

    return _record


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
