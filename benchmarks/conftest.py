"""Benchmark harness plumbing.

Each benchmark regenerates one paper artefact through its experiment
runner (``rounds=1`` — these are workload reproductions, not
micro-timings), prints the same rows/series the paper reports, saves them
under ``benchmarks/results/`` and asserts the paper's *shape*: who wins,
by roughly what factor, where the crossovers are.

Every run also records per-figure wall-clock into
``benchmarks/results/BENCH_runtime.json`` (merge-updated, so partial
runs refresh only the figures they executed).  That file is the bench
trajectory's data source: compare it across commits to see which
artefacts got faster or slower.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RUNTIME_PATH = RESULTS_DIR / "BENCH_runtime.json"
RUNTIME_SCHEMA = 1

#: figure/table id -> {"seconds": float, "test": nodeid}; flushed at
#: session end, merged over whatever a previous (possibly partial) run
#: recorded.
_runtimes: dict = {}


def _figure_id(nodeid: str) -> str:
    """``benchmarks/test_bench_fig02_fairness.py::test_x`` -> ``fig02_fairness``."""
    module = nodeid.split("::", 1)[0]
    stem = pathlib.Path(module).stem
    prefix = "test_bench_"
    return stem[len(prefix):] if stem.startswith(prefix) else stem


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    t0 = time.perf_counter()
    yield
    seconds = time.perf_counter() - t0
    fig = _figure_id(item.nodeid)
    prev = _runtimes.get(fig)
    # A figure spread over several tests (parametrised variants) records
    # the total.
    if prev is None:
        _runtimes[fig] = {"seconds": seconds, "test": item.nodeid}
    else:
        prev["seconds"] += seconds


def pytest_sessionfinish(session, exitstatus):
    if not _runtimes:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    # Merge over the existing ledger: only "runtimes" keys this run
    # produced are replaced.  Foreign top-level keys — notably the
    # "sweeps" section repro-udt sweep maintains — pass through verbatim.
    data = {"schema": RUNTIME_SCHEMA, "kind": "bench.runtime", "runtimes": {}}
    if RUNTIME_PATH.exists():
        try:
            old = json.loads(RUNTIME_PATH.read_text())
            if old.get("schema") == RUNTIME_SCHEMA:
                data.update(old)
                data["runtimes"] = dict(old.get("runtimes", {}))
        except (ValueError, OSError):
            pass  # corrupt/legacy file: rewrite from this run only
    for fig, rec in _runtimes.items():
        data["runtimes"][fig] = {"seconds": round(rec["seconds"], 3), "test": rec["test"]}
    # Bounded per-run history rides along for the dashboard's runtime
    # trends; the latest values above stay authoritative for the gate.
    try:
        from repro.runner.sweep import append_history, git_sha

        sha = git_sha()
        for fig, rec in _runtimes.items():
            append_history(data, fig, rec["seconds"], source="bench", sha=sha)
    except ImportError:
        pass  # repro not importable (bare pytest without PYTHONPATH=src)
    RUNTIME_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def record_result():
    """Print an ExperimentResult and persist it under benchmarks/results."""

    def _record(result):
        text = result.to_text()
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.exp_id}.txt").write_text(text + "\n")
        return result

    return _record


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
