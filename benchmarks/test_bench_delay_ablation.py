"""§6 ablation — the abandoned delay-trend congestion detection."""

from conftest import run_once

from repro.experiments.ablations import run_delay


def test_bench_ablation_delay(benchmark, record_result):
    result = record_result(run_once(benchmark, run_delay))
    rows = {r[0]: r for r in result.rows}
    loss_only = rows["loss-only (final UDT)"]
    delay = rows["delay-trend"]
    # §6: delay detection is friendlier to TCP ...
    assert delay[2] >= loss_only[2] * 0.9
    # ... at the cost of UDT throughput ("may lead to poor throughputs").
    assert delay[1] <= loss_only[1] * 1.05
    # Both remain functional transports (the delay variant barely —
    # §6's "poor throughputs on certain systems", verbatim).
    assert delay[1] > 0.3 and loss_only[1] > 5.0
