"""Table 1 — increase parameter computation."""

from conftest import run_once

from repro.experiments.table1_increase import run


def test_bench_table1(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    # Exact match to every published band.
    assert all(m == "yes" for m in result.column("match"))
