"""Figure 8 — loss events during congestion are large and bursty."""

from conftest import run_once

from repro.experiments.fig08_loss_pattern import run


def test_bench_fig08(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    sizes = result.column("lost packets")
    assert len(sizes) > 10, "congestion produced too few loss events"
    # Paper: individual events reach thousands of packets; at our scaled
    # durations the tail reaches many hundreds (EXPERIMENTS.md).
    assert max(sizes) > 150
    # Continuous loss: multi-packet events dominate the lost volume,
    # which is exactly why the appendix stores ranges, not packets.
    multi = sum(s for s in sizes if s > 1)
    assert multi > 0.8 * sum(sizes)
