"""Table 2 — disk-disk transfers track the disk IO bottleneck."""

from conftest import run_once

from repro.experiments.table2_disk import PATHS, run
from repro.hostmodel.disk import SITE_DISKS, disk_disk_limit


def test_bench_table2(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    sites = ["Chicago", "Ottawa", "Amsterdam"]
    for row in result.rows:
        src = row[0]
        for j, dst in enumerate(sites):
            measured = row[1 + j]
            rate, _ = PATHS[(src, dst)]
            bound = disk_disk_limit(SITE_DISKS[src], SITE_DISKS[dst], rate) / 1e6
            # "nearly the highest speed, limited by the disk IO bottleneck"
            assert measured <= bound * 1.05, f"{src}->{dst} exceeded the bound"
            assert measured >= bound * 0.55, f"{src}->{dst} far below the bound"
