"""Benches for the §2.2 parallel-TCP and §3.7-footnote queueing ablations."""

from conftest import run_once

from repro.experiments.ablation_parallel_tcp import run as run_ptcp
from repro.experiments.ablation_queueing import run as run_queueing


def test_bench_ablation_queueing(benchmark, record_result):
    result = record_result(run_once(benchmark, run_queueing))
    rows = {r[0]: r for r in result.rows}
    udt = [r[1] for r in result.rows]
    # §3.7 footnote: UDT's rate control barely notices queue provisioning...
    assert min(udt) > 0.75 * max(udt)
    # ...while an under-buffered DropTail cripples TCP.
    small_q = rows["DropTail 0.05xBDP"]
    big_q = rows["DropTail 1.00xBDP"]
    assert small_q[2] < 0.5 * big_q[2]
    assert small_q[1] > 2 * small_q[2]  # UDT >> TCP when under-buffered


def test_bench_ablation_parallel_tcp(benchmark, record_result):
    result = record_result(run_once(benchmark, run_ptcp))
    rows = {r[0]: r for r in result.rows}
    udt = rows["UDT x1 (no tuning)"]
    one = rows["parallel TCP x1"]
    sixteen = rows["parallel TCP x16"]
    # §2.2: a single TCP cannot use the lossy high-BDP path; striping
    # wide recovers goodput — i.e. parallel TCP *needs tuning* ...
    assert sixteen[1] > 2 * one[1]
    # ... while one un-tuned UDT flow gets within striking distance of
    # the hand-tuned 16-wide stripe (and far beyond the single TCP).
    assert udt[1] > 0.6 * sixteen[1]
    assert udt[1] > 2 * one[1]
    # And striping is the less friendly citizen: the competing standard
    # TCP keeps less next to 16 stripes than next to one UDT flow.
    assert sixteen[2] < udt[2] * 1.5
