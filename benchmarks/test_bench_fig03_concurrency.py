"""Figure 3 — per-flow oscillation grows with concurrency."""

from collections import defaultdict

from conftest import run_once

from repro.experiments.fig03_concurrency import run


def test_bench_fig03(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    by_rtt = defaultdict(list)
    for flows, rtt, std, agg in result.rows:
        by_rtt[rtt].append((flows, std, agg))
    for rtt, series in by_rtt.items():
        series.sort()
        # Aggregate utilisation stays high at every concurrency level.
        for flows, std, agg in series:
            assert agg > 60.0, f"utilisation collapsed at {flows} flows (rtt {rtt})"
        # Oscillation grows with concurrency *relative to the per-flow
        # share* (the paper's absolute-stddev growth at 1 Gb/s appears
        # here as relative growth at the scaled rate).
        def rel(entry):
            flows, std, agg = entry
            return std / (agg / flows)

        assert rel(series[-1]) > rel(series[0])
