"""Figure 6 — RTT fairness of UDT."""

from conftest import run_once

from repro.experiments.fig06_rtt_fairness import run


def test_bench_fig06(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    rtts = result.column("flow2 RTT (ms)")
    ratios = result.column("ratio")
    # Paper: ratio within ~10% of 1.0 for 1-1000 ms.  Our scaled runs
    # hold ~+-10% through 100 ms; the 500-1000 ms extreme falls to
    # ~0.55-0.85 (documented deviation in EXPERIMENTS.md) — still an
    # order of magnitude better than TCP's RTT bias on the same paths.
    for rtt, ratio in zip(rtts, ratios):
        if rtt <= 100:
            assert 0.8 <= ratio <= 1.25, f"ratio {ratio} at {rtt} ms"
        else:
            assert 0.45 <= ratio <= 1.5, f"ratio {ratio} at {rtt} ms"
