"""Figure 4 — stability index vs RTT."""

from conftest import run_once

from repro.experiments.fig04_stability import run


def test_bench_fig04(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    udt = result.column("UDT")
    tcp = result.column("TCP")
    # Indices are sane (0 ideal; paper's plots stay well below ~2).
    assert all(0 <= v < 1.5 for v in udt + tcp)
    # UDT's index stays low and flat across three decades of RTT — the
    # constant-SYN design's stability claim.  Our idealised SACK TCP
    # (no delayed ACKs, exact BDP buffers, zero random loss) is steadier
    # than the paper's measured TCP, so the paper's UDT<TCP crossover
    # does not reproduce; we hold UDT to the same order of magnitude
    # (see EXPERIMENTS.md).
    assert max(udt) < 0.8
    assert udt[-1] < 2.5 * tcp[-1]
