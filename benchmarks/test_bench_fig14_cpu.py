"""Figure 14 — CPU utilisation of UDT vs TCP at ~970 Mb/s."""

from conftest import run_once

from repro.experiments.fig14_cpu import run


def test_bench_fig14(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    rows = {r[0]: r for r in result.rows}
    udt_thr, udt_snd, udt_rcv = rows["UDT"][1:]
    tcp_thr, tcp_snd, tcp_rcv = rows["TCP"][1:]
    # Both protocols saturate the clean Gb/s path.
    assert udt_thr > 900 and tcp_thr > 900
    # Paper: UDT 43/52, TCP 33/35 — user-level costs more, receiving
    # costs more than sending, and nothing saturates the host.
    assert 35 <= udt_snd <= 50
    assert 45 <= udt_rcv <= 60
    assert 26 <= tcp_snd <= 40
    assert 28 <= tcp_rcv <= 42
    assert udt_snd > tcp_snd and udt_rcv > tcp_rcv
    assert udt_rcv > udt_snd
