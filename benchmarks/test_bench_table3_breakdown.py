"""Table 3 — per-function CPU breakdown of UDT."""

from conftest import run_once

from repro.experiments.table3_breakdown import run


def test_bench_table3(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    for side, fn, paper, measured in result.rows:
        # Dominant rows must land close to the published shares; small
        # rows (loss processing on a clean path) may undershoot.
        if paper >= 5.0:
            assert abs(measured - paper) < 0.5 * paper, (
                f"{side}/{fn}: measured {measured}%, paper {paper}%"
            )
    # UDP IO (memory copy) dominates both columns — the §6 lesson.
    send_io = [r for r in result.rows if r[0] == "sending" and "UDP" in r[1]][0]
    recv_io = [r for r in result.rows if r[0] == "receiving" and "UDP" in r[1]][0]
    assert send_io[3] > 50 and recv_io[3] > 60
