"""Figure 5 — TCP friendliness index vs RTT."""

from conftest import run_once

from repro.experiments.fig05_friendliness import run


def test_bench_fig05(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    t = result.column("T index")
    rtts = result.column("RTT (ms)")
    # Short RTT: TCP is at least as aggressive as UDT (T >= ~1 — UDT does
    # not overrun TCP where TCP works well, §3.7).
    assert t[0] > 0.9
    # Mid RTT (the 100 ms regime): TCP keeps a meaningful share (paper
    # text: "more than 2[0]% of its fair share" — OCR-ambiguous, see
    # EXPERIMENTS.md; we hold the 20% line at 100 ms).
    for rtt, v in zip(rtts, t):
        if rtt <= 10:
            assert v > 0.9, f"T={v} at {rtt} ms"
        elif rtt <= 100:
            assert v > 0.15, f"T={v} at {rtt} ms"
        else:
            assert v > 0.02, f"T={v} at {rtt} ms"
    # Friendliness decreases as RTT grows (UDT keeps its rate, TCP fades).
    assert t[-1] < t[0]
