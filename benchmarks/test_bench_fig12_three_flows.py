"""Figure 12 — three concurrent flows sharing one 1 Gb/s egress."""

from conftest import run_once

from repro.experiments.fig12_three_flows import run
from repro.metrics import jain_index


def test_bench_fig12(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    udt = result.column("UDT")
    tcp = result.column("TCP")
    # UDT: near-equal thirds of the egress (paper: ~325 Mb/s each).
    assert jain_index(udt) > 0.9
    assert sum(udt) > 700  # high aggregate utilisation
    # TCP: strongly skewed toward the short path (paper: 754/155/27).
    assert jain_index(tcp) < jain_index(udt)
    assert max(tcp) > 2 * min(tcp)
