"""Figure 7 — the flow window damps oscillation and loss."""

import math

from conftest import run_once

from repro.experiments.fig07_flow_control import run


def _cv(values):
    vals = [v for v in values if v > 0]
    mean = sum(vals) / len(vals)
    var = sum((v - mean) ** 2 for v in vals) / len(vals)
    return math.sqrt(var) / mean


def test_bench_fig07(benchmark, record_result):
    result = record_result(run_once(benchmark, run))
    with_fc = result.column("with FC")
    without_fc = result.column("without FC")
    steady = len(with_fc) // 3
    # With flow control: near capacity in steady state despite the bursts.
    assert sum(with_fc[steady:]) / len(with_fc[steady:]) > 700
    # §3.2's core claim — the window prevents avalanche loss: without it,
    # every competing burst costs an order of magnitude more
    # retransmissions (the paper's "reduce loss" axis of Figure 7).
    retx = result.retransmissions
    assert retx["without"] > 10 * max(retx["with"], 1)
    # And the no-window variant is never *smoother*.
    assert _cv(without_fc[steady:]) > 0.5 * _cv(with_fc[steady:])
