"""Ablation benches for the design choices DESIGN.md calls out."""

from conftest import run_once

from repro.experiments.ablations import (
    run_bwe,
    run_control_channel,
    run_multibottleneck,
    run_sabul,
    run_syn,
)


def test_bench_ablation_bwe(benchmark, record_result):
    result = record_result(run_once(benchmark, run_bwe))
    rows = {r[0]: r for r in result.rows}
    native = rows["UDT native (bw estimation)"]
    fixed = rows["fixed +1 pkt/SYN"]
    # Bandwidth estimation keeps single-flow efficiency at least as good
    # and converges to fairness at least as fast as the fixed increase.
    assert native[1] > 0.85 * fixed[1]
    assert native[2] > 0.9


def test_bench_ablation_syn(benchmark, record_result):
    result = record_result(run_once(benchmark, run_syn))
    syn = result.column("SYN (ms)")
    tcp_share = result.column("TCP share vs 1 UDT (Mb/s)")
    # §3.7: larger SYN -> friendlier to TCP (TCP keeps more).
    assert tcp_share[syn.index(max(syn))] > tcp_share[syn.index(min(syn))]


def test_bench_ablation_sabul(benchmark, record_result):
    result = record_result(run_once(benchmark, run_sabul))
    rows = {r[0]: r for r in result.rows}
    # §2.3/§5.2: similar efficiency; UDT converges to near-equal shares
    # after a staggered start.  (Exact convergence *speed* ordering is
    # seed-sensitive at bench scale — see EXPERIMENTS.md.)
    assert rows["UDT"][3] > 0.85
    udt_total = rows["UDT"][1] + rows["UDT"][2]
    sabul_total = rows["SABUL"][1] + rows["SABUL"][2]
    assert sabul_total > 0.5 * udt_total
    assert udt_total > 0.6 * 100  # high utilisation on the 100 Mb/s link


def test_bench_ablation_multibottleneck(benchmark, record_result):
    result = record_result(run_once(benchmark, run_multibottleneck))
    long_row = result.rows[0]
    cross = [r for r in result.rows[1:]]
    # §3.4 footnote claims >= 1/2 of the max-min share; our
    # implementation measures 0.3-0.6 across seeds/durations (the paper
    # omits the proof and the exact topology) — we assert the robust
    # part: the long flow keeps a substantial share at every hop count
    # and the cross flows do not starve it (see EXPERIMENTS.md).
    assert long_row[2] >= 0.25
    # Cross flows absorb the remainder without exceeding their own link.
    for r in cross:
        assert r[1] <= 100.0


def test_bench_ablation_control_channel(benchmark, record_result):
    result = record_result(run_once(benchmark, run_control_channel))
    rows = {r[0]: r for r in result.rows}
    udp = rows["UDP (UDT)"]
    tcp = rows["TCP-like (SABUL)"]
    # §6: TCP control never helps, and its retransmission/HOL path fires.
    assert tcp[1] <= udp[1] * 1.05
    assert udp[2] == 0
