"""Fluid-approximation tier tests (repro.sim.fluid).

Covers the satellite checklist for the hybrid tier: fidelity selection
and plumbing, max-min share math, fluid-span boundary behaviour (source
ON/OFF epochs, flow joins), byte-counter conservation, digest/sweep key
separation between fidelity tiers, and hybrid≡packet metric equivalence
on reduced fig02/fig06 runs judged against the ledger's hybrid
tolerance bands.
"""

import math

import pytest

from repro.obs import bus as OB
from repro.sim.engine import Simulator
from repro.sim.fluid import (
    FIDELITIES,
    FIDELITY_ENV,
    FluidController,
    ambient_fidelity,
)
from repro.sim.monitor import FlowMonitor
from repro.sim.topology import Network, dumbbell, path_topology
from repro.udt import start_udt_flow


@pytest.fixture
def fluid_events():
    """Collect fluid.enter/fluid.exit events from the default bus."""
    events = []
    bus = OB.default_bus()
    sub = bus.subscribe(events.append, kinds=(OB.FLUID_ENTER, OB.FLUID_EXIT))
    try:
        yield events
    finally:
        bus.unsubscribe(sub)


def _spans(events):
    """(enter_t, exit_t, reason) per completed span, in order."""
    out = []
    enter_t = None
    for e in events:
        if e.kind == OB.FLUID_ENTER:
            enter_t = e.t
        elif e.kind == OB.FLUID_EXIT and enter_t is not None:
            out.append((enter_t, e.t, e.fields["reason"]))
            enter_t = None
    return out


class TestAmbientFidelity:
    def test_defaults_to_packet(self, monkeypatch):
        monkeypatch.delenv(FIDELITY_ENV, raising=False)
        assert ambient_fidelity() == "packet"

    def test_reads_env(self, monkeypatch):
        monkeypatch.setenv(FIDELITY_ENV, "hybrid")
        assert ambient_fidelity() == "hybrid"

    def test_rejects_unknown_tier(self, monkeypatch):
        monkeypatch.setenv(FIDELITY_ENV, "quantum")
        with pytest.raises(ValueError, match="quantum"):
            ambient_fidelity()

    def test_network_reads_ambient_fidelity(self, monkeypatch):
        monkeypatch.setenv(FIDELITY_ENV, "hybrid")
        net = Network()
        assert net.fidelity == "hybrid"
        assert isinstance(net.fluid, FluidController)

    def test_explicit_fidelity_wins(self, monkeypatch):
        monkeypatch.setenv(FIDELITY_ENV, "hybrid")
        net = Network(fidelity="packet")
        assert net.fidelity == "packet"
        assert net.fluid is None

    def test_packet_is_the_default_tier(self, monkeypatch):
        monkeypatch.delenv(FIDELITY_ENV, raising=False)
        assert Network().fluid is None
        assert FIDELITIES == ("packet", "hybrid")


class TestMaxMinShares:
    def test_equal_split_on_one_link(self):
        shares = FluidController._maxmin_shares([10.0, 10.0], [[0, 1]], [10.0])
        assert shares == pytest.approx([5.0, 5.0])

    def test_demand_capped_flow_releases_capacity(self):
        shares = FluidController._maxmin_shares([2.0, 10.0], [[0, 1]], [10.0])
        assert shares == pytest.approx([2.0, 8.0])

    def test_two_links_progressive_fill(self):
        # flow0 crosses both links, flow1 only A (cap 10), flow2 only B
        # (cap 20).  Fair share on A is 5; flow2 then takes B's slack.
        shares = FluidController._maxmin_shares(
            [100.0, 100.0, 100.0], [[0, 1], [0, 2]], [10.0, 20.0]
        )
        assert shares == pytest.approx([5.0, 5.0, 15.0])

    def test_shares_never_exceed_capacity(self):
        demands = [7.0, 3.0, 9.0, 1.0]
        members = [[0, 1, 2, 3], [2, 3]]
        capacity = [12.0, 6.0]
        shares = FluidController._maxmin_shares(demands, members, capacity)
        for mem, cap in zip(members, capacity):
            assert sum(shares[i] for i in mem) <= cap + 1e-9
        for s, d in zip(shares, demands):
            assert 0.0 <= s <= d + 1e-9


class TestByteConservation:
    def test_credit_span_conserves_bytes_exactly(self):
        m = FlowMonitor(Simulator(), bin_width=0.1)
        m.credit_span("f", 0.3, 1.7, 12345)
        assert m.total_bytes["f"] == 12345
        # every bin together holds exactly the credited total
        assert sum(m._bins["f"].values()) == 12345
        # and the throughput query over a superset window sees all of it
        assert m.throughput_bps("f", 0.0, 2.0) * 2.0 / 8.0 == pytest.approx(12345)

    def test_credit_span_uniform_apportioning(self):
        m = FlowMonitor(Simulator(), bin_width=0.1)
        m.credit_span("f", 0.0, 1.0, 1000)
        bins = m._bins["f"]
        assert len(bins) == 10
        assert all(v == 100 for v in bins.values())

    def test_adapter_credit_floors_fractional_bytes(self):
        # The adapter accumulates fractional analytic bytes and books the
        # integer floor: two credits of 10.4 bytes yield 20, not 21.
        top = path_topology(50e6, 0.02, seed=1)
        top.net.fidelity = "hybrid"
        top.net.fluid = FluidController(top.net)
        f = start_udt_flow(top.net, top.src, top.dst)
        adapter = top.net.fluid.flows[0]
        adapter.credit(0.0, 1.0, 10.4)
        adapter.credit(1.0, 2.0, 10.4)
        assert adapter._credited == 20
        assert top.net.monitor.total_bytes[f.flow_id] == 20
        assert top.net.monitor.total_bytes[f.arrival_flow_id] == 20

    def test_hybrid_run_conserves_monitor_bytes(self):
        # monitor total == packet-level delivered bytes + analytic credit:
        # the fluid tier never double-books nor loses a byte.
        net_top = path_topology(50e6, 0.02, seed=0)
        net_top.net.fidelity = "hybrid"
        net_top.net.fluid = FluidController(net_top.net)
        f = start_udt_flow(net_top.net, net_top.src, net_top.dst)
        net_top.net.run(until=10.0)
        ctrl = net_top.net.fluid
        assert ctrl.spans >= 1
        adapter = ctrl.flows[0]
        total = net_top.net.monitor.total_bytes[f.flow_id]
        assert total == f.delivered_bytes + adapter._credited
        assert adapter._credited > 0


class TestHybridRun:
    def test_single_flow_matches_packet_throughput(self, monkeypatch,
                                                   fluid_events):
        def goodput(fidelity):
            monkeypatch.setenv(FIDELITY_ENV, fidelity)
            top = path_topology(100e6, 0.02, seed=0)
            f = start_udt_flow(top.net, top.src, top.dst)
            top.net.run(until=6.0)
            return top.net.fluid, f.throughput_bps(3.0, 6.0)

        _none, packet = goodput("packet")
        ctrl, hybrid = goodput("hybrid")
        assert ctrl is not None and ctrl.spans >= 1
        assert ctrl.fluid_time > 0.0
        assert hybrid > 90e6
        assert hybrid == pytest.approx(packet, rel=0.10)
        # enter/exit events are emitted in pairs, one per span
        enters = [e for e in fluid_events if e.kind == OB.FLUID_ENTER]
        exits = [e for e in fluid_events if e.kind == OB.FLUID_EXIT]
        assert len(enters) == len(exits) == ctrl.spans

    def test_spans_do_not_advance_sequence_numbers(self, monkeypatch):
        # The no-seqno-advance contract: analytic delivery is booked to
        # the monitor only; the receiver's packet-level byte counter
        # stays behind the monitor total by exactly the credited bytes.
        monkeypatch.setenv(FIDELITY_ENV, "hybrid")
        top = path_topology(50e6, 0.02, seed=0)
        f = start_udt_flow(top.net, top.src, top.dst)
        top.net.run(until=10.0)
        credited = top.net.fluid.flows[0]._credited
        assert credited > 0
        assert f.delivered_bytes + credited == top.net.monitor.total_bytes[f.flow_id]


class TestSpanBoundaries:
    def test_spans_never_straddle_blast_epochs(self, monkeypatch,
                                               fluid_events):
        # An ON/OFF UDP blast is a CC-relevant boundary: every fluid span
        # must end before the next burst starts, with the packet engine
        # awake for the burst itself.
        from repro.apps.bulk import UdpBlast
        from repro.sim.udp import UdpEndpoint

        monkeypatch.setenv(FIDELITY_ENV, "hybrid")
        top = path_topology(50e6, 0.02, seed=0, cross_sources=1)
        start_udt_flow(top.net, top.src, top.dst)
        cross = [n for n in top.net.nodes.values() if n.name == "cross0"][0]
        sink = UdpEndpoint(top.dst, 9999)
        blast = UdpBlast(
            top.net,
            cross,
            sink.address,
            rate_bps=10e6,
            on_time=0.1,
            off_time=1.9,
            start=3.0,
        )
        # Record the *actual* burst epochs: the OFF interval restarts from
        # the tick that notices the burst is over, so epochs drift off the
        # nominal 2 s grid by a fraction of a packet interval per cycle.
        on_starts = []
        orig_start = blast._start_burst

        def logged_start():
            on_starts.append(top.net.sim.now)
            orig_start()

        blast._start_burst = logged_start
        top.net.run(until=11.0)
        assert len(on_starts) >= 3
        spans = _spans(fluid_events)
        assert spans, "the fluid tier never entered a span"
        for enter_t, exit_t, _reason in spans:
            for b in on_starts:
                assert not (enter_t < b < exit_t), (
                    f"span [{enter_t}, {exit_t}] straddles the blast "
                    f"epoch at t={b}"
                )
        # at least one span was cut by the boundary: it ends at most one
        # SYN tick plus the safety margin short of the burst start (ramp
        # spans advance in whole SYN intervals)
        margin = FluidController.BOUNDARY_MARGIN
        syn = 0.01
        boundary_exits = [t1 for _t0, t1, r in spans if r == "boundary"]
        assert boundary_exits
        for t1 in boundary_exits:
            upcoming = [b - t1 for b in on_starts if b > t1]
            if not upcoming:
                continue  # span cut by a burst past the run horizon
            gap = min(upcoming)
            assert margin - 1e-9 <= gap <= margin + syn + 1e-9

    def test_no_spans_before_late_flow_joins(self, monkeypatch,
                                             fluid_events):
        # A flow that has not yet connected blocks the tier: the packet
        # engine must witness the join (handshake, slow start) and fluid
        # spans only resume once every registered flow is steady.
        monkeypatch.setenv(FIDELITY_ENV, "hybrid")
        d = dumbbell(2, 40e6, 0.02, seed=0)
        start_udt_flow(d.net, d.sources[0], d.sinks[0], flow_id="early")
        start_udt_flow(d.net, d.sources[1], d.sinks[1], start=6.0,
                       flow_id="late")
        d.net.run(until=18.0)
        assert d.net.fluid.spans >= 1
        enters = [e.t for e in fluid_events if e.kind == OB.FLUID_ENTER]
        assert enters and min(enters) > 6.0

    def test_horizon_bounds_the_span(self, monkeypatch, fluid_events):
        # run(until=...) is a hard analytic bound: no span may extend
        # beyond the requested horizon.
        monkeypatch.setenv(FIDELITY_ENV, "hybrid")
        top = path_topology(50e6, 0.02, seed=0)
        start_udt_flow(top.net, top.src, top.dst)
        top.net.run(until=7.0)
        assert top.net.sim.now <= 7.0 + 1e-9
        for _enter_t, exit_t, _reason in _spans(fluid_events):
            assert exit_t <= 7.0 + 1e-9


class TestCacheKeySeparation:
    def test_digest_differs_between_fidelity_tiers(self):
        from repro.runner.digest import experiment_digest

        packet, _ = experiment_digest("fig02", 0.05)
        packet2, _ = experiment_digest("fig02", 0.05, fidelity="packet")
        hybrid, _ = experiment_digest("fig02", 0.05, fidelity="hybrid")
        assert packet == packet2  # explicit packet == the default
        assert packet != hybrid

    def test_sweep_key_suffix_only_for_hybrid(self):
        from repro.runner.sweep import SweepReport

        packet = SweepReport("fig02", 0.05, 2, ["fig02"])
        hybrid = SweepReport("fig02", 0.05, 2, ["fig02"], fidelity="hybrid")
        # packet keys keep the historical shape (CI baselines use them)
        assert packet.key == "fig02|scale=0.05|jobs=2"
        assert hybrid.key == "fig02|scale=0.05|jobs=2|fidelity=hybrid"


@pytest.mark.slow
class TestHybridEquivalence:
    """Reduced fig02/fig06 runs: hybrid within the ledger's hybrid bands."""

    def _delta_ok(self, name, band, packet_value, hybrid_value):
        tol = band["tolerance"]
        allowed = tol * abs(packet_value) if band["relative"] else tol
        assert abs(hybrid_value - packet_value) <= allowed, (
            f"{name}: |{hybrid_value} - {packet_value}| > {allowed}"
        )

    def test_fig02_jain_within_hybrid_band(self, monkeypatch):
        from repro.experiments.fig02_fairness import _run_flows
        from repro.metrics import jain_index
        from repro.obs.figspec import get_spec, hybrid_tolerances

        def jain(fidelity):
            monkeypatch.setenv(FIDELITY_ENV, fidelity)
            d, flows = _run_flows("udt", 4, 40e6, 0.02, 24.0, seed=0)
            thr = [f.throughput_bps(6.0, 24.0) for f in flows]
            return d.net.fluid, jain_index(thr)

        _none, packet = jain("packet")
        ctrl, hybrid = jain("hybrid")
        assert ctrl.spans >= 1
        bands = hybrid_tolerances(get_spec("fig02"))
        # one RTT point: the sweep mean and min both reduce to the index
        self._delta_ok("udt_jain_mean", bands["udt_jain_mean"], packet, hybrid)
        self._delta_ok("udt_jain_min", bands["udt_jain_min"], packet, hybrid)

    def test_fig06_metrics_within_hybrid_bands(self, monkeypatch,
                                               fluid_events):
        from repro.experiments.fig06_rtt_fairness import run
        from repro.obs.figspec import (
            ResultTable,
            compute_metrics,
            get_spec,
            hybrid_tolerances,
        )

        def metrics(fidelity):
            monkeypatch.setenv(FIDELITY_ENV, fidelity)
            res = run(rate_bps=50e6, rtts=(0.02,), duration=20.0, seed=0)
            spec = get_spec("fig06")
            return compute_metrics(spec, ResultTable(res))

        packet = metrics("packet")
        hybrid = metrics("hybrid")
        assert any(e.kind == OB.FLUID_ENTER for e in fluid_events)
        bands = hybrid_tolerances(get_spec("fig06"))
        for name, band in bands.items():
            self._delta_ok(name, band, packet[name], hybrid[name])
