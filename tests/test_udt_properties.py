"""Property-based end-to-end invariants of the UDT protocol.

Whatever the path looks like (loss, delay, rate, buffer geometry), a
finite transfer must deliver exactly its bytes, in order, with the
protocol state quiescing afterwards.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.topology import path_topology
from repro.udt import UdtConfig, start_udt_flow
from repro.udt.seqno import seq_off


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    loss=st.sampled_from([0.0, 0.001, 0.01, 0.05]),
    rtt=st.sampled_from([0.002, 0.02, 0.1]),
    rate_mbps=st.sampled_from([5, 20, 50]),
    nbytes=st.integers(min_value=1, max_value=400_000),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_transfer_is_exactly_once_in_order(loss, rtt, rate_mbps, nbytes, seed):
    top = path_topology(rate_mbps * 1e6, rtt, loss_rate=loss, seed=seed)
    f = start_udt_flow(top.net, top.src, top.dst, nbytes=nbytes)
    sizes = []
    inner = f.receiver.rcv_buffer._deliver

    def tap(size, data):
        inner(size, data)
        sizes.append(size)

    f.receiver.rcv_buffer._deliver = tap
    # Generous horizon: heavy loss on a slow link needs time.
    top.net.run(until=120.0)
    assert f.done, (
        f"transfer stalled: delivered {f.delivered_bytes}/{nbytes} "
        f"(loss={loss}, rtt={rtt}, rate={rate_mbps})"
    )
    assert sum(sizes) == nbytes
    # Exactly-once: the buffer never delivered a duplicate byte.
    assert f.receiver.rcv_buffer.delivered_bytes == nbytes
    # Quiescence: everything sent was eventually acknowledged.
    snd = f.sender
    top.net.run(until=top.net.sim.now + 5.0)
    assert seq_off(snd.snd_last_ack, snd.curr_seq) == 0
    assert len(f.receiver.rcv_loss) == 0


@settings(max_examples=10, deadline=None)
@given(
    rcv_buf=st.integers(min_value=8, max_value=64),
    snd_buf=st.integers(min_value=8, max_value=64),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_tiny_buffers_never_deadlock(rcv_buf, snd_buf, seed):
    cfg = UdtConfig(rcv_buffer_pkts=rcv_buf, snd_buffer_pkts=snd_buf)
    top = path_topology(20e6, 0.02, seed=seed)
    f = start_udt_flow(top.net, top.src, top.dst, config=cfg, nbytes=150_000)
    top.net.run(until=60.0)
    assert f.done
    assert f.delivered_bytes == 150_000


@settings(max_examples=8, deadline=None)
@given(
    mss=st.sampled_from([576, 1000, 1500, 4000]),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_any_mss_transfers_exactly(mss, seed):
    cfg = UdtConfig(mss=mss)
    top = path_topology(20e6, 0.02, loss_rate=0.005, seed=seed)
    f = start_udt_flow(top.net, top.src, top.dst, config=cfg, nbytes=200_000)
    top.net.run(until=60.0)
    assert f.done
    assert f.delivered_bytes == 200_000
