"""Unit tests for the SACK scoreboard."""

import pytest

from repro.tcp.scoreboard import Scoreboard


def test_sack_merge_and_count():
    sb = Scoreboard()
    sb.add_sack(5, 7)
    sb.add_sack(9, 9)
    sb.add_sack(8, 8)  # bridges the two blocks
    assert sb.sacked_count() == 5
    assert sb.highest_sacked() == 9
    assert sb.is_sacked(6) and not sb.is_sacked(4)


def test_sacked_above():
    sb = Scoreboard()
    sb.add_sack(10, 14)
    assert sb.sacked_above(5) == 5
    assert sb.sacked_above(11) == 3
    assert sb.sacked_above(14) == 0


def test_fack_loss_marking():
    sb = Scoreboard(dupthresh=3)
    sb.add_sack(4, 10)
    # holes 0..3; those <= 10-3=7 are lost -> 0,1,2,3
    assert sb.update_lost(0) == 4
    assert sb.lost == {0, 1, 2, 3}


def test_loss_marking_respects_dupthresh_margin():
    sb = Scoreboard(dupthresh=3)
    sb.add_sack(2, 3)
    # highest sacked 3, limit = 0: only hole 0 qualifies
    assert sb.update_lost(0) == 1
    assert sb.lost == {0}


def test_frontier_is_monotone():
    sb = Scoreboard(dupthresh=3)
    sb.add_sack(5, 10)
    sb.update_lost(0)
    first = set(sb.lost)
    # new sack higher up marks more holes, never unmarks
    sb.add_sack(12, 20)
    sb.update_lost(0)
    assert first <= sb.lost
    assert 11 in sb.lost


def test_pipe_accounting():
    sb = Scoreboard(dupthresh=3)
    # 20 in flight, 5 sacked, 3 lost (not retx): pipe = 20-5-3
    sb.add_sack(10, 14)
    sb.update_lost(0)  # marks 0..11? no: limit=14-3=11, holes 0..9 -> lost
    lost_not_retx = len(sb.lost)
    assert sb.pipe(0, 20) == 20 - 5 - lost_not_retx


def test_retransmit_rejoins_pipe():
    sb = Scoreboard(dupthresh=3)
    sb.add_sack(4, 10)
    sb.update_lost(0)
    p0 = sb.pipe(0, 11)
    seq = sb.next_lost_to_retransmit(0)
    assert seq == 0
    sb.on_retransmit(seq)
    assert sb.pipe(0, 11) == p0 + 1


def test_next_lost_order_and_exhaustion():
    sb = Scoreboard(dupthresh=3)
    sb.add_sack(5, 10)
    sb.update_lost(0)
    got = []
    while True:
        s = sb.next_lost_to_retransmit(0)
        if s is None:
            break
        sb.on_retransmit(s)
        got.append(s)
    assert got == sorted(got)
    assert got[0] == 0


def test_sacked_lost_packet_is_revived():
    sb = Scoreboard(dupthresh=3)
    sb.add_sack(5, 10)
    sb.update_lost(0)
    assert 0 in sb.lost
    sb.add_sack(0, 0)  # it arrived after all (reordering)
    assert 0 not in sb.lost
    assert sb.pipe(0, 11) == 11 - sb.sacked_count() - len(
        [s for s in sb.lost if s not in sb.retransmitted]
    )


def test_ack_upto_clears_state():
    sb = Scoreboard(dupthresh=3)
    sb.add_sack(5, 10)
    sb.update_lost(0)
    sb.on_retransmit(0)
    sb.ack_upto(8)
    assert sb.sacked_count() == 3  # 8,9,10
    assert all(s >= 8 for s in sb.lost)
    assert all(s >= 8 for s in sb.retransmitted)


def test_mark_lost_range_skips_sacked():
    sb = Scoreboard()
    sb.add_sack(3, 4)
    n = sb.mark_lost_range(0, 6)
    assert n == 5
    assert 3 not in sb.lost and 4 not in sb.lost


def test_clear_resets_everything():
    sb = Scoreboard()
    sb.add_sack(3, 4)
    sb.update_lost(0)
    sb.clear()
    assert sb.sacked_count() == 0
    assert not sb.lost
    assert sb.pipe(0, 10) == 10


def test_inverted_sack_rejected():
    with pytest.raises(ValueError):
        Scoreboard().add_sack(5, 3)
