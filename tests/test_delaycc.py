"""Tests for the abandoned delay-trend design (§6)."""

import pytest

from repro.sim.topology import dumbbell, path_topology
from repro.udt import UdtConfig
from repro.udt.delaycc import (
    DelayTrendDetector,
    DelayWarningCC,
    attach_delay_detection,
    increasing_trend,
    pct,
    pdt,
)
from repro.udt.sim_adapter import UdtFlow


class TestTrendTests:
    def test_pct_monotone_rise(self):
        assert pct([1, 2, 3, 4, 5]) == 1.0

    def test_pct_noise(self):
        assert pct([1, 2, 1, 2, 1]) == pytest.approx(0.5)

    def test_pdt_monotone_rise(self):
        assert pdt([1, 2, 3, 4]) == 1.0

    def test_pdt_flat(self):
        assert pdt([1, 2, 1, 2, 1]) == pytest.approx(0.0)

    def test_empty_windows(self):
        assert pct([]) == 0.0 and pdt([5]) == 0.0

    def test_increasing_trend_joint_decision(self):
        assert increasing_trend([1, 2, 3, 4, 5, 6, 7, 8])
        assert not increasing_trend([8, 7, 6, 5, 4, 3, 2, 1])
        assert not increasing_trend([1, 2, 1, 2, 1, 2, 1, 2])


class TestDetector:
    def test_warning_on_rise(self):
        d = DelayTrendDetector(window=8, min_samples=4)
        for v in [0.01, 0.02, 0.03, 0.04, 0.05]:
            d.on_delay_sample(v)
        assert d.check_and_reset()
        assert d.warnings == 1

    def test_no_warning_without_enough_samples(self):
        d = DelayTrendDetector(min_samples=8)
        for v in [0.01, 0.02]:
            d.on_delay_sample(v)
        assert not d.check_and_reset()

    def test_window_bounded(self):
        d = DelayTrendDetector(window=4)
        for v in range(100):
            d.on_delay_sample(float(v))
        assert len(d._samples) <= 4


class TestDelayWarningCC:
    def test_warning_decreases_rate(self):
        cfg = UdtConfig()
        cc = DelayWarningCC(cfg)

        class Ctx:
            rtt = 0.1
            recv_rate = 1000.0
            bandwidth = 0.0
            max_seq_sent = 10

            def now(self):
                return 0.0

        cc.init(Ctx())
        cc.slow_start = False
        cc.period = 0.001
        cc.on_delay_warning()
        assert cc.period == pytest.approx(0.001 * 1.125)
        assert cc.delay_decreases == 1

    def test_attach_requires_delay_cc(self):
        top = path_topology(10e6, 0.02)
        f = UdtFlow(top.net, top.src, top.dst)
        with pytest.raises(TypeError):
            attach_delay_detection(f)


class TestEndToEnd:
    def test_delay_flow_transfers_and_backs_off_early(self):
        # A queue-building scenario: delay warnings fire before loss.
        top = path_topology(20e6, 0.02, queue_pkts=400)
        f = UdtFlow(
            top.net, top.src, top.dst, cc_factory=DelayWarningCC, flow_id="d"
        )
        det = attach_delay_detection(f)
        top.net.run(until=15.0)
        # §6's verdict verbatim: early backoff avoids loss but "may lead
        # to poor throughputs" — the flow stays well below capacity yet
        # keeps moving data.
        thr = f.throughput_bps(8, 15)
        assert 3e6 < thr < 19e6
        assert det.warnings > 0  # the detector actually fired
        assert f.sender.cc.delay_decreases > 0
        assert f.sender.stats.retransmitted_pkts < 100  # loss mostly avoided

    def test_delay_variant_friendlier_to_tcp(self):
        """§6: the obsolete design is friendlier to TCP."""
        from repro.tcp import start_tcp_flow

        def tcp_share(cc_factory, attach):
            d = dumbbell(2, 50e6, 0.05, seed=4)
            kw = {} if cc_factory is None else {"cc_factory": cc_factory}
            u = UdtFlow(d.net, d.sources[0], d.sinks[0], flow_id="u", **kw)
            if attach:
                attach_delay_detection(u)
            t = start_tcp_flow(d.net, d.sources[1], d.sinks[1], flow_id="t")
            d.net.run(until=30.0)
            return t.throughput_bps(15, 30)

        native = tcp_share(None, False)
        delayed = tcp_share(DelayWarningCC, True)
        assert delayed > native * 0.9  # at least as friendly
