"""Figure specs, SVG rendering round-trips, and the fidelity gate."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.obs import TimelineRecorder, trace_to_file
from repro.obs.figspec import (
    SPECS,
    ResultTable,
    compute_metrics,
    get_spec,
    tolerances,
)
from repro.obs.figures import (
    check_fidelity,
    ledger_entry,
    main,
    read_ledger,
    render_figure,
    render_timeline,
    write_ledger,
)

_SVG = "{http://www.w3.org/2000/svg}"


def _table(exp_id, columns, rows, title="synthetic"):
    return ResultTable(
        {
            "exp_id": exp_id,
            "title": title,
            "columns": columns,
            "rows": rows,
            "notes": "",
            "paper_reference": "",
        }
    )


def _series_groups(svg_text):
    """{label: (x values, y values)} parsed back out of a rendered SVG."""
    root = ET.fromstring(svg_text)
    out = {}
    for g in root.iter(_SVG + "g"):
        if g.get("class") == "series":
            out[g.get("data-label")] = (
                json.loads(g.get("data-x")),
                json.loads(g.get("data-y")),
            )
    return out


def _mark_groups(svg_text):
    """{(kind, conn): times} for annotation tick groups."""
    root = ET.fromstring(svg_text)
    out = {}
    for g in root.iter(_SVG + "g"):
        if g.get("class") == "marks":
            out[(g.get("data-kind"), g.get("data-conn"))] = json.loads(
                g.get("data-x")
            )
    return out


FIG02_TABLE = _table(
    "fig02",
    ["RTT (ms)", "UDT", "TCP"],
    [[1, 0.99, 0.97], [10, 0.98, 0.90], [100, 0.99, 0.70], [1000, 0.97, 0.40]],
)

FIG08_TABLE = _table(
    "fig08",
    ["loss event #", "lost packets"],
    [[1, 400], [2, 900], [3, 150], [4, 720]],
)


class TestSpecRegistry:
    def test_acceptance_figures_have_specs_with_metrics(self):
        for fig_id in ("fig02", "fig04", "fig06", "fig08"):
            spec = get_spec(fig_id)
            assert spec is not None, fig_id
            assert spec.metrics, fig_id

    def test_every_spec_names_a_registered_experiment(self):
        from repro.experiments import REGISTRY

        assert set(SPECS) <= set(REGISTRY)

    def test_spec_shape(self):
        for fig_id, spec in SPECS.items():
            assert spec.fig_id == fig_id
            assert spec.kind in ("line", "bar")
            assert spec.series, fig_id
            names = [m.name for m in spec.metrics]
            assert len(names) == len(set(names)), fig_id
            assert all(m.tolerance > 0 for m in spec.metrics), fig_id

    def test_unknown_spec_is_none(self):
        assert get_spec("nope") is None


class TestSvgRoundTrip:
    def test_line_series_match_table(self):
        svg = render_figure(get_spec("fig02"), FIG02_TABLE)
        groups = _series_groups(svg)
        assert set(groups) == {"UDT", "TCP"}
        xs = FIG02_TABLE.numeric_column("RTT (ms)")
        for name in ("UDT", "TCP"):
            got_x, got_y = groups[name]
            assert got_x == xs
            assert got_y == FIG02_TABLE.numeric_column(name)

    def test_bar_series_match_table(self):
        svg = render_figure(get_spec("fig08"), FIG08_TABLE)
        groups = _series_groups(svg)
        (labels, values), = groups.values()
        assert labels == [str(v) for v in FIG08_TABLE.column("loss event #")]
        assert values == FIG08_TABLE.numeric_column("lost packets")

    def test_svg_is_selfcontained_and_parses(self):
        for spec_id, table in (("fig02", FIG02_TABLE), ("fig08", FIG08_TABLE)):
            svg = render_figure(get_spec(spec_id), table)
            ET.fromstring(svg)  # well-formed XML
            assert "<script" not in svg
            stripped = svg.replace("http://www.w3.org/2000/svg", "")
            assert "http://" not in stripped and "https://" not in stripped

    def test_single_series_has_no_legend_but_two_do(self):
        one = render_figure(get_spec("fig08"), FIG08_TABLE)
        two = render_figure(get_spec("fig02"), FIG02_TABLE)
        # legend chips are the only 10x10 rects
        assert 'width="10" height="10"' not in one
        assert two.count('width="10" height="10"') == 2


class TestFig04TraceEquivalence:
    """Satellite: TimelineRecorder.from_jsonl ≡ live bus on a traced fig04."""

    @pytest.fixture(scope="class")
    def traced_fig04(self, tmp_path_factory):
        from repro.experiments import fig04_stability

        path = str(tmp_path_factory.mktemp("trace") / "fig04.jsonl")
        live = TimelineRecorder()
        live.attach()
        try:
            with trace_to_file(path, generator="test", experiments=["fig04"]):
                fig04_stability.run(
                    n_flows=2, rate_bps=50e6, rtts=(0.02,), duration=6, seed=1
                )
        finally:
            live.detach()
        return live, path

    def test_replay_matches_live(self, traced_fig04):
        live, path = traced_fig04
        rebuilt = TimelineRecorder.from_jsonl(path)
        assert rebuilt.connections() == live.connections()
        for conn in live.connections():
            assert rebuilt.series(conn) == live.series(conn)
            assert rebuilt.loss_times(conn) == live.loss_times(conn)
            assert rebuilt.exp_times(conn) == live.exp_times(conn)
        assert rebuilt.marks == live.marks
        # two congested flows over a shared bottleneck must lose packets
        assert any(live.loss_times(c) for c in live.connections())

    def test_timeline_svg_matches_recorder(self, traced_fig04):
        _live, path = traced_fig04
        rec = TimelineRecorder.from_jsonl(path)
        svg = render_timeline(rec, max_points=10**9)  # stride 1: exact data
        assert svg is not None
        groups = _series_groups(svg)
        assert groups
        for conn, (ts, ys) in groups.items():
            samples = rec.series(conn)
            assert ts == [s.t for s in samples]
            assert ys == [s.rate_bps / 1e6 for s in samples]
        marks = _mark_groups(svg)
        for (kind, conn), times in marks.items():
            want = rec.loss_times(conn) if kind == "loss" else rec.exp_times(conn)
            assert times == want

    def test_timeline_empty_recorder_is_none(self):
        assert render_timeline(TimelineRecorder()) is None


class TestFidelityGate:
    def _ledger(self, tmp_path, perturb=None):
        spec = get_spec("fig08")
        entry = ledger_entry(spec, FIG08_TABLE, scale=0.05)
        if perturb:
            name, factor = perturb
            ref = entry["metrics"][name]
            allowed = entry["tolerances"][name]["tolerance"] * abs(ref)
            entry["metrics"][name] = ref + factor * allowed
        data = {"schema": 1, "kind": "bench.fidelity", "figures": {"fig08": entry}}
        path = tmp_path / "BENCH_fidelity.json"
        write_ledger(data, path)
        return path, data

    def test_entry_carries_metrics_and_tolerances(self):
        spec = get_spec("fig08")
        entry = ledger_entry(spec, FIG08_TABLE, scale=0.05)
        assert entry["scale"] == 0.05
        assert entry["metrics"]["loss_events"] == 4
        assert entry["metrics"]["loss_max_pkts"] == 900
        assert entry["tolerances"] == tolerances(spec)

    def test_check_passes_within_tolerance(self, tmp_path):
        path, data = self._ledger(tmp_path)
        current = {"fig08": compute_metrics(get_spec("fig08"), FIG08_TABLE)}
        failures, lines = check_fidelity(current, data)
        assert failures == []
        assert any("ok" in line for line in lines)

    def test_check_fails_beyond_tolerance(self, tmp_path):
        # ledger value pushed 2 bands away: the same table must now drift
        path, data = self._ledger(tmp_path, perturb=("loss_max_pkts", 2.0))
        current = {"fig08": compute_metrics(get_spec("fig08"), FIG08_TABLE)}
        failures, _ = check_fidelity(current, data)
        assert failures and "loss_max_pkts" in failures[0]

    def test_check_stays_ok_within_band(self, tmp_path):
        path, data = self._ledger(tmp_path, perturb=("loss_max_pkts", 0.5))
        current = {"fig08": compute_metrics(get_spec("fig08"), FIG08_TABLE)}
        failures, _ = check_fidelity(current, data)
        assert failures == []

    def test_missing_current_figure_fails(self, tmp_path):
        _path, data = self._ledger(tmp_path)
        failures, _ = check_fidelity({}, data)
        assert any("no current metrics" in f for f in failures)

    def test_empty_ledger_fails(self):
        failures, _ = check_fidelity({}, {"figures": {}})
        assert failures

    def _results_dir(self, tmp_path):
        rd = tmp_path / "results"
        rd.mkdir()
        (rd / "fig08.json").write_text(
            json.dumps(
                {
                    "exp_id": "fig08",
                    "result": {
                        "exp_id": "fig08",
                        "title": "synthetic",
                        "columns": FIG08_TABLE.columns,
                        "rows": FIG08_TABLE.rows,
                        "notes": "",
                        "paper_reference": "",
                    },
                }
            )
        )
        return rd

    def test_cli_gate_passes_then_fails_on_perturbation(self, tmp_path, capsys):
        rd = self._results_dir(tmp_path)
        path, _data = self._ledger(tmp_path)
        argv = [
            "--gate",
            "--ledger",
            str(path),
            "--results",
            str(rd),
            "--no-run",
        ]
        assert main(argv) == 0
        assert "no drift beyond tolerance" in capsys.readouterr().out

        path, _data = self._ledger(tmp_path, perturb=("loss_mean_pkts", 3.0))
        assert main(argv) == 1
        assert "loss_mean_pkts" in capsys.readouterr().err

    def test_cli_update_writes_ledger(self, tmp_path, capsys):
        rd = self._results_dir(tmp_path)
        path = tmp_path / "ledger.json"
        rc = main(
            [
                "--update",
                "--only",
                "fig08",
                "--ledger",
                str(path),
                "--results",
                str(rd),
                "--no-run",
            ]
        )
        assert rc == 0
        data = read_ledger(path)
        assert data["figures"]["fig08"]["metrics"]["loss_events"] == 4
        # and the fresh ledger immediately gates green
        assert (
            main(
                ["--gate", "--ledger", str(path), "--results", str(rd), "--no-run"]
            )
            == 0
        )
        capsys.readouterr()

    def test_cli_render_writes_svg(self, tmp_path, capsys):
        rd = self._results_dir(tmp_path)
        out = tmp_path / "figs"
        rc = main(
            [
                "--render",
                str(out),
                "--only",
                "fig08",
                "--results",
                str(rd),
                "--no-run",
            ]
        )
        assert rc == 0
        svg = (out / "fig08.svg").read_text()
        assert _series_groups(svg)
        capsys.readouterr()

    def test_committed_ledger_covers_acceptance_figures(self):
        from repro.obs.figures import DEFAULT_LEDGER

        data = read_ledger(DEFAULT_LEDGER)
        for fig_id in ("fig02", "fig04", "fig06", "fig08"):
            entry = data["figures"].get(fig_id)
            assert entry, f"{fig_id} missing from committed fidelity ledger"
            assert entry["metrics"], fig_id
            assert entry["tolerances"], fig_id
