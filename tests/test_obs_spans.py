"""Tests for packet-lifecycle span reconstruction and loss forensics."""

import json

import pytest

from repro.obs.export import TruncatedTraceWarning, read_events, trace_session
from repro.obs.report import render_report, report_dict
from repro.obs.spans import SpanBuilder, build_spans


def _ev(kind, t, src, **fields):
    return dict(fields, kind=kind, t=t, src=src)


class TestSpanBuilder:
    def test_clean_delivery_lifecycle(self):
        b = SpanBuilder()
        b.feed_many(
            [
                _ev("pkt.snd", 0.10, "u0-snd", seq=1, size=1500, retx=False),
                _ev("link.enq", 0.10, "1->2", uid=7, flow="u0", seq=1, qlen=3),
                _ev("link.deq", 0.14, "1->2", uid=7, flow="u0", seq=1),
                _ev("pkt.rcv", 0.20, "u0-rcv", seq=1, retx=False),
                _ev("snd.ack", 0.30, "u0-snd", seq=2, light=False),
            ]
        )
        ss = b.build()
        assert ss.connections() == ["u0"]
        span = ss.spans["u0"][1]
        assert span.state == "acked"
        assert span.transmissions == 1
        assert span.retransmissions == 0
        assert span.first_sent == 0.10
        assert span.recv_t == 0.20
        assert span.acked_t == 0.30
        waits = ss.queue_waits[("1->2", "u0")]
        assert waits == [pytest.approx(0.04)]

    def test_retransmission_chain_after_drop(self):
        b = SpanBuilder()
        b.feed_many(
            [
                _ev("pkt.snd", 0.1, "u0-snd", seq=5, size=1500, retx=False),
                _ev("link.drop", 0.12, "1->2", reason="queue", size=1500,
                    flow="u0", uid=9, seq=5),
                _ev("pkt.snd", 0.15, "u0-snd", seq=6, size=1500, retx=False),
                _ev("pkt.rcv", 0.25, "u0-rcv", seq=6, retx=False),
                _ev("rcv.loss", 0.25, "u0-rcv", first=5, last=5, length=1),
                _ev("snd.nak", 0.35, "u0-snd", lost=1, ranges=1, froze=True),
                _ev("pkt.snd", 0.40, "u0-snd", seq=5, size=1500, retx=True),
                _ev("pkt.rcv", 0.50, "u0-rcv", seq=5, retx=True),
                _ev("snd.ack", 0.60, "u0-snd", seq=7, light=False),
            ]
        )
        ss = b.build()
        span = ss.spans["u0"][5]
        assert span.transmissions == 2
        assert span.retransmissions == 1
        assert span.nak_count == 1
        assert span.drops == [(0.12, "1->2", "queue")]
        assert span.state == "acked"
        f = ss.forensics("u0")
        assert f["pkts_sent"] == 2
        assert f["retransmissions"] == 1
        assert f["acked"] == 2
        assert f["naked_pkts"] == 1
        assert f["max_chain"] == 2
        assert f["drops_by_link"] == {"1->2": {"queue": 1}}
        assert f["naks"] == {"received": 1, "pkts_reported": 1}
        assert f["loss_events"]["count"] == 1

    def test_cumulative_ack_stops_at_boundary(self):
        b = SpanBuilder()
        for seq in (0, 1, 2):
            b.feed(_ev("pkt.snd", 0.1 * (seq + 1), "u0-snd", seq=seq, retx=False))
        b.feed(_ev("snd.ack", 0.5, "u0-snd", seq=2))
        ss = b.build()
        assert ss.spans["u0"][0].acked_t == 0.5
        assert ss.spans["u0"][1].acked_t == 0.5
        assert ss.spans["u0"][2].acked_t is None
        assert ss.spans["u0"][2].state == "in_flight"
        # a later ACK picks up from the pointer, not from the start
        b.feed(_ev("snd.ack", 0.7, "u0-snd", seq=3))
        assert ss.spans["u0"][2].acked_t == 0.7

    def test_control_drops_kept_separate(self):
        b = SpanBuilder()
        b.feed(_ev("link.drop", 0.2, "2->1", reason="queue", size=40,
                   flow="None", uid=3, seq=None))
        b.feed(_ev("pkt.snd", 0.1, "u0-snd", seq=0, retx=False))
        b.feed(_ev("link.drop", 0.3, "1->2", reason="loss", size=1500,
                   flow="u0", uid=4, seq=0))
        ss = b.build()
        # ctrl drop is not attributed to any connection's forensics...
        assert ss.forensics("u0")["drops_by_link"] == {"1->2": {"loss": 1}}
        # ...but still shows in the wire totals
        assert ss.total_drops() == {
            "1->2": {"loss": 1},
            "2->1": {"queue": 1},
        }

    def test_buffer_drop_and_exp_and_flow_done(self):
        b = SpanBuilder()
        b.feed_many(
            [
                _ev("pkt.snd", 0.1, "u0-snd", seq=0, retx=False),
                _ev("rcv.buffer_drop", 0.2, "u0-rcv", seq=0, size=1500),
                _ev("exp.timeout", 0.9, "u0-snd", exp_count=1, unacked=1),
                _ev("flow.done", 1.0, "u0", bytes=12345, elapsed=0.9),
            ]
        )
        ss = b.build()
        assert ss.buffer_drops["u0"] == 1
        assert ss.spans["u0"][0].buffer_drop_t == 0.2
        assert ss.spans["u0"][0].state == "dropped"
        assert ss.exp_timeouts["u0"] == 1
        assert ss.flow_done["u0"]["bytes"] == 12345
        assert ss.t_max == 1.0

    def test_unknown_kinds_ignored(self):
        b = SpanBuilder()
        b.feed(_ev("cc.sample", 0.1, "u0-snd", rate_bps=1e6))
        b.feed({"kind": "trace.meta", "schema": 1, "generator": "test"})
        ss = b.build()
        assert ss.events_consumed == 0
        assert ss.meta["generator"] == "test"
        assert ss.connections() == []


class TestReport:
    def _spanset(self):
        b = SpanBuilder()
        b.feed_many(
            [
                {"kind": "trace.meta", "schema": 1, "generator": "test"},
                _ev("pkt.snd", 0.1, "u0-snd", seq=0, retx=False),
                _ev("pkt.rcv", 0.2, "u0-rcv", seq=0, retx=False),
                _ev("snd.ack", 0.3, "u0-snd", seq=1),
            ]
        )
        return b.build()

    def test_render_report_mentions_connection(self):
        text = render_report(self._spanset())
        assert "packet-lifecycle report" in text
        assert "connection u0" in text
        assert "sent 1 unique seqs" in text

    def test_render_report_empty_trace_hints_at_detail_tier(self):
        text = render_report(SpanBuilder().build())
        assert "--trace-packets" in text

    def test_report_dict_schema(self):
        d = report_dict(self._spanset(), trace="t.jsonl")
        assert d["schema"] == 1
        assert d["kind"] == "trace.report"
        assert d["trace"] == "t.jsonl"
        assert d["connections"][0]["conn"] == "u0"
        json.dumps(d)  # must be JSON-serialisable as-is


class TestTruncatedTraces:
    def _write(self, tmp_path, lines):
        p = tmp_path / "t.jsonl"
        p.write_text("\n".join(lines) + "\n")
        return str(p)

    def test_partial_last_line_skipped_with_warning(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                json.dumps({"kind": "trace.meta", "schema": 1}),
                json.dumps({"t": 0.1, "kind": "pkt.snd", "src": "u0-snd", "seq": 0}),
                '{"t": 0.2, "kind": "pkt.s',  # killed mid-write
            ],
        )
        stats = {}
        with pytest.warns(TruncatedTraceWarning):
            events = list(read_events(path, stats=stats))
        assert len(events) == 1
        assert stats["skipped_lines"] == 1

    def test_non_dict_line_skipped(self, tmp_path):
        path = self._write(tmp_path, ["[1, 2, 3]", json.dumps({"kind": "x", "t": 0})])
        stats = {}
        with pytest.warns(TruncatedTraceWarning):
            events = list(read_events(path, stats=stats))
        assert len(events) == 1
        assert stats["skipped_lines"] == 1

    def test_strict_mode_raises(self, tmp_path):
        path = self._write(tmp_path, ['{"broken'])
        with pytest.raises(json.JSONDecodeError):
            list(read_events(path, strict=True))

    def test_clean_file_emits_no_warning(self, tmp_path, recwarn):
        path = self._write(tmp_path, [json.dumps({"kind": "x", "t": 0})])
        stats = {}
        assert len(list(read_events(path, stats=stats))) == 1
        assert stats["skipped_lines"] == 0
        assert not [w for w in recwarn.list if w.category is TruncatedTraceWarning]

    def test_build_spans_survives_truncation(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                json.dumps({"t": 0.1, "kind": "pkt.snd", "src": "u0-snd",
                            "seq": 0, "retx": False}),
                '{"t": 0.2, "kind":',
            ],
        )
        with pytest.warns(TruncatedTraceWarning):
            ss = build_spans(path)
        assert ss.spans["u0"][0].transmissions == 1


class TestRoundTrip:
    """ISSUE satellite: traced fig08-style run -> spans must agree with the
    simulator's own ground-truth counters (MetricsRegistry link absorption,
    UdtStats, receiver loss events)."""

    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        from repro.apps.bulk import UdpBlast
        from repro.sim.topology import path_topology
        from repro.sim.udp import UdpEndpoint
        from repro.udt import UdtConfig, start_udt_flow

        path = str(tmp_path_factory.mktemp("trace") / "fig08_small.jsonl")
        with trace_session(path, packets=True, generator="test-roundtrip"):
            top = path_topology(100e6, 0.02, seed=3, cross_sources=1)
            cfg = UdtConfig(rcv_buffer_pkts=20000, snd_buffer_pkts=20000)
            flow = start_udt_flow(
                top.net, top.src, top.dst, config=cfg, flow_id="udt-rt"
            )
            cross = [n for n in top.net.nodes.values() if n.name == "cross0"][0]
            sink = UdpEndpoint(top.dst, 9999)
            UdpBlast(
                top.net,
                cross,
                sink.address,
                rate_bps=100e6 * 9.5,
                on_time=0.10,
                off_time=0.40,
                start=0.5,
            )
            top.net.run(until=3.0)
        return path, top, flow

    def test_drops_match_metrics_registry(self, traced_run):
        from repro.obs.registry import MetricsRegistry

        path, top, _ = traced_run
        reg = MetricsRegistry()
        for link in top.net.links.values():
            reg.absorb_link(link)
        spanset = build_spans(path)
        totals = spanset.total_drops()
        for link in top.net.links.values():
            by_cause = totals.get(link.name, {})
            assert by_cause.get("queue", 0) == reg.counter(
                "queue.drops", link=link.name
            ).value, f"queue drops disagree on {link.name}"
            assert by_cause.get("loss", 0) == reg.counter(
                "link.pkts_lost", link=link.name
            ).value, f"random-loss drops disagree on {link.name}"
        # the congested run must actually have exercised the drop path
        assert sum(n for bc in totals.values() for n in bc.values()) > 0

    def test_transmissions_match_sender_stats(self, traced_run):
        path, _, flow = traced_run
        f = build_spans(path).forensics("udt-rt")
        assert f["transmissions"] == flow.sender.stats.data_pkts_sent
        assert f["retransmissions"] == flow.sender.stats.retransmitted_pkts
        assert f["retransmissions"] > 0  # congestion actually caused retx

    def test_loss_events_match_receiver(self, traced_run):
        path, _, flow = traced_run
        spanset = build_spans(path)
        assert spanset.loss_events["udt-rt"] == list(flow.receiver.loss_events)

    def test_report_renders_on_real_trace(self, traced_run):
        path, _, _ = traced_run
        text = render_report(build_spans(path))
        assert "connection udt-rt" in text
        assert "drops by link and cause" in text
