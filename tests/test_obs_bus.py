"""Event bus, metrics registry, and JSONL export unit tests."""

import io
import json

import pytest

from repro.obs import (
    CC_SAMPLE,
    LINK_DROP,
    Event,
    EventBus,
    JsonlWriter,
    MetricsRegistry,
    TraceSummary,
    default_bus,
    read_events,
    trace_to_file,
)


class TestEventBus:
    def test_subscribe_enables_unsubscribe_disables(self):
        bus = EventBus()
        assert not bus.enabled
        got = []
        sub = bus.subscribe(got.append)
        assert bus.enabled
        bus.emit("x.kind", 1.0, "src", a=1)
        assert len(got) == 1
        bus.unsubscribe(sub)
        assert not bus.enabled
        bus.emit("x.kind", 2.0, "src")
        assert len(got) == 1

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        sub = bus.subscribe(lambda e: None)
        bus.unsubscribe(sub)
        bus.unsubscribe(sub)  # no error
        assert bus.subscriber_count == 0

    def test_multiple_subscribers_fan_out(self):
        bus = EventBus()
        a, b = [], []
        bus.subscribe(a.append)
        bus.subscribe(b.append)
        bus.emit("k", 0.0, "s")
        assert len(a) == len(b) == 1

    def test_kind_filtering(self):
        bus = EventBus()
        only_cc, everything = [], []
        bus.subscribe(only_cc.append, kinds=(CC_SAMPLE,))
        bus.subscribe(everything.append)
        bus.emit(CC_SAMPLE, 0.0, "s", rate_bps=1.0)
        bus.emit(LINK_DROP, 0.1, "l", reason="queue")
        assert [e.kind for e in only_cc] == [CC_SAMPLE]
        assert [e.kind for e in everything] == [CC_SAMPLE, LINK_DROP]

    def test_disabled_emit_is_noop(self):
        bus = EventBus()
        assert bus.emit("k", 0.0, "s", a=1) is None

    def test_event_to_dict_is_flat(self):
        ev = Event(1.5, "cc.sample", "udt0-snd", {"rate_bps": 2.0})
        assert ev.to_dict() == {
            "t": 1.5,
            "kind": "cc.sample",
            "src": "udt0-snd",
            "rate_bps": 2.0,
        }

    def test_default_bus_is_shared_and_initially_disabled(self):
        assert default_bus() is default_bus()
        assert not default_bus().enabled  # no leftover subscribers in tests

    def test_disabled_bus_overhead_path(self):
        """The emit-site pattern: a disabled bus means no Event is built.

        This is the contract hot paths rely on — subscribe, count, then
        unsubscribe and verify emission stops dead at the guard.
        """
        bus = EventBus()
        calls = []
        # instrumented component pattern
        def hot_path():
            if bus.enabled:
                bus.emit("hot.event", 0.0, "c", expensive=calls.append(1))

        hot_path()
        assert calls == []  # guard short-circuits: fields never evaluated
        sub = bus.subscribe(lambda e: None)
        hot_path()
        assert calls == [1]
        bus.unsubscribe(sub)
        hot_path()
        assert calls == [1]


class TestJsonlExport:
    def test_writer_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        bus = EventBus()
        with trace_to_file(path, bus=bus, generator="test") as w:
            bus.emit(CC_SAMPLE, 0.5, "udt0-snd", rate_bps=1e6, cwnd=16.0)
            bus.emit(LINK_DROP, 0.7, "1->2", reason="queue", size=1500)
        assert w.events_written == 2
        assert not bus.enabled  # writer unsubscribed on exit
        lines = [json.loads(l) for l in open(path)]
        assert lines[0]["kind"] == "trace.meta"
        assert lines[0]["schema"] == 1
        assert lines[0]["generator"] == "test"
        assert lines[1] == {
            "t": 0.5,
            "kind": CC_SAMPLE,
            "src": "udt0-snd",
            "rate_bps": 1e6,
            "cwnd": 16.0,
        }
        evs = list(read_events(path))
        assert len(evs) == 2  # meta skipped
        assert list(read_events(path, kinds=(LINK_DROP,)))[0]["size"] == 1500
        assert list(read_events(path, include_meta=True))[0]["kind"] == "trace.meta"

    def test_writer_serialises_non_json_fields_as_str(self):
        buf = io.StringIO()
        w = JsonlWriter(buf)
        w.on_event(Event(0.0, "flow.done", "f", {"flow": ("udt0", "arr")}))
        rec = json.loads(buf.getvalue())
        assert isinstance(rec["flow"], (str, list))

    def test_kind_filtered_writer(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        bus = EventBus()
        with trace_to_file(path, bus=bus, kinds=(CC_SAMPLE,)):
            bus.emit(CC_SAMPLE, 0.0, "s")
            bus.emit(LINK_DROP, 0.1, "l")
        assert [e["kind"] for e in read_events(path)] == [CC_SAMPLE]

    def test_double_attach_raises(self):
        w = JsonlWriter(io.StringIO())
        bus = EventBus()
        w.attach(bus)
        with pytest.raises(RuntimeError):
            w.attach(bus)
        w.detach()
        assert not bus.enabled


class TestTraceSummary:
    def test_counts_and_last_cc(self):
        s = TraceSummary()
        s.on_event(Event(0.1, CC_SAMPLE, "udt0-snd", {"rate_bps": 1e6, "cwnd": 8.0}))
        s.on_event(Event(0.2, CC_SAMPLE, "udt0-snd", {"rate_bps": 2e6, "cwnd": 9.0}))
        s.on_event(Event(0.15, LINK_DROP, "1->2", {"reason": "queue"}))
        assert s.total_events == 3
        assert s.counts[CC_SAMPLE] == 2
        assert s.last_cc["udt0-snd"]["rate_bps"] == 2e6
        assert s.t_min == 0.1 and s.t_max == 0.2
        text = s.to_text()
        assert "cc.sample" in text and "2.00 Mb/s" in text


class TestMetricsRegistry:
    def test_counter_get_or_create_and_labels(self):
        reg = MetricsRegistry()
        c1 = reg.counter("pkts", flow="a")
        c2 = reg.counter("pkts", flow="a")
        c3 = reg.counter("pkts", flow="b")
        assert c1 is c2 and c1 is not c3
        c1.inc(5)
        assert reg.counter("pkts", flow="a").value == 5
        with pytest.raises(ValueError):
            c1.inc(-1)

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        reg.gauge("depth", link="l").set(42.0)
        h = reg.histogram("rtt", flow="f")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0 and h.max == 4.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0
        rows = reg.collect()
        assert {r["type"] for r in rows} == {"gauge", "histogram"}

    def test_absorb_udt_stats(self):
        from repro.sim.topology import path_topology
        from repro.udt import start_udt_flow

        top = path_topology(50e6, 0.02)
        f = start_udt_flow(top.net, top.src, top.dst, flow_id="udt0")
        top.net.run(until=2.0)
        reg = MetricsRegistry()
        reg.absorb_udt_stats(f.sender, flow="udt0")
        reg.absorb_udt_stats(f.receiver, flow="udt0")
        sent = reg.counter(
            "udt.data_pkts_sent", flow="udt0", endpoint="udt0-snd"
        ).value
        assert sent == f.sender.stats.data_pkts_sent > 0
        acks = reg.counter("udt.acks_sent", flow="udt0", endpoint="udt0-rcv").value
        assert acks > 0
        text = reg.to_text()
        assert "udt.data_pkts_sent" in text and "endpoint=udt0-snd" in text

    def test_absorb_link_includes_peaks(self):
        from repro.sim.topology import path_topology
        from repro.udt import start_udt_flow

        top = path_topology(10e6, 0.02)
        start_udt_flow(top.net, top.src, top.dst)
        top.net.run(until=2.0)
        reg = MetricsRegistry()
        reg.absorb_link(top.bottleneck)
        rows = {r["name"]: r for r in reg.collect()}
        assert rows["link.pkts_sent"]["value"] > 0
        assert rows["queue.peak_pkts"]["value"] >= 1
        assert rows["queue.peak_pkts"]["value"] == top.bottleneck.queue.peak_pkts
