"""Unit + property tests for UDT wire formats."""

import pytest
from hypothesis import given, strategies as st

from repro.udt import packets as P
from repro.udt.nakcodec import encode as nak_encode
from repro.udt.params import MAX_SEQ_NO, UDT_HEADER

seqs = st.integers(min_value=0, max_value=MAX_SEQ_NO - 1)


def test_data_packet_roundtrip():
    pkt = P.DataPacket(seq=12345, size=4, ts=999, dst_id=7, data=b"abcd")
    out = P.decode(pkt.encode())
    assert isinstance(out, P.DataPacket)
    assert (out.seq, out.size, out.ts, out.dst_id, out.data) == (
        12345,
        4,
        999,
        7,
        b"abcd",
    )


def test_data_retransmit_flag_roundtrip():
    pkt = P.DataPacket(seq=1, size=1, data=b"x", retransmitted=True)
    assert P.decode(pkt.encode()).retransmitted


def test_data_wire_size():
    pkt = P.DataPacket(seq=0, size=1456)
    assert pkt.wire_size == UDT_HEADER + 1456
    assert len(P.DataPacket(seq=0, size=10, data=b"0123456789").encode()) == 26


def test_data_payload_length_mismatch():
    with pytest.raises(ValueError):
        P.DataPacket(seq=0, size=5, data=b"xy").encode()


def test_handshake_roundtrip():
    hs = P.Handshake(
        ts=1, init_seq=77, mss=9000, flow_window=4096, req_type=-1, socket_id=3
    )
    out = P.decode(hs.encode())
    assert isinstance(out, P.Handshake)
    assert out.init_seq == 77
    assert out.mss == 9000
    assert out.flow_window == 4096
    assert out.req_type == -1


def test_ack_roundtrip():
    ack = P.Ack(
        ack_no=9,
        recv_seq=100,
        rtt_us=110_000,
        rtt_var_us=5_000,
        buf_avail=512,
        recv_speed=8000,
        capacity=83000,
    )
    out = P.decode(ack.encode())
    assert isinstance(out, P.Ack)
    assert out.ack_no == 9
    assert out.recv_seq == 100
    assert out.rtt_us == 110_000
    assert out.capacity == 83000
    assert not out.light


def test_light_ack_roundtrip():
    ack = P.Ack(ack_no=3, recv_seq=50, light=True)
    out = P.decode(ack.encode())
    assert out.light and out.recv_seq == 50


def test_nak_roundtrip_with_compressed_loss():
    words = nak_encode([(3, 6), (9, 9)])
    nak = P.Nak(loss=words)
    out = P.decode(nak.encode())
    assert isinstance(out, P.Nak)
    assert out.loss == words


def test_ack2_keepalive_shutdown_roundtrip():
    for msg, cls in [
        (P.Ack2(ack_no=4), P.Ack2),
        (P.KeepAlive(), P.KeepAlive),
        (P.Shutdown(), P.Shutdown),
    ]:
        out = P.decode(msg.encode())
        assert isinstance(out, cls)


def test_short_datagram_rejected():
    with pytest.raises(ValueError):
        P.decode(b"123")


def test_bad_seqno_rejected():
    with pytest.raises(ValueError):
        P.DataPacket(seq=MAX_SEQ_NO, size=1, data=b"x").encode()


@given(seqs, st.binary(min_size=0, max_size=64), st.integers(0, 2**32 - 1))
def test_data_roundtrip_property(seq, payload, ts):
    pkt = P.DataPacket(seq=seq, size=len(payload), ts=ts, data=payload)
    if len(payload) == 0:
        return  # zero-size data packets are not legal on the wire
    out = P.decode(pkt.encode())
    assert out.seq == seq and out.data == payload and out.ts == ts


def test_control_vs_data_discrimination():
    # A data packet whose seq has the top bit clear must never parse as control.
    data = P.DataPacket(seq=MAX_SEQ_NO - 1, size=1, data=b"z")
    assert isinstance(P.decode(data.encode()), P.DataPacket)
