"""The .rtrc binary trace store: round-trips, index queries, sampling.

The contract under test is the one the trace pipeline stands on:

* every consumer (``read_events``, ``TimelineRecorder.from_jsonl``,
  ``build_spans``, the report CLI) sees the *same* flat event dicts from
  ``.jsonl``, ``.jsonl.gz`` and ``.rtrc`` traces of one run;
* ``jsonl -> rtrc -> jsonl`` is byte-exact, and an ``.rtrc`` written
  live off the bus is byte-identical to one converted from the JSONL of
  the same run (deterministic blocks + fixed-level zlib);
* kind/src/time-range queries answer from the footer index, *skipping*
  blocks — asserted via the reader's block counters;
* truncated containers degrade to the complete-block prefix with a
  warning, like crash-truncated JSONL.

The shared fixture records one packet-tier fig04 run once with all
three writers attached to the same bus, so live-vs-file comparisons
are exact (process-global packet uids make two *sequential* runs
legitimately differ).
"""

import gzip
import json
from types import SimpleNamespace

import pytest

from repro.experiments import get_experiment
from repro.obs import TimelineRecorder, trace_to_file
from repro.obs.export import open_trace_text, read_events
from repro.obs.spans import build_spans
from repro.obs.store import (
    RtrcFormatError,
    RtrcReader,
    RtrcWriter,
    Sampler,
    event_region_offset,
    jsonl_to_rtrc,
    parse_sample_specs,
    read_rtrc_events,
    rtrc_to_jsonl,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

RUN_KW = dict(n_flows=2, rate_bps=20e6, rtts=(0.01,), duration=3.0)


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One packet-tier fig04 run recorded to all three formats at once."""
    d = tmp_path_factory.mktemp("traces")
    jsonl, gz, rtrc = d / "t.jsonl", d / "t.jsonl.gz", d / "t.rtrc"
    live = TimelineRecorder()
    live.attach()
    try:
        with trace_to_file(str(jsonl), packets=True, generator="test"), \
             trace_to_file(str(gz), packets=True, generator="test"), \
             trace_to_file(str(rtrc), packets=True, generator="test"):
            get_experiment("fig04").runner(**RUN_KW)
    finally:
        live.detach()
    return SimpleNamespace(dir=d, jsonl=jsonl, gz=gz, rtrc=rtrc, live=live)


# -- byte-level round trips -------------------------------------------------


class TestRoundTrip:
    def test_rtrc_is_much_smaller_than_jsonl(self, traced_run):
        ratio = traced_run.rtrc.stat().st_size / traced_run.jsonl.stat().st_size
        assert ratio <= 0.25, f".rtrc is {ratio:.1%} of the JSONL size"

    def test_gz_stream_equals_plain_jsonl(self, traced_run):
        with gzip.open(traced_run.gz, "rb") as f:
            assert f.read() == traced_run.jsonl.read_bytes()

    def test_live_rtrc_equals_converted_rtrc(self, traced_run, tmp_path):
        """Bus -> .rtrc and bus -> .jsonl -> .rtrc give identical bytes."""
        conv = tmp_path / "conv.rtrc"
        n = jsonl_to_rtrc(traced_run.jsonl, conv)
        assert n > 1000
        assert conv.read_bytes() == traced_run.rtrc.read_bytes()

    def test_rtrc_to_jsonl_is_byte_exact(self, traced_run, tmp_path):
        back = tmp_path / "back.jsonl"
        n = rtrc_to_jsonl(traced_run.rtrc, back)
        assert back.read_bytes() == traced_run.jsonl.read_bytes()
        with RtrcReader(traced_run.rtrc) as reader:
            assert n == reader.events_total

    def test_gz_to_rtrc_matches_plain_to_rtrc(self, traced_run, tmp_path):
        a, b = tmp_path / "a.rtrc", tmp_path / "b.rtrc"
        jsonl_to_rtrc(traced_run.jsonl, a)
        jsonl_to_rtrc(traced_run.gz, b)
        assert a.read_bytes() == b.read_bytes()


# -- consumer equivalence across formats ------------------------------------


class TestConsumerEquivalence:
    def test_read_events_yields_identical_dicts(self, traced_run):
        ja = list(read_events(str(traced_run.jsonl), include_meta=True))
        gb = list(read_events(str(traced_run.gz), include_meta=True))
        rb = list(read_events(str(traced_run.rtrc), include_meta=True))
        assert len(ja) > 10_000
        assert ja == gb == rb

    def test_timeline_rebuild_matches_live(self, traced_run):
        from_jsonl = TimelineRecorder.from_jsonl(str(traced_run.jsonl))
        from_rtrc = TimelineRecorder.from_jsonl(str(traced_run.rtrc))
        live = traced_run.live
        assert from_jsonl.connections() == live.connections()
        assert from_rtrc.connections() == live.connections()
        for conn in live.connections():
            assert from_jsonl.series(conn) == live.series(conn)
            assert from_rtrc.series(conn) == live.series(conn)
        assert from_jsonl.marks == live.marks
        assert from_rtrc.marks == live.marks

    def test_spanset_identical_across_formats(self, traced_run):
        sj = build_spans(str(traced_run.jsonl))
        sr = build_spans(str(traced_run.rtrc))
        assert sj.events_consumed == sr.events_consumed > 10_000
        assert sj.connections() == sr.connections()
        for conn in sj.connections():
            assert sj.forensics(conn) == sr.forensics(conn)


# -- index-based querying ---------------------------------------------------


@pytest.fixture(scope="module")
def indexed(traced_run, tmp_path_factory):
    """The run's trace re-blocked small, so index skipping is visible."""
    path = tmp_path_factory.mktemp("indexed") / "small-blocks.rtrc"
    jsonl_to_rtrc(traced_run.jsonl, path, block_events=512)
    return path


def _scan(path, kinds=None, srcs=None, t0=None, t1=None):
    out = []
    for rec in read_events(str(path), kinds=kinds):
        if srcs is not None and rec.get("src") not in srcs:
            continue
        t = rec.get("t", 0.0)
        if t0 is not None and t < t0:
            continue
        if t1 is not None and t > t1:
            continue
        out.append(rec)
    return out


class TestIndexQueries:
    def test_rare_kind_query_skips_blocks(self, traced_run, indexed):
        with RtrcReader(indexed) as reader:
            counts = reader.kind_counts()
            # the rarest kind lives in few blocks; the index must skip
            # the rest rather than inflate them
            kind = min(counts, key=counts.get)
            got = list(reader.iter_events(kinds=[kind]))
            assert reader.blocks_read < reader.blocks_total
            assert reader.blocks_skipped > 0
            assert reader.blocks_read + reader.blocks_skipped == reader.blocks_total
        assert got == _scan(traced_run.jsonl, kinds=[kind])

    def test_time_range_query_matches_scan_and_skips(self, traced_run, indexed):
        with RtrcReader(indexed) as reader:
            lo, hi = reader.time_range()
            t0 = lo + (hi - lo) * 0.4
            t1 = lo + (hi - lo) * 0.45
            got = list(reader.iter_events(t0=t0, t1=t1))
            assert reader.blocks_skipped > 0
        assert got == _scan(traced_run.jsonl, t0=t0, t1=t1)

    def test_src_query_matches_scan(self, traced_run, indexed):
        with RtrcReader(indexed) as reader:
            src = reader.srcs()[0]
            got = list(reader.iter_events(srcs=[src]))
        assert got == _scan(traced_run.jsonl, srcs={src})
        assert got, "src filter matched nothing"

    def test_stats_come_from_index_alone(self, traced_run, indexed):
        with RtrcReader(indexed) as reader:
            stats = reader.stats()
            assert reader.blocks_read == 0  # nothing decompressed
        expected = {}
        for rec in read_events(str(traced_run.jsonl)):
            expected[rec["kind"]] = expected.get(rec["kind"], 0) + 1
        assert stats["kinds"] == expected
        assert stats["events"] == sum(expected.values())
        assert not stats["truncated"]

    def test_read_events_stats_carry_block_counters(self, indexed):
        stats = {}
        with RtrcReader(indexed) as reader:
            counts = reader.kind_counts()
        kind = min(counts, key=counts.get)
        n = sum(1 for _ in read_events(str(indexed), kinds=[kind], stats=stats))
        assert n == counts[kind]
        assert stats["blocks_read"] >= 1
        assert stats["blocks_skipped"] > 0
        assert stats["skipped_lines"] == 0


# -- truncation recovery ----------------------------------------------------


def _tiny_rtrc(path, n=1000, block_events=100):
    w = RtrcWriter(path, block_events=block_events)
    w.write_meta(generator="test")
    for i in range(n):
        w.feed({"t": i * 0.001, "kind": "cc.sample", "src": "s", "seq": i})
    w.close()
    return path


class TestTruncation:
    def test_missing_trailer_with_intact_footer_recovers_fully(self, tmp_path):
        p = _tiny_rtrc(tmp_path / "t.rtrc")
        data = p.read_bytes()
        p.write_bytes(data[:-16])  # drop the u64 offset + trailer magic
        with RtrcReader(p) as reader:
            assert not reader.truncated  # footer found by frame scan
            assert reader.events_total == 1000

    def test_mid_block_truncation_yields_complete_prefix(self, tmp_path):
        p = _tiny_rtrc(tmp_path / "t.rtrc")
        p.write_bytes(p.read_bytes()[: p.stat().st_size // 2])
        with pytest.warns(UserWarning, match="truncated"):
            events = list(read_rtrc_events(p))
        assert events
        assert len(events) % 100 == 0  # whole blocks only
        assert len(events) < 1000
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_strict_raises_on_truncation(self, tmp_path):
        p = _tiny_rtrc(tmp_path / "t.rtrc")
        p.write_bytes(p.read_bytes()[: p.stat().st_size // 2])
        with pytest.raises(RtrcFormatError):
            list(read_rtrc_events(p, strict=True))

    def test_bad_magic_rejected(self, tmp_path):
        p = tmp_path / "bad.rtrc"
        p.write_bytes(b"not a container at all")
        with pytest.raises(RtrcFormatError):
            RtrcReader(p)


# -- sampling tier ----------------------------------------------------------


class TestSampling:
    def test_stride_and_head_policies(self):
        s = Sampler({"a": "stride:3", "b": "head:2"})
        kept_a = [s.admit("a") for _ in range(7)]
        kept_b = [s.admit("b") for _ in range(4)]
        assert kept_a == [True, False, False, True, False, False, True]
        assert kept_b == [True, True, False, False]
        assert s.admit("unlisted") is True
        assert s.dropped == {"a": 4, "b": 2}
        assert s.policy() == {"a": "stride:3", "b": "head:2"}

    def test_bare_int_means_stride(self):
        s = Sampler({"a": 2})
        assert [s.admit("a") for _ in range(4)] == [True, False, True, False]

    def test_parse_sample_specs_validates(self):
        assert parse_sample_specs(["pkt.snd=stride:10", "x=head:5"]) == {
            "pkt.snd": "stride:10",
            "x": "head:5",
        }
        assert parse_sample_specs(["pkt.snd=100"]) == {"pkt.snd": "stride:100"}
        with pytest.raises(ValueError):
            parse_sample_specs(["no-equals"])
        with pytest.raises(ValueError):
            parse_sample_specs(["k=bogus:1"])
        with pytest.raises(ValueError):
            parse_sample_specs(["k=stride:0"])

    def test_sampled_conversion_records_budget(self, traced_run, tmp_path):
        full = {}
        for rec in read_events(str(traced_run.jsonl)):
            full[rec["kind"]] = full.get(rec["kind"], 0) + 1
        out = tmp_path / "sampled.rtrc"
        jsonl_to_rtrc(traced_run.jsonl, out, sample={"pkt.snd": "stride:10"})
        with RtrcReader(out) as reader:
            counts = reader.kind_counts()
            kept = counts["pkt.snd"]
            assert kept == (full["pkt.snd"] + 9) // 10
            assert reader.dropped == {"pkt.snd": full["pkt.snd"] - kept}
            assert reader.stats()["sampling"] == {"pkt.snd": "stride:10"}
            # unlisted kinds are untouched
            for kind, n in counts.items():
                if kind != "pkt.snd":
                    assert n == full[kind]

    def test_live_sampling_lands_in_trace_meta(self, tmp_path):
        from repro.sim.topology import path_topology
        from repro.udt import start_udt_flow

        path = tmp_path / "sampled.jsonl"
        with trace_to_file(
            str(path), generator="test", sample={"cc.sample": "head:5"}
        ):
            top = path_topology(20e6, 0.01)
            start_udt_flow(top.net, top.src, top.dst)
            top.net.run(until=2.0)
        meta = next(read_events(str(path), include_meta=True))
        assert meta["sampling"] == {"cc.sample": "head:5"}
        n_cc = sum(
            1 for r in read_events(str(path)) if r["kind"] == "cc.sample"
        )
        assert n_cc == 5


# -- container layout -------------------------------------------------------


class TestLayout:
    def test_event_region_offset_lands_on_first_block(self, tmp_path):
        p = _tiny_rtrc(tmp_path / "t.rtrc")
        off = event_region_offset(p)
        with open(p, "rb") as f:
            f.seek(off)
            assert f.read(1) == b"B"

    def test_event_region_offset_rejects_non_rtrc(self, tmp_path):
        p = tmp_path / "x.rtrc"
        p.write_bytes(b"junk")
        with pytest.raises(RtrcFormatError):
            event_region_offset(p)

    def test_block_events_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            RtrcWriter(tmp_path / "x.rtrc", block_events=0)

    def test_empty_trace_roundtrips(self, tmp_path):
        p = tmp_path / "empty.rtrc"
        w = RtrcWriter(p)
        w.write_meta(generator="test")
        w.close()
        with RtrcReader(p) as reader:
            assert reader.events_total == 0
            assert reader.blocks_total == 0
            assert reader.meta["generator"] == "test"
        assert list(read_rtrc_events(p)) == []


# -- the trace CLI ----------------------------------------------------------


class TestTraceCli:
    def _main(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_query_by_kind_matches_full_scan(self, traced_run, indexed, capsys):
        with RtrcReader(indexed) as reader:
            counts = reader.kind_counts()
        kind = min(counts, key=counts.get)
        assert self._main("trace", "query", str(indexed), "--kind", kind) == 0
        out, err = capsys.readouterr()
        rows = [json.loads(l) for l in out.splitlines()]
        assert rows == _scan(traced_run.jsonl, kinds=[kind])
        assert f"[query] {len(rows)} matching" in err
        assert "skipped" in err  # the index tally is reported

    def test_query_stats_and_tail(self, indexed, capsys):
        assert self._main("trace", "query", str(indexed), "--stats") == 0
        out, _ = capsys.readouterr()
        assert "cc.sample" in out
        assert self._main(
            "trace", "query", str(indexed), "--kind", "cc.sample", "--tail", "3"
        ) == 0
        out, _ = capsys.readouterr()
        assert len(out.splitlines()) == 3

    def test_query_to_jsonl_carries_meta(self, indexed, tmp_path, capsys):
        dst = tmp_path / "slice.jsonl"
        assert self._main(
            "trace", "query", str(indexed), "--kind", "cc.sample",
            "--to-jsonl", str(dst),
        ) == 0
        capsys.readouterr()
        first = dst.read_text().splitlines()[0]
        assert '"trace.meta"' in first

    def test_info_json(self, indexed, capsys):
        assert self._main("trace", "info", str(indexed), "--json") == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["format"] == "rtrc"
        assert stats["events"] > 10_000
        assert stats["meta"]["kind"] == "trace.meta"

    def test_convert_chain_via_cli(self, traced_run, tmp_path, capsys):
        rtrc = tmp_path / "c.rtrc"
        back = tmp_path / "c.jsonl"
        assert self._main(
            "trace", "convert", str(traced_run.jsonl), str(rtrc)
        ) == 0
        assert self._main("trace", "convert", str(rtrc), str(back)) == 0
        capsys.readouterr()
        assert back.read_bytes() == traced_run.jsonl.read_bytes()

    def test_missing_file_exits_2(self, capsys):
        assert self._main("trace", "info", "/no/such/trace.rtrc") == 2
        assert "error" in capsys.readouterr().err


# -- gzip traces end-to-end from the run CLI --------------------------------


class TestGzipCli:
    def test_run_writes_gz_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.jsonl.gz"
        rc = main(
            [
                "run", "fig09", "--trace", str(path),
                "--set", "n_events=20", "--set", "max_burst=50",
            ]
        )
        capsys.readouterr()
        assert rc == 0
        assert path.exists()
        meta = next(read_events(str(path), include_meta=True))
        assert meta["kind"] == "trace.meta"

    def test_truncated_gz_is_tolerated(self, traced_run, tmp_path):
        cut = tmp_path / "cut.jsonl.gz"
        cut.write_bytes(traced_run.gz.read_bytes()[: traced_run.gz.stat().st_size // 2])
        with pytest.warns(UserWarning, match="malformed"):
            events = list(read_events(str(cut)))
        assert events  # complete prefix still served

    def test_open_trace_text_gz_roundtrip_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
        for p in (a, b):
            with open_trace_text(str(p), "w") as f:
                f.write('{"kind":"trace.meta","schema":1}\n')
                f.write('{"t":0.1,"kind":"x","src":"s"}\n')
        assert a.read_bytes() == b.read_bytes()  # zeroed mtime
