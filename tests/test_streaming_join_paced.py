"""Tests for the paced real-time source used by the Figure 1 workload."""

import pytest

from repro.apps.streaming_join import PacedSource, run_streaming_join
from repro.sim.topology import join_topology, path_topology
from repro.tcp import TcpFlow
from repro.udt.sim_adapter import UdtFlow


def test_paced_udt_source_holds_rate():
    top = path_topology(100e6, 0.01)
    f = UdtFlow(top.net, top.src, top.dst, app_driven=True, flow_id="p")
    PacedSource(top.net, f, rate_bps=30e6)
    top.net.run(until=10.0)
    assert f.throughput_bps(3, 10) == pytest.approx(30e6, rel=0.1)


def test_paced_tcp_source_holds_rate():
    top = path_topology(100e6, 0.01)
    f = TcpFlow(top.net, top.src, top.dst, flow_id="p")
    PacedSource(top.net, f, rate_bps=30e6)
    top.net.run(until=10.0)
    assert f.throughput_bps(3, 10) == pytest.approx(30e6, rel=0.1)


def test_backlog_carries_over_when_transport_slower_than_source():
    # Source at 80 Mb/s into a 20 Mb/s path: transport caps throughput.
    top = path_topology(20e6, 0.01)
    f = UdtFlow(top.net, top.src, top.dst, app_driven=True, flow_id="p")
    PacedSource(top.net, f, rate_bps=80e6)
    top.net.run(until=10.0)
    thr = f.throughput_bps(3, 10)
    assert thr < 25e6
    assert thr > 15e6


def test_rejects_nonpositive_rate():
    top = path_topology(20e6, 0.01)
    f = UdtFlow(top.net, top.src, top.dst, app_driven=True)
    with pytest.raises(ValueError):
        PacedSource(top.net, f, rate_bps=0)


def test_join_with_paced_sources_balances():
    top = join_topology(rate_bps=60e6, rtt_a=0.02, rtt_b=0.002)
    join, fa, fb = run_streaming_join(
        top,
        lambda net, s, d, fid: UdtFlow(net, s, d, flow_id=fid, app_driven=True),
        duration=8.0,
        source_rate_bps=20e6,
    )
    # Both streams sustain the source rate; nearly everything joins.
    assert join.stats.joined > 0
    assert join.stats.expired < join.stats.joined * 0.2
