"""Tests for the simulator hot-path profiler (repro.obs.prof)."""

import json

import pytest

from repro.obs.prof import PROFILE_SCHEMA, SimProfiler, categorize, profile_simulators
from repro.sim.engine import Simulator, Timer


def _orig_run():
    return Simulator.__dict__["run"]


class TestRunProfiled:
    def test_matches_run_semantics(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.3, seen.append, "c")
        sim.schedule(0.1, seen.append, "a")
        ev = sim.schedule(0.2, seen.append, "b")
        ev.cancel()
        acc = sim.run_profiled()
        assert seen == ["a", "c"]
        assert sim.events_processed == 2
        assert sum(c for c, _ in acc.values()) == 2

    def test_until_advances_clock(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        sim.run_profiled(until=2.0)
        assert sim.now == 2.0

    def test_accumulator_shared_across_segments(self):
        sim = Simulator()
        acc = {}
        sim.schedule(0.1, lambda: None)
        sim.run_profiled(until=1.0, acc=acc)
        sim.schedule(0.5, lambda: None)
        sim.run_profiled(acc=acc)
        assert sum(c for c, _ in acc.values()) == 2

    def test_timer_charged_to_wrapped_callback(self):
        sim = Simulator()
        fired = []

        def my_handler():
            fired.append(sim.now)

        Timer(sim, my_handler).restart(0.5)
        acc = sim.run_profiled()
        assert fired == [0.5]
        assert my_handler in acc
        assert Timer._fire not in acc


class TestSimProfiler:
    def test_instance_install_and_uninstall(self):
        sim = Simulator()
        prof = SimProfiler()
        prof.install(sim)
        sim.schedule(0.1, lambda: None)
        sim.run()
        prof.uninstall()
        assert prof.events_total == 1
        assert prof.runs == 1
        assert prof.wall_seconds > 0
        # uninstalled: instance attribute removed, class method again
        assert "run" not in vars(sim)

    def test_class_install_captures_new_simulators(self):
        prof = SimProfiler()
        with prof.activate():
            sim = Simulator()  # constructed *after* install
            sim.schedule(0.1, lambda: None)
            sim.schedule(0.2, lambda: None)
            sim.run()
        assert prof.events_total == 2
        assert Simulator.run is _orig_run()

    def test_class_install_is_exclusive(self):
        with profile_simulators():
            with pytest.raises(RuntimeError):
                SimProfiler().install()
        assert Simulator.run is _orig_run()

    def test_uninstall_restores_after_exception(self):
        with pytest.raises(ValueError):
            with profile_simulators():
                raise ValueError("boom")
        assert Simulator.run is _orig_run()

    def test_categories_merge_and_sort(self):
        prof = SimProfiler()
        with prof.activate():
            sim = Simulator()
            for i in range(5):
                sim.schedule(0.1 * i, list)  # same fn, one category
            sim.run()
        cats = prof.categories()
        assert len(cats) == 1
        row = cats[0]
        assert set(row) == {"category", "events", "seconds", "share"}
        assert row["events"] == 5
        assert row["share"] == pytest.approx(1.0)

    def test_top_limits_rows(self):
        prof = SimProfiler()
        with prof.activate():
            sim = Simulator()
            sim.schedule(0.1, list)
            sim.schedule(0.2, dict)
            sim.schedule(0.3, set)
            sim.run()
        assert len(prof.top(2)) == 2
        assert len(prof.categories()) == 3

    def test_write_json_schema(self, tmp_path):
        prof = SimProfiler()
        with prof.activate():
            sim = Simulator()
            sim.schedule(0.1, list)
            sim.run()
        path = tmp_path / "BENCH_profile_test.json"
        prof.write_json(str(path), exp_id="test")
        d = json.loads(path.read_text())
        assert d["schema"] == PROFILE_SCHEMA
        assert d["kind"] == "bench.profile"
        assert d["exp_id"] == "test"
        assert d["events_total"] == 1
        for row in d["categories"]:
            assert set(row) == {"category", "events", "seconds", "share"}

    def test_to_text_renders(self):
        prof = SimProfiler()
        with prof.activate():
            sim = Simulator()
            sim.schedule(0.1, list)
            sim.run()
        text = prof.to_text()
        assert "simulator profile" in text
        assert "category" in text


class TestCategorize:
    def test_known_handlers_mapped(self):
        from repro.sim.link import Link
        from repro.udt.core import UdtCore

        assert categorize(Link._drain) == "link.transmit"
        assert categorize(UdtCore._on_send_timer) == "cc.send_timer"
        assert categorize(UdtCore._on_syn_timer) == "cc.syn_timer"

    def test_unknown_handler_falls_back_to_qualname(self):
        def my_fn():
            pass

        cat = categorize(my_fn)
        assert "my_fn" in cat


class TestProfiledExperiment:
    def test_profiling_does_not_perturb_virtual_time(self):
        """A profiled run must be deterministic and identical to unprofiled."""
        from repro.sim.topology import path_topology
        from repro.udt import start_udt_flow

        def run_flow(profiled):
            top = path_topology(50e6, 0.02, seed=7)
            f = start_udt_flow(top.net, top.src, top.dst, flow_id="p")
            if profiled:
                prof = SimProfiler()
                with prof.activate(top.net.sim):
                    top.net.run(until=2.0)
                assert prof.events_total > 100
                assert prof.categories()[0]["events"] > 0
            else:
                top.net.run(until=2.0)
            return f.receiver.delivered_bytes

        assert run_flow(False) == run_flow(True)
