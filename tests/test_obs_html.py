"""Static HTML dashboard, report CLI guards, and bench history."""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.obs.html import DashboardInputs, build_dashboard, collect_inputs
from repro.runner.cache import ResultCache
from repro.runner.sweep import SweepReport, append_history, update_bench


def _store_result(cache, exp_id, columns, rows, digest):
    cache.store(
        digest,
        {
            "exp_id": exp_id,
            "scale": 0.05,
            "seconds": 1.5,
            "result": {
                "exp_id": exp_id,
                "title": f"{exp_id} synthetic",
                "columns": columns,
                "rows": rows,
                "notes": "",
                "paper_reference": "",
            },
        },
    )


@pytest.fixture
def populated(tmp_path):
    """A cache with fig08 + table1 results, a bench file with history."""
    cache_dir = tmp_path / "cache"
    cache = ResultCache(cache_dir)
    _store_result(
        cache,
        "fig08",
        ["loss event #", "lost packets"],
        [[1, 400], [2, 900], [3, 150]],
        "ab" * 32,
    )
    _store_result(
        cache,
        "table1",
        ["B (Mb/s)", "inc (pkts/SYN)"],
        [[1, 0.15], [10, 1.5]],
        "cd" * 32,
    )
    bench = tmp_path / "bench.json"
    bench.write_text(
        json.dumps(
            {
                "schema": 1,
                "kind": "bench.runtime",
                "runtimes": {"fig08": {"seconds": 19.2, "test": "sweep"}},
                "history": {
                    "fig08": [
                        {"ts": "2026-08-01T00:00:00Z", "sha": "aaa", "seconds": 21.0},
                        {"ts": "2026-08-02T00:00:00Z", "sha": "bbb", "seconds": 19.2},
                    ]
                },
                "sweeps": {
                    "all|scale=0.05|jobs=2": {
                        "experiments": 4,
                        "cached": 3,
                        "seconds": 30.0,
                        "per_experiment": {"fig08": 19.2},
                    }
                },
            }
        )
    )
    ledger = tmp_path / "fidelity.json"
    from repro.obs.figspec import ResultTable, get_spec
    from repro.obs.figures import ledger_entry, write_ledger

    table = ResultTable(cache.load("ab" * 32)["result"])
    write_ledger(
        {
            "schema": 1,
            "kind": "bench.fidelity",
            "figures": {"fig08": ledger_entry(get_spec("fig08"), table, 0.05)},
        },
        ledger,
    )
    return {"cache_dir": cache_dir, "bench": bench, "ledger": ledger}


class TestDashboard:
    def test_build_is_selfcontained_multipage(self, tmp_path, populated):
        inputs = collect_inputs(
            cache_dir=populated["cache_dir"],
            bench_path=populated["bench"],
            ledger_path=populated["ledger"],
        )
        out = tmp_path / "dash"
        index = build_dashboard(out, inputs)
        assert index == out / "index.html"
        pages = {p.name for p in out.glob("*.html")}
        assert {"index.html", "fig08.html", "table1.html"} <= pages
        for page in out.glob("*.html"):
            doc = page.read_text()
            assert "<script" not in doc and "<link" not in doc, page.name
            stripped = doc.replace("http://www.w3.org/2000/svg", "")
            assert "http://" not in stripped and "https://" not in stripped, page.name

    def test_experiment_page_contents(self, tmp_path, populated):
        inputs = collect_inputs(
            cache_dir=populated["cache_dir"],
            bench_path=populated["bench"],
            ledger_path=populated["ledger"],
        )
        out = tmp_path / "dash"
        build_dashboard(out, inputs)
        fig08 = (out / "fig08.html").read_text()
        assert 'class="series"' in fig08  # the SVG figure
        assert "Fidelity vs committed ledger" in fig08
        assert "✓ ok" in fig08
        assert "Result table" in fig08
        # table1 has no figure spec: renders as a plain table, no crash
        table1 = (out / "table1.html").read_text()
        assert "Result table" in table1
        assert 'class="series"' not in table1

    def test_index_trend_and_sweep_stats(self, tmp_path, populated):
        inputs = collect_inputs(
            cache_dir=populated["cache_dir"],
            bench_path=populated["bench"],
            ledger_path=populated["ledger"],
        )
        out = tmp_path / "dash"
        build_dashboard(out, inputs)
        index = (out / "index.html").read_text()
        assert "runtime trend" in index  # history sparkline rendered
        assert "3/4" in index  # cache-hit stats from the sweeps section
        assert 'href="fig08.html"' in index

    def test_only_filter(self, tmp_path, populated):
        inputs = collect_inputs(
            cache_dir=populated["cache_dir"],
            bench_path=populated["bench"],
            ledger_path=populated["ledger"],
            only=["fig08"],
        )
        out = tmp_path / "dash"
        build_dashboard(out, inputs)
        pages = {p.name for p in out.glob("*.html")}
        assert pages == {"index.html", "fig08.html"}

    def test_fidelity_badge_drifts_when_ledger_perturbed(self, tmp_path, populated):
        data = json.loads(populated["ledger"].read_text())
        m = data["figures"]["fig08"]["metrics"]
        m["loss_max_pkts"] = m["loss_max_pkts"] * 2.0
        populated["ledger"].write_text(json.dumps(data))
        inputs = collect_inputs(
            cache_dir=populated["cache_dir"],
            bench_path=populated["bench"],
            ledger_path=populated["ledger"],
        )
        out = tmp_path / "dash"
        build_dashboard(out, inputs)
        assert "✗ drifted" in (out / "fig08.html").read_text()


class TestProgressCard:
    def _feed(self, tmp_path, finished=True):
        from repro.runner.progress import HEARTBEAT, ProgressBoard

        path = tmp_path / "progress.jsonl"
        board = ProgressBoard(path=path)
        board.sweep_begin("fig08,table1", 0.05, 2,
                          pending=["fig08"], cached=["table1"])
        board.worker_start("fig08")
        board.heartbeat(
            "fig08",
            {"kind": HEARTBEAT, "exp": "fig08", "wall": 1.4, "events": 89_000,
             "vt": 2.0, "vt_end": 5.0, "eps": 209_000, "eta": 1.2},
        )
        if finished:
            board.worker_done("fig08", 2.5)
            board.sweep_end(3.0, executed=1, failed=0)
        return path

    def _build(self, tmp_path, populated, feed):
        inputs = collect_inputs(
            cache_dir=populated["cache_dir"],
            bench_path=populated["bench"],
            ledger_path=populated["ledger"],
            progress_path=feed,
        )
        out = tmp_path / "dash"
        build_dashboard(out, inputs)
        return (out / "index.html").read_text()

    def test_finished_sweep_renders_last_run_card(self, tmp_path, populated):
        index = self._build(tmp_path, populated, self._feed(tmp_path))
        assert "Last run" in index
        assert "vtime frontier" in index
        assert "✓ done 2.5s" in index
        assert "2.00/5.00s (40%)" in index
        assert "1 cached" in index

    def test_unfinished_sweep_renders_live_card(self, tmp_path, populated):
        feed = self._feed(tmp_path, finished=False)
        index = self._build(tmp_path, populated, feed)
        assert "Live run" in index
        assert "● running" in index
        assert "last heartbeat" in index

    def test_no_feed_no_card(self, tmp_path, populated):
        index = self._build(tmp_path, populated, tmp_path / "missing.jsonl")
        assert "Live run" not in index and "Last run" not in index

    def test_report_cli_progress_file_flag(self, tmp_path, populated, capsys):
        feed = self._feed(tmp_path)
        out_dir = tmp_path / "dash"
        rc = cli_main(
            [
                "report", "--html", str(out_dir),
                "--cache-dir", str(populated["cache_dir"]),
                "--bench", str(populated["bench"]),
                "--ledger", str(populated["ledger"]),
                "--progress-file", str(feed),
            ]
        )
        capsys.readouterr()
        assert rc == 0
        assert "Last run" in (out_dir / "index.html").read_text()


class TestReportCli:
    def _summary_trace(self, tmp_path):
        """A real summary-only (no packet detail) trace of a tiny run."""
        from repro.obs import trace_to_file
        from repro.sim.topology import path_topology
        from repro.udt import start_udt_flow

        path = str(tmp_path / "summary.jsonl")
        with trace_to_file(path, generator="test", experiments=["fig04"]):
            top = path_topology(50e6, 0.02)
            start_udt_flow(top.net, top.src, top.dst)
            top.net.run(until=1.0)
        return path

    def test_summary_only_trace_hints_and_exits_zero(self, tmp_path, capsys):
        trace = self._summary_trace(tmp_path)
        assert cli_main(["report", trace]) == 0
        out = capsys.readouterr().out
        assert "--trace-packets" in out
        assert "packet-lifecycle report" not in out

    def test_summary_only_trace_with_html_still_builds(self, tmp_path, capsys):
        trace = self._summary_trace(tmp_path)
        out_dir = tmp_path / "dash"
        rc = cli_main(
            [
                "report",
                trace,
                "--html",
                str(out_dir),
                "--cache-dir",
                str(tmp_path / "empty-cache"),
                "--bench",
                str(tmp_path / "none.json"),
                "--ledger",
                str(tmp_path / "none2.json"),
            ]
        )
        assert rc == 0
        assert "--trace-packets" in capsys.readouterr().out
        fig04 = out_dir / "fig04.html"
        assert (out_dir / "index.html").exists() and fig04.exists()
        doc = fig04.read_text()
        # the CC timeline still renders from the summary trace, and the
        # forensics card carries the hint instead of an empty report
        assert "CC timeline" in doc
        assert "--trace-packets" in doc

    def test_report_without_trace_or_html_errors(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["report"])

    def test_html_from_cache_without_trace(self, tmp_path, populated, capsys):
        out_dir = tmp_path / "dash"
        rc = cli_main(
            [
                "report",
                "--html",
                str(out_dir),
                "--cache-dir",
                str(populated["cache_dir"]),
                "--bench",
                str(populated["bench"]),
                "--ledger",
                str(populated["ledger"]),
            ]
        )
        assert rc == 0
        assert (out_dir / "index.html").exists()
        capsys.readouterr()


class TestBenchHistory:
    def test_append_history_is_bounded(self):
        data = {}
        for i in range(50):
            append_history(data, "fig08", float(i), source="test", sha="s", limit=40)
        runs = data["history"]["fig08"]
        assert len(runs) == 40
        assert runs[0]["seconds"] == 10.0  # oldest ten dropped
        assert runs[-1]["seconds"] == 49.0
        assert {"ts", "sha", "seconds", "source"} <= set(runs[0])

    def test_update_bench_appends_history_and_keeps_latest(self, tmp_path):
        bench = tmp_path / "bench.json"
        report = SweepReport(
            selector="fig08",
            scale=0.05,
            jobs=1,
            experiments=["fig08"],
            executed=["fig08"],
            exp_seconds={"fig08": 19.2},
            digests={"fig08": "ab" * 32},
        )
        update_bench(report, bench)
        report.exp_seconds["fig08"] = 20.1
        update_bench(report, bench)
        data = json.loads(bench.read_text())
        # gate still reads a single latest value
        assert data["runtimes"]["fig08"]["seconds"] == 20.1
        # dashboard reads the appended trend
        secs = [h["seconds"] for h in data["history"]["fig08"]]
        assert secs == [19.2, 20.1]
        assert all(h["scale"] == 0.05 for h in data["history"]["fig08"])

    def test_cached_experiments_record_no_history(self, tmp_path):
        bench = tmp_path / "bench.json"
        report = SweepReport(
            selector="fig08",
            scale=0.05,
            jobs=1,
            experiments=["fig08"],
            cached=["fig08"],
            exp_seconds={"fig08": 19.2},
        )
        update_bench(report, bench)
        data = json.loads(bench.read_text())
        assert "fig08" not in data.get("history", {})
