"""Tests for the protocol-invariant static analysis suite (repro.analysis)."""

import json

import pytest

from repro.analysis import all_checkers, rule_ids, run_analysis
from repro.analysis.baseline import compare, load_baseline, write_baseline
from repro.analysis.core import Finding, default_root, repo_root, run_checkers
from repro.analysis.event_schema import EventSchemaChecker
from repro.analysis.sanitizer import Divergence, SanitizerResult, diff_traces
from repro.analysis.lintcache import ModuleCache
from repro.analysis.sansio import SansioPurityChecker
from repro.analysis.seqno_taint import SeqnoTaintChecker
from repro.analysis.threads import ThreadSharedStateChecker
from repro.analysis.units import UnitsChecker
from repro.analysis.vtime import VtimeDeterminismChecker


def _tree(tmp_path, files):
    """Materialise {relpath: source} under tmp_path; returns the root."""
    for rel, src in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(src)
    return tmp_path


def _rules(findings):
    return [f.rule for f in findings]


# -- self-hosting gate ----------------------------------------------------


def test_self_hosting_tree_matches_baseline():
    """The full checker suite over src/repro must match the checked-in
    baseline exactly — no new findings, no stale baseline entries."""
    findings = run_analysis()
    root = repo_root()
    assert root is not None, "tests must run from the source checkout"
    baseline = load_baseline(root / "analysis" / "baseline.json")
    cmp = compare(findings, baseline)
    assert cmp.new == [], "new lint findings:\n" + "\n".join(
        f.format() for f in cmp.new
    )
    assert cmp.fixed == [], "stale baseline entries:\n" + "\n".join(
        f.format() for f in cmp.fixed
    )


def test_rule_ids_cover_all_checkers():
    assert sorted(rule_ids()) == [
        "event-schema",
        "sansio-purity",
        "seqno-taint",
        "thread-shared-state",
        "units",
        "vtime-determinism",
    ]


# -- seqno-taint ----------------------------------------------------------


def test_seqno_taint_flags_raw_compare(tmp_path):
    root = _tree(
        tmp_path,
        {"udt/x.py": "def f(a_seq, b_seq):\n    return a_seq < b_seq\n"},
    )
    findings = run_checkers(root, [SeqnoTaintChecker()])
    assert _rules(findings) == ["seqno-taint"]
    assert "seq_cmp" in findings[0].message


def test_seqno_taint_flags_raw_arith_and_aliases(tmp_path):
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(self, n):\n"
                "    a = self.lrsn + 1\n"
                "    b = self.ack_seq - n\n"
                "    return a, b\n"
            )
        },
    )
    findings = run_checkers(root, [SeqnoTaintChecker()])
    assert _rules(findings) == ["seqno-taint", "seqno-taint"]


def test_seqno_taint_tracks_through_assignment(tmp_path):
    """The dataflow upgrade over PR 3's name heuristic: copying a seqno
    into an innocently-named local must not launder it."""
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(self, limit):\n"
                "    hole = seq_inc(self.lrsn)\n"
                "    if hole < limit:\n"
                "        return hole\n"
                "    return None\n"
            )
        },
    )
    findings = run_checkers(root, [SeqnoTaintChecker()])
    assert _rules(findings) == ["seqno-taint"]
    assert "sequence-derived value" in findings[0].message
    assert "hole" in findings[0].message


def test_seqno_taint_sanitizers_and_projections_clear_taint(tmp_path):
    """seq_cmp/seq_off/seq_len/valid_seq results are plain ints/bools,
    and % / // / & / >> project out of the circular space."""
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(a_seq, b_seq, w):\n"
                "    d = seq_off(a_seq, b_seq)\n"
                "    phase = a_seq % 16\n"
                "    return d > 0, phase + w, d + 1\n"
            )
        },
    )
    assert run_checkers(root, [SeqnoTaintChecker()]) == []


def test_seqno_taint_scope_excludes_tcp_and_seqno_module(tmp_path):
    src = "def f(a_seq, b_seq):\n    return a_seq - b_seq\n"
    root = _tree(
        tmp_path,
        {"tcp/x.py": src, "udt/seqno.py": src, "obs/x.py": src},
    )
    assert run_checkers(root, [SeqnoTaintChecker()]) == []


def test_seqno_taint_ignores_space_size_constants(tmp_path):
    root = _tree(
        tmp_path,
        {"udt/x.py": "def f(w, MAX_SEQ_NO):\n    return w & (MAX_SEQ_NO - 1)\n"},
    )
    assert run_checkers(root, [SeqnoTaintChecker()]) == []


def test_line_suppression(tmp_path):
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(a_seq, b_seq):\n"
                "    return a_seq == b_seq  # lint: disable=seqno-taint\n"
            )
        },
    )
    assert run_checkers(root, [SeqnoTaintChecker()]) == []


def test_file_suppression(tmp_path):
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "# lint: disable-file=seqno-taint\n"
                "def f(a_seq, b_seq):\n"
                "    return a_seq < b_seq\n"
                "def g(a_seq, b_seq):\n"
                "    return a_seq > b_seq\n"
            )
        },
    )
    assert run_checkers(root, [SeqnoTaintChecker()]) == []


def test_suppression_spans_multiline_statement(tmp_path):
    """A disable on any physical line of a multi-line *simple* statement
    covers the whole statement — the finding anchors to the expression's
    first line, which need not be the line carrying the comment."""
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(a_seq, b_seq, c_seq):\n"
                "    return (\n"
                "        a_seq\n"
                "        < b_seq  # lint: disable=seqno-taint\n"
                "        < c_seq\n"
                "    )\n"
            )
        },
    )
    assert run_checkers(root, [SeqnoTaintChecker()]) == []


def test_suppression_does_not_span_compound_statement(tmp_path):
    """On a compound statement header the disable stays exact-line: it
    must not blanket the whole suite under an `if`/`def`."""
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(a_seq, b_seq):  # lint: disable=seqno-taint\n"
                "    if a_seq < b_seq:\n"
                "        return 1\n"
                "    return 0\n"
            )
        },
    )
    findings = run_checkers(root, [SeqnoTaintChecker()])
    assert _rules(findings) == ["seqno-taint"]


def test_rule_filter(tmp_path):
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "import socket\n"
                "def f(a_seq, b_seq):\n"
                "    return a_seq < b_seq\n"
            )
        },
    )
    both = run_checkers(root, [SeqnoTaintChecker(), SansioPurityChecker()])
    assert sorted(_rules(both)) == ["sansio-purity", "seqno-taint"]
    only = run_checkers(
        root, [SeqnoTaintChecker(), SansioPurityChecker()], rules=["seqno-taint"]
    )
    assert _rules(only) == ["seqno-taint"]


def test_parse_error_is_a_finding(tmp_path):
    root = _tree(tmp_path, {"udt/x.py": "def f(:\n"})
    findings = run_checkers(root, [SeqnoTaintChecker()])
    assert _rules(findings) == ["parse-error"]


# -- units ----------------------------------------------------------------


def test_units_flags_mixed_addition(tmp_path):
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(rtt_us, syn_period):\n    return rtt_us + syn_period\n"
            )
        },
    )
    findings = run_checkers(root, [UnitsChecker()])
    assert _rules(findings) == ["units"]
    assert "[us]" in findings[0].message and "[s]" in findings[0].message


def test_units_flags_mixed_comparison_through_alias(tmp_path):
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(self, flight_window):\n"
                "    limit = self.buf_bytes\n"
                "    return flight_window > limit\n"
            )
        },
    )
    findings = run_checkers(root, [UnitsChecker()])
    assert _rules(findings) == ["units"]
    assert "[pkts]" in findings[0].message and "[bytes]" in findings[0].message


def test_units_conversion_and_unknowns_stay_quiet(tmp_path):
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(rtt_us, syn_period, k):\n"
                "    rtt = rtt_us / 1e6\n"
                "    return rtt + syn_period + k\n"
            )
        },
    )
    assert run_checkers(root, [UnitsChecker()]) == []


def test_units_flags_scheduler_arg(tmp_path):
    root = _tree(
        tmp_path,
        {"udt/x.py": "def f(sim, rtt_us):\n    sim.call_at(rtt_us)\n"},
    )
    findings = run_checkers(root, [UnitsChecker()])
    assert _rules(findings) == ["units"]
    assert "call_at() expects [s]" in findings[0].message


def test_units_flags_emit_payload_against_catalog(tmp_path):
    # cc.decrease declares window:pkts in the catalog; a bytes-typed
    # expression in that slot is the cross-check's finding.
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(bus, t, flight_bytes):\n"
                '    bus.emit("cc.decrease", t, "s", trigger="nak",'
                " window=flight_bytes)\n"
            )
        },
    )
    findings = run_checkers(root, [UnitsChecker()])
    assert _rules(findings) == ["units"]
    assert "declared [pkts]" in findings[0].message


# -- thread-shared-state --------------------------------------------------

_THREAD_DECLS = (
    'THREAD_SHARED_READS = frozenset({"_interval", "_cur_sim"})\n'
    'THREAD_OWNED = frozenset({"_last"})\n'
    'THREAD_SHARED_OBJECTS = frozenset({"_cur_sim"})\n'
    'THREAD_SHARED_OBJECT_READS = frozenset({"now"})\n'
)


def test_thread_missing_allowlist_is_a_finding(tmp_path):
    root = _tree(
        tmp_path,
        {
            "runner/x.py": (
                "import threading\n"
                "class R:\n"
                "    def start(self):\n"
                "        threading.Thread(target=self._run).start()\n"
                "    def _run(self):\n"
                "        pass\n"
            )
        },
    )
    findings = run_checkers(root, [ThreadSharedStateChecker()])
    assert _rules(findings) == ["thread-shared-state"]
    assert "THREAD_SHARED_READS" in findings[0].message


def test_thread_undeclared_read_and_write(tmp_path):
    root = _tree(
        tmp_path,
        {
            "runner/x.py": (
                "import threading\n" + _THREAD_DECLS + "class R:\n"
                "    def start(self):\n"
                "        threading.Thread(target=self._run).start()\n"
                "    def _run(self):\n"
                "        x = self._secret\n"
                "        self._count = 1\n"
                "        self._last = 2\n"
            )
        },
    )
    findings = run_checkers(root, [ThreadSharedStateChecker()])
    msgs = " | ".join(f.message for f in findings)
    assert len(findings) == 2
    assert "self._secret" in msgs and "self._count" in msgs


def test_thread_shared_object_alias_mutation(tmp_path):
    # The alias is what the dataflow framework buys: `sim` is a plain
    # local, but it carries the shared-object label from self._cur_sim.
    root = _tree(
        tmp_path,
        {
            "runner/x.py": (
                "import threading\n" + _THREAD_DECLS + "class R:\n"
                "    def start(self):\n"
                "        threading.Thread(target=self._run).start()\n"
                "    def _run(self):\n"
                "        sim = self._cur_sim\n"
                "        t = sim.now\n"
                "        sim.step()\n"
            )
        },
    )
    findings = run_checkers(root, [ThreadSharedStateChecker()])
    assert _rules(findings) == ["thread-shared-state"]
    assert ".step" in findings[0].message


def test_thread_main_thread_methods_unconstrained(tmp_path):
    root = _tree(
        tmp_path,
        {
            "runner/x.py": (
                "import threading\n" + _THREAD_DECLS + "class R:\n"
                "    def start(self):\n"
                "        threading.Thread(target=self._run).start()\n"
                "        self.anything = 1\n"
                "    def _run(self):\n"
                "        return self._interval\n"
            )
        },
    )
    assert run_checkers(root, [ThreadSharedStateChecker()]) == []


# -- incremental cache ----------------------------------------------------


def test_cache_serves_identical_findings(tmp_path):
    root = _tree(
        tmp_path / "src",
        {"udt/x.py": "def f(a_seq, b_seq):\n    return a_seq < b_seq\n"},
    )
    c1 = ModuleCache(tmp_path / "cache.json", "digest0")
    first = run_checkers(root, [SeqnoTaintChecker()], cache=c1)
    c1.save()
    assert (c1.hits, c1.misses) == (0, 1) and _rules(first) == ["seqno-taint"]
    c2 = ModuleCache(tmp_path / "cache.json", "digest0")
    second = run_checkers(root, [SeqnoTaintChecker()], cache=c2)
    assert (c2.hits, c2.misses) == (1, 0)
    assert second == first


def test_cache_invalidated_by_content_change(tmp_path):
    root = _tree(
        tmp_path / "src",
        {"udt/x.py": "def f(a_seq, b_seq):\n    return a_seq < b_seq\n"},
    )
    c1 = ModuleCache(tmp_path / "cache.json", "digest0")
    run_checkers(root, [SeqnoTaintChecker()], cache=c1)
    c1.save()
    (root / "udt" / "x.py").write_text(
        "def f(a_seq, b_seq):\n    return seq_cmp(a_seq, b_seq)\n"
    )
    c2 = ModuleCache(tmp_path / "cache.json", "digest0")
    second = run_checkers(root, [SeqnoTaintChecker()], cache=c2)
    assert (c2.hits, c2.misses) == (0, 1)
    assert second == []


def test_cache_invalidated_by_analysis_digest(tmp_path):
    # New checker code (a changed analysis digest) must drop the cache
    # wholesale — stale findings from an older rule version are worse
    # than a cold run.
    root = _tree(
        tmp_path / "src",
        {"udt/x.py": "def f(a_seq, b_seq):\n    return a_seq < b_seq\n"},
    )
    c1 = ModuleCache(tmp_path / "cache.json", "digest0")
    run_checkers(root, [SeqnoTaintChecker()], cache=c1)
    c1.save()
    c2 = ModuleCache(tmp_path / "cache.json", "digest1")
    run_checkers(root, [SeqnoTaintChecker()], cache=c2)
    assert (c2.hits, c2.misses) == (0, 1)


def test_cache_replays_summaries_for_cross_module_finalize(tmp_path):
    """A fully-cached run must still produce event-schema's cross-module
    finding: consumptions replay through module summaries into finalize."""
    root = _tree(
        tmp_path / "src",
        {
            "udt/x.py": (
                "def f(bus, t):\n"
                '    bus.emit("cc.decrease", t, "s", trigger="nak")\n'
            ),
            "obs/report.py": (
                "def g(rec, kind):\n"
                '    if kind == "cc.decrease":\n'
                '        return rec["window"]\n'
            ),
        },
    )
    c1 = ModuleCache(tmp_path / "cache.json", "d")
    first = run_checkers(root, [EventSchemaChecker()], cache=c1)
    c1.save()
    assert any("no emit site produces" in f.message for f in first)
    c2 = ModuleCache(tmp_path / "cache.json", "d")
    second = run_checkers(root, [EventSchemaChecker()], cache=c2)
    assert (c2.hits, c2.misses) == (2, 0)
    assert any("no emit site produces" in f.message for f in second)


# -- sansio-purity --------------------------------------------------------


def test_sansio_flags_wall_clock_and_sockets(tmp_path):
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "import time\n"
                "import socket\n"
                "def f():\n"
                "    return time.time()\n"
            )
        },
    )
    findings = run_checkers(root, [SansioPurityChecker()])
    assert _rules(findings) == ["sansio-purity"] * 3


def test_sansio_flags_unseeded_randomness(tmp_path):
    root = _tree(
        tmp_path,
        {
            "sim/x.py": (
                "import random\n"
                "def f():\n"
                "    r = random.Random()\n"
                "    return random.random()\n"
            )
        },
    )
    findings = run_checkers(root, [SansioPurityChecker()])
    msgs = " | ".join(f.message for f in findings)
    assert len(findings) == 2
    assert "unseeded" in msgs and "Simulator.rng" in msgs


def test_sansio_allows_seeded_random_and_engine_profiling(tmp_path):
    root = _tree(
        tmp_path,
        {
            "sim/engine.py": (
                "from time import perf_counter\n"
                "import random\n"
                "def f(seed):\n"
                "    return random.Random(seed), perf_counter()\n"
            )
        },
    )
    assert run_checkers(root, [SansioPurityChecker()]) == []


def test_sansio_scope_excludes_live(tmp_path):
    src = "import socket\nimport time\n"
    root = _tree(tmp_path, {"live/x.py": src, "obs/prof.py": src})
    assert run_checkers(root, [SansioPurityChecker()]) == []


# -- vtime-determinism ----------------------------------------------------


def test_vtime_flags_float_equality(tmp_path):
    root = _tree(
        tmp_path,
        {
            "sim/x.py": (
                "def f(t0, t1, deadline):\n"
                "    if t0 == t1:\n"
                "        return 1\n"
                "    return deadline != 0.25\n"
            )
        },
    )
    findings = run_checkers(root, [VtimeDeterminismChecker()])
    assert _rules(findings) == ["vtime-determinism"] * 2


def test_vtime_allows_nan_idiom_none_and_nontime(tmp_path):
    root = _tree(
        tmp_path,
        {
            "sim/x.py": (
                "def f(self, t, tap):\n"
                "    a = t != t\n"  # NaN test
                "    b = t == None\n"  # sentinel
                "    c = [x for x in self.taps if x != tap]\n"  # objects
                "    return a, b, c\n"
            )
        },
    )
    assert run_checkers(root, [VtimeDeterminismChecker()]) == []


def test_vtime_flags_scheduling_from_set_iteration(tmp_path):
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(self, pending):\n"
                "    for seq in set(pending):\n"
                "        self.sim.schedule(0.1, self.retx, seq)\n"
                "    for seq in sorted(pending):\n"
                "        self.sim.schedule(0.1, self.retx, seq)\n"
            )
        },
    )
    findings = run_checkers(root, [VtimeDeterminismChecker()])
    assert _rules(findings) == ["vtime-determinism"]
    assert "sorted" in findings[0].message


def test_vtime_flags_dict_keys_feeding_timer(tmp_path):
    root = _tree(
        tmp_path,
        {
            "sim/x.py": (
                "def f(self, timers):\n"
                "    for k in timers.keys():\n"
                "        timers[k].restart(0.01)\n"
            )
        },
    )
    findings = run_checkers(root, [VtimeDeterminismChecker()])
    assert _rules(findings) == ["vtime-determinism"]


# -- event-schema ---------------------------------------------------------


def test_event_schema_flags_undeclared_kind(tmp_path):
    root = _tree(
        tmp_path,
        {"udt/x.py": 'def f(bus, t):\n    bus.emit("no.such.event", t, "s")\n'},
    )
    findings = run_checkers(root, [EventSchemaChecker()])
    assert any(
        f.rule == "event-schema" and "never declared" in f.message for f in findings
    )


def test_event_schema_flags_missing_required_key(tmp_path):
    # The CI gate: deleting a required key from a producer emit fails lint.
    root = _tree(
        tmp_path,
        {"udt/x.py": 'def f(bus, t):\n    bus.emit("cc.decrease", t, "s")\n'},
    )
    findings = run_checkers(root, [EventSchemaChecker()])
    assert any(
        "missing required key 'trigger'" in f.message for f in findings
    ), [f.message for f in findings]


def test_event_schema_flags_undeclared_key(tmp_path):
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(bus, t):\n"
                '    bus.emit("cc.decrease", t, "s", trigger="nak", bogus=1)\n'
            )
        },
    )
    findings = run_checkers(root, [EventSchemaChecker()])
    assert any("undeclared key 'bogus'" in f.message for f in findings)


def test_event_schema_clean_emit_passes(tmp_path):
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(bus, t):\n"
                '    bus.emit("cc.decrease", t, "s", trigger="nak", period=1.0)\n'
            )
        },
    )
    findings = run_checkers(root, [EventSchemaChecker()])
    # Only catalog-hygiene warnings for the other (unemitted) kinds.
    assert all(f.severity == "warning" for f in findings)


def test_event_schema_flags_consumer_of_unproduced_key(tmp_path):
    root = _tree(
        tmp_path,
        {
            "udt/x.py": (
                "def f(bus, t):\n"
                '    bus.emit("cc.decrease", t, "s", trigger="nak")\n'
            ),
            "obs/report.py": (
                "def g(rec, kind):\n"
                '    if kind == "cc.decrease":\n'
                '        return rec["window"]\n'
            ),
        },
    )
    findings = run_checkers(root, [EventSchemaChecker()])
    assert any(
        "no emit site produces" in f.message and f.path == "obs/report.py"
        for f in findings
    ), [f.message for f in findings]


# -- baseline -------------------------------------------------------------


def _mk(rule, path, msg, line=1):
    return Finding(rule, path, line, 0, "error", msg)


def test_baseline_classification():
    base = [_mk("r", "a.py", "m1", line=10), _mk("r", "a.py", "m2")]
    now = [_mk("r", "a.py", "m1", line=99), _mk("r", "b.py", "m3")]
    cmp = compare(now, base)
    assert [f.message for f in cmp.baselined] == ["m1"]  # line drift ok
    assert [f.message for f in cmp.new] == ["m3"]
    assert [f.message for f in cmp.fixed] == ["m2"]
    assert not cmp.gate_passed


def test_baseline_multiset_semantics():
    base = [_mk("r", "a.py", "m")]
    now = [_mk("r", "a.py", "m"), _mk("r", "a.py", "m")]
    cmp = compare(now, base)
    assert len(cmp.baselined) == 1 and len(cmp.new) == 1


def test_baseline_roundtrip(tmp_path):
    path = tmp_path / "analysis" / "baseline.json"
    findings = [_mk("r", "a.py", "m", line=7)]
    write_baseline(path, findings)
    assert load_baseline(path) == findings
    doc = json.loads(path.read_text())
    assert doc["kind"] == "lint.baseline" and doc["schema"] == 1


def test_baseline_rejects_foreign_json(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"kind": "something.else", "schema": 1}')
    with pytest.raises(ValueError):
        load_baseline(path)


# -- sanitizer trace diff -------------------------------------------------

_META = '{"kind": "trace.meta", "schema": 1}'


def _write_trace(path, lines):
    path.write_text("\n".join([_META] + lines) + "\n")


def test_diff_traces_identical(tmp_path):
    events = ['{"t": 0.0, "kind": "pkt.snd", "seq": %d}' % i for i in range(10)]
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    _write_trace(a, events)
    _write_trace(b, events)
    n, div = diff_traces(a, b)
    assert n == 10 and div is None


def test_diff_traces_reports_first_divergence_with_context(tmp_path):
    events = ['{"t": 0.0, "kind": "pkt.snd", "seq": %d}' % i for i in range(10)]
    mutated = list(events)
    mutated[7] = '{"t": 0.0, "kind": "pkt.snd", "seq": 777}'
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    _write_trace(a, events)
    _write_trace(b, mutated)
    _, div = diff_traces(a, b)
    assert div is not None and div.index == 7
    assert '"seq": 7' in div.line_a and '"seq": 777' in div.line_b
    assert div.context == events[2:7]
    text = div.format()
    assert "A(fifo)" in text and "seq=777" in text


def test_diff_traces_length_mismatch(tmp_path):
    events = ['{"t": 0.0, "kind": "pkt.snd", "seq": %d}' % i for i in range(3)]
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    _write_trace(a, events)
    _write_trace(b, events[:2])
    _, div = diff_traces(a, b)
    assert div is not None and div.index == 2 and div.line_b is None
    assert "<end of trace>" in div.format()


def test_diff_traces_rejects_headerless_file(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    a.write_text('{"t": 0.0}\n')
    _write_trace(b, [])
    with pytest.raises(ValueError):
        diff_traces(a, b)


def _write_rtrc(path, lines):
    from repro.obs.store import RtrcWriter

    w = RtrcWriter(path, block_events=4)
    for rec in [_META] + lines:
        w.feed(json.loads(rec))
    w.close()


def test_diff_traces_streams_over_gzip(tmp_path):
    import gzip

    events = ['{"t": 0.0, "kind": "pkt.snd", "seq": %d}' % i for i in range(10)]
    mutated = list(events)
    mutated[4] = '{"t": 0.0, "kind": "pkt.snd", "seq": 444}'
    a, b = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
    for path, lines in ((a, events), (b, mutated)):
        with gzip.open(path, "wt") as f:
            f.write("\n".join([_META] + lines) + "\n")
    n, div = diff_traces(a, a)
    assert n == 10 and div is None
    _, div = diff_traces(a, b)
    assert div is not None and div.index == 4 and '"seq": 444' in div.line_b


def test_diff_traces_rtrc_identical_and_divergent(tmp_path):
    events = ['{"t": 0.0, "kind": "pkt.snd", "seq": %d}' % i for i in range(10)]
    mutated = list(events)
    mutated[7] = '{"t": 0.0, "kind": "pkt.snd", "seq": 777}'
    a, b = tmp_path / "a.rtrc", tmp_path / "b.rtrc"
    _write_rtrc(a, events)
    _write_rtrc(b, mutated)
    n, div = diff_traces(a, a)
    assert n == 10 and div is None
    _, div = diff_traces(a, b)
    assert div is not None and div.index == 7
    assert '"seq":777' in div.line_b  # canonical JSONL from the store
    assert len(div.context) == 5


def test_diff_traces_rtrc_length_mismatch(tmp_path):
    events = ['{"t": 0.0, "kind": "pkt.snd", "seq": %d}' % i for i in range(6)]
    a, b = tmp_path / "a.rtrc", tmp_path / "b.rtrc"
    _write_rtrc(a, events)
    _write_rtrc(b, events[:3])
    _, div = diff_traces(a, b)
    assert div is not None and div.index == 3 and div.line_b is None


def test_diff_traces_reblocked_rtrc_counts_as_equal(tmp_path):
    """Different block boundaries change the bytes but not the events."""
    from repro.obs.store import RtrcWriter

    events = ['{"t": 0.0, "kind": "pkt.snd", "seq": %d}' % i for i in range(10)]
    a, b = tmp_path / "a.rtrc", tmp_path / "b.rtrc"
    _write_rtrc(a, events)  # block_events=4
    w = RtrcWriter(b, block_events=3)
    for rec in [_META] + events:
        w.feed(json.loads(rec))
    w.close()
    assert a.read_bytes() != b.read_bytes()
    n, div = diff_traces(a, b)
    assert n == 10 and div is None


def test_sanitizer_rejects_unknown_format():
    from repro.analysis.sanitizer import DeterminismSanitizer

    with pytest.raises(ValueError):
        DeterminismSanitizer("fig02", trace_format="csv")


@pytest.mark.slow
def test_sanitizer_end_to_end_rtrc(tmp_path):
    """Dual perturbed subprocess runs recording .rtrc, diffed streaming."""
    from repro.analysis.sanitizer import DeterminismSanitizer

    result = DeterminismSanitizer(
        "fig09",
        overrides={"n_events": 30, "max_burst": 100},
        trace_format="rtrc",
        workdir=str(tmp_path),
    ).run()
    assert result.deterministic
    assert all(run["trace"].endswith(".rtrc") for run in result.runs)


def test_sanitizer_result_json_shape(tmp_path):
    div = Divergence(index=3, line_a="x", line_b="y", context=["c"])
    res = SanitizerResult("fig02", False, 3, divergence=div)
    d = res.to_dict()
    assert d["kind"] == "lint.sanitize" and not d["deterministic"]
    assert d["divergence"]["index"] == 3
    ok = SanitizerResult("fig02", True, 100)
    assert "OK" in ok.format() and "DIVERGED" in res.format()


# -- CLI ------------------------------------------------------------------


def test_cli_lint_json_roundtrip(tmp_path, capsys):
    from repro.analysis.cli import main

    rc = main(["--json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["kind"] == "lint.report" and payload["gate_passed"]
    # Round-trip: the JSON findings parse back through the baseline codec.
    for bucket in ("new", "baselined", "fixed"):
        for d in payload[bucket]:
            Finding.from_dict(d)


def test_cli_lint_detects_new_finding(tmp_path, capsys):
    from repro.analysis.cli import main

    _tree(
        tmp_path,
        {"udt/x.py": "def f(a_seq, b_seq):\n    return a_seq < b_seq\n"},
    )
    rc = main(["--root", str(tmp_path), "--baseline", str(tmp_path / "b.json")])
    out = capsys.readouterr().out
    assert rc == 1 and "seqno-taint" in out and "1 new" in out


def test_cli_write_baseline_then_gate(tmp_path, capsys):
    from repro.analysis.cli import main

    _tree(
        tmp_path,
        {"udt/x.py": "def f(a_seq, b_seq):\n    return a_seq < b_seq\n"},
    )
    bl = str(tmp_path / "b.json")
    assert main(["--root", str(tmp_path), "--baseline", bl, "--write-baseline"]) == 0
    capsys.readouterr()
    assert main(["--root", str(tmp_path), "--baseline", bl]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_cli_unknown_rule_errors():
    from repro.analysis.cli import main

    with pytest.raises(SystemExit):
        main(["--rule", "no-such-rule"])


def test_repro_udt_lint_subcommand(capsys):
    from repro.cli import main

    assert main(["lint"]) == 0
    assert "0 new" in capsys.readouterr().out
