"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, Simulator, Timer, format_vtime


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(0.3, seen.append, "c")
    sim.schedule(0.1, seen.append, "a")
    sim.schedule(0.2, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_fifo():
    sim = Simulator()
    seen = []
    for tag in range(10):
        sim.schedule(0.5, seen.append, tag)
    sim.run()
    assert seen == list(range(10))


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(5.0, lambda: None)
    sim.run(until=2.0)
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert sim.now == 10.0
    assert sim.events_processed == 2


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    ev = sim.schedule(0.1, seen.append, "x")
    sim.schedule(0.2, seen.append, "y")
    ev.cancel()
    sim.run()
    assert seen == ["y"]
    assert ev.cancelled


def test_cancel_releases_references():
    sim = Simulator()
    big = object()
    ev = sim.schedule(0.1, lambda o: None, big)
    ev.cancel()
    assert ev.args == ()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_into_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_event_scheduled_during_run_executes():
    sim = Simulator()
    seen = []

    def first():
        sim.schedule(0.5, seen.append, "second")

    sim.schedule(0.1, first)
    sim.run()
    assert seen == ["second"]
    assert sim.now == pytest.approx(0.6)


def test_stop_aborts_run():
    sim = Simulator()
    seen = []
    sim.schedule(0.1, seen.append, 1)
    sim.schedule(0.2, sim.stop)
    sim.schedule(0.3, seen.append, 2)
    sim.run()
    assert seen == [1]
    # a second run resumes where we left off
    sim.run()
    assert seen == [1, 2]


def test_pending_counts_live_events():
    sim = Simulator()
    ev1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev1.cancel()
    assert sim.pending() == 1


def test_rng_is_seeded_and_reproducible():
    a = Simulator(seed=42).rng.random()
    b = Simulator(seed=42).rng.random()
    c = Simulator(seed=43).rng.random()
    assert a == b != c


def test_timer_restart_and_cancel():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: fired.append(sim.now))
    t.restart(1.0)
    t.restart(2.0)  # supersedes the first deadline
    sim.run()
    assert fired == [2.0]
    assert not t.armed


def test_timer_start_if_idle():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: fired.append(sim.now))
    t.restart(1.0)
    t.start_if_idle(0.5)  # must NOT override the armed deadline
    assert t.deadline == 1.0
    sim.run()
    assert fired == [1.0]
    t.start_if_idle(0.5)
    sim.run()
    assert fired == [1.0, 1.5]


def test_timer_cancel_prevents_fire():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: fired.append(1))
    t.restart(1.0)
    t.cancel()
    sim.run()
    assert fired == []


def test_repr_safe_on_cancelled_event():
    sim = Simulator()
    ev = sim.schedule(0.1, lambda: None)
    assert "pending" in repr(ev)
    ev.cancel()
    # cancel() clears fn/args; repr must still work (debuggers repr the heap)
    assert "cancelled" in repr(ev)
    assert "seq=" in repr(ev)


def test_repr_names_the_handler():
    sim = Simulator()

    def my_handler():
        pass

    ev = sim.schedule(0.1, my_handler)
    assert "my_handler" in repr(ev)


def test_repr_safe_on_garbage_time():
    ev = Event(object(), 0, lambda: None, ())  # type: ignore[arg-type]
    assert "seq=0" in repr(ev)


def test_now_str_formats():
    sim = Simulator()
    assert sim.now_str() == "0.000ms"
    sim.schedule(0.0005, lambda: None)
    sim.run()
    assert sim.now_str() == "0.500ms"
    sim.schedule_at(2.25, lambda: None)
    sim.run()
    assert sim.now_str() == "2.250s"
    assert format_vtime(float("nan")) == "?"


# -- perturbable same-instant tie-break (determinism sanitizer hook) -------


def test_tie_break_fifo_default():
    sim = Simulator()
    assert sim.tie_break == "fifo"
    out = []
    for i in range(5):
        sim.schedule_at(1.0, out.append, i)
    sim.run()
    assert out == [0, 1, 2, 3, 4]


def test_tie_break_lifo_reverses_equal_time_only():
    sim = Simulator(tie_break="lifo")
    out = []
    for i in range(5):
        sim.schedule_at(1.0, out.append, i)
    sim.schedule_at(2.0, out.append, 99)  # later time still fires last
    sim.run()
    assert out == [4, 3, 2, 1, 0, 99]


def test_tie_break_env_override(monkeypatch):
    from repro.sim.engine import TIE_BREAK_ENV

    monkeypatch.setenv(TIE_BREAK_ENV, "lifo")
    assert Simulator().tie_break == "lifo"
    # An explicit argument beats the environment.
    assert Simulator(tie_break="fifo").tie_break == "fifo"


def test_tie_break_rejects_unknown_order():
    import pytest

    with pytest.raises(ValueError):
        Simulator(tie_break="random")
