"""Unit tests for TCP variant response functions."""

import pytest

from repro.tcp.responses import (
    BicResponse,
    HighSpeedResponse,
    RenoResponse,
    ScalableResponse,
    VegasResponse,
    WestwoodResponse,
)


class TestReno:
    def test_one_segment_per_rtt(self):
        r = RenoResponse()
        # summed over a window's worth of ACKs: ~1 segment
        assert r.ack_increment(100.0) * 100 == pytest.approx(1.0)

    def test_halves_on_loss(self):
        assert RenoResponse().backoff(1000.0) == 0.5


class TestHighSpeed:
    def test_reno_regime_below_low_window(self):
        h = HighSpeedResponse()
        assert h.ack_increment(20.0) == pytest.approx(1 / 20.0)
        assert h.backoff(20.0) == pytest.approx(0.5)

    def test_rfc3649_anchor_points(self):
        h = HighSpeedResponse()
        # b(83000) = 0.1; a(83000) ~= 72 (RFC 3649 table value)
        assert h._b(83000.0) == pytest.approx(0.1, abs=0.01)
        assert h._a(83000.0) == pytest.approx(72.0, rel=0.15)

    def test_monotone_aggressiveness(self):
        h = HighSpeedResponse()
        a_vals = [h._a(w) for w in (100, 1000, 10000, 80000)]
        assert a_vals == sorted(a_vals)
        b_vals = [h._b(w) for w in (100, 1000, 10000, 80000)]
        assert b_vals == sorted(b_vals, reverse=True)

    def test_gentler_backoff_at_scale(self):
        h = HighSpeedResponse()
        assert h.backoff(50000.0) > 0.8


class TestScalable:
    def test_mimd_increment_constant(self):
        s = ScalableResponse()
        assert s.ack_increment(100.0) == 0.01
        assert s.ack_increment(10000.0) == 0.01  # per-ACK, rate-proportional

    def test_backoff_is_gentle(self):
        assert ScalableResponse().backoff(1000.0) == 0.875

    def test_reno_fallback_at_small_window(self):
        s = ScalableResponse()
        assert s.ack_increment(8.0) == pytest.approx(1 / 8.0)


class TestBic:
    def test_binary_search_halves_distance(self):
        b = BicResponse()
        b.max_win = 1000.0
        inc = b.ack_increment(500.0) * 500.0
        assert inc == pytest.approx(32.0)  # clamped to S_MAX
        b.max_win = 520.0
        inc = b.ack_increment(500.0) * 500.0
        assert inc == pytest.approx(10.0)  # (520+500)/2 - 500

    def test_backoff_sets_new_max(self):
        b = BicResponse()
        beta = b.backoff(1000.0)
        assert beta == pytest.approx(0.875)
        assert b.max_win == pytest.approx(1000 * 1.875 / 2)

    def test_min_increment_near_target(self):
        b = BicResponse()
        b.max_win = 500.001
        inc = b.ack_increment(500.0) * 500.0
        assert inc == pytest.approx(b.S_MIN)


class TestVegas:
    def _sender(self, cwnd):
        class S:
            pass

        s = S()
        s.cwnd = cwnd
        return s

    def test_increases_when_queue_below_alpha(self):
        v = VegasResponse(alpha=1, beta=3)
        v.on_rtt_sample(0.100)  # base
        v.on_rtt_sample(0.100)  # no queueing
        s = self._sender(10.0)
        v.per_rtt_adjust(s)
        assert s.cwnd == 11.0

    def test_decreases_when_queue_above_beta(self):
        v = VegasResponse(alpha=1, beta=3)
        v.on_rtt_sample(0.100)
        v.on_rtt_sample(0.200)  # heavy queueing: diff = cwnd*(1-0.5)=5
        s = self._sender(10.0)
        v.per_rtt_adjust(s)
        assert s.cwnd == 9.0

    def test_holds_within_band(self):
        v = VegasResponse(alpha=1, beta=6)
        v.on_rtt_sample(0.100)
        v.on_rtt_sample(0.125)  # diff = 10*(1-0.8)=2 in [1,6]
        s = self._sender(10.0)
        v.per_rtt_adjust(s)
        assert s.cwnd == 10.0


class TestWestwood:
    def test_bandwidth_estimate_from_acks(self):
        w = WestwoodResponse()
        t = 0.0
        for _ in range(200):
            w.on_ack_arrival(1, t)
            t += 0.001  # 1000 pkts/s
        assert w.bwe_pps == pytest.approx(1000.0, rel=0.05)

    def test_ssthresh_from_bwe(self):
        w = WestwoodResponse()
        t = 0.0
        for _ in range(200):
            w.on_ack_arrival(1, t)
            t += 0.001
        w.on_rtt_sample(0.05)

        class S:
            cwnd = 100.0

        # BWE * RTTmin = 1000 * 0.05 = 50 packets
        assert w.ssthresh_after_loss(S()) == pytest.approx(50.0, rel=0.1)

    def test_no_estimate_falls_back(self):
        w = WestwoodResponse()

        class S:
            cwnd = 100.0

        assert w.ssthresh_after_loss(S()) is None
